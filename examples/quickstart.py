"""Quickstart: build the microphone amplifier, measure the headline specs.

Run:  python examples/quickstart.py

Builds the paper's programmable-gain low-noise microphone amplifier
(Fig. 4/5) on the reconstructed 1.2 um CMOS process, solves its operating
point, sweeps the gain codes and runs the adjoint noise analysis — the
measurements behind Table 1's headline 5.1 nV/rtHz row.
"""

import numpy as np

from repro.circuits.micamp import build_mic_amp
from repro.process import CMOS12
from repro.spice import ac_analysis, dc_operating_point, noise_analysis
from repro.spice.analysis import log_freqs


def main() -> None:
    # 1. Build the amplifier at the 40 dB gain code.
    design = build_mic_amp(CMOS12, gain_code=5)
    print(design.circuit.summary())

    # 2. DC operating point: bias currents, saturation check.
    op = dc_operating_point(design.circuit)
    print(f"\nsolved by {op.strategy} in {op.iterations} iterations")
    print(f"quiescent supply current: {abs(op.i('vdd_src')) * 1e3:.2f} mA "
          f"(Table 1: <= 2.6 mA)")
    t1 = op.mos_op("t1")
    print(f"input device T1: Id = {t1.ids * 1e6:.0f} uA, "
          f"gm = {t1.gm * 1e3:.2f} mS, saturated = {t1.saturated}")

    # 3. Gain programming: 10..40 dB in 6 dB steps.
    print("\ngain programming (Fig. 5):")
    for code in range(6):
        design.set_gain_code(code)
        op_c = dc_operating_point(design.circuit)
        h = abs(ac_analysis(op_c, np.array([1e3])).vdiff("outp", "outn")[0])
        nominal = design.gain.gain_db(code)
        print(f"  code {code}: {20 * np.log10(h):7.3f} dB "
              f"(nominal {nominal:4.0f}, error {20 * np.log10(h) - nominal:+.3f})")

    # 4. Noise analysis at 40 dB (Fig. 7 / Table 1).
    design.set_gain_code(5)
    op = dc_operating_point(design.circuit)
    freqs = log_freqs(10, 100e3, 12)
    nr = noise_analysis(op, freqs, design.outp, design.outn)
    print("\ninput-referred noise (Fig. 7):")
    for f in (100, 300, 1e3, 3.4e3, 10e3):
        print(f"  {f:7.0f} Hz: {nr.input_nv_at(f):5.2f} nV/rtHz")
    avg = nr.average_input_density(300, 3400) * 1e9
    print(f"\nvoice-band average: {avg:.2f} nV/rtHz  (paper: 5.1)")

    print("\ntop noise contributors at 1 kHz:")
    gain_1k = float(np.interp(1e3, nr.freqs, nr.gain))
    for dev, mech, psd in nr.top_contributors(1e3, 5):
        print(f"  {dev:10s} {mech:8s} "
              f"{np.sqrt(psd) * 1e9 / gain_1k:.2f} nV/rtHz input-referred")


if __name__ == "__main__":
    main()
