"""Corners, temperature and Monte Carlo: the robustness story of Sec. 2.

Run:  python examples/process_variation_study.py

"Process variations have a large influence on the system behaviour if
the design approach is chosen incorrectly."  This example characterises
the front-end blocks over the five corners, the -20..85 degC consumer
range and Pelgrom mismatch, reproducing the claims the paper makes about
each bias/reference loop.
"""

import numpy as np

from repro.circuits.bandgap import build_bandgap, find_r2_trim
from repro.circuits.bias import build_bias_circuit
from repro.circuits.micamp import build_mic_amp
from repro.analysis.psrr import measure_psrr
from repro.process import CMOS12, CORNERS, MismatchSampler, apply_corner
from repro.spice import dc_operating_point
from repro.spice.sweeps import temperature_sweep


def main() -> None:
    # 1. Bias current over corners x temperature.
    print("bias current [uA] over corners and temperature:")
    print("corner    -20 C     25 C     85 C")
    for corner in CORNERS:
        tech = apply_corner(CMOS12, corner)
        design = build_bias_circuit(tech)
        ops = temperature_sweep(design.circuit, np.array([-20.0, 25.0, 85.0]))
        row = "   ".join(f"{op.v('iout') / 10e3 * 1e6:6.2f}" for op in ops)
        print(f"  {corner}     {row}")

    # 2. Bandgap tempco per corner (trim once at tt, like production).
    trim = find_r2_trim(CMOS12, iterations=3)
    print(f"\nbandgap tempco per corner (single tt trim = {trim:.3f}):")
    temps = np.linspace(-20, 85, 8)
    for corner in ("tt", "ff", "ss"):
        tech = apply_corner(CMOS12, corner)
        design = build_bandgap(tech, r2_trim=trim)
        ops = temperature_sweep(design.circuit, temps)
        vref = np.array([op.v(design.vrefp) - op.v(design.vrefn) for op in ops])
        tc = (vref.max() - vref.min()) / vref.mean() / (temps[-1] - temps[0]) * 1e6
        print(f"  {corner}: {tc:6.1f} ppm/degC  "
              f"(vref = {vref.mean() * 1e3:.1f} mV)")

    # 3. Mic amp offset + PSRR Monte Carlo (the FD-structure argument).
    print("\nmicrophone amplifier Monte Carlo (10 samples):")
    offsets, psrrs = [], []
    for seed in range(10):
        sampler = MismatchSampler(CMOS12, np.random.default_rng(seed))
        design = build_mic_amp(CMOS12, gain_code=5, mismatch=sampler)
        op = dc_operating_point(design.circuit)
        offsets.append(op.vdiff("outp", "outn"))
        psrrs.append(measure_psrr(design.circuit, "vdd_src",
                                  ("vin_p", "vin_n"), "outp", "outn").ratio_db)
    offsets_mv = np.abs(offsets) * 1e3
    print(f"  |output offset| at 40 dB: median {np.median(offsets_mv):.1f} mV, "
          f"max {offsets_mv.max():.1f} mV")
    print(f"  PSRR at 1 kHz: median {np.median(psrrs):.0f} dB, "
          f"min {min(psrrs):.0f} dB (paper: >= 75 dB)")
    print("\nNominally the FD structure has near-infinite PSRR; these")
    print("mismatch-limited numbers are what a real part measures.")


if __name__ == "__main__":
    main()
