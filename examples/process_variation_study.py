"""Corners, temperature and Monte Carlo: the robustness story of Sec. 2.

Run:  python examples/process_variation_study.py

"Process variations have a large influence on the system behaviour if
the design approach is chosen incorrectly."  This example characterises
the front-end blocks over the five corners, the -20..85 degC consumer
range and Pelgrom mismatch, reproducing the claims the paper makes about
each bias/reference loop.

The corner/temperature grid comes from :func:`repro.process.iter_pvt`
and the Monte-Carlo study runs on the declarative campaign engine
(:mod:`repro.campaign`) — the same spec scales to the full
corner x temperature x seed cross-product via ``python -m repro campaign``.
"""

import numpy as np

from repro.campaign import CampaignSpec, run_campaign
from repro.circuits.bandgap import build_bandgap, find_r2_trim
from repro.circuits.bias import build_bias_circuit
from repro.process import CMOS12, CONSUMER_TEMPS_C, CORNERS, apply_corner
from repro.spice.sweeps import temperature_sweep


def main() -> None:
    # 1. Bias current over corners x temperature.  Self-biased loops need
    # warm-started continuation across temperature (temperature_sweep),
    # so the grid iterates corner-major with one sweep per corner.
    print("bias current [uA] over corners and temperature:")
    print("corner    -20 C     25 C     85 C")
    for corner in CORNERS:
        tech = apply_corner(CMOS12, corner)
        design = build_bias_circuit(tech)
        ops = temperature_sweep(design.circuit, np.array(CONSUMER_TEMPS_C))
        row = "   ".join(f"{op.v('iout') / 10e3 * 1e6:6.2f}" for op in ops)
        print(f"  {corner}     {row}")

    # 2. Bandgap tempco per corner (trim once at tt, like production).
    trim = find_r2_trim(CMOS12, iterations=3)
    print(f"\nbandgap tempco per corner (single tt trim = {trim:.3f}):")
    temps = np.linspace(-20, 85, 8)
    for corner in ("tt", "ff", "ss"):
        tech = apply_corner(CMOS12, corner)
        design = build_bandgap(tech, r2_trim=trim)
        ops = temperature_sweep(design.circuit, temps)
        vref = np.array([op.v(design.vrefp) - op.v(design.vrefn) for op in ops])
        tc = (vref.max() - vref.min()) / vref.mean() / (temps[-1] - temps[0]) * 1e6
        print(f"  {corner}: {tc:6.1f} ppm/degC  "
              f"(vref = {vref.mean() * 1e3:.1f} mV)")

    # 3. Mic amp offset + PSRR Monte Carlo (the FD-structure argument).
    # One declarative spec replaces the old hand-rolled rebuild loop;
    # every trial's offset and PSRR share a single operating-point
    # factorization inside the campaign runner.
    print("\nmicrophone amplifier Monte Carlo (10 samples):")
    spec = CampaignSpec(
        builder="micamp",
        corners=("tt",),
        temps_c=(25.0,),
        seeds=tuple(range(10)),
        gain_codes=(5,),
        measurements=("offset_v", "psrr_1khz_db"),
    )
    result = run_campaign(spec)
    offsets = result.metric("offset_v")
    psrrs = result.metric("psrr_1khz_db")
    offsets_mv = np.abs(offsets) * 1e3
    print(f"  |output offset| at 40 dB: median {np.median(offsets_mv):.1f} mV, "
          f"max {offsets_mv.max():.1f} mV")
    print(f"  PSRR at 1 kHz: median {np.median(psrrs):.0f} dB, "
          f"min {min(psrrs):.0f} dB (paper: >= 75 dB)")
    print("\nNominally the FD structure has near-infinite PSRR; these")
    print("mismatch-limited numbers are what a real part measures.")


if __name__ == "__main__":
    main()
