"""The Fig. 1 scenario: a battery voice terminal's transmit path.

Run:  python examples/voice_terminal_chain.py

Simulates the complete front-end the paper motivates: a microphone signal
at several acoustic levels, the programmable-gain amplifier (with its
*measured* transistor-level noise), the second-order sigma-delta
modulator and the sinc^3 decimator.  Shows why the gain must be
programmable ("hands free operation of the hand-set under software
control"): no single gain code serves both a whisper and a speakerphone.
"""

import numpy as np

from repro.circuits.micamp import build_mic_amp
from repro.frontend.voice_chain import VoiceChain
from repro.process import CMOS12
from repro.spice import dc_operating_point, noise_analysis
from repro.spice.analysis import log_freqs


def main() -> None:
    # Measure the real amplifier's input-referred noise once.
    print("measuring the PGA's transistor-level noise spectrum...")
    design = build_mic_amp(CMOS12, gain_code=5)
    op = dc_operating_point(design.circuit)
    nr = noise_analysis(op, log_freqs(10, 100e3, 10), design.outp, design.outn)
    print(f"  voice-band average: "
          f"{nr.average_input_density(300, 3400) * 1e9:.2f} nV/rtHz\n")

    chain = VoiceChain()
    scenarios = {
        "whisper (0.5 mVrms)": 0.5e-3,
        "normal speech (2 mVrms)": 2e-3,
        "loud hands-free (40 mVrms)": 40e-3,
    }
    for label, level in scenarios.items():
        print(f"--- {label} ---")
        print("code  gain   at modulator   S/N      psophometric  clipped")
        results = chain.sweep_codes(level, nr.freqs, nr.input_psd)
        best = int(np.argmax([
            r.snr_psophometric_db if not r.clipped else -1e9 for r in results
        ]))
        for code, res in enumerate(results):
            marker = "  <== best" if code == best else ""
            print(f"  {code}   {res.gain_db:4.0f} dB   "
                  f"{res.signal_at_modulator_rms * 1e3:8.2f} mV   "
                  f"{res.snr_db:6.1f}   {res.snr_psophometric_db:8.1f} dB"
                  f"    {'YES' if res.clipped else 'no '}{marker}")
        print()

    print("The quiet microphone needs 40 dB; the loud one clips everywhere")
    print("above ~16 dB — the programmability requirement of Sec. 1.")


if __name__ == "__main__":
    main()
