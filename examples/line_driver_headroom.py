"""Drive a 50 ohm line from a 2.6 V battery: the power buffer scenario.

Run:  python examples/line_driver_headroom.py

Exercises the class-AB driver (Figs. 8/9) exactly the way the paper's
bench did: distortion vs output swing at several supplies (the Table 2
V_omax rows), the Fig. 11 full-swing spectrum, the slew-rate step and the
quiescent-current control over supply.
"""

import numpy as np

from repro.analysis.distortion import amplitude_at_thd, measure_static_transfer
from repro.analysis.slew import measure_slew_rate
from repro.circuits.powerbuffer import build_power_buffer
from repro.process import CMOS12
from repro.spice import Sine, dc_operating_point, transient_analysis
from repro.spice.waveform import Waveform, make_time_grid


def main() -> None:
    # 1. Swing-vs-distortion at 2.6 V and 3.0 V (Table 2's headline rows).
    for supply in (2.6, 3.0):
        design = build_power_buffer(CMOS12, feedback="inverting",
                                    load="resistive",
                                    vdd=supply / 2, vss=-supply / 2)
        transfer = measure_static_transfer(
            design.circuit, "vsrc_p", "vsrc_n", "outp", "outn",
            amplitude=1.25 * supply, points=41,
        )
        a06 = amplitude_at_thd(transfer, 0.006, 0.2, supply * 1.2)
        a03 = amplitude_at_thd(transfer, 0.003, 0.2, supply * 1.2)
        print(f"V_sup = {supply} V:")
        print(f"  swing at 0.6% HD: {2 * a06:.2f} Vpp diff "
              f"({(supply / 2 - a06 / 2) * 1e3:.0f} mV from each rail)")
        print(f"  swing at 0.3% HD: {2 * a03:.2f} Vpp diff "
              f"({(supply / 2 - a03 / 2) * 1e3:.0f} mV from each rail)")

    # 2. Fig. 11: the output spectrum at 4 Vpp into 50 ohm, 3 V supply.
    print("\nFig. 11 spectrum (4 Vpp diff / 50 ohm / 3 V):")
    design = build_power_buffer(CMOS12, feedback="inverting",
                                load="resistive", vdd=1.5, vss=-1.5)
    design.circuit.element("vsrc_p").wave = Sine(amplitude=1.0, freq=1e3)
    design.circuit.element("vsrc_n").wave = Sine(amplitude=-1.0, freq=1e3)
    t_stop, dt = make_time_grid(1e3, 4, 500)
    tr = transient_analysis(design.circuit, t_stop, dt)
    seg = Waveform(tr.t, tr.vdiff("outp", "outn")).last_cycles(1e3, 3)
    harmonics = seg.harmonics(1e3, 7)
    for k, h in enumerate(harmonics, start=1):
        print(f"  H{k}: {20 * np.log10(max(h, 1e-12) / harmonics[0]):7.1f} dBc")
    thd = seg.thd(1e3)
    power_mw = (harmonics[0] / np.sqrt(2)) ** 2 / 50.0 * 1e3
    print(f"  THD = {thd * 100:.3f} %   power into 50 ohm = {power_mw:.0f} mW "
          f"(paper: 30 mW at 0.5 %)")

    # 3. Slew rate (Table 2: 2.5 V/us at a 1 V step).
    d_sr = build_power_buffer(CMOS12, feedback="inverting", load="resistive")
    sr = measure_slew_rate(d_sr.circuit, "vsrc_p", "vsrc_n", "outp", "outn",
                           step=1.0, duration=20e-6, dt=25e-9)
    print(f"\nslew rate: {sr.slew_v_per_s / 1e6:.1f} V/us, "
          f"rise time {sr.rise_time_s * 1e6:.2f} us, "
          f"overshoot {sr.overshoot_frac * 100:.1f} %")

    # 4. Quiescent current over supply (the control-loop claim).
    print("\nquiescent current vs supply (paper: 3.25 +/- 0.5 mA):")
    for supply in (2.6, 3.0, 4.0, 5.0):
        d = build_power_buffer(CMOS12, feedback="inverting", load="resistive",
                               vdd=supply / 2, vss=-supply / 2)
        op = dc_operating_point(d.circuit)
        print(f"  {supply:.1f} V: {abs(op.i('vdd_src')) * 1e3:.2f} mA")


if __name__ == "__main__":
    main()
