"""Re-derive the paper's device sizes from a noise spec (Sec. 3.2 as code).

Run:  python examples/design_your_own_pga.py

Walks the paper's methodology: Eq. 2 turns a system S/N requirement into
an input noise density; the Eqs. 3-5 budget splits it across mechanisms;
each split term dictates a device quantity.  Then *builds* the resulting
amplifier and verifies by simulation that it meets the spec it was sized
for — for the paper's 14-bit target and for a relaxed 12-bit variant.
"""

from repro.analysis.dynamic_range import VoiceBandBudget
from repro.circuits.micamp import build_mic_amp
from repro.pga.design import (
    derive_mic_amp_sizing,
    gain_control_for_sizing,
    sizing_to_mic_amp_sizes,
)
from repro.process import CMOS12
from repro.spice import dc_operating_point, noise_analysis
from repro.spice.analysis import log_freqs


def design_and_verify(label: str, budget: VoiceBandBudget) -> None:
    print(f"=== {label}: S/N {budget.snr_db} dB "
          f"({budget.effective_bits():.1f} bits) ===")
    sizing = derive_mic_amp_sizing(CMOS12, budget=budget)
    print(f"Eq. 2 target density:  {sizing.target_density * 1e9:.2f} nV/rtHz")
    print(f"input device gm:       {sizing.gm_input * 1e3:.2f} mS "
          f"(W/L = {sizing.w_over_l_input:.0f}, "
          f"area {sizing.gate_area_input_um2 / 1e3:.0f}k um^2)")
    print(f"load gm:               {sizing.gm_load * 1e3:.2f} mS")
    print(f"string R_a(40 dB):     {sizing.r_a_max:.0f} ohm "
          f"(R_total = {sizing.r_total / 1e3:.1f} kohm)")
    print(f"switch Ron:            {sizing.r_switch_on:.0f} ohm")
    print(f"predicted average:     {sizing.predicted_avg_nv:.2f} nV/rtHz")
    for note in sizing.notes:
        print(f"  note: {note}")

    design = build_mic_amp(
        CMOS12,
        gain_code=5,
        sizes=sizing_to_mic_amp_sizes(sizing),
        gain=gain_control_for_sizing(sizing),
    )
    op = dc_operating_point(design.circuit)
    nr = noise_analysis(op, log_freqs(100, 50e3, 8), design.outp, design.outn)
    measured = nr.average_input_density(300, 3400) * 1e9
    verdict = "MEETS" if measured <= budget.required_noise_density() * 1e9 * 1.1 \
        else "misses"
    print(f"simulated average:     {measured:.2f} nV/rtHz -> {verdict} spec")
    print()


def main() -> None:
    design_and_verify("paper's 14-bit CODEC front-end", VoiceBandBudget())
    design_and_verify(
        "relaxed 12-bit variant",
        VoiceBandBudget(snr_db=74.0),
    )
    print("Note how the 12-bit variant collapses the input devices by an")
    print("order of magnitude — the 5.1 nV/rtHz target is what makes the")
    print("paper's amplifier large and power-hungry (Sec. 3.1).")


if __name__ == "__main__":
    main()
