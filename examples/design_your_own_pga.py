"""Size a PGA from a noise spec — by hand (Sec. 3.2) and by search.

Run:  python examples/design_your_own_pga.py

Part 1 walks the paper's methodology forwards, once: Eq. 2 turns a
system S/N requirement into an input noise density, the Eqs. 3-5 budget
splits it across mechanisms, each split term dictates a device
quantity.  That is one point in a nine-dimensional design space.

Part 2 *searches* that space with ``repro.optimize``: the Table 1 rows
become constraints, quiescent current and silicon area become the cost,
and the optimizer — warm-started from the paper's own design point —
must return a sizing whose simulated characterization passes the
shipped spec.  It does, and it shaves current off the hand design while
it's at it; the noise/current/area Pareto front shows what the paper's
Sec. 3.1 trade actually looks like.
"""

from repro.analysis.dynamic_range import VoiceBandBudget
from repro.circuits.micamp import build_mic_amp
from repro.optimize import optimize_mic_amp
from repro.pga.design import (
    derive_mic_amp_sizing,
    gain_control_for_sizing,
    mic_amp_parts_from_params,
    sizing_to_mic_amp_sizes,
)
from repro.pga.specs import MIC_AMP_SPEC
from repro.process import CMOS12
from repro.spice import dc_operating_point, noise_analysis
from repro.spice.analysis import log_freqs


def simulated_average_nv(sizes, gain) -> float:
    """Build the amplifier and measure its voice-band average noise."""
    design = build_mic_amp(CMOS12, gain_code=5, sizes=sizes, gain=gain)
    op = dc_operating_point(design.circuit)
    nr = noise_analysis(op, log_freqs(100, 50e3, 8), design.outp, design.outn)
    return nr.average_input_density(300, 3400) * 1e9


def hand_walk(label: str, budget: VoiceBandBudget) -> None:
    print(f"=== {label}: S/N {budget.snr_db} dB "
          f"({budget.effective_bits():.1f} bits) ===")
    sizing = derive_mic_amp_sizing(CMOS12, budget=budget)
    print(f"Eq. 2 target density:  {sizing.target_density * 1e9:.2f} nV/rtHz")
    print(f"input device gm:       {sizing.gm_input * 1e3:.2f} mS "
          f"(W/L = {sizing.w_over_l_input:.0f}, "
          f"area {sizing.gate_area_input_um2 / 1e3:.0f}k um^2)")
    print(f"load gm:               {sizing.gm_load * 1e3:.2f} mS")
    print(f"string R_a(40 dB):     {sizing.r_a_max:.0f} ohm "
          f"(R_total = {sizing.r_total / 1e3:.1f} kohm)")
    print(f"switch Ron:            {sizing.r_switch_on:.0f} ohm")
    print(f"predicted average:     {sizing.predicted_avg_nv:.2f} nV/rtHz")
    for note in sizing.notes:
        print(f"  note: {note}")
    measured = simulated_average_nv(sizing_to_mic_amp_sizes(sizing),
                                    gain_control_for_sizing(sizing))
    verdict = "MEETS" if measured <= budget.required_noise_density() * 1e9 * 1.1 \
        else "misses"
    print(f"simulated average:     {measured:.2f} nV/rtHz -> {verdict} spec")
    print()


def searched_design() -> None:
    print("=== the same walk, as a search (repro.optimize) ===")
    result = optimize_mic_amp(budget=150, seed=2026)
    print(result.summary())
    print()

    report = MIC_AMP_SPEC.check(result.best.metrics)
    print(report.format())
    assert report.passed and result.best.feasible, \
        "the optimizer must recover a Table-1-compliant sizing"
    print()

    # Cross-check outside the optimizer's own loop: rebuild the winning
    # candidate from its parameter dict and re-simulate the noise.
    sizes, gain = mic_amp_parts_from_params(CMOS12, result.best_params)
    print(f"re-simulated voice-band average: "
          f"{simulated_average_nv(sizes, gain):.2f} nV/rtHz "
          f"(paper target 5.1, Table 1 row <= 6.63)")
    print()
    print(result.pareto.format(max_rows=8))
    print()
    print("The front is Sec. 3.1 in one table: every nV of noise margin")
    print("is bought with milliamps and square millimetres.  The paper's")
    print("hand design sits on it; the optimizer finds neighbours that")
    print("spend less current for the same spec row compliance.")


def main() -> None:
    hand_walk("paper's 14-bit CODEC front-end", VoiceBandBudget())
    hand_walk("relaxed 12-bit variant", VoiceBandBudget(snr_db=74.0))
    print("Note how the 12-bit variant collapses the input devices by an")
    print("order of magnitude — the 5.1 nV/rtHz target is what makes the")
    print("paper's amplifier large and power-hungry (Sec. 3.1).")
    print()
    searched_design()


if __name__ == "__main__":
    main()
