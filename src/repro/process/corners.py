"""Process corners.

The paper stresses that "process variations have a large influence on the
system behaviour if the design approach is chosen incorrectly"; every
block is therefore characterised over the classic five corners x the
-20..85 degC consumer temperature range.  Corners scale threshold and
transconductance factors the way skew lots of that era were specified:
roughly +/-0.1 V on VTH and +/-15 % on KP, independently per flavour.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator

from repro.process.technology import Technology

#: The paper's consumer qualification range: every block is characterised
#: at the extremes and the nominal bench temperature ("-20..85 degC").
CONSUMER_TEMPS_C: tuple[float, float, float] = (-20.0, 25.0, 85.0)


@dataclass(frozen=True)
class Corner:
    """One process corner: multiplicative KP skew, additive VTH skew."""

    name: str
    nmos_vth_shift: float = 0.0   # [V]
    pmos_vth_shift: float = 0.0   # [V]
    nmos_kp_scale: float = 1.0
    pmos_kp_scale: float = 1.0
    resistor_scale: float = 1.0   # poly sheet resistance spread
    bjt_is_scale: float = 1.0


CORNERS: dict[str, Corner] = {
    "tt": Corner("tt"),
    "ff": Corner(
        "ff",
        nmos_vth_shift=-0.10,
        pmos_vth_shift=-0.10,
        nmos_kp_scale=1.15,
        pmos_kp_scale=1.15,
        resistor_scale=0.85,
        bjt_is_scale=1.3,
    ),
    "ss": Corner(
        "ss",
        nmos_vth_shift=+0.10,
        pmos_vth_shift=+0.10,
        nmos_kp_scale=0.85,
        pmos_kp_scale=0.85,
        resistor_scale=1.15,
        bjt_is_scale=0.75,
    ),
    "fs": Corner(
        "fs",
        nmos_vth_shift=-0.08,
        pmos_vth_shift=+0.08,
        nmos_kp_scale=1.12,
        pmos_kp_scale=0.88,
    ),
    "sf": Corner(
        "sf",
        nmos_vth_shift=+0.08,
        pmos_vth_shift=-0.08,
        nmos_kp_scale=0.88,
        pmos_kp_scale=1.12,
    ),
}


def apply_corner(tech: Technology, corner: Corner | str) -> Technology:
    """Produce the skewed :class:`Technology` for a corner."""
    if isinstance(corner, str):
        try:
            corner = CORNERS[corner.lower()]
        except KeyError:
            raise KeyError(
                f"unknown corner {corner!r}; available: {sorted(CORNERS)}"
            ) from None

    nmos = replace(
        tech.nmos,
        vth0=tech.nmos.vth0 + corner.nmos_vth_shift,
        kp=tech.nmos.kp * corner.nmos_kp_scale,
    )
    pmos = replace(
        tech.pmos,
        vth0=tech.pmos.vth0 + corner.pmos_vth_shift,
        kp=tech.pmos.kp * corner.pmos_kp_scale,
    )
    vpnp = replace(tech.vpnp, is_sat=tech.vpnp.is_sat * corner.bjt_is_scale)
    poly = replace(tech.poly, sheet_ohm=tech.poly.sheet_ohm * corner.resistor_scale)
    return replace(tech, name=f"{tech.name}-{corner.name}", nmos=nmos, pmos=pmos,
                   vpnp=vpnp, poly=poly)


@dataclass(frozen=True)
class PvtPoint:
    """One point of a process/temperature qualification grid.

    ``tech`` is the corner-skewed technology (``None`` when no base
    technology was supplied to :func:`iter_pvt`), so consumers can build
    circuits directly without re-applying the corner.
    """

    corner: Corner
    temp_c: float
    tech: Technology | None = None


def iter_pvt(
    tech: Technology | None = None,
    corners: Iterable[Corner | str] | None = None,
    temps_c: Iterable[float] = CONSUMER_TEMPS_C,
) -> Iterator[PvtPoint]:
    """Iterate the corner x temperature qualification grid.

    Replaces the ad-hoc double loops previously scattered through the
    examples, benchmarks and :mod:`repro.pga.characterize`: the default
    grid is the paper's five corners x :data:`CONSUMER_TEMPS_C`, yielded
    corner-major (all temperatures of one corner before the next) so a
    consumer can reuse one skewed technology/circuit per corner.  Each
    corner's skewed technology is computed once and shared by its points.
    """
    corner_list: list[Corner] = []
    for c in (CORNERS.values() if corners is None else corners):
        corner_list.append(c if isinstance(c, Corner) else CORNERS[c.lower()])
    temp_list = [float(t) for t in temps_c]
    for corner in corner_list:
        skewed = apply_corner(tech, corner) if tech is not None else None
        for temp in temp_list:
            yield PvtPoint(corner=corner, temp_c=temp, tech=skewed)
