"""Reconstructed 1.2 um n-well CMOS technology (devices, corners, matching)."""

from repro.process.technology import CMOS12, Technology
from repro.process.corners import (
    CONSUMER_TEMPS_C,
    CORNERS,
    Corner,
    PvtPoint,
    apply_corner,
    iter_pvt,
)
from repro.process.mismatch import MismatchSampler, PelgromModel

__all__ = [
    "CMOS12",
    "CONSUMER_TEMPS_C",
    "CORNERS",
    "Corner",
    "MismatchSampler",
    "PelgromModel",
    "PvtPoint",
    "Technology",
    "apply_corner",
    "iter_pvt",
]
