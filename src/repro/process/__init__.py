"""Reconstructed 1.2 um n-well CMOS technology (devices, corners, matching)."""

from repro.process.technology import CMOS12, Technology
from repro.process.corners import Corner, CORNERS, apply_corner
from repro.process.mismatch import MismatchSampler, PelgromModel

__all__ = [
    "CMOS12",
    "CORNERS",
    "Corner",
    "MismatchSampler",
    "PelgromModel",
    "Technology",
    "apply_corner",
]
