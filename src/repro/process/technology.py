"""The 1.2 um double-metal double-poly n-well CMOS technology model.

The paper names the process ("standard double metal double poly 1.2 um
CMOS technology with a typical threshold voltage of 0.7 V") but its design
kit is long gone; the parameter set below is reconstructed from values
typical of that process generation (tox ~ 25 nm, KP_N ~ 90 uA/V^2,
KP_P ~ 30 uA/V^2, n-well vertical PNPs with beta ~ 40, 25 ohm/sq poly).
DESIGN.md documents this substitution; every experiment that depends on
*relative* behaviour (noise scaling, compliance voltages, tempco shape)
is insensitive to the exact values, and the headline noise experiment is
closed through the same sizing procedure the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.spice.devices.bjt import BjtModel
from repro.spice.devices.mosfet import MosModel


@dataclass(frozen=True)
class PolyResistorSpec:
    """High-resistance polysilicon resistor properties."""

    sheet_ohm: float = 25.0          # ohms per square
    tc1: float = 8.0e-4              # 1/K about 25 degC
    tc2: float = 1.0e-6              # 1/K^2
    matching_area_pct_um: float = 2.0  # sigma(dR/R) = this / sqrt(area [um^2]) [%]
    min_width_um: float = 2.0

    def squares(self, resistance: float) -> float:
        """Number of squares to draw ``resistance``."""
        return resistance / self.sheet_ohm

    def area_um2(self, resistance: float, width_um: float | None = None) -> float:
        """Drawn area of a resistor of the given value [um^2]."""
        w = width_um if width_um is not None else self.min_width_um
        return self.squares(resistance) * w * w


@dataclass(frozen=True)
class MatchingSpec:
    """Pelgrom-style matching coefficients."""

    avt_nmos_mv_um: float = 20.0     # sigma(dVT) = AVT/sqrt(WL) [mV, W/L in um]
    avt_pmos_mv_um: float = 22.0
    abeta_pct_um: float = 1.8        # sigma(dbeta/beta) = Abeta/sqrt(WL) [%]
    gradient_vt_uv_per_um: float = 30.0   # linear VT gradient across the die


@dataclass(frozen=True)
class Technology:
    """A complete process description used by every circuit builder."""

    name: str
    nmos: MosModel
    pmos: MosModel
    vpnp: BjtModel
    poly: PolyResistorSpec
    matching: MatchingSpec
    l_min: float = 1.2e-6            # minimum channel length [m]
    vdd_nominal: float = 1.3         # positive rail (split +/-1.3 V supply) [V]
    vss_nominal: float = -1.3        # negative rail [V]
    supply_min: float = 2.6          # total supply the paper guarantees [V]
    metal_pitch_um: float = 3.6      # for layout-area estimation
    cap_per_area: float = 0.45e-3    # poly-poly capacitor [F/m^2]

    @property
    def supply_total(self) -> float:
        return self.vdd_nominal - self.vss_nominal

    def mos(self, polarity: str) -> MosModel:
        """The MOS model for a polarity string ('nmos'/'pmos')."""
        if polarity == "nmos":
            return self.nmos
        if polarity == "pmos":
            return self.pmos
        raise ValueError(f"unknown polarity {polarity!r}")

    def with_supply(self, vdd: float, vss: float) -> "Technology":
        """Same process at a different supply pair (supply sweeps)."""
        return replace(self, vdd_nominal=vdd, vss_nominal=vss)

    def scaled(self, **mos_overrides: dict) -> "Technology":
        """Return a copy with per-flavour MOS parameter overrides.

        ``scaled(nmos={"vth0": 0.8}, pmos={"kp": 28e-6})`` — used by the
        corner machinery and by tests that probe sensitivities.
        """
        nmos = replace(self.nmos, **mos_overrides.get("nmos", {}))
        pmos = replace(self.pmos, **mos_overrides.get("pmos", {}))
        return replace(self, nmos=nmos, pmos=pmos)


#: NMOS of the reconstructed 1.2 um process.
NMOS_12 = MosModel(
    name="cmos12_nmos",
    polarity="nmos",
    vth0=0.70,
    kp=90e-6,
    gamma=0.65,
    phi=0.70,
    clm=0.06e-6,
    n_slope=1.35,
    cox=1.38e-3,
    kf=1.2e-25,       # N flicker noticeably worse than P: the paper's
    af=1.0,           # input pairs are PMOS for exactly this reason
    cgso=2.4e-10,
    cgdo=2.4e-10,
    cj=2.8e-4,
    ldiff=2.4e-6,
    tcv=1.9e-3,
    bex=-1.5,
)

#: PMOS of the reconstructed 1.2 um process.
PMOS_12 = MosModel(
    name="cmos12_pmos",
    polarity="pmos",
    vth0=0.70,
    kp=30e-6,
    gamma=0.55,
    phi=0.70,
    clm=0.08e-6,
    n_slope=1.40,
    cox=1.38e-3,
    kf=2.5e-26,
    af=1.0,
    cgso=2.4e-10,
    cgdo=2.4e-10,
    cj=3.4e-4,
    ldiff=2.4e-6,
    tcv=1.7e-3,
    bex=-1.4,
)

#: CMOS-compatible vertical PNP (collector = substrate).
VPNP_12 = BjtModel(
    name="cmos12_vpnp",
    polarity="pnp",
    is_sat=2.0e-17,
    beta_f=40.0,
    beta_r=2.0,
    vaf=55.0,
    xti=3.0,
    eg=1.11,
    kf=2.0e-14,
    af=1.0,
)

#: The project-wide default technology instance.
CMOS12 = Technology(
    name="cmos12",
    nmos=NMOS_12,
    pmos=PMOS_12,
    vpnp=VPNP_12,
    poly=PolyResistorSpec(),
    matching=MatchingSpec(),
)
