"""Device mismatch: the Pelgrom model plus deterministic gradients.

The paper's Table 1 gain accuracy (0.05 dB) and the offset argument in the
introduction ("the offset voltage of the microphone amplifier amplified by
40 dB maximum gain reduces the useful dynamic range of the A/D converter")
are statistical statements about matched devices.  This module turns the
technology's matching coefficients into per-device random samples that the
circuit builders consume, so Monte Carlo offset/gain runs are ordinary
circuit constructions with perturbed models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.process.technology import Technology


@dataclass(frozen=True)
class PelgromModel:
    """sigma(parameter mismatch) as a function of device geometry."""

    avt_mv_um: float
    abeta_pct_um: float

    def sigma_vt(self, w_m: float, l_m: float) -> float:
        """Standard deviation of a *single device's* VT deviation [V].

        Pelgrom coefficients describe the difference of a device *pair*;
        a single device deviates by 1/sqrt(2) of that.
        """
        area_um2 = (w_m * 1e6) * (l_m * 1e6)
        pair_sigma = self.avt_mv_um * 1e-3 / np.sqrt(area_um2)
        return pair_sigma / np.sqrt(2.0)

    def sigma_beta(self, w_m: float, l_m: float) -> float:
        """Standard deviation of a single device's relative beta error."""
        area_um2 = (w_m * 1e6) * (l_m * 1e6)
        pair_sigma = self.abeta_pct_um / 100.0 / np.sqrt(area_um2)
        return pair_sigma / np.sqrt(2.0)


class MismatchSampler:
    """Draws per-device mismatch for one Monte Carlo trial.

    Builders call :meth:`mos_deltas` / :meth:`resistor_delta` for each
    matched device they instantiate.  A sampler with ``enabled=False``
    returns zeros, so builders always take a sampler and nominal runs stay
    deterministic.
    """

    def __init__(self, tech: Technology, rng: np.random.Generator | None = None,
                 enabled: bool = True) -> None:
        self.tech = tech
        self.rng = rng or np.random.default_rng()
        self.enabled = enabled
        self._nmos = PelgromModel(
            tech.matching.avt_nmos_mv_um, tech.matching.abeta_pct_um
        )
        self._pmos = PelgromModel(
            tech.matching.avt_pmos_mv_um, tech.matching.abeta_pct_um
        )

    @classmethod
    def nominal(cls, tech: Technology) -> "MismatchSampler":
        """A sampler that always returns zero deviations."""
        return cls(tech, rng=np.random.default_rng(0), enabled=False)

    def mos_deltas(self, polarity: str, w: float, l: float) -> tuple[float, float]:
        """(delta_vth [V], relative delta_beta) for one device."""
        if not self.enabled:
            return 0.0, 0.0
        model = self._nmos if polarity == "nmos" else self._pmos
        dvt = float(self.rng.normal(0.0, model.sigma_vt(w, l)))
        dbeta = float(self.rng.normal(0.0, model.sigma_beta(w, l)))
        return dvt, dbeta

    def resistor_delta(self, resistance: float, width_um: float | None = None) -> float:
        """Relative resistance error for one poly resistor."""
        if not self.enabled:
            return 0.0
        area = self.tech.poly.area_um2(resistance, width_um)
        sigma = self.tech.poly.matching_area_pct_um / 100.0 / np.sqrt(max(area, 1.0))
        return float(self.rng.normal(0.0, sigma / np.sqrt(2.0)))

    def bjt_is_delta(self, area: float = 1.0) -> float:
        """Relative saturation-current error for one bipolar."""
        if not self.enabled:
            return 0.0
        # Emitter-area-limited matching, ~1 % for a unit device.
        return float(self.rng.normal(0.0, 0.01 / np.sqrt(area)))
