"""Batched small-signal solve layer.

Every small-signal analysis in this package reduces to solving

    (G + 2j*pi*f*C) x = b

at many frequencies, often for several right-hand sides at once (the AC
stimulus, PSRR/CMRR injections) plus the *transposed* system for adjoint
noise transimpedances.  The seed implementation ran a Python loop with
one dense LAPACK call per frequency; this module instead stacks the
frequency axis into a single batched factorization:

* :func:`solve_stacked` assembles ``A = G[None] + 2j*pi*f[:,None,None]*C``
  in chunks (bounding peak memory at ``chunk * n^2`` complex entries) and
  factorizes each chunk with one batched ``scipy.linalg.lu_factor`` call.
  The same LU then serves every forward RHS column *and* the adjoint
  solve via ``lu_solve(..., trans=1)`` — one factorization per frequency
  for AC gain, noise and PSRR together.
* :class:`SpectralSolver` pushes the sharing to its limit for dense
  sweeps: writing ``A = G (I + 2j*pi*f*M)`` with ``M = G^{-1} C``, one
  complex Schur decomposition ``M = Q T Q^H`` (unconditionally stable —
  ``Q`` unitary, unlike an eigenbasis of the typically *defective* MNA
  ``M``) turns every frequency point into an O(n^2) triangular
  substitution, vectorised over the whole frequency axis.  Solutions are
  residual-verified at spread sample points plus the sweep's
  worst-conditioned frequency, falling back to the batched LU path if
  the check fails.
* :func:`solve_looped` is the kept per-frequency reference path.  The
  equivalence tests assert the fast paths agree with it to ``rtol=1e-9``
  and the perf benchmark (``benchmarks/bench_perf_engine.py``) measures
  the speedup against it in the same run.
* :class:`SmallSignalContext` caches the linearized ``G``/``C`` and the
  Schur decomposition of one operating point so AC, noise and PSRR stop
  re-calling ``system.linearize(op.x)`` per metric.  It is created
  lazily through :meth:`repro.spice.dc.OperatingPoint.small_signal`.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla
from scipy.linalg import lapack as _lapack

from repro.obs.events import event
from repro.obs.profile import prof_count
from repro.spice.netlist import is_ground

#: Frequencies per factorization batch; 64 keeps the stacked matrices of
#: the paper's circuits (n < 100) under a few MB while amortising the
#: Python/LAPACK dispatch overhead.
DEFAULT_CHUNK = 64

#: Minimum sweep length before the Schur fast path pays for its one-time
#: decomposition; below this the batched LU path wins (PSRR probes solve
#: a single frequency).
SPECTRAL_MIN_FREQS = 16

#: Scaled-residual acceptance for the Schur path.  Measured residuals on
#: the paper circuits sit around 1e-14; 1e-10 leaves two decades of
#: margin while still rejecting any genuine breakdown long before it
#: could push the solution outside the 1e-9 equivalence band.
SPECTRAL_RESIDUAL_TOL = 1e-10

# Lazily probed: older scipy releases reject stacked lu_factor inputs.
_BATCHED_LU: bool | None = None


def _supports_batched_lu() -> bool:
    global _BATCHED_LU
    if _BATCHED_LU is None:
        try:
            a = np.eye(2, dtype=complex)[None].repeat(2, axis=0)
            lu, piv = sla.lu_factor(a)
            sla.lu_solve((lu, piv), np.ones((2, 2, 1), dtype=complex))
            _BATCHED_LU = True
        except Exception:
            _BATCHED_LU = False
    return _BATCHED_LU


def _as_rhs_matrix(rhs: np.ndarray, n: int) -> np.ndarray:
    """Normalise a RHS spec to a complex (n, k) column matrix."""
    b = np.asarray(rhs)
    if b.ndim == 1:
        b = b[:, None]
    if b.ndim != 2 or b.shape[0] != n:
        raise ValueError(f"rhs must be (n,) or (n, k) with n={n}, got {b.shape}")
    return b.astype(complex, copy=False)


def stacked_matrices(g: np.ndarray, c: np.ndarray, freqs: np.ndarray) -> np.ndarray:
    """``A_k = G + 2j*pi*f_k*C`` stacked along the first axis."""
    w = 2j * np.pi * np.asarray(freqs, dtype=float)
    return g[None, :, :] + w[:, None, None] * c[None, :, :]


def solve_stacked(
    g: np.ndarray,
    c: np.ndarray,
    freqs: np.ndarray,
    rhs: np.ndarray | None = None,
    adjoint_rhs: np.ndarray | None = None,
    chunk: int = DEFAULT_CHUNK,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Frequency-stacked solve of ``A x = rhs`` and ``A^T psi = adjoint_rhs``.

    One batched LU factorization per frequency chunk serves every forward
    RHS column and every adjoint column (plain transpose, not conjugate —
    the adjoint noise method needs ``A^T``, and the LAPACK ``trans=1``
    solve reuses the factors of ``A`` directly).

    Returns ``(fwd, adj)`` with shapes ``(n_freq, n, k_fwd)`` and
    ``(n_freq, n, k_adj)``; an entry is ``None`` when the corresponding
    RHS was not requested.
    """
    if rhs is None and adjoint_rhs is None:
        raise ValueError("need at least one of rhs / adjoint_rhs")
    if not _supports_batched_lu():
        return solve_looped(g, c, freqs, rhs, adjoint_rhs)

    freqs = np.asarray(freqs, dtype=float)
    n = g.shape[0]
    nf = freqs.size
    bf = _as_rhs_matrix(rhs, n) if rhs is not None else None
    ba = _as_rhs_matrix(adjoint_rhs, n) if adjoint_rhs is not None else None
    fwd = np.empty((nf, n, bf.shape[1]), dtype=complex) if bf is not None else None
    adj = np.empty((nf, n, ba.shape[1]), dtype=complex) if ba is not None else None

    step = max(1, int(chunk))
    for start in range(0, nf, step):
        sl = slice(start, min(start + step, nf))
        a = stacked_matrices(g, c, freqs[sl])
        m = a.shape[0]
        lu, piv = sla.lu_factor(a, check_finite=False)
        prof_count("linsolve.lu_factor", m)
        if bf is not None:
            stacked_b = np.broadcast_to(bf, (m, *bf.shape)).copy()
            fwd[sl] = sla.lu_solve((lu, piv), stacked_b, check_finite=False)
            prof_count("linsolve.lu_solve", m)
        if ba is not None:
            stacked_b = np.broadcast_to(ba, (m, *ba.shape)).copy()
            adj[sl] = sla.lu_solve((lu, piv), stacked_b, trans=1, check_finite=False)
            prof_count("linsolve.lu_solve", m)
    return fwd, adj


def solve_looped(
    g: np.ndarray,
    c: np.ndarray,
    freqs: np.ndarray,
    rhs: np.ndarray | None = None,
    adjoint_rhs: np.ndarray | None = None,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Per-frequency reference path (the seed implementation's loop).

    Kept so the equivalence tests and ``bench_perf_engine.py`` can pin
    the batched path against it; same contract as :func:`solve_stacked`.
    """
    if rhs is None and adjoint_rhs is None:
        raise ValueError("need at least one of rhs / adjoint_rhs")
    freqs = np.asarray(freqs, dtype=float)
    n = g.shape[0]
    bf = _as_rhs_matrix(rhs, n) if rhs is not None else None
    ba = _as_rhs_matrix(adjoint_rhs, n) if adjoint_rhs is not None else None
    fwd = np.empty((freqs.size, n, bf.shape[1]), dtype=complex) if bf is not None else None
    adj = np.empty((freqs.size, n, ba.shape[1]), dtype=complex) if ba is not None else None

    for k, f in enumerate(freqs):
        a = g + 2j * np.pi * f * c
        lu, piv = sla.lu_factor(a)
        prof_count("linsolve.lu_factor")
        if bf is not None:
            fwd[k] = sla.lu_solve((lu, piv), bf)
        if ba is not None:
            adj[k] = sla.lu_solve((lu, piv), ba, trans=1)
    return fwd, adj


class SpectralSolver:
    """Shared-factorization solver for dense frequency sweeps.

    ``(G + 2j*pi*f*C) x = b`` is rewritten as ``G (I + jw*M) x = b`` with
    ``M = G^{-1} C``; one complex Schur decomposition ``M = Q T Q^H``
    then reduces every frequency to a triangular substitution in the
    Schur basis, vectorised across the whole sweep.  The adjoint system
    ``A^T psi = e`` reuses the *same* decomposition (``I + jw*T^T`` is
    lower triangular), so AC gain, noise transimpedances and any number
    of injections all ride on a single factorization.

    Accuracy: Schur with a unitary ``Q`` is backward stable, and
    :meth:`solve` checks scaled residuals at spread samples plus the
    sweep's worst-conditioned frequency, returning ``None`` so the
    caller can fall back to the batched LU path on any doubt.
    """

    def __init__(self, g: np.ndarray, c: np.ndarray) -> None:
        self.g = g
        self.c = c
        self.n = g.shape[0]
        self.lu_g = sla.lu_factor(g)
        m = sla.lu_solve(self.lu_g, c)
        if not np.all(np.isfinite(m)):
            raise np.linalg.LinAlgError("G^-1 C is not finite")
        self.t, self.q = sla.schur(m, output="complex")
        self.t_diag = self.t.diagonal().copy()
        self.q_conj = self.q.conj()
        # Inf-norms for the scaled residual check (row sums for A,
        # column sums for the transposed adjoint system).
        self._g_norm = float(np.abs(g).sum(axis=1).max())
        self._c_norm = float(np.abs(c).sum(axis=1).max())
        self._gt_norm = float(np.abs(g).sum(axis=0).max())
        self._ct_norm = float(np.abs(c).sum(axis=0).max())

    def _substitute(self, r: np.ndarray, jw: np.ndarray,
                    inv_diag: np.ndarray, lower: bool) -> np.ndarray:
        """Solve ``(I + jw*T) z = r`` (or the lower-triangular transpose)
        for every frequency at once; ``r`` is (n, k), result (nf, k, n)."""
        n, nf, k = self.n, jw.size, r.shape[1]
        t = self.t
        z = np.empty((nf, k, n), dtype=complex)
        jw_col = jw[:, None]
        order = range(n) if lower else range(n - 1, -1, -1)
        for i in order:
            if lower:
                coupled = z[:, :, :i] @ t[:i, i] if i else 0.0
            else:
                coupled = z[:, :, i + 1:] @ t[i, i + 1:] if i < n - 1 else 0.0
            z[:, :, i] = (r[i][None, :] - jw_col * coupled) * inv_diag[:, i][:, None]
        return z

    def _scaled_residual(self, freqs: np.ndarray, jw: np.ndarray,
                         x: np.ndarray, b: np.ndarray, adjoint: bool,
                         worst_idx: int) -> float:
        """Max scaled residual over a spread of sample frequencies plus
        the worst-conditioned point of the sweep (where ``1 + jw*t_ii``
        comes closest to zero — the one place the triangular substitution
        could lose accuracy between evenly spaced samples)."""
        nf = freqs.size
        samples = np.unique(np.append(
            np.linspace(0, nf - 1, min(nf, 8)).astype(int), worst_idx
        ))
        a_base = (self.g.T if adjoint else self.g).astype(complex)
        c_base = self.c.T if adjoint else self.c
        g_norm = self._gt_norm if adjoint else self._g_norm
        c_norm = self._ct_norm if adjoint else self._c_norm
        b_norm = np.abs(b).max(axis=0) + 1e-300          # per RHS column
        worst = 0.0
        for s in samples:
            a = a_base + jw[s] * c_base
            resid = np.abs(a @ x[s] - b).max(axis=0)
            a_norm = g_norm + np.abs(jw[s]) * c_norm
            x_norm = np.abs(x[s]).max(axis=0)
            worst = max(worst, float(np.max(resid / (a_norm * x_norm + b_norm))))
        return worst

    #: The scaled residual that last rejected this solver's fast path
    #: (``None`` if never rejected, or rejected on a non-finite result).
    last_rejected_residual: float | None = None

    def solve(
        self,
        freqs: np.ndarray,
        rhs: np.ndarray | None = None,
        adjoint_rhs: np.ndarray | None = None,
    ) -> tuple[np.ndarray | None, np.ndarray | None] | None:
        """Same contract as :func:`solve_stacked`; ``None`` means the
        residual check rejected the fast path (caller should fall back)."""
        if rhs is None and adjoint_rhs is None:
            raise ValueError("need at least one of rhs / adjoint_rhs")
        freqs = np.asarray(freqs, dtype=float)
        jw = 2j * np.pi * freqs
        nf, n = freqs.size, self.n
        inv_diag = 1.0 / (1.0 + jw[:, None] * self.t_diag[None, :])  # (nf, n)
        worst_idx = int(np.argmax(np.abs(inv_diag).max(axis=1)))

        fwd = adj = None
        if rhs is not None:
            bf = _as_rhs_matrix(rhs, n)
            # x = Q (I + jw T)^-1 Q^H G^-1 b
            r = self.q.conj().T @ sla.lu_solve(self.lu_g, bf)
            z = self._substitute(r, jw, inv_diag, lower=False)
            fwd = (z @ self.q.T).transpose(0, 2, 1)
            if not np.all(np.isfinite(fwd)):
                self.last_rejected_residual = None
                return None
            res = self._scaled_residual(
                freqs, jw, fwd, bf, adjoint=False, worst_idx=worst_idx)
            if res > SPECTRAL_RESIDUAL_TOL:
                self.last_rejected_residual = res
                return None
        if adjoint_rhs is not None:
            ba = _as_rhs_matrix(adjoint_rhs, n)
            # psi = G^-T conj(Q) (I + jw T^T)^-1 Q^T e
            u = self.q.T @ ba
            y = self._substitute(u, jw, inv_diag, lower=True)
            p0 = (y @ self.q_conj.T).reshape(nf * ba.shape[1], n)
            adj = sla.lu_solve(self.lu_g, p0.T, trans=1).T.reshape(nf, ba.shape[1], n)
            adj = adj.transpose(0, 2, 1)
            if not np.all(np.isfinite(adj)):
                self.last_rejected_residual = None
                return None
            res = self._scaled_residual(
                freqs, jw, adj, ba, adjoint=True, worst_idx=worst_idx)
            if res > SPECTRAL_RESIDUAL_TOL:
                self.last_rejected_residual = res
                return None
        return fwd, adj


class SmallSignalContext:
    """Linearization of one operating point, shared across analyses.

    ``G`` and ``C`` depend only on the operating point, so they are
    computed once here; the AC excitation vector is re-read per solve
    through the system's cached (and mutation-invalidated) ``rhs_ac``,
    which keeps the PSRR-style "tweak a source, re-run" pattern correct.
    ``cache`` is a scratch dict for per-analysis precomputations (the
    noise layer stores its source pack there).
    """

    def __init__(self, op) -> None:
        self.op = op
        self.system = op.system
        self.n = self.system.size
        n = self.n
        self.g = np.ascontiguousarray(self.system.linearize(op.x)[:n, :n])
        self.c = np.ascontiguousarray(self.system.c_static[:n, :n])
        self.cache: dict = {}
        self._spectral: SpectralSolver | None = None
        self._spectral_dead = False
        self._spectral_dead_reason: str | None = None
        self._sparse_gc: tuple | None = None
        self._sparse_dead = False
        self._sparse_dead_reason: str | None = None

    def latch_reasons(self) -> dict:
        """Why fast paths latched off for this context, if they did —
        ``{"sparse": reason, "spectral": reason}``, empty when healthy.
        Surfaced through :meth:`repro.spice.dc.OperatingPoint.health`
        into the campaign's solver-health sidecar."""
        reasons = {}
        if self._sparse_dead and self._sparse_dead_reason:
            reasons["sparse"] = self._sparse_dead_reason
        if self._spectral_dead and self._spectral_dead_reason:
            reasons["spectral"] = self._spectral_dead_reason
        return reasons

    def _latch_sparse_dead(self, reason: str, **fields) -> None:
        """Kill the sparse path for this context, keeping the cause."""
        self._sparse_dead = True
        self._sparse_dead_reason = reason
        event("linsolve.sparse_dead_latch", "warn",
              circuit=self.system.circuit.name, reason=reason, **fields)

    def rhs_ac(self) -> np.ndarray:
        """Current AC excitation (reduced, no ground slot); treat as read-only."""
        return self.system.rhs_ac()[: self.n]

    def spectral(self) -> SpectralSolver | None:
        """The cached shared-factorization solver (None if unusable here)."""
        if self._spectral is None and not self._spectral_dead:
            try:
                self._spectral = SpectralSolver(self.g, self.c)
            except (np.linalg.LinAlgError, ValueError) as exc:
                self._spectral_dead = True
                self._spectral_dead_reason = (
                    f"eigendecomposition failed: {type(exc).__name__}: {exc}")
                event("linsolve.spectral_dead_latch", "warn",
                      circuit=self.system.circuit.name,
                      reason=self._spectral_dead_reason)
        return self._spectral

    def solve(
        self,
        freqs: np.ndarray,
        rhs: np.ndarray | None = None,
        adjoint_rhs: np.ndarray | None = None,
        chunk: int = DEFAULT_CHUNK,
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Batched forward/adjoint solve at this operating point.

        Systems above the sparse node threshold go through a per-
        frequency SuperLU factorization first (one CSC factorization
        serving the forward and the transposed adjoint solves).  Below
        it, dense sweeps go through the cached Schur fast path and short
        probes use the batched LU path; any rejected fast path falls
        back down this ladder.  All paths agree with the looped
        reference to well under 1e-9.
        """
        freqs = np.asarray(freqs, dtype=float)
        if getattr(self.system, "prefer_sparse", False):
            result = self._solve_sparse(freqs, rhs, adjoint_rhs)
            if result is not None:
                prof_count("linsolve.path.sparse")
                return result
        if freqs.size >= SPECTRAL_MIN_FREQS:
            solver = self.spectral()
            if solver is not None:
                result = solver.solve(freqs, rhs, adjoint_rhs)
                if result is not None:
                    prof_count("linsolve.path.spectral")
                    return result
                # Rejection is per sweep (e.g. one near-degenerate grid);
                # other grids on this context may still use the fast path.
                prof_count("linsolve.spectral_rejected")
                event("linsolve.spectral_rejected", "warn",
                      circuit=self.system.circuit.name,
                      n_freqs=int(freqs.size),
                      resid=solver.last_rejected_residual)
        prof_count("linsolve.path.stacked")
        return solve_stacked(self.g, self.c, freqs, rhs, adjoint_rhs, chunk)

    def _solve_sparse(
        self,
        freqs: np.ndarray,
        rhs: np.ndarray | None,
        adjoint_rhs: np.ndarray | None,
    ) -> tuple[np.ndarray | None, np.ndarray | None] | None:
        """Per-frequency ``splu`` solve for systems above the sparse
        threshold.

        ``G``/``C`` are cached once in CSC form; each frequency's
        ``A = G + 2j*pi*f*C`` is factorized with SuperLU and the factors
        serve every forward column and the transposed adjoint columns
        (``trans="T"``).  Every solution passes the same scaled-residual
        acceptance gate as :class:`SpectralSolver`; any failure marks
        the path dead for this context and returns ``None`` so the
        caller falls back to the dense ladder.
        """
        if self._sparse_dead:
            return None
        try:
            from scipy import sparse
            from scipy.sparse.linalg import splu
        except ImportError:                 # pragma: no cover - scipy baked in
            self._latch_sparse_dead("scipy.sparse unavailable")
            return None
        if self._sparse_gc is None:
            self._sparse_gc = (sparse.csc_matrix(self.g), sparse.csc_matrix(self.c))
        sg, sc = self._sparse_gc
        n = self.n
        bf = _as_rhs_matrix(rhs, n) if rhs is not None else None
        ba = _as_rhs_matrix(adjoint_rhs, n) if adjoint_rhs is not None else None
        fwd = np.empty((freqs.size, n, bf.shape[1]), dtype=complex) if bf is not None else None
        adj = np.empty((freqs.size, n, ba.shape[1]), dtype=complex) if ba is not None else None

        for k, f in enumerate(freqs):
            a = (sg + (2j * np.pi * float(f)) * sc).tocsc()
            try:
                with np.errstate(all="ignore"):
                    lu = splu(a)
                prof_count("linsolve.sparse_splu")
            except (RuntimeError, ValueError) as exc:
                self._latch_sparse_dead(
                    f"splu factorization failed: {type(exc).__name__}",
                    freq=float(f))
                return None
            a_norm = float(np.abs(a).sum(axis=1).max())
            at_norm = float(np.abs(a).sum(axis=0).max())
            if bf is not None:
                xk = lu.solve(bf)
                res = self._sparse_residual(a, xk, bf, a_norm)
                if res > SPECTRAL_RESIDUAL_TOL:
                    self._latch_sparse_dead(
                        "forward solve rejected on scaled residual",
                        freq=float(f), resid=res)
                    return None
                fwd[k] = xk
            if ba is not None:
                pk = lu.solve(ba, trans="T")
                res = self._sparse_residual(a.T, pk, ba, at_norm)
                if res > SPECTRAL_RESIDUAL_TOL:
                    self._latch_sparse_dead(
                        "adjoint solve rejected on scaled residual",
                        freq=float(f), resid=res)
                    return None
                adj[k] = pk
        return fwd, adj

    @staticmethod
    def _sparse_residual(a, x: np.ndarray, b: np.ndarray,
                         a_norm: float) -> float:
        """Worst scaled residual for one sparse solve (per column);
        ``inf`` for a non-finite solution.  The caller compares against
        :data:`SPECTRAL_RESIDUAL_TOL` and keeps the rejecting value for
        the dead-latch event."""
        if not np.all(np.isfinite(x)):
            return float("inf")
        resid = np.abs(a @ x - b).max(axis=0)
        x_norm = np.abs(x).max(axis=0)
        b_norm = np.abs(b).max(axis=0) + 1e-300
        return float(np.max(resid / (a_norm * x_norm + b_norm)))

    def ac_solutions(self, freqs: np.ndarray) -> np.ndarray:
        """Extended AC solutions (n_freq, size+1) for the current stimulus."""
        freqs = np.asarray(freqs, dtype=float)
        fwd, _ = self.solve(freqs, rhs=self.rhs_ac())
        out = np.zeros((freqs.size, self.system.size + 1), dtype=complex)
        out[:, : self.n] = fwd[:, :, 0]
        return out

    def output_selector(self, out_p: str, out_n: str | None = None) -> np.ndarray:
        """Unit selector ``e_out`` for a (differential) output, reduced size."""
        e_out = np.zeros(self.n)
        if not is_ground(out_p):
            e_out[self.system.node(out_p)] = 1.0
        if out_n is not None and not is_ground(out_n):
            e_out[self.system.node(out_n)] -= 1.0
        return e_out

    def probe(self, solutions: np.ndarray, out_p: str, out_n: str | None = None) -> np.ndarray:
        """Read a (differential) voltage out of reduced solution columns.

        ``solutions`` has node values along axis 1 (e.g. the ``fwd`` array
        of :meth:`solve`); ground probes read as zero.
        """
        zero = np.zeros(solutions.shape[0:1] + solutions.shape[2:], dtype=solutions.dtype)
        vp = zero if is_ground(out_p) else solutions[:, self.system.node(out_p)]
        if out_n is None or is_ground(out_n):
            return vp
        return vp - solutions[:, self.system.node(out_n)]

    def transfer(self, freqs: np.ndarray, out_p: str, out_n: str | None = None) -> np.ndarray:
        """Complex transfer from the configured AC stimulus to an output."""
        freqs = np.asarray(freqs, dtype=float)
        fwd, _ = self.solve(freqs, rhs=self.rhs_ac())
        return self.probe(fwd[:, :, 0], out_p, out_n)


class BatchedSmallSignalContext:
    """Single-frequency solves batched over a leading *unit* axis.

    Where :class:`SmallSignalContext` batches one circuit over many
    frequencies, this context batches many same-topology circuits (a
    campaign group, see :mod:`repro.spice.batch`) at the probe
    frequencies the campaign measurements use (one or two RHS columns at
    1 kHz).  The factorization of each ``A_u = G_u + 2j*pi*f*C_u`` is
    cached per frequency and shared by every measurement of the group —
    the unit-axis analogue of the serial path's per-unit LU reuse.

    Bitwise contract: the matrix assembly replays
    :func:`stacked_matrices`' scalar ops per unit and the per-unit
    ``getrf``/``getrs`` calls are the same LAPACK routines behind the
    serial path's ``lu_factor``/``lu_solve``, so a batched column
    equals the serial solution byte for byte.  :meth:`solve_checked` additionally verifies
    a scaled residual per unit (mirroring :class:`SpectralSolver`'s
    acceptance test); callers loop rejected units back through the
    serial per-unit path.
    """

    def __init__(self, g: np.ndarray, c: np.ndarray) -> None:
        if g.ndim != 3 or g.shape != c.shape or g.shape[1] != g.shape[2]:
            raise ValueError(f"need matching (N, n, n) tensors, got {g.shape}/{c.shape}")
        self.g = g
        self.c = c
        self.n_units = g.shape[0]
        self.n = g.shape[1]
        self._factors: dict[float, tuple] = {}
        self._a_norms: dict[float, np.ndarray] = {}

    def _factor(self, freq: float):
        ent = self._factors.get(freq)
        if ent is None:
            # Same scalar sequence as stacked_matrices: w = 2j*pi*f,
            # then A = G + w*C elementwise.
            w = 2j * np.pi * float(freq)
            a = self.g + w * self.c
            # Per-unit ``getrf``: the exact LAPACK routine behind
            # scipy's lu_factor (bitwise-identical LU and pivots),
            # called directly because the scipy wrapper's per-matrix
            # Python overhead dominates stacked factorization cost.
            # A singular unit (info > 0) is kept — its getrs solution
            # goes non-finite and solve_checked rejects it, same as
            # the scipy path.
            factors = []
            for u in range(self.n_units):
                lu, piv, info = _lapack.zgetrf(a[u])
                if info < 0:
                    raise ValueError(
                        f"illegal value in argument {-info} of zgetrf (unit {u})"
                    )
                factors.append((lu, piv))
            prof_count("batch.zgetrf", self.n_units)
            ent = (a, factors)
            self._factors[freq] = ent
        return ent

    def solve(self, freq: float, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A_u x_u = rhs_u`` for every unit; ``rhs`` is (N, n, k)."""
        rhs = np.asarray(rhs, dtype=complex)
        if rhs.shape[:2] != (self.n_units, self.n) or rhs.ndim != 3:
            raise ValueError(
                f"rhs must be ({self.n_units}, {self.n}, k), got {rhs.shape}"
            )
        _, factors = self._factor(float(freq))
        out = np.empty_like(rhs)
        for u, (lu, piv) in enumerate(factors):
            out[u], _ = _lapack.zgetrs(lu, piv, rhs[u])
        prof_count("batch.zgetrs", self.n_units)
        return out

    def solve_checked(self, freq: float, rhs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`solve` plus a per-unit scaled-residual acceptance mask.

        Returns ``(solutions, ok)``; ``ok[u]`` is False when unit *u*'s
        solution is non-finite or its scaled residual exceeds
        ``SPECTRAL_RESIDUAL_TOL`` — the caller should recompute that
        unit through the serial per-unit path (the batched analogue of
        ``SpectralSolver.solve`` returning ``None``).
        """
        rhs = np.asarray(rhs, dtype=complex)
        x = self.solve(freq, rhs)
        a, _ = self._factor(float(freq))
        resid = np.abs(a @ x - rhs).max(axis=1)               # (N, k)
        a_norm = self._a_norms.get(float(freq))
        if a_norm is None:
            a_norm = np.abs(a).sum(axis=2).max(axis=1)        # (N,)
            self._a_norms[float(freq)] = a_norm
        x_norm = np.abs(x).max(axis=1)                        # (N, k)
        b_norm = np.abs(rhs).max(axis=1) + 1e-300             # (N, k)
        with np.errstate(invalid="ignore"):
            scaled = (resid / (a_norm[:, None] * x_norm + b_norm)).max(axis=1)
        ok = np.isfinite(scaled) & (scaled <= SPECTRAL_RESIDUAL_TOL)
        return x, ok
