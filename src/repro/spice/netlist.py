"""Circuit container: named elements, named nodes, compile to MNA.

A :class:`Circuit` is a flat bag of elements with string node names
("vdd", "outp", ...).  Hierarchy is handled by builder functions that
prefix names (see :mod:`repro.circuits`), which keeps every node of the
compiled design addressable from tests and analyses — the same property
that makes a flat extracted netlist convenient on a bench.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.spice.elements import (
    Bjt,
    Capacitor,
    Cccs,
    Ccvs,
    CurrentSource,
    Diode,
    Element,
    Inductor,
    Mosfet,
    Resistor,
    Switch,
    Vccs,
    Vcvs,
    VoltageSource,
    Waveshape,
)
from repro.spice.devices.bjt import BjtModel
from repro.spice.devices.diode import DiodeModel
from repro.spice.devices.mosfet import MosModel

#: Canonical ground node name.  "0" is accepted as an alias.
GROUND = "gnd"
_GROUND_ALIASES = frozenset({GROUND, "0"})


def is_ground(node: str) -> bool:
    """True when ``node`` names the ground net."""
    return node in _GROUND_ALIASES


class Circuit:
    """A named collection of circuit elements plus solver hints.

    ``nodesets`` maps node names to initial-guess voltages for the DC
    solver; builders for known topologies populate it so Newton starts
    near the intended operating point (the role .NODESET plays in SPICE).
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._elements: dict[str, Element] = {}
        self.nodesets: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Element management
    # ------------------------------------------------------------------
    def add(self, element: Element) -> Element:
        """Add an element; names must be unique within the circuit."""
        if not element.name:
            raise ValueError("element must have a non-empty name")
        if element.name in self._elements:
            raise ValueError(f"duplicate element name {element.name!r} in {self.name!r}")
        for node in element.nodes:
            if not node:
                raise ValueError(f"element {element.name!r} has an empty node name")
        self._elements[element.name] = element
        return element

    def element(self, name: str) -> Element:
        """Look up an element by name."""
        try:
            return self._elements[name]
        except KeyError:
            raise KeyError(f"no element named {name!r} in circuit {self.name!r}") from None

    def remove(self, name: str) -> None:
        """Remove an element by name."""
        if name not in self._elements:
            raise KeyError(f"no element named {name!r} in circuit {self.name!r}")
        del self._elements[name]

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements.values())

    def __len__(self) -> int:
        return len(self._elements)

    @property
    def elements(self) -> tuple[Element, ...]:
        return tuple(self._elements.values())

    def elements_of_type(self, kind: type) -> list[Element]:
        """All elements that are instances of ``kind``."""
        return [el for el in self._elements.values() if isinstance(el, kind)]

    def nodes(self) -> list[str]:
        """Sorted list of non-ground node names used by any element."""
        seen: set[str] = set()
        for el in self._elements.values():
            for node in el.nodes:
                if not is_ground(node):
                    seen.add(node)
        return sorted(seen)

    def nodeset(self, node: str, volts: float) -> None:
        """Record an initial-guess voltage for the DC solver."""
        self.nodesets[node] = volts

    # ------------------------------------------------------------------
    # Convenience constructors (keep circuit builders readable)
    # ------------------------------------------------------------------
    def resistor(
        self,
        name: str,
        n1: str,
        n2: str,
        value: float,
        noisy: bool = True,
        tc1: float = 0.0,
        tc2: float = 0.0,
    ) -> Resistor:
        return self.add(Resistor(name, n1=n1, n2=n2, value=value, noisy=noisy, tc1=tc1, tc2=tc2))

    def capacitor(self, name: str, n1: str, n2: str, value: float) -> Capacitor:
        return self.add(Capacitor(name, n1=n1, n2=n2, value=value))

    def inductor(self, name: str, n1: str, n2: str, value: float) -> Inductor:
        return self.add(Inductor(name, n1=n1, n2=n2, value=value))

    def vsource(
        self,
        name: str,
        np: str,
        nn: str,
        dc: float = 0.0,
        ac: float = 0.0,
        ac_phase: float = 0.0,
        wave: Waveshape | None = None,
    ) -> VoltageSource:
        return self.add(
            VoltageSource(name, np=np, nn=nn, dc=dc, ac=ac, ac_phase=ac_phase, wave=wave)
        )

    def isource(
        self,
        name: str,
        np: str,
        nn: str,
        dc: float = 0.0,
        ac: float = 0.0,
        ac_phase: float = 0.0,
        wave: Waveshape | None = None,
    ) -> CurrentSource:
        return self.add(
            CurrentSource(name, np=np, nn=nn, dc=dc, ac=ac, ac_phase=ac_phase, wave=wave)
        )

    def vcvs(self, name: str, np: str, nn: str, ncp: str, ncn: str, gain: float) -> Vcvs:
        return self.add(Vcvs(name, np=np, nn=nn, ncp=ncp, ncn=ncn, gain=gain))

    def vccs(self, name: str, np: str, nn: str, ncp: str, ncn: str, gm: float) -> Vccs:
        return self.add(Vccs(name, np=np, nn=nn, ncp=ncp, ncn=ncn, gm=gm))

    def cccs(self, name: str, np: str, nn: str, control: str, gain: float) -> Cccs:
        return self.add(Cccs(name, np=np, nn=nn, control=control, gain=gain))

    def ccvs(self, name: str, np: str, nn: str, control: str, transresistance: float) -> Ccvs:
        return self.add(Ccvs(name, np=np, nn=nn, control=control, transresistance=transresistance))

    def switch(
        self,
        name: str,
        n1: str,
        n2: str,
        closed: bool,
        ron: float = 100.0,
        roff: float = 1e12,
        noisy: bool = True,
    ) -> Switch:
        return self.add(Switch(name, n1=n1, n2=n2, closed=closed, ron=ron, roff=roff, noisy=noisy))

    def mosfet(
        self,
        name: str,
        d: str,
        g: str,
        s: str,
        b: str,
        model: MosModel,
        w: float,
        l: float,
        m: int = 1,
    ) -> Mosfet:
        return self.add(Mosfet(name, d=d, g=g, s=s, b=b, model=model, w=w, l=l, m=m))

    def bjt(
        self, name: str, c: str, b: str, e: str, model: BjtModel, area: float = 1.0
    ) -> Bjt:
        return self.add(Bjt(name, c=c, b=b, e=e, model=model, area=area))

    def diode(self, name: str, np: str, nn: str, model: DiodeModel, area: float = 1.0) -> Diode:
        return self.add(Diode(name, np=np, nn=nn, model=model, area=area))

    # ------------------------------------------------------------------
    # Inspection helpers
    # ------------------------------------------------------------------
    def mosfets(self) -> list[Mosfet]:
        return self.elements_of_type(Mosfet)

    def bjts(self) -> list[Bjt]:
        return self.elements_of_type(Bjt)

    def resistors(self) -> list[Resistor]:
        return self.elements_of_type(Resistor)

    def summary(self) -> str:
        """One-line inventory, useful in logs and examples."""
        counts: dict[str, int] = {}
        for el in self._elements.values():
            counts[type(el).__name__] = counts.get(type(el).__name__, 0) + 1
        parts = ", ".join(f"{n} {k}" for k, n in sorted(counts.items()))
        return f"{self.name}: {len(self.nodes())} nodes, {parts}"

    def compile(self, temp_c: float = 25.0):
        """Compile to an MNA system at the given temperature."""
        from repro.spice.mna import MnaSystem

        return MnaSystem(self, temp_c=temp_c)


class SubCircuit:
    """Namespace helper for building hierarchical designs on a flat circuit.

    ``sub = SubCircuit(circuit, "mic")`` exposes the same convenience
    constructors as :class:`Circuit` but prefixes element names with
    ``mic.`` and maps *local* node names through an explicit port map::

        sub = SubCircuit(ckt, "bias", ports={"vdd": "vdd", "out": "nbias"})
        sub.resistor("r1", "out", "local_x", 10e3)   # element "bias.r1"
                                                     # nodes "nbias", "bias.local_x"

    Ground and port names pass through; everything else is prefixed, so
    internal nets of two instances never collide.
    """

    def __init__(self, circuit: Circuit, prefix: str, ports: dict[str, str] | None = None):
        self.circuit = circuit
        self.prefix = prefix
        self.ports = dict(ports or {})

    def node(self, local: str) -> str:
        """Map a local node name to the flat circuit's node name."""
        if is_ground(local):
            return GROUND
        if local in self.ports:
            return self.ports[local]
        return f"{self.prefix}.{local}"

    def _name(self, local: str) -> str:
        return f"{self.prefix}.{local}"

    def nodeset(self, local: str, volts: float) -> None:
        self.circuit.nodeset(self.node(local), volts)

    def __getattr__(self, attr: str) -> Callable:
        """Forward convenience constructors, rewriting names and nodes."""
        factory = getattr(self.circuit, attr, None)
        if factory is None or attr.startswith("_"):
            raise AttributeError(attr)

        node_args = {
            "resistor": ("n1", "n2"),
            "capacitor": ("n1", "n2"),
            "inductor": ("n1", "n2"),
            "vsource": ("np", "nn"),
            "isource": ("np", "nn"),
            "vcvs": ("np", "nn", "ncp", "ncn"),
            "vccs": ("np", "nn", "ncp", "ncn"),
            "cccs": ("np", "nn"),
            "ccvs": ("np", "nn"),
            "switch": ("n1", "n2"),
            "mosfet": ("d", "g", "s", "b"),
            "bjt": ("c", "b", "e"),
            "diode": ("np", "nn"),
        }
        if attr not in node_args:
            raise AttributeError(attr)
        n_nodes = len(node_args[attr])

        def wrapper(name: str, *args, **kwargs):
            mapped = [self.node(a) for a in args[:n_nodes]]
            rest = list(args[n_nodes:])
            for key in node_args[attr]:
                if key in kwargs:
                    kwargs[key] = self.node(kwargs[key])
            if attr in ("cccs", "ccvs"):
                # control references an element name, prefix it too
                if "control" in kwargs:
                    kwargs["control"] = self._name(kwargs["control"])
                elif rest:
                    rest[0] = self._name(rest[0])
            return factory(self._name(name), *mapped, *rest, **kwargs)

        return wrapper
