"""A small, self-contained analog circuit simulator (MNA).

This package is the substrate that replaces SPICE for the reproduction:
modified nodal analysis with a Newton DC solver (gmin and source stepping),
small-signal AC analysis, trapezoidal transient analysis and adjoint-method
noise analysis with per-device contribution reporting.

The public surface is re-exported here so circuit code reads naturally::

    from repro.spice import Circuit, Mosfet, Resistor, Simulator
"""

from repro.spice.elements import (
    Capacitor,
    Cccs,
    Ccvs,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    Pulse,
    Pwl,
    Resistor,
    Sine,
    Switch,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.spice.netlist import Circuit, GROUND
from repro.spice.devices.mosfet import MosModel
from repro.spice.devices.bjt import BjtModel
from repro.spice.devices.diode import DiodeModel
from repro.spice.dc import OperatingPoint, dc_operating_point, dc_sweep
from repro.spice.ac import ac_analysis, transfer_function
from repro.spice.linsolve import (
    SmallSignalContext,
    SpectralSolver,
    solve_looped,
    solve_stacked,
)
from repro.spice.transient import transient_analysis
from repro.spice.noise import noise_analysis
from repro.spice.analysis import Simulator
from repro.spice.waveform import Spectrum, Waveform

__all__ = [
    "BjtModel",
    "Capacitor",
    "Cccs",
    "Ccvs",
    "Circuit",
    "CurrentSource",
    "Diode",
    "DiodeModel",
    "GROUND",
    "Inductor",
    "MosModel",
    "Mosfet",
    "OperatingPoint",
    "Pulse",
    "Pwl",
    "Resistor",
    "Simulator",
    "Sine",
    "SmallSignalContext",
    "SpectralSolver",
    "Spectrum",
    "Switch",
    "Vccs",
    "Vcvs",
    "VoltageSource",
    "Waveform",
    "ac_analysis",
    "dc_operating_point",
    "dc_sweep",
    "noise_analysis",
    "solve_looped",
    "solve_stacked",
    "transfer_function",
    "transient_analysis",
]
