"""Transient analysis (backward Euler start-up, trapezoidal thereafter).

Fixed user-chosen timestep with automatic halving on Newton failure.  The
audio-band experiments (buffer THD, slew) use coherent sampling, so a
deterministic uniform grid is a feature: the DFT-based measurements in
:mod:`repro.spice.waveform` assume it.
"""

from __future__ import annotations

import numpy as np

from repro.spice.dc import NewtonOptions, OperatingPoint, dc_operating_point
from repro.spice.mna import MnaSystem
from repro.spice.netlist import Circuit, is_ground


class TransientResult:
    """Recorded node voltages/branch currents on a uniform time grid."""

    def __init__(self, system: MnaSystem, t: np.ndarray, x: np.ndarray):
        self.system = system
        self.t = t
        self._x = x  # (n_steps, size+1)

    def v(self, node: str) -> np.ndarray:
        if is_ground(node):
            return np.zeros_like(self.t)
        return self._x[:, self.system.node(node)].copy()

    def vdiff(self, node_p: str, node_n: str) -> np.ndarray:
        return self.v(node_p) - self.v(node_n)

    def i(self, element_name: str) -> np.ndarray:
        return self._x[:, self.system.branch(element_name)].copy()

    @property
    def dt(self) -> float:
        return float(self.t[1] - self.t[0]) if len(self.t) > 1 else 0.0


def _newton_tran(
    system: MnaSystem,
    x_guess: np.ndarray,
    rhs: np.ndarray,
    c_over_h: np.ndarray,
    hist: np.ndarray,
    options: NewtonOptions,
) -> tuple[bool, np.ndarray]:
    """Solve G x + I(x) + C_h x - (rhs + hist) = 0."""
    n = system.size
    x = x_guess.copy()
    for _ in range(options.max_iterations):
        jac, resid, _ = system.assemble(x, rhs)
        resid = resid + c_over_h @ x - hist
        jac = jac + c_over_h
        a = jac[:n, :n]
        r = resid[:n]
        try:
            dx = np.linalg.solve(a, -r)
        except np.linalg.LinAlgError:
            return False, x
        if not np.all(np.isfinite(dx)):
            return False, x
        nv = system.num_nodes
        dx_nodes = np.clip(dx[:nv], -options.vlimit, options.vlimit)
        limited = not np.array_equal(dx_nodes, dx[:nv])
        x[:nv] += dx_nodes
        x[nv:n] += dx[nv:n]
        if not limited and float(np.max(np.abs(dx_nodes), initial=0.0)) < options.vntol:
            return True, x
    return False, x


def _substep_be(
    system: MnaSystem,
    x_start: np.ndarray,
    t_from: float,
    t_to: float,
    options: NewtonOptions,
    levels: int = 4,
) -> tuple[bool, np.ndarray]:
    """Cross [t_from, t_to] in progressively finer backward-Euler steps.

    Backward Euler is L-stable and heavily damped, which rescues steps
    where trapezoidal Newton diverges (hard clipping, switch-like device
    transitions).  Accuracy over one rescued step is acceptable: the
    harmonic measurements discard start-up cycles anyway.
    """
    c = system.c_static
    for level in range(1, levels + 1):
        n_sub = 4**level
        h = (t_to - t_from) / n_sub
        x = x_start.copy()
        failed = False
        for j in range(1, n_sub + 1):
            rhs = system.rhs_transient(t_from + j * h)
            c_over_h = c / h
            hist = c_over_h @ x
            ok, x_next = _newton_tran(system, x, rhs, c_over_h, hist, options)
            if not ok:
                failed = True
                break
            x = x_next
        if not failed:
            return True, x
    return False, x_start


def transient_analysis(
    circuit: Circuit | MnaSystem,
    t_stop: float,
    dt: float,
    temp_c: float = 25.0,
    op0: OperatingPoint | None = None,
    method: str = "be",
    options: NewtonOptions | None = None,
) -> TransientResult:
    """Integrate the circuit from its DC state at t=0 to ``t_stop``.

    ``method`` is "be" (default) or "trap".  Backward Euler is the
    default on purpose: the paper's circuits are stiff (Miller loops,
    MOS switches) and trapezoidal integration rings on them, while BE at
    the coherent-sampling rates used by the distortion benches is fully
    converged (checked by doubling the rate).  The initial condition is
    the DC operating point with sources at their t=0 transient values,
    matching SPICE's UIC-less behaviour.
    """
    if isinstance(circuit, Circuit):
        system = circuit.compile(temp_c=temp_c)
    else:
        system = circuit
    opts = options or NewtonOptions(vntol=1e-8, max_iterations=60)
    if dt <= 0.0 or t_stop <= 0.0:
        raise ValueError("dt and t_stop must be positive")

    # Initial condition.  A caller-provided op0 is authoritative: it may
    # encode a state (e.g. precharged capacitors behind now-open switches)
    # that a fresh DC solve of the *current* topology would destroy.
    # Without op0, solve DC with the sources at their t=0 values
    # (SPICE's UIC-less behaviour).
    if op0 is not None:
        x0 = op0.x.copy()
    else:
        op0 = dc_operating_point(system)
        rhs0 = system.rhs_transient(0.0)
        ok, x0 = _newton_tran(
            system, op0.x, rhs0, np.zeros_like(system.c_static),
            np.zeros(system.size + 1), opts,
        )
        if not ok:
            x0 = op0.x.copy()

    n_steps = int(round(t_stop / dt)) + 1
    t = np.arange(n_steps) * dt
    xs = np.zeros((n_steps, system.size + 1))
    xs[0] = x0

    c = system.c_static
    x_prev = x0.copy()
    xdot_prev = np.zeros(system.size + 1)

    for k in range(1, n_steps):
        tk = t[k]
        rhs = system.rhs_transient(tk)
        use_be = method == "be" or k == 1
        h = dt
        if use_be:
            c_over_h = c / h
            hist = c_over_h @ x_prev
        else:
            c_over_h = 2.0 * c / h
            hist = c_over_h @ x_prev + c @ xdot_prev

        # Predict with explicit extrapolation for a warm Newton start.
        x_guess = x_prev + xdot_prev * h
        ok, x_new = _newton_tran(system, x_guess, rhs, c_over_h, hist, opts)
        if not ok:
            # Retry from the previous solution (no prediction).
            ok, x_new = _newton_tran(system, x_prev, rhs, c_over_h, hist, opts)
        if not ok:
            # Sub-step with damped backward Euler across this interval.
            ok, x_new = _substep_be(system, x_prev, t[k - 1], tk, opts)
            if not ok:
                raise RuntimeError(
                    f"transient Newton failed at t={tk:.6g}s "
                    f"(circuit {system.circuit.name!r}); reduce dt"
                )
            # BE restart: derivative information is stale after sub-steps.
            xdot_prev = (x_new - x_prev) / h
            x_prev = x_new
            xs[k] = x_new
            continue
        if use_be:
            xdot_prev = (x_new - x_prev) / h
        else:
            xdot_prev = 2.0 / h * (x_new - x_prev) - xdot_prev
        x_prev = x_new
        xs[k] = x_new

    return TransientResult(system, t, xs)
