"""Circuit element definitions.

Elements are declarative: they hold names, node names and parameters, and
are interpreted by the MNA compiler (:mod:`repro.spice.mna`).  Sign
conventions follow SPICE:

* two-terminal sources: positive current flows from the ``+`` node through
  the source to the ``-`` node;
* MOSFETs are four-terminal (drain, gate, source, bulk);
* BJTs are three-terminal (collector, base, emitter).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.spice.devices.bjt import BjtModel
from repro.spice.devices.diode import DiodeModel
from repro.spice.devices.mosfet import MosModel


class Waveshape:
    """Base class for time-domain source waveforms (transient analysis)."""

    def __call__(self, t: float) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class Sine(Waveshape):
    """Sinusoidal stimulus ``offset + amplitude*sin(2*pi*freq*(t-delay) + phase)``.

    ``phase`` is in radians.  Before ``delay`` the output sits at ``offset``.
    """

    offset: float = 0.0
    amplitude: float = 1.0
    freq: float = 1e3
    delay: float = 0.0
    phase: float = 0.0

    def __call__(self, t: float) -> float:
        if t < self.delay:
            return self.offset + self.amplitude * math.sin(self.phase)
        arg = 2.0 * math.pi * self.freq * (t - self.delay) + self.phase
        return self.offset + self.amplitude * math.sin(arg)


@dataclass(frozen=True)
class Pulse(Waveshape):
    """Trapezoidal pulse train (SPICE PULSE semantics)."""

    v1: float = 0.0
    v2: float = 1.0
    delay: float = 0.0
    rise: float = 1e-9
    fall: float = 1e-9
    width: float = 1e-3
    period: float = 2e-3

    def __call__(self, t: float) -> float:
        if t < self.delay:
            return self.v1
        tau = (t - self.delay) % self.period
        if tau < self.rise:
            return self.v1 + (self.v2 - self.v1) * tau / self.rise
        tau -= self.rise
        if tau < self.width:
            return self.v2
        tau -= self.width
        if tau < self.fall:
            return self.v2 + (self.v1 - self.v2) * tau / self.fall
        return self.v1


@dataclass(frozen=True)
class Pwl(Waveshape):
    """Piecewise-linear waveform through ``(times, values)`` breakpoints."""

    times: Sequence[float]
    values: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values):
            raise ValueError("Pwl times and values must have equal length")
        if len(self.times) < 1:
            raise ValueError("Pwl requires at least one breakpoint")
        if any(t2 < t1 for t1, t2 in zip(self.times, self.times[1:])):
            raise ValueError("Pwl times must be non-decreasing")

    def __call__(self, t: float) -> float:
        times, values = self.times, self.values
        if t <= times[0]:
            return values[0]
        if t >= times[-1]:
            return values[-1]
        for i in range(len(times) - 1):
            if times[i] <= t <= times[i + 1]:
                span = times[i + 1] - times[i]
                if span <= 0.0:
                    return values[i + 1]
                frac = (t - times[i]) / span
                return values[i] + frac * (values[i + 1] - values[i])
        return values[-1]


@dataclass
class Element:
    """Common behaviour for every circuit element."""

    name: str

    @property
    def nodes(self) -> tuple[str, ...]:
        raise NotImplementedError

    @property
    def has_branch_current(self) -> bool:
        """True when the element adds an MNA branch-current unknown."""
        return False


@dataclass
class Resistor(Element):
    """Linear resistor.  ``noisy=False`` silences its 4kT/R contribution
    (useful for ideal bias dividers that stand in for off-chip parts).

    ``tc1``/``tc2`` are first/second-order temperature coefficients about
    25 degC; integrated poly resistors (the bandgap's R1/R2, the gain
    string) carry the process values from :mod:`repro.process.technology`.
    """

    n1: str = ""
    n2: str = ""
    value: float = 1e3
    noisy: bool = True
    tc1: float = 0.0
    tc2: float = 0.0

    def __post_init__(self) -> None:
        if self.value <= 0.0:
            raise ValueError(f"resistor {self.name}: value must be > 0, got {self.value}")

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.n1, self.n2)

    def value_at(self, temp_c: float) -> float:
        """Resistance at temperature [ohm]."""
        dt = temp_c - 25.0
        return self.value * (1.0 + self.tc1 * dt + self.tc2 * dt * dt)


@dataclass
class Capacitor(Element):
    """Linear capacitor."""

    n1: str = ""
    n2: str = ""
    value: float = 1e-12

    def __post_init__(self) -> None:
        if self.value < 0.0:
            raise ValueError(f"capacitor {self.name}: value must be >= 0, got {self.value}")

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.n1, self.n2)


@dataclass
class Inductor(Element):
    """Linear inductor (adds a branch current unknown)."""

    n1: str = ""
    n2: str = ""
    value: float = 1e-6

    def __post_init__(self) -> None:
        if self.value <= 0.0:
            raise ValueError(f"inductor {self.name}: value must be > 0, got {self.value}")

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.n1, self.n2)

    @property
    def has_branch_current(self) -> bool:
        return True


@dataclass
class VoltageSource(Element):
    """Independent voltage source with DC, AC and transient parts."""

    np: str = ""
    nn: str = ""
    dc: float = 0.0
    ac: float = 0.0
    ac_phase: float = 0.0
    wave: Waveshape | None = None

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.np, self.nn)

    @property
    def has_branch_current(self) -> bool:
        return True

    def value_at(self, t: float) -> float:
        """Transient source value at time ``t`` (DC value if no waveform)."""
        if self.wave is None:
            return self.dc
        return self.wave(t)


@dataclass
class CurrentSource(Element):
    """Independent current source; positive current flows np -> nn inside."""

    np: str = ""
    nn: str = ""
    dc: float = 0.0
    ac: float = 0.0
    ac_phase: float = 0.0
    wave: Waveshape | None = None

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.np, self.nn)

    def value_at(self, t: float) -> float:
        if self.wave is None:
            return self.dc
        return self.wave(t)


@dataclass
class Vcvs(Element):
    """Voltage-controlled voltage source: V(np,nn) = gain * V(ncp,ncn)."""

    np: str = ""
    nn: str = ""
    ncp: str = ""
    ncn: str = ""
    gain: float = 1.0

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.np, self.nn, self.ncp, self.ncn)

    @property
    def has_branch_current(self) -> bool:
        return True


@dataclass
class Vccs(Element):
    """Voltage-controlled current source: I(np->nn) = gm * V(ncp,ncn)."""

    np: str = ""
    nn: str = ""
    ncp: str = ""
    ncn: str = ""
    gm: float = 1e-3

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.np, self.nn, self.ncp, self.ncn)


@dataclass
class Cccs(Element):
    """Current-controlled current source; control is a named voltage source."""

    np: str = ""
    nn: str = ""
    control: str = ""
    gain: float = 1.0

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.np, self.nn)


@dataclass
class Ccvs(Element):
    """Current-controlled voltage source; control is a named voltage source."""

    np: str = ""
    nn: str = ""
    control: str = ""
    transresistance: float = 1.0

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.np, self.nn)

    @property
    def has_branch_current(self) -> bool:
        return True


@dataclass
class Switch(Element):
    """Ideal digitally controlled switch modelled as ron/roff resistor.

    The gain-programming network uses MOS transistors as switches; this
    element is the idealised stand-in for behavioural experiments, while
    :class:`Mosfet` devices in triode are used for the full-physics runs.
    """

    n1: str = ""
    n2: str = ""
    closed: bool = True
    ron: float = 100.0
    roff: float = 1e12
    noisy: bool = True

    def __post_init__(self) -> None:
        if self.ron <= 0.0 or self.roff <= 0.0:
            raise ValueError(f"switch {self.name}: ron/roff must be > 0")

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.n1, self.n2)

    @property
    def resistance(self) -> float:
        return self.ron if self.closed else self.roff


@dataclass
class Mosfet(Element):
    """Four-terminal MOSFET referencing a :class:`MosModel`."""

    d: str = ""
    g: str = ""
    s: str = ""
    b: str = ""
    model: MosModel = field(default_factory=MosModel)
    w: float = 10e-6
    l: float = 1.2e-6
    m: int = 1

    def __post_init__(self) -> None:
        if self.w <= 0.0 or self.l <= 0.0:
            raise ValueError(f"mosfet {self.name}: W and L must be > 0")
        if self.m < 1:
            raise ValueError(f"mosfet {self.name}: multiplier m must be >= 1")

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.d, self.g, self.s, self.b)


@dataclass
class Bjt(Element):
    """Three-terminal bipolar transistor referencing a :class:`BjtModel`.

    The paper's bandgap and bias cells use CMOS-compatible vertical PNPs
    (collector tied to substrate); the model supports both polarities.
    """

    c: str = ""
    b: str = ""
    e: str = ""
    model: BjtModel = field(default_factory=BjtModel)
    area: float = 1.0

    def __post_init__(self) -> None:
        if self.area <= 0.0:
            raise ValueError(f"bjt {self.name}: area must be > 0")

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.c, self.b, self.e)


@dataclass
class Diode(Element):
    """Junction diode referencing a :class:`DiodeModel`."""

    np: str = ""
    nn: str = ""
    model: DiodeModel = field(default_factory=DiodeModel)
    area: float = 1.0

    def __post_init__(self) -> None:
        if self.area <= 0.0:
            raise ValueError(f"diode {self.name}: area must be > 0")

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.np, self.nn)
