"""Tensor-batched MNA execution across same-topology circuits.

A campaign slice shares one topology: mismatch seeds and gain codes
perturb *values* (device parameters, resistances, switch states) but not
the element list or its node wiring, and the temperature axis reuses the
same built circuit outright.  This module exploits that by stamping N
sibling circuits into one ``(N, dim, dim)`` G/C tensor and running a
single lockstep Newton iteration across all of them, so the per-unit
LAPACK calls of the serial path collapse into batched gufunc calls.

Bitwise contract — the whole point of the batched executor is that its
records are *byte-identical* to :class:`~repro.campaign.executors.
SerialExecutor`, so every step here replays the serial op sequence
exactly rather than approximating it:

* static stamps replay :func:`repro.spice.mna.linear_stamp_values`
  through the pattern system's :meth:`~repro.spice.mna.MnaSystem.
  stamp_plan` COO indices with ``np.add.at`` (sequential accumulation,
  same order as the serial ``+=`` chain), and the replayed unit-0 slice
  is checked ``array_equal`` against a genuinely compiled pattern;
* device groups are stacked along a leading unit axis; elementwise model
  math is shape-agnostic (see the device modules), while
  transcendental-bearing temperature laws (``vth_at``/``kp_at``/
  ``is_at``/``UT^2``) are evaluated per unit with the *same Python
  scalar calls* the serial compile makes — ``array ** float`` and
  vectorised ``exp`` are not bit-identical to their scalar forms;
* :func:`newton_batch` replays :func:`repro.spice.dc._newton` in
  lockstep with per-unit masks: identical solve/jitter/fallback ladder,
  identical clamp, identical convergence test, and a unit that the
  plain-Newton pass cannot converge is handed back for the serial
  strategy ladder untouched.

Units whose structure does not match the group raise
:class:`BatchStructureError`; the campaign layer falls back to the
serial per-unit path for the whole group, so a structural surprise can
never change results — only speed.
"""

from __future__ import annotations

import numpy as np

from repro.constants import thermal_voltage
from repro.obs.events import active_event_log, event
from repro.obs.profile import prof_count
from repro.spice.devices.bjt import BjtGroup
from repro.spice.devices.diode import DiodeGroup
from repro.spice.devices.mosfet import MosGroup
from repro.spice.dc import NewtonOptions
from repro.spice.elements import (
    Bjt,
    Capacitor,
    Cccs,
    Ccvs,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    Resistor,
    Switch,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.spice.mna import MnaSystem, linear_stamp_values
from repro.spice.netlist import Circuit, is_ground


class BatchStructureError(RuntimeError):
    """The circuits of a batch do not share one MNA structure."""


def circuit_signature(circuit: Circuit) -> tuple:
    """Structural fingerprint: element types, names and node wiring.

    Two circuits with equal signatures compile to :class:`MnaSystem`\\ s
    with identical node numbering, branch allocation, stamp-index arrays
    and device-group layout — everything the batch replay shares across
    units.  Values (resistances, model parameters, source levels) are
    deliberately excluded: they are what a batch varies.
    """
    sig = []
    for el in circuit:
        if isinstance(el, (Resistor, Switch, Capacitor, Inductor)):
            nodes: tuple = (el.n1, el.n2)
        elif isinstance(el, (VoltageSource, CurrentSource)):
            nodes = (el.np, el.nn)
        elif isinstance(el, (Vcvs, Vccs)):
            nodes = (el.np, el.nn, el.ncp, el.ncn)
        elif isinstance(el, (Ccvs, Cccs)):
            nodes = (el.np, el.nn, el.control)
        elif isinstance(el, Mosfet):
            nodes = (el.d, el.g, el.s, el.b)
        elif isinstance(el, Bjt):
            nodes = (el.c, el.b, el.e)
        elif isinstance(el, Diode):
            nodes = (el.np, el.nn)
        else:
            nodes = ()
        sig.append((type(el).__name__, el.name, nodes))
    return tuple(sig)


# ----------------------------------------------------------------------
# Stacked device groups
# ----------------------------------------------------------------------
# Each subclass rebuilds the serial group's parameter arrays with a
# leading unit axis and inherits ``evaluate`` unchanged: the device
# modules index with ``volts[..., idx]`` so a stacked (N, dim) solution
# runs the identical elementwise op sequence per row.  Temperature-
# dependent parameters that involve transcendental functions are
# computed with the same per-model *Python scalar* method calls the
# serial compile makes (``vth_at``/``kp_at``/``is_at``), because their
# vectorised counterparts are not bit-identical.


class _StackedMosGroup(MosGroup):
    def __init__(self, base: MosGroup, unit_mos: list[list[Mosfet]],
                 temps: list[float]) -> None:
        self.names = base.names
        self.d, self.g, self.s, self.b = base.d, base.g, base.s, base.b
        self.w = np.array([[el.w for el in mos] for mos in unit_mos])
        self.l = np.array([[el.l for el in mos] for mos in unit_mos])
        self.m = np.array([[float(el.m) for el in mos] for mos in unit_mos])
        self.models = [[el.model for el in mos] for mos in unit_mos]
        self.temp_c = temps
        self.sign = np.array([[mdl.sign for mdl in mdls] for mdls in self.models])
        self.vth0 = np.array([[mdl.vth_at(t) for mdl in mdls]
                              for mdls, t in zip(self.models, temps)])
        self.kp = np.array([[mdl.kp_at(t) for mdl in mdls]
                            for mdls, t in zip(self.models, temps)])
        self.gamma = np.array([[mdl.gamma for mdl in mdls] for mdls in self.models])
        self.phi = np.array([[mdl.phi for mdl in mdls] for mdls in self.models])
        self.lam = np.array([[mdl.clm for mdl in mdls] for mdls in self.models]) / self.l
        self.n_slope = np.array([[mdl.n_slope for mdl in mdls] for mdls in self.models])
        self.cox = np.array([[mdl.cox for mdl in mdls] for mdls in self.models])
        self.kf = np.array([[mdl.kf for mdl in mdls] for mdls in self.models])
        self.af = np.array([[mdl.af for mdl in mdls] for mdls in self.models])
        self.gmin = np.array([[mdl.gmin for mdl in mdls] for mdls in self.models])
        self.beta = self.kp * (self.w / self.l) * self.m
        ut = [thermal_voltage(t) for t in temps]
        self.ut = np.array(ut)[:, None]
        # Serial squares the Python-float UT (``self.ut**2``); replicate
        # that scalar power per unit before broadcasting.
        self.isat = 2.0 * self.n_slope * self.beta * np.array(
            [u ** 2 for u in ut]
        )[:, None]

    def gate_capacitances(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        cgso = np.array([[mdl.cgso for mdl in mdls] for mdls in self.models])
        cgdo = np.array([[mdl.cgdo for mdl in mdls] for mdls in self.models])
        cj = np.array([[mdl.cj for mdl in mdls] for mdls in self.models])
        ldiff = np.array([[mdl.ldiff for mdl in mdls] for mdls in self.models])
        cgs = (2.0 / 3.0) * self.w * self.l * self.cox * self.m + cgso * self.w * self.m
        cgd = cgdo * self.w * self.m
        cjun = cj * self.w * ldiff * self.m
        return cgs, cgd, cjun


class _StackedBjtGroup(BjtGroup):
    def __init__(self, base: BjtGroup, unit_bjts: list[list[Bjt]],
                 temps: list[float]) -> None:
        self.names = base.names
        self.c, self.b, self.e = base.c, base.b, base.e
        self.area = np.array([[el.area for el in lst] for lst in unit_bjts])
        self.models = [[el.model for el in lst] for lst in unit_bjts]
        self.temp_c = temps
        self.sign = np.array([[mdl.sign for mdl in mdls] for mdls in self.models])
        self.is_sat = np.array([[mdl.is_at(t) for mdl in mdls]
                                for mdls, t in zip(self.models, temps)]) * self.area
        self.beta_f = np.array([[mdl.beta_f for mdl in mdls] for mdls in self.models])
        self.beta_r = np.array([[mdl.beta_r for mdl in mdls] for mdls in self.models])
        self.vaf = np.array([[mdl.vaf for mdl in mdls] for mdls in self.models])
        self.kf = np.array([[mdl.kf for mdl in mdls] for mdls in self.models])
        self.af = np.array([[mdl.af for mdl in mdls] for mdls in self.models])
        self.gmin = np.array([[mdl.gmin for mdl in mdls] for mdls in self.models])
        self.ut = np.array([thermal_voltage(t) for t in temps])[:, None]


class _StackedDiodeGroup(DiodeGroup):
    def __init__(self, base: DiodeGroup, unit_diodes: list[list[Diode]],
                 temps: list[float]) -> None:
        self.names = base.names
        self.np_idx, self.nn_idx = base.np_idx, base.nn_idx
        self.area = np.array([[el.area for el in lst] for lst in unit_diodes])
        self.models = [[el.model for el in lst] for lst in unit_diodes]
        self.temp_c = temps
        self.is_sat = np.array([[mdl.is_at(t) for mdl in mdls]
                                for mdls, t in zip(self.models, temps)]) * self.area
        self.n_ideality = np.array([[mdl.n_ideality for mdl in mdls]
                                    for mdls in self.models])
        self.kf = np.array([[mdl.kf for mdl in mdls] for mdls in self.models])
        self.af = np.array([[mdl.af for mdl in mdls] for mdls in self.models])
        self.gmin = np.array([[mdl.gmin for mdl in mdls] for mdls in self.models])
        self.ut = np.array([thermal_voltage(t) for t in temps])[:, None]


def _device_lists(circuit: Circuit) -> tuple[list, list, list]:
    mos: list[Mosfet] = []
    bjts: list[Bjt] = []
    diodes: list[Diode] = []
    for el in circuit:
        if isinstance(el, Mosfet):
            mos.append(el)
        elif isinstance(el, Bjt):
            bjts.append(el)
        elif isinstance(el, Diode):
            diodes.append(el)
    return mos, bjts, diodes


# ----------------------------------------------------------------------
# Batched system
# ----------------------------------------------------------------------
class BatchedSystem:
    """N same-topology circuits stamped into one ``(N, dim, dim)`` tensor.

    ``pattern`` is a genuinely compiled :class:`MnaSystem` of unit 0 —
    it supplies the node numbering, stamp plan, device index arrays and
    the ground-truth matrices the replayed unit-0 slice is verified
    against.  ``assemble``/``rhs_dc``/``initial_guess`` mirror the
    serial implementations op for op, with a leading unit axis.
    """

    def __init__(self, pattern: MnaSystem, circuits: list[Circuit],
                 temps: list[float], check_structure: bool = True) -> None:
        if len(circuits) != len(temps) or not circuits:
            raise ValueError("need one circuit and one temperature per unit")
        self.pattern = pattern
        self.circuits = circuits
        self.temps = [float(t) for t in temps]
        self.n_units = n_units = len(circuits)
        self.size = pattern.size
        self.num_nodes = pattern.num_nodes
        self.ground_index = pattern.ground_index
        self.dim = dim = pattern.size + 1

        if check_structure:
            # Callers that already grouped by signature (the batched
            # chunk runner) skip this O(units x elements) re-walk.
            sig0 = circuit_signature(circuits[0])
            for u, circ in enumerate(circuits[1:], start=1):
                if circuit_signature(circ) != sig0:
                    raise BatchStructureError(
                        f"unit {u} circuit {circ.name!r} does not match the "
                        f"batch topology of {circuits[0].name!r}"
                    )

        # ---- linear stamps: COO replay, unit-major sequential order ----
        plan = pattern.stamp_plan()
        g_all: list[list[float]] = []
        c_all: list[list[float]] = []
        for u, circ in enumerate(circuits):
            g_vals, c_vals = linear_stamp_values(circ, self.temps[u])
            if len(g_vals) != plan.g_idx.size or len(c_vals) != plan.c_idx.size:
                raise BatchStructureError(
                    f"unit {u} circuit {circ.name!r} stamps a different "
                    "entry count than the batch pattern"
                )
            g_all.append(g_vals)
            c_all.append(c_vals)
        # One flat accumulation per tensor: C-order flatten is unit-major
        # then stamp-order within the unit, so duplicate slots accumulate
        # in exactly the serial per-unit sequence.
        g_t = np.zeros((n_units, dim * dim))
        c_t = np.zeros((n_units, dim * dim))
        unit_off = (np.arange(n_units) * dim * dim)[:, None]
        if plan.g_idx.size:
            np.add.at(g_t.reshape(-1),
                      (plan.g_idx[None, :] + unit_off).reshape(-1),
                      np.asarray(g_all).reshape(-1))
        if plan.c_idx.size:
            np.add.at(c_t.reshape(-1),
                      (plan.c_idx[None, :] + unit_off).reshape(-1),
                      np.asarray(c_all).reshape(-1))
        self.g_t = g_t.reshape(n_units, dim, dim)
        self.c_t = c_t.reshape(n_units, dim, dim)

        # ---- stacked device groups ----
        # Units sharing one circuit object (the temperature axis) share
        # one element walk.
        _lists_by_id: dict[int, tuple] = {}

        def _lists(circ: Circuit) -> tuple:
            got = _lists_by_id.get(id(circ))
            if got is None:
                got = _lists_by_id[id(circ)] = _device_lists(circ)
            return got

        per_unit = [_lists(circ) for circ in circuits]
        self.mos_group = (
            _StackedMosGroup(pattern.mos_group, [p[0] for p in per_unit], self.temps)
            if pattern.mos_group is not None else None
        )
        self.bjt_group = (
            _StackedBjtGroup(pattern.bjt_group, [p[1] for p in per_unit], self.temps)
            if pattern.bjt_group is not None else None
        )
        self.diode_group = (
            _StackedDiodeGroup(pattern.diode_group, [p[2] for p in per_unit], self.temps)
            if pattern.diode_group is not None else None
        )
        if self.mos_group is not None:
            self._stamp_mos_capacitances()

        # Per-unit source lists in circuit order (rhs_dc / initial
        # guess), one walk per distinct circuit object.
        _src_by_id: dict[int, tuple[list, list]] = {}

        def _sources(circ: Circuit) -> tuple[list, list]:
            got = _src_by_id.get(id(circ))
            if got is None:
                vs = [el for el in circ if isinstance(el, VoltageSource)]
                cs = [el for el in circ if isinstance(el, CurrentSource)]
                got = _src_by_id[id(circ)] = (vs, cs)
            return got

        unit_sources = [_sources(circ) for circ in circuits]
        self._unit_vsources = [s[0] for s in unit_sources]
        self._unit_isources = [s[1] for s in unit_sources]

        # The replay machinery is only trusted after its unit-0 slice
        # reproduces a real compile bit for bit (pattern was compiled
        # from circuits[0] at temps[0]).
        if not (np.array_equal(self.g_t[0], pattern.g_static)
                and np.array_equal(self.c_t[0], pattern.c_static)):
            raise BatchStructureError(
                f"replayed stamps for {circuits[0].name!r} do not reproduce "
                "the compiled pattern matrices"
            )

        # Flat per-unit offsets for the batched np.add.at device stamps.
        self._resid_off = (np.arange(n_units) * dim)[:, None]
        self._jac_off = np.arange(n_units) * dim * dim
        prof_count("batch.systems_built")
        prof_count("batch.units_stamped", n_units)

    def _stamp_mos_capacitances(self) -> None:
        # Mirrors MnaSystem._stamp_mos_capacitances: same k-major pair
        # order, vectorised over units (each statement is one unit-wise
        # column, so the per-unit accumulation sequence is unchanged).
        grp = self.mos_group
        base = self.pattern.mos_group
        cgs, cgd, cjun = grp.gate_capacitances()      # each (N, n_dev)
        dim = self.dim
        c_flat = self.c_t.reshape(self.n_units, dim * dim)
        for k in range(len(base)):
            pairs = (
                (base.g[k], base.s[k], cgs[:, k]),
                (base.g[k], base.d[k], cgd[:, k]),
                (base.d[k], base.b[k], cjun[:, k]),
                (base.s[k], base.b[k], cjun[:, k]),
            )
            for a, b, c in pairs:
                c_flat[:, a * dim + a] += c
                c_flat[:, a * dim + b] -= c
                c_flat[:, b * dim + a] -= c
                c_flat[:, b * dim + b] += c

    # ------------------------------------------------------------------
    # Right-hand sides and initial guess (per-unit serial replicas)
    # ------------------------------------------------------------------
    def rhs_dc(self) -> np.ndarray:
        p = self.pattern
        b = np.zeros((self.n_units, self.dim))
        for u in range(self.n_units):
            vsources = self._unit_vsources[u]
            isources = self._unit_isources[u]
            if vsources:
                b[u][p._vs_branch_idx] = 1.0 * np.array(
                    tuple(src.dc for src in vsources)
                )
            if isources:
                vals = 1.0 * np.array(tuple(src.dc for src in isources))
                np.subtract.at(b[u], p._is_np_idx, vals)
                np.add.at(b[u], p._is_nn_idx, vals)
            b[u][p.ground_index] = 0.0
        return b

    def initial_guess(self) -> np.ndarray:
        p = self.pattern
        x = np.zeros((self.n_units, self.dim))
        for u, circ in enumerate(self.circuits):
            for src in self._unit_vsources[u]:
                if is_ground(src.nn) and not is_ground(src.np):
                    x[u, p.node(src.np)] = src.dc
                elif is_ground(src.np) and not is_ground(src.nn):
                    x[u, p.node(src.nn)] = -src.dc
            for node, volts in circ.nodesets.items():
                if not is_ground(node):
                    x[u, p.node(node)] = volts
        return x

    # ------------------------------------------------------------------
    # Nonlinear assembly (batched mirror of MnaSystem.assemble, gmin=0)
    # ------------------------------------------------------------------
    def assemble(self, x: np.ndarray, rhs: np.ndarray) -> tuple[np.ndarray, np.ndarray, dict]:
        jac = self.g_t.copy()
        resid = (self.g_t @ x[:, :, None])[:, :, 0] - rhs
        evals: dict = {}

        if self.mos_group is not None:
            ev = self.mos_group.evaluate(x)
            evals["mos"] = ev
            self._stamp_mos(jac, resid, ev)
        if self.bjt_group is not None:
            ev = self.bjt_group.evaluate(x)
            evals["bjt"] = ev
            self._stamp_bjt(jac, resid, ev)
        if self.diode_group is not None:
            ev = self.diode_group.evaluate(x)
            evals["diode"] = ev
            self._stamp_diode(jac, resid, ev)

        gi = self.ground_index
        jac[:, gi, :] = 0.0
        jac[:, :, gi] = 0.0
        resid[:, gi] = 0.0
        return jac, resid, evals

    def _stamp_mos(self, jac: np.ndarray, resid: np.ndarray, ev) -> None:
        grp = self.mos_group
        p = self.pattern
        sw = ev.swapped                                   # (N, n_dev)
        eff_d = np.where(sw, grp.s, grp.d)
        eff_s = np.where(sw, grp.d, grp.s)
        gm, gds, gmb = ev.gm, ev.gds, ev.gmb
        gss = gm + gds + gmb
        ids_into_eff_drain = grp.sign * ev.ids

        rflat = resid.reshape(-1)
        np.add.at(rflat, (self._resid_off + eff_d).reshape(-1),
                  ids_into_eff_drain.reshape(-1))
        np.add.at(rflat, (self._resid_off + eff_s).reshape(-1),
                  (-ids_into_eff_drain).reshape(-1))

        rows_d = np.where(sw, p._mos_row_s, p._mos_row_d)
        rows_s = np.where(sw, p._mos_row_d, p._mos_row_s)
        # Same (8, n_dev) row order as the serial stamp; the C-order
        # flatten below is unit-major, then row-major within a unit, so
        # duplicate slots accumulate in the serial per-unit sequence.
        idx = np.stack([
            rows_d + eff_d, rows_d + grp.g, rows_d + eff_s, rows_d + grp.b,
            rows_s + eff_d, rows_s + grp.g, rows_s + eff_s, rows_s + grp.b,
        ], axis=1)
        vals = np.stack([
            gds, gm, -gss, gmb,
            -gds, -gm, gss, -gmb,
        ], axis=1)
        idx = idx + self._jac_off[:, None, None]
        np.add.at(jac.reshape(-1), idx.reshape(-1), vals.reshape(-1))

    def _stamp_bjt(self, jac: np.ndarray, resid: np.ndarray, ev) -> None:
        grp = self.bjt_group
        p = self.pattern
        rflat = resid.reshape(-1)
        np.add.at(rflat, (self._resid_off + grp.c).reshape(-1), ev.ic.reshape(-1))
        np.add.at(rflat, (self._resid_off + grp.b).reshape(-1), ev.ib.reshape(-1))
        np.add.at(rflat, (self._resid_off + grp.e).reshape(-1),
                  (-(ev.ic + ev.ib)).reshape(-1))

        gm, gpi, go, gmu = ev.gm, ev.gpi, ev.go, ev.gmu
        vals = np.concatenate([
            gm - go, go, -gm,
            gpi + gmu, -gmu, -gpi,
            -(gm - go) - (gpi + gmu), -go + gmu, gm + gpi,
        ], axis=1)
        idx = p._bjt_idx[None, :] + self._jac_off[:, None]
        np.add.at(jac.reshape(-1), idx.reshape(-1), vals.reshape(-1))

    def _stamp_diode(self, jac: np.ndarray, resid: np.ndarray, ev) -> None:
        grp = self.diode_group
        p = self.pattern
        rflat = resid.reshape(-1)
        np.add.at(rflat, (self._resid_off + grp.np_idx).reshape(-1),
                  ev.current.reshape(-1))
        np.add.at(rflat, (self._resid_off + grp.nn_idx).reshape(-1),
                  (-ev.current).reshape(-1))
        vals = np.concatenate([ev.gd, -ev.gd, -ev.gd, ev.gd], axis=1)
        idx = p._diode_idx[None, :] + self._jac_off[:, None]
        np.add.at(jac.reshape(-1), idx.reshape(-1), vals.reshape(-1))

    def linearize(self, x: np.ndarray) -> np.ndarray:
        """Batched small-signal conductance tensors at solutions ``x``."""
        jac, _, _ = self.assemble(x, np.zeros((self.n_units, self.dim)))
        return jac


# ----------------------------------------------------------------------
# Lockstep Newton
# ----------------------------------------------------------------------
def newton_batch(
    system: BatchedSystem,
    x0: np.ndarray,
    rhs: np.ndarray,
    options: NewtonOptions | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Masked lockstep replay of :func:`repro.spice.dc._newton` (gmin=0).

    Returns ``(converged, x, iterations)`` over the unit axis.  A unit
    follows the serial iterate exactly until it either converges (same
    iteration count, bit-identical ``x``) or fails the same way the
    serial loop would (singular even after the 1e-12 jitter, non-finite
    update, or iteration budget) — failed units keep their serial-
    faithful ``x`` frozen and are meant to re-enter the serial strategy
    ladder from scratch.
    """
    opts = options or NewtonOptions()
    n = system.size
    nv = system.num_nodes
    n_units = system.n_units
    x = x0.copy()
    x[:, system.ground_index] = 0.0

    converged = np.zeros(n_units, dtype=bool)
    failed = np.zeros(n_units, dtype=bool)
    iterations = np.zeros(n_units, dtype=np.int64)

    for iteration in range(1, opts.max_iterations + 1):
        live = ~(converged | failed)
        if not live.any():
            break
        jac, resid, _ = system.assemble(x, rhs)
        a = jac[:, :n, :n]
        r = resid[:, :n]
        iterations[live] = iteration
        prof_count("batch.newton_iterations")
        prof_count("batch.newton_unit_solves", int(live.sum()))

        dx = np.zeros((n_units, n))
        solve_failed = np.zeros(n_units, dtype=bool)
        li = np.flatnonzero(live)
        try:
            if li.size == n_units:
                # Fast path: no fancy-index copies while every unit is
                # live (the common case).  Values are identical — the
                # solve gufunc factors each matrix independently.
                dx = np.linalg.solve(a, -r[:, :, None])[:, :, 0]
            else:
                dx[li] = np.linalg.solve(a[li], -r[li][:, :, None])[:, :, 0]
        except np.linalg.LinAlgError:
            # One unit's singular matrix poisons the whole gufunc call;
            # redo the live units with the serial solve + jitter ladder.
            for u in li:
                try:
                    dx[u] = np.linalg.solve(a[u], -r[u])
                except np.linalg.LinAlgError:
                    au = a[u] + np.eye(n) * 1e-12
                    try:
                        dx[u] = np.linalg.solve(au, -r[u])
                    except np.linalg.LinAlgError:
                        solve_failed[u] = True

        nonfinite = live & ~np.isfinite(dx).all(axis=1)
        upd = live & ~solve_failed & ~nonfinite

        dx_nodes = np.clip(dx[:, :nv], -opts.vlimit, opts.vlimit)
        limited = (dx_nodes != dx[:, :nv]).any(axis=1)
        x[upd, :nv] += dx_nodes[upd]
        x[upd, nv:n] += dx[upd, nv:n]

        max_dv = np.abs(dx_nodes).max(axis=1) if nv else np.zeros(n_units)
        max_resid = np.abs(r[:, :nv]).max(axis=1) if nv else np.zeros(n_units)
        current_scale = (np.abs(x[:, nv:n]).max(axis=1) if n > nv
                         else np.zeros(n_units))
        itol = opts.abstol + opts.reltol * np.maximum(current_scale, 1e-6)
        converged |= (upd & ~limited & (max_dv < opts.vntol)
                      & (max_resid < itol * 100))
        failed |= solve_failed | nonfinite

    if active_event_log() is not None:
        n_bad = int((~converged).sum())
        if n_bad:
            event("batch.newton_nonconverged", "warn",
                  circuit=system.pattern.circuit.name, n_units=int(n_units),
                  n_nonconverged=n_bad,
                  max_iterations=int(iterations.max()) if n_units else 0)
    return converged, x, iterations
