"""Small-signal AC analysis.

The circuit is linearised at a DC operating point (once, via the cached
:class:`~repro.spice.linsolve.SmallSignalContext`) and ``(G + jwC) x = b``
is solved for all frequencies in one frequency-stacked batched
factorization.  Output specifiers accept node names, ``"v(p,n)"``
differential pairs and ``"i(element)"`` branch currents.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

from repro.spice.dc import OperatingPoint
from repro.spice.netlist import is_ground


class AcResult:
    """Complex node spectra from an AC sweep."""

    def __init__(self, system, freqs: np.ndarray, solutions: np.ndarray):
        self.system = system
        self.freqs = freqs
        self._x = solutions  # (n_freq, size+1) complex, ground column zeroed

    def v(self, node: str) -> np.ndarray:
        """Complex node voltage vs frequency."""
        return self._x[:, self.system.node(node)].copy()

    def vdiff(self, node_p: str, node_n: str) -> np.ndarray:
        return self.v(node_p) - self.v(node_n)

    def i(self, element_name: str) -> np.ndarray:
        return self._x[:, self.system.branch(element_name)].copy()

    def mag_db(self, node_p: str, node_n: str | None = None) -> np.ndarray:
        """Magnitude in dB of a node (or differential) voltage."""
        sig = self.v(node_p) if node_n is None else self.vdiff(node_p, node_n)
        mag = np.abs(sig)
        return 20.0 * np.log10(np.maximum(mag, 1e-300))

    def phase_deg(self, node_p: str, node_n: str | None = None) -> np.ndarray:
        sig = self.v(node_p) if node_n is None else self.vdiff(node_p, node_n)
        return np.degrees(np.angle(sig))


def ac_analysis(op: OperatingPoint, freqs: np.ndarray) -> AcResult:
    """Run an AC sweep at the operating point ``op``.

    The stimulus is every source's ``ac`` attribute (standard SPICE
    semantics: set ``ac=1`` on the input you care about).
    """
    freqs = np.asarray(freqs, dtype=float)
    ctx = op.small_signal()
    return AcResult(op.system, freqs, ctx.ac_solutions(freqs))


def _ac_analysis_looped(op: OperatingPoint, freqs: np.ndarray) -> AcResult:
    """Seed-style reference path: re-linearize, one dense solve per
    frequency.  Kept for the equivalence tests and the perf benchmark."""
    system = op.system
    n = system.size
    freqs = np.asarray(freqs, dtype=float)
    g = system.linearize(op.x)[:n, :n]
    c = system.c_static[:n, :n]
    b = system.rhs_ac()[:n]

    solutions = np.zeros((len(freqs), system.size + 1), dtype=complex)
    for k, f in enumerate(freqs):
        a = g + 2j * np.pi * f * c
        solutions[k, :n] = sla.solve(a, b)
    return AcResult(system, freqs, solutions)


def transfer_function(
    op: OperatingPoint,
    freqs: np.ndarray,
    out_p: str,
    out_n: str | None = None,
) -> np.ndarray:
    """Complex transfer from the AC-driven source(s) to an output."""
    result = ac_analysis(op, freqs)
    if out_n is None or is_ground(out_n):
        return result.v(out_p)
    return result.vdiff(out_p, out_n)


def loop_gain_margins(freqs: np.ndarray, loop_gain: np.ndarray) -> dict[str, float]:
    """Phase margin / gain margin / unity-gain frequency from a loop-gain sweep.

    ``loop_gain`` is the complex open-loop transfer sampled at ``freqs``.
    Returns NaN entries when the corresponding crossing is outside the
    sweep range.
    """
    mag = np.abs(loop_gain)
    phase = np.unwrap(np.angle(loop_gain))
    out = {"f_unity": float("nan"), "phase_margin_deg": float("nan"),
           "gain_margin_db": float("nan")}

    crossing = np.where((mag[:-1] >= 1.0) & (mag[1:] < 1.0))[0]
    if crossing.size:
        k = crossing[0]
        # log-linear interpolation of the crossing frequency
        m1, m2 = np.log10(mag[k]), np.log10(mag[k + 1])
        frac = m1 / (m1 - m2)
        f_unity = freqs[k] * (freqs[k + 1] / freqs[k]) ** frac
        ph = phase[k] + frac * (phase[k + 1] - phase[k])
        out["f_unity"] = float(f_unity)
        out["phase_margin_deg"] = float(180.0 + np.degrees(ph))

    flip = np.where(np.diff(np.sign(phase + np.pi)) != 0)[0]
    if flip.size:
        k = flip[0]
        out["gain_margin_db"] = float(-20.0 * np.log10(max(mag[k], 1e-300)))
    return out
