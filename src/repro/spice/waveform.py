"""Waveform and spectrum containers with bench-style measurements.

These mirror the instruments on the authors' bench: RMS meters, a
distortion analyser (coherent DFT at the fundamental's harmonics) and a
spectrum analyser (windowed FFT for plots like the paper's Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass
class Waveform:
    """A uniformly sampled signal."""

    t: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        self.t = np.asarray(self.t, dtype=float)
        self.y = np.asarray(self.y, dtype=float)
        if self.t.shape != self.y.shape:
            raise ValueError("t and y must have the same shape")
        if len(self.t) < 2:
            raise ValueError("waveform needs at least two samples")

    @property
    def dt(self) -> float:
        return float(self.t[1] - self.t[0])

    @property
    def duration(self) -> float:
        return float(self.t[-1] - self.t[0])

    def rms(self) -> float:
        return float(np.sqrt(np.mean(self.y**2)))

    def mean(self) -> float:
        return float(np.mean(self.y))

    def peak_to_peak(self) -> float:
        return float(np.max(self.y) - np.min(self.y))

    def ac_rms(self) -> float:
        """RMS with the mean removed."""
        return float(np.std(self.y))

    def slice_time(self, t_lo: float, t_hi: float) -> "Waveform":
        mask = (self.t >= t_lo) & (self.t <= t_hi)
        if mask.sum() < 2:
            raise ValueError(f"slice [{t_lo}, {t_hi}] contains fewer than 2 samples")
        return Waveform(self.t[mask], self.y[mask])

    def last_cycles(self, freq: float, n_cycles: int) -> "Waveform":
        """The final ``n_cycles`` periods of a tone at ``freq`` (for
        coherent measurements after start-up transients settle)."""
        span = n_cycles / freq
        if span > self.duration:
            raise ValueError(
                f"waveform of {self.duration:.3g}s too short for "
                f"{n_cycles} cycles at {freq:.3g}Hz"
            )
        return self.slice_time(self.t[-1] - span, self.t[-1] + self.dt / 2)

    def max_slope(self) -> float:
        """Maximum |dy/dt| — the slew-rate measurement [units/s]."""
        return float(np.max(np.abs(np.diff(self.y))) / self.dt)

    def crossing_times(self, level: float, rising: bool = True) -> np.ndarray:
        """Interpolated times where the signal crosses ``level``."""
        y = self.y - level
        if rising:
            idx = np.where((y[:-1] < 0.0) & (y[1:] >= 0.0))[0]
        else:
            idx = np.where((y[:-1] > 0.0) & (y[1:] <= 0.0))[0]
        if idx.size == 0:
            return np.array([])
        frac = -y[idx] / (y[idx + 1] - y[idx])
        return self.t[idx] + frac * self.dt

    def settling_time(self, final: float, tol: float) -> float:
        """Time after which |y - final| stays within ``tol`` [s].

        Degenerate records are distinguished rather than folded into one
        misleading number: ``nan`` if the waveform *never* enters the
        tolerance band (there is no settling to speak of — the record
        does not reach the target at all), ``inf`` if it enters the band
        but is back outside at the final sample (not yet settled within
        the record).
        """
        err = np.abs(self.y - final)
        outside = np.where(err > tol)[0]
        if outside.size == 0:
            return 0.0
        if outside.size == len(self.y):
            return float("nan")
        k = outside[-1] + 1
        if k >= len(self.t):
            return float("inf")
        return float(self.t[k] - self.t[0])

    # ------------------------------------------------------------------
    # Fourier measurements
    # ------------------------------------------------------------------
    def fourier_component(self, freq: float) -> complex:
        """Complex amplitude of the tone at ``freq`` (coherent DFT).

        Uses the largest whole number of cycles that fits, windowed by
        *sample count* (a time mask would be vulnerable to float rounding
        at the window edge, which breaks coherence).  The phase reference
        is cos(2*pi*freq*t) at t = 0.
        """
        n_cycles = int(np.floor(self.duration * freq))
        if n_cycles < 1:
            raise ValueError(f"waveform too short for one cycle at {freq:.3g}Hz")
        samples = int(round(n_cycles / (freq * self.dt)))
        samples = min(samples, len(self.y))
        if samples < 4:
            raise ValueError("too few samples per analysis window")
        yy = self.y[-samples:]
        tt = self.t[-samples:]
        phase = np.exp(-2j * np.pi * freq * tt)
        return 2.0 * complex(np.mean(yy * phase))

    def fourier_components(self, f0: float, orders: Sequence[int]) -> np.ndarray:
        """Complex amplitudes of several harmonics of ``f0``.

        All orders share one analysis window that is coherent with the
        *fundamental* — windowing each harmonic separately would leak
        fundamental energy into harmonics whose own cycle count does not
        fit the record (the dominant error term when measuring -80 dB
        harmonics next to a full-scale fundamental).
        """
        n_cycles = int(np.floor(self.duration * f0))
        if n_cycles < 1:
            raise ValueError(f"waveform too short for one cycle at {f0:.3g}Hz")
        samples = int(round(n_cycles / (f0 * self.dt)))
        samples = min(samples, len(self.y))
        if samples < 4:
            raise ValueError("too few samples per analysis window")
        yy = self.y[-samples:]
        tt = self.t[-samples:]
        return np.array([
            2.0 * complex(np.mean(yy * np.exp(-2j * np.pi * k * f0 * tt)))
            for k in orders
        ])

    def harmonics(self, f0: float, count: int = 9) -> np.ndarray:
        """|amplitude| of harmonics 1..count of ``f0``."""
        return np.abs(self.fourier_components(f0, range(1, count + 1)))

    def thd(self, f0: float, n_harmonics: int = 9) -> float:
        """Total harmonic distortion (ratio, not dB or percent)."""
        amps = self.harmonics(f0, n_harmonics)
        if amps[0] <= 0.0:
            raise ValueError("no fundamental found; cannot compute THD")
        return float(np.sqrt(np.sum(amps[1:] ** 2)) / amps[0])

    def spectrum(self, window: str = "hann") -> "Spectrum":
        """Windowed amplitude spectrum (spectrum-analyser view)."""
        n = len(self.y)
        if window == "hann":
            win = np.hanning(n)
        elif window == "flattop":
            # 5-term flat-top for accurate amplitude readout
            k = np.arange(n)
            a = [0.21557895, 0.41663158, 0.277263158, 0.083578947, 0.006947368]
            win = (
                a[0]
                - a[1] * np.cos(2 * np.pi * k / (n - 1))
                + a[2] * np.cos(4 * np.pi * k / (n - 1))
                - a[3] * np.cos(6 * np.pi * k / (n - 1))
                + a[4] * np.cos(8 * np.pi * k / (n - 1))
            )
        elif window == "rect":
            win = np.ones(n)
        else:
            raise ValueError(f"unknown window {window!r}")
        coherent_gain = win.mean()
        spec = np.fft.rfft((self.y - self.y.mean()) * win)
        amps = np.abs(spec) / n / coherent_gain * 2.0
        freqs = np.fft.rfftfreq(n, self.dt)
        return Spectrum(freqs=freqs, amplitude=amps)


@dataclass
class Spectrum:
    """One-sided amplitude spectrum."""

    freqs: np.ndarray
    amplitude: np.ndarray

    def dbv(self) -> np.ndarray:
        """Amplitude in dBV (dB re 1 V peak)."""
        return 20.0 * np.log10(np.maximum(self.amplitude, 1e-300))

    def db_carrier(self, f0: float) -> np.ndarray:
        """Amplitude in dBc relative to the bin nearest ``f0``."""
        ref = self.amplitude_at(f0)
        return 20.0 * np.log10(np.maximum(self.amplitude, 1e-300) / max(ref, 1e-300))

    def amplitude_at(self, freq: float) -> float:
        """Peak amplitude within half a bin of ``freq``."""
        if len(self.freqs) < 2:
            raise ValueError("spectrum too short")
        bin_width = self.freqs[1] - self.freqs[0]
        mask = np.abs(self.freqs - freq) <= bin_width
        if not np.any(mask):
            raise ValueError(f"{freq} Hz outside spectrum range")
        return float(np.max(self.amplitude[mask]))


def make_time_grid(freq: float, n_cycles: int, points_per_cycle: int) -> tuple[float, float]:
    """(t_stop, dt) for coherent sampling of ``n_cycles`` at ``freq``."""
    dt = 1.0 / (freq * points_per_cycle)
    t_stop = n_cycles / freq
    return t_stop, dt
