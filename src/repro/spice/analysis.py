"""Simulator facade: one object that runs every analysis on a circuit.

Caches the compiled system and the operating point, which the higher
layers (characterisation, benchmarks) lean on heavily — an OP solve is
cheap but re-used dozens of times per characterisation run.
"""

from __future__ import annotations

import numpy as np

from repro.spice.ac import AcResult, ac_analysis, transfer_function
from repro.spice.dc import NewtonOptions, OperatingPoint, dc_operating_point
from repro.spice.mna import MnaSystem
from repro.spice.netlist import Circuit
from repro.spice.noise import NoiseResult, noise_analysis
from repro.spice.transient import TransientResult, transient_analysis
from repro.spice.waveform import Waveform


def log_freqs(f_lo: float, f_hi: float, points_per_decade: int = 20) -> np.ndarray:
    """Logarithmic frequency grid, inclusive of both edges."""
    if f_lo <= 0.0 or f_hi <= f_lo:
        raise ValueError("need 0 < f_lo < f_hi")
    decades = np.log10(f_hi / f_lo)
    count = max(2, int(round(decades * points_per_decade)) + 1)
    return np.logspace(np.log10(f_lo), np.log10(f_hi), count)


class Simulator:
    """Convenience wrapper around the analysis functions."""

    def __init__(self, circuit: Circuit, temp_c: float = 25.0,
                 options: NewtonOptions | None = None) -> None:
        self.circuit = circuit
        self.temp_c = temp_c
        self.options = options
        self._system: MnaSystem | None = None
        self._op: OperatingPoint | None = None

    @property
    def system(self) -> MnaSystem:
        if self._system is None:
            self._system = self.circuit.compile(temp_c=self.temp_c)
        return self._system

    def invalidate(self) -> None:
        """Drop caches after the circuit was modified (e.g. gain switch)."""
        self._system = None
        self._op = None

    def op(self, recompute: bool = False) -> OperatingPoint:
        """DC operating point (cached)."""
        if self._op is None or recompute:
            self._op = dc_operating_point(self.system, options=self.options)
        return self._op

    def small_signal(self):
        """The operating point's cached small-signal context.

        AC, noise and transfer probes issued through this simulator all
        share the one linearisation held here.
        """
        return self.op().small_signal()

    def ac(self, freqs: np.ndarray) -> AcResult:
        return ac_analysis(self.op(), np.asarray(freqs, dtype=float))

    def transfer(self, freqs: np.ndarray, out_p: str, out_n: str | None = None) -> np.ndarray:
        return transfer_function(self.op(), np.asarray(freqs, dtype=float), out_p, out_n)

    def gain_at(self, freq: float, out_p: str, out_n: str | None = None) -> float:
        """|H| at a single frequency."""
        h = self.transfer(np.array([freq]), out_p, out_n)
        return float(np.abs(h[0]))

    def noise(self, freqs: np.ndarray, out_p: str, out_n: str | None = None) -> NoiseResult:
        return noise_analysis(self.op(), np.asarray(freqs, dtype=float), out_p, out_n)

    def transient(self, t_stop: float, dt: float, method: str = "be") -> TransientResult:
        return transient_analysis(
            self.system, t_stop, dt, temp_c=self.temp_c, op0=self.op(), method=method
        )

    def transient_waveform(
        self, t_stop: float, dt: float, out_p: str, out_n: str | None = None
    ) -> Waveform:
        """Transient run returning one (differential) output waveform."""
        result = self.transient(t_stop, dt)
        y = result.v(out_p) if out_n is None else result.vdiff(out_p, out_n)
        return Waveform(result.t, y)
