"""MOSFET model: a source-referenced EKV-style formulation.

The paper's circuits live at the edge of the usable operating region of a
1.2 um process: 2.6 V total supply, 0.7 V thresholds, devices pushed toward
moderate inversion ("variance of the drain current ... when they operate
close to the moderate or weak inversion regions").  A square-law model with
a hard cutoff both fails to converge there and gets the noise/gm trade-offs
wrong, so we use the EKV interpolation

    ID = IS * [F(x_f) - F(x_r)] * (1 + lambda*VDS)
    F(x) = ln^2(1 + exp(x/2)),
    x_f  = Veff/(n*UT),     x_r = (Veff - n*VDS)/(n*UT)
    IS   = 2*n*beta*UT^2,   beta = KP*(W/L)*m,  Veff = VGS - VTH(VSB)

which reduces to the familiar square law in strong inversion (with the
slope factor n), to the correct exp(Veff/(n*UT)) law in weak inversion and
to the triode expression ID = beta*(Veff*VDS - n*VDS^2/2) for small VDS.
Body effect enters through the level-1 VTH(VSB) expression.

Noise (evaluated at the operating point):

* thermal:  Sid = 4kT * (2/3 * gm + gds_channel)  [A^2/Hz] -- the channel
  conductance term makes the same formula valid for switches in triode
  (4kT/Ron) and for saturated gain devices (8kTgm/3), which is exactly the
  split Eqs. 3 and 5 of the paper make;
* flicker:  Svg = KF / (Cox*W*L*m * f^AF)  input-referred, i.e.
  Sid = gm^2 * Svg -- the 1/(W*L) area dependence drives the paper's
  "large area" sizing argument (Sec. 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import BOLTZMANN, kelvin, thermal_voltage

#: Polarity constants.
NMOS = "nmos"
PMOS = "pmos"


@dataclass(frozen=True)
class MosModel:
    """Process-level MOSFET parameters (one instance per device flavour).

    Defaults approximate the NMOS of a generic 1.2 um n-well CMOS process
    (VTH about 0.7 V as quoted by the paper).  The project-wide calibrated
    models live in :mod:`repro.process.technology`.
    """

    name: str = "nmos_generic"
    polarity: str = NMOS
    vth0: float = 0.70          # zero-bias threshold magnitude [V]
    kp: float = 90e-6           # transconductance factor mu*Cox [A/V^2]
    gamma: float = 0.60         # body-effect coefficient [sqrt(V)]
    phi: float = 0.70           # surface potential 2*phiF [V]
    clm: float = 0.06e-6        # channel-length modulation: lambda = clm/L [1/V * m]
    n_slope: float = 1.35       # subthreshold slope factor
    cox: float = 1.38e-3        # gate capacitance per area [F/m^2] (tox ~ 25 nm)
    kf: float = 2.0e-24         # flicker coefficient [V^2*F]
    af: float = 1.0             # flicker frequency exponent
    cgso: float = 2.2e-10       # G-S overlap cap per width [F/m]
    cgdo: float = 2.2e-10       # G-D overlap cap per width [F/m]
    cj: float = 2.6e-4          # junction cap per area [F/m^2]
    ldiff: float = 2.4e-6       # source/drain diffusion length [m]
    tcv: float = 1.8e-3         # VTH temperature coefficient [V/K] (magnitude decreases)
    bex: float = -1.5           # mobility temperature exponent
    gmin: float = 1e-12         # convergence conductance across the channel [S]

    def __post_init__(self) -> None:
        if self.polarity not in (NMOS, PMOS):
            raise ValueError(f"polarity must be '{NMOS}' or '{PMOS}', got {self.polarity!r}")
        if self.vth0 <= 0.0:
            raise ValueError("vth0 is a magnitude and must be > 0 for both polarities")
        if self.kp <= 0.0 or self.cox <= 0.0:
            raise ValueError("kp and cox must be > 0")
        if self.n_slope < 1.0:
            raise ValueError("subthreshold slope factor n must be >= 1")

    @property
    def sign(self) -> float:
        """+1 for NMOS, -1 for PMOS (voltage/current normalisation)."""
        return 1.0 if self.polarity == NMOS else -1.0

    def vth_at(self, temp_c: float) -> float:
        """Threshold magnitude at temperature [V]; drops ~1.8 mV/K."""
        return self.vth0 - self.tcv * (temp_c - 25.0)

    def kp_at(self, temp_c: float) -> float:
        """Transconductance factor at temperature (mobility degradation)."""
        t_ratio = kelvin(temp_c) / kelvin(25.0)
        return self.kp * t_ratio**self.bex


def _softlog(x: np.ndarray) -> np.ndarray:
    """Numerically stable ln(1 + exp(x))."""
    out = np.where(x > 0.0, x, 0.0)
    return out + np.log1p(np.exp(-np.abs(x)))


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x)
    pos = x >= 0.0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


@dataclass
class MosEval:
    """Vectorised large-signal evaluation result for a group of MOSFETs.

    All arrays are per-device.  ``ids`` is the current into the *effective*
    drain; ``into_drain`` already folds in polarity and source/drain swap so
    the MNA layer can stamp it directly at the physical drain node.
    """

    ids: np.ndarray          # effective-frame channel current [A]
    into_drain: np.ndarray   # current into the physical drain terminal [A]
    gm: np.ndarray           # d ids / d vgs_eff [S]
    gds: np.ndarray          # d ids / d vds_eff (incl. CLM) [S]
    gds_channel: np.ndarray  # physical channel conductance (triode part) [S]
    gmb: np.ndarray          # d ids / d vbs_eff [S]
    swapped: np.ndarray      # True where source/drain were exchanged
    vgs: np.ndarray          # effective-frame VGS [V]
    vds: np.ndarray          # effective-frame VDS (>= 0) [V]
    vsb: np.ndarray          # effective-frame VSB [V]
    veff: np.ndarray         # VGS - VTH in the effective frame [V]
    vdsat: np.ndarray        # saturation voltage estimate [V]
    vth: np.ndarray          # threshold incl. body effect [V]


class MosGroup:
    """All MOSFETs of a circuit, evaluated together with numpy.

    The group is built once at compile time; ``evaluate`` is called per
    Newton iteration with the current solution vector.
    """

    def __init__(
        self,
        names: list[str],
        d: np.ndarray,
        g: np.ndarray,
        s: np.ndarray,
        b: np.ndarray,
        w: np.ndarray,
        l: np.ndarray,
        m: np.ndarray,
        models: list[MosModel],
        temp_c: float,
    ) -> None:
        self.names = names
        self.d, self.g, self.s, self.b = d, g, s, b
        self.w, self.l, self.m = w, l, m
        self.models = models
        self.temp_c = temp_c
        self.sign = np.array([mdl.sign for mdl in models])
        self.vth0 = np.array([mdl.vth_at(temp_c) for mdl in models])
        self.kp = np.array([mdl.kp_at(temp_c) for mdl in models])
        self.gamma = np.array([mdl.gamma for mdl in models])
        self.phi = np.array([mdl.phi for mdl in models])
        self.lam = np.array([mdl.clm for mdl in models]) / l
        self.n_slope = np.array([mdl.n_slope for mdl in models])
        self.cox = np.array([mdl.cox for mdl in models])
        self.kf = np.array([mdl.kf for mdl in models])
        self.af = np.array([mdl.af for mdl in models])
        self.gmin = np.array([mdl.gmin for mdl in models])
        self.beta = self.kp * (w / l) * m
        self.ut = thermal_voltage(temp_c)
        self.isat = 2.0 * self.n_slope * self.beta * self.ut**2

    def __len__(self) -> int:
        return len(self.names)

    def evaluate(self, volts: np.ndarray) -> MosEval:
        """Large-signal evaluation at node voltages ``volts`` (extended).

        ``volts`` may be the usual ``(dim,)`` vector or a unit-stacked
        ``(N, dim)`` tensor (batched campaign execution); every output
        array then carries the same leading axis.  Both shapes run the
        identical sequence of elementwise operations, so a stacked row
        is bit-for-bit the single-vector result.
        """
        vd = volts[..., self.d]
        vg = volts[..., self.g]
        vs = volts[..., self.s]
        vb = volts[..., self.b]
        sign = self.sign

        # Source/drain swap keeps the effective VDS non-negative; the MOS
        # channel is symmetric so this is exact, and it keeps F(x_r) from
        # overflowing for reverse-biased devices.
        vds_raw = sign * (vd - vs)
        swapped = vds_raw < 0.0
        eff_d = np.where(swapped, self.s, self.d)
        eff_s = np.where(swapped, self.d, self.s)
        if volts.ndim == 1:
            ved = volts[eff_d]
            ves = volts[eff_s]
        else:
            # Per-row gather: eff_d is (N, n_dev) when volts is (N, dim).
            ved = np.take_along_axis(volts, eff_d, axis=-1)
            ves = np.take_along_axis(volts, eff_s, axis=-1)

        vgs = sign * (vg - ves)
        vds = sign * (ved - ves)
        vsb = sign * (ves - vb)

        # Level-1 body effect with a floor that keeps sqrt() real.  Bulks
        # are tied to rails or sources in every paper circuit, so the floor
        # only guards transient excursions.
        vsb_c = np.maximum(vsb, -self.phi + 1e-3)
        sqrt_term = np.sqrt(self.phi + vsb_c)
        vth = self.vth0 + self.gamma * (sqrt_term - np.sqrt(self.phi))
        dvth_dvsb = self.gamma / (2.0 * sqrt_term)

        veff = vgs - vth
        n_ut = self.n_slope * self.ut
        xf = veff / (2.0 * n_ut)
        xr = (veff - self.n_slope * vds) / (2.0 * n_ut)
        ff = _softlog(xf)
        fr = _softlog(xr)
        sf = _sigmoid(xf)
        sr = _sigmoid(xr)

        clm = 1.0 + self.lam * vds
        i0 = self.isat * (ff * ff - fr * fr)
        ids = i0 * clm

        gm = self.isat * (ff * sf - fr * sr) / n_ut * clm
        gds_channel = self.isat * fr * sr / self.ut * clm
        gds = gds_channel + i0 * self.lam + self.gmin
        # d ids / d vbs = +gm * dvth/dvsb (raising the bulk toward the
        # source lowers VTH and raises the current).
        gmb = gm * dvth_dvsb

        into_drain = sign * np.where(swapped, -ids, ids)
        vdsat = np.maximum(veff, 0.0) / self.n_slope + 4.0 * self.ut

        return MosEval(
            ids=ids,
            into_drain=into_drain,
            gm=gm,
            gds=gds,
            gds_channel=gds_channel,
            gmb=gmb,
            swapped=swapped,
            vgs=vgs,
            vds=vds,
            vsb=vsb,
            veff=veff,
            vdsat=vdsat,
            vth=vth,
        )

    def thermal_noise_psd(self, ev: MosEval) -> np.ndarray:
        """Channel thermal-noise current PSD per device [A^2/Hz]."""
        kt4 = 4.0 * BOLTZMANN * kelvin(self.temp_c)
        return kt4 * (2.0 / 3.0 * ev.gm + ev.gds_channel)

    def flicker_noise_psd(self, ev: MosEval, freq: float) -> np.ndarray:
        """Flicker-noise current PSD per device at ``freq`` [A^2/Hz]."""
        area = self.cox * self.w * self.l * self.m
        svg = self.kf / (area * np.power(freq, self.af))
        return ev.gm**2 * svg

    def gate_capacitances(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(Cgs, Cgd, Cjunction) constant small-signal caps per device.

        A constant 2/3*W*L*Cox intrinsic Cgs plus overlaps; junction caps
        use the drawn diffusion area.  Constant caps are an adequate model
        for audio-band circuits whose bandwidth is set by the explicit
        compensation network.
        """
        cgso = np.array([mdl.cgso for mdl in self.models])
        cgdo = np.array([mdl.cgdo for mdl in self.models])
        cj = np.array([mdl.cj for mdl in self.models])
        ldiff = np.array([mdl.ldiff for mdl in self.models])
        cgs = (2.0 / 3.0) * self.w * self.l * self.cox * self.m + cgso * self.w * self.m
        cgd = cgdo * self.w * self.m
        cjun = cj * self.w * ldiff * self.m
        return cgs, cgd, cjun
