"""Bipolar transistor model (Ebers-Moll with Early effect).

The paper's bias generator and fully differential bandgap use
"CMOS-compatible vertical bipolar transistors": parasitic vertical PNPs
whose collector is the substrate.  They are operated in forward active or
diode-connected mode, so a careful Ebers-Moll model with temperature-
dependent saturation current is sufficient and — crucially for the
bandgap's tempco experiment — the IS(T) law reproduces the canonical
~ -2 mV/K VBE slope and its curvature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import BOLTZMANN, ELEMENTARY_CHARGE, kelvin, thermal_voltage

NPN = "npn"
PNP = "pnp"


@dataclass(frozen=True)
class BjtModel:
    """Gummel-Poon-lite bipolar parameters."""

    name: str = "vpnp"
    polarity: str = PNP
    is_sat: float = 2.0e-17      # saturation current at 25 degC [A]
    beta_f: float = 40.0         # forward current gain (vertical PNPs are poor)
    beta_r: float = 2.0          # reverse current gain
    vaf: float = 60.0            # forward Early voltage [V]
    xti: float = 3.0             # IS temperature exponent
    eg: float = 1.11             # bandgap energy [eV]
    kf: float = 1.0e-14          # base-current flicker coefficient [A]
    af: float = 1.0
    gmin: float = 1e-12

    def __post_init__(self) -> None:
        if self.polarity not in (NPN, PNP):
            raise ValueError(f"polarity must be '{NPN}' or '{PNP}', got {self.polarity!r}")
        if self.is_sat <= 0.0 or self.beta_f <= 0.0 or self.beta_r <= 0.0:
            raise ValueError("is_sat, beta_f, beta_r must be > 0")

    @property
    def sign(self) -> float:
        return 1.0 if self.polarity == NPN else -1.0

    def is_at(self, temp_c: float) -> float:
        """Saturation current at temperature (drives the VBE tempco)."""
        t = kelvin(temp_c)
        t0 = kelvin(25.0)
        eg_over_k = self.eg * ELEMENTARY_CHARGE / BOLTZMANN
        return self.is_sat * (t / t0) ** self.xti * np.exp(-eg_over_k * (1.0 / t - 1.0 / t0))


def _limited_exp(x: np.ndarray, x_max: float = 80.0) -> tuple[np.ndarray, np.ndarray]:
    """exp(x) with linear extension above ``x_max`` (returns value, slope).

    The linear extension keeps Newton iterations finite when a junction is
    momentarily driven far forward during source stepping.
    """
    capped = np.minimum(x, x_max)
    e = np.exp(capped)
    over = x > x_max
    value = np.where(over, e * (1.0 + (x - x_max)), e)
    slope = e  # continuous first derivative at the knee
    return value, slope


@dataclass
class BjtEval:
    """Vectorised large-signal BJT evaluation (physical-frame currents)."""

    ic: np.ndarray           # current into the collector terminal [A]
    ib: np.ndarray           # current into the base terminal [A]
    gm: np.ndarray           # d|Ic|/d|Vbe| [S]
    gpi: np.ndarray          # d|Ib|/d|Vbe| [S]
    go: np.ndarray           # output conductance [S]
    gmu: np.ndarray          # d|Ib|/d|Vbc| (reverse) [S]
    vbe: np.ndarray          # polarity-normalised VBE [V]
    vbc: np.ndarray          # polarity-normalised VBC [V]


class BjtGroup:
    """All BJTs of a circuit, evaluated together."""

    def __init__(
        self,
        names: list[str],
        c: np.ndarray,
        b: np.ndarray,
        e: np.ndarray,
        area: np.ndarray,
        models: list[BjtModel],
        temp_c: float,
    ) -> None:
        self.names = names
        self.c, self.b, self.e = c, b, e
        self.area = area
        self.models = models
        self.temp_c = temp_c
        self.sign = np.array([mdl.sign for mdl in models])
        self.is_sat = np.array([mdl.is_at(temp_c) for mdl in models]) * area
        self.beta_f = np.array([mdl.beta_f for mdl in models])
        self.beta_r = np.array([mdl.beta_r for mdl in models])
        self.vaf = np.array([mdl.vaf for mdl in models])
        self.kf = np.array([mdl.kf for mdl in models])
        self.af = np.array([mdl.af for mdl in models])
        self.gmin = np.array([mdl.gmin for mdl in models])
        self.ut = thermal_voltage(temp_c)

    def __len__(self) -> int:
        return len(self.names)

    def evaluate(self, volts: np.ndarray) -> BjtEval:
        # ``volts`` may be (dim,) or unit-stacked (N, dim); the ellipsis
        # gather keeps both shapes on the identical elementwise op
        # sequence (bitwise-equal rows, see repro.spice.batch).
        vc = volts[..., self.c]
        vb = volts[..., self.b]
        ve = volts[..., self.e]
        sign = self.sign

        vbe = sign * (vb - ve)
        vbc = sign * (vb - vc)
        vce = vbe - vbc

        ef, def_ = _limited_exp(vbe / self.ut)
        er, der = _limited_exp(vbc / self.ut)

        itf = self.is_sat * (ef - 1.0)
        itr = self.is_sat * (er - 1.0)
        # Early effect on the forward transport current only.
        early = 1.0 + np.maximum(vce, 0.0) / self.vaf
        d_early = np.where(vce > 0.0, 1.0 / self.vaf, 0.0)

        icc = (itf - itr) * early - itr / self.beta_r
        ibb = itf / self.beta_f + itr / self.beta_r

        ditf = self.is_sat * def_ / self.ut
        ditr = self.is_sat * der / self.ut

        gm = ditf * early + (itf - itr) * d_early
        gpi = ditf / self.beta_f
        gmu = ditr / self.beta_r
        # Output conductance: d icc / d vce at fixed vbe.
        go = (itf - itr) * d_early + ditr * early + ditr / self.beta_r + self.gmin

        ic_phys = sign * icc
        ib_phys = sign * ibb
        return BjtEval(
            ic=ic_phys, ib=ib_phys, gm=gm, gpi=gpi, go=go, gmu=gmu, vbe=vbe, vbc=vbc
        )

    def shot_noise_psd(self, ev: BjtEval) -> tuple[np.ndarray, np.ndarray]:
        """(collector, base) shot-noise current PSDs [A^2/Hz]."""
        q2 = 2.0 * ELEMENTARY_CHARGE
        return q2 * np.abs(ev.ic), q2 * np.abs(ev.ib)

    def flicker_noise_psd(self, ev: BjtEval, freq: float) -> np.ndarray:
        """Base-current flicker noise PSD at ``freq`` [A^2/Hz]."""
        return self.kf * np.power(np.abs(ev.ib), self.af) / freq
