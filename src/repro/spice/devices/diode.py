"""Junction diode model (exponential with series conductance floor)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import ELEMENTARY_CHARGE, kelvin, thermal_voltage
from repro.constants import BOLTZMANN


@dataclass(frozen=True)
class DiodeModel:
    """Simple junction diode parameters."""

    name: str = "diode"
    is_sat: float = 1.0e-16     # saturation current at 25 degC [A]
    n_ideality: float = 1.0
    xti: float = 3.0
    eg: float = 1.11
    kf: float = 0.0
    af: float = 1.0
    gmin: float = 1e-12

    def is_at(self, temp_c: float) -> float:
        t = kelvin(temp_c)
        t0 = kelvin(25.0)
        eg_over_k = self.eg * ELEMENTARY_CHARGE / BOLTZMANN
        return self.is_sat * (t / t0) ** self.xti * np.exp(
            -eg_over_k / self.n_ideality * (1.0 / t - 1.0 / t0)
        )


@dataclass
class DiodeEval:
    """Vectorised diode evaluation."""

    current: np.ndarray   # current np -> nn [A]
    gd: np.ndarray        # small-signal conductance [S]
    vd: np.ndarray        # junction voltage [V]


class DiodeGroup:
    """All diodes of a circuit, evaluated together."""

    def __init__(
        self,
        names: list[str],
        np_idx: np.ndarray,
        nn_idx: np.ndarray,
        area: np.ndarray,
        models: list["DiodeModel"],
        temp_c: float,
    ) -> None:
        self.names = names
        self.np_idx, self.nn_idx = np_idx, nn_idx
        self.area = area
        self.models = models
        self.temp_c = temp_c
        self.is_sat = np.array([mdl.is_at(temp_c) for mdl in models]) * area
        self.n_ideality = np.array([mdl.n_ideality for mdl in models])
        self.kf = np.array([mdl.kf for mdl in models])
        self.af = np.array([mdl.af for mdl in models])
        self.gmin = np.array([mdl.gmin for mdl in models])
        self.ut = thermal_voltage(temp_c)

    def __len__(self) -> int:
        return len(self.names)

    def evaluate(self, volts: np.ndarray) -> DiodeEval:
        # (dim,) or unit-stacked (N, dim); see repro.spice.batch.
        vd = volts[..., self.np_idx] - volts[..., self.nn_idx]
        x = vd / (self.n_ideality * self.ut)
        capped = np.minimum(x, 80.0)
        e = np.exp(capped)
        over = x > 80.0
        value = np.where(over, e * (1.0 + (x - 80.0)), e)
        current = self.is_sat * (value - 1.0) + self.gmin * vd
        gd = self.is_sat * e / (self.n_ideality * self.ut) + self.gmin
        return DiodeEval(current=current, gd=gd, vd=vd)

    def shot_noise_psd(self, ev: DiodeEval) -> np.ndarray:
        return 2.0 * ELEMENTARY_CHARGE * np.abs(ev.current)

    def flicker_noise_psd(self, ev: DiodeEval, freq: float) -> np.ndarray:
        return self.kf * np.power(np.abs(ev.current), self.af) / freq
