"""Nonlinear device models (MOSFET, BJT, diode) with noise."""

from repro.spice.devices.mosfet import MosModel
from repro.spice.devices.bjt import BjtModel
from repro.spice.devices.diode import DiodeModel

__all__ = ["BjtModel", "DiodeModel", "MosModel"]
