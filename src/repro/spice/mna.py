"""Compiled modified-nodal-analysis system.

Compilation maps node names to indices, allocates branch-current unknowns,
stamps every linear element once into static G/C matrices and groups the
nonlinear devices for vectorised evaluation.  The "extended matrix" trick
keeps stamping branch-free: ground is the last index of an (n+1)-dim
system and the solvers slice it off, so ``np.add.at`` needs no masking.

System convention:  G*x + C*dx/dt + I_nl(x) = b(t),
with x = [node voltages | branch currents].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import BOLTZMANN, kelvin
from repro.obs.profile import prof_count
from repro.spice.devices.bjt import BjtGroup
from repro.spice.devices.diode import DiodeGroup
from repro.spice.devices.mosfet import MosGroup
from repro.spice.elements import (
    Bjt,
    Capacitor,
    Cccs,
    Ccvs,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    Resistor,
    Switch,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.spice.netlist import Circuit, is_ground


@dataclass
class NoiseSource:
    """A single current-noise generator between two nodes.

    ``psd_of`` maps frequency [Hz] to a one-sided PSD [A^2/Hz]; ``device``
    and ``mechanism`` label the contribution for the paper-style noise
    budget breakdown ("T1 thermal", "Ra thermal", "T5 flicker", ...).
    """

    device: str
    mechanism: str
    node_a: int
    node_b: int
    psd_flat: float          # frequency-independent part [A^2/Hz]
    psd_flicker: float = 0.0  # coefficient of 1/f^af part [A^2/Hz * Hz^af]
    af: float = 1.0

    def psd(self, freq: float) -> float:
        if self.psd_flicker == 0.0:
            return self.psd_flat
        return self.psd_flat + self.psd_flicker / freq**self.af


@dataclass
class LinearStampPlan:
    """COO replay plan for one topology's static linear stamps.

    ``g_idx``/``c_idx`` hold one flat extended index (``row*dim + col``)
    per scalar ``+=`` that :class:`MnaSystem.__init__` performs while
    stamping the linear elements, in the exact order it performs them.
    Replaying them with per-circuit values (:func:`linear_stamp_values`)
    via ``np.add.at`` therefore reproduces ``g_static``/``c_static``
    bit for bit — sequential accumulation order included — which is what
    lets :class:`repro.spice.batch.BatchedSystem` stamp N same-topology
    circuits into one ``(N, dim, dim)`` tensor without compiling N
    systems.  Device (MOS) capacitances are not part of the plan; the
    batch layer appends them from its stacked groups in the same order
    as :meth:`MnaSystem._stamp_mos_capacitances`.
    """

    g_idx: np.ndarray
    c_idx: np.ndarray
    dim: int


def linear_stamp_values(circuit: Circuit, temp_c: float) -> tuple[list[float], list[float]]:
    """Signed stamp values for ``circuit`` matching :meth:`MnaSystem.stamp_plan`.

    Walks the elements in circuit order with the same dispatch chain as
    :class:`MnaSystem.__init__`, emitting one signed value per planned
    ``+=`` (a ``-=`` becomes the exactly-negated value).  All arithmetic
    mirrors the compile path operation for operation, so the replayed
    matrices are bitwise identical to a fresh compile of ``circuit`` at
    ``temp_c``.
    """
    g_vals: list[float] = []
    c_vals: list[float] = []
    # Dispatch order puts the device-heavy common types first; the
    # element classes are sibling leaves of Element, so check order
    # cannot change which branch an element takes.
    for el in circuit:
        if isinstance(el, (Mosfet, Bjt, Diode, CurrentSource)):
            pass
        elif isinstance(el, Resistor):
            g = 1.0 / el.value_at(temp_c)
            g_vals += [g, -g, -g, g]
        elif isinstance(el, Capacitor):
            c = el.value
            c_vals += [c, -c, -c, c]
        elif isinstance(el, VoltageSource):
            g_vals += [1.0, -1.0, 1.0, -1.0]
        elif isinstance(el, Switch):
            g = 1.0 / el.resistance
            g_vals += [g, -g, -g, g]
        elif isinstance(el, Inductor):
            g_vals += [1.0, -1.0, 1.0, -1.0]
            c_vals += [-el.value]
        elif isinstance(el, Vcvs):
            g_vals += [1.0, -1.0, 1.0, -1.0, -el.gain, el.gain]
        elif isinstance(el, Ccvs):
            g_vals += [1.0, -1.0, 1.0, -1.0, -el.transresistance]
        elif isinstance(el, Vccs):
            g_vals += [el.gm, -el.gm, -el.gm, el.gm]
        elif isinstance(el, Cccs):
            g_vals += [el.gain, -el.gain]
        else:
            raise TypeError(f"unsupported element type {type(el).__name__}")
    return g_vals, c_vals


class MnaSystem:
    """A circuit compiled at a fixed temperature, ready for the solvers."""

    #: Node count at or above which the solvers prefer the sparse
    #: (CSC + ``splu``) assembly and solve paths over dense LAPACK.
    #: A class attribute so tests and benchmarks can repoint it; below
    #: the threshold nothing sparse ever runs, keeping the dense results
    #: bit-identical to the historical behaviour.
    sparse_threshold: int = 500

    def __init__(self, circuit: Circuit, temp_c: float = 25.0) -> None:
        self.circuit = circuit
        self.temp_c = temp_c

        # ---------------- node numbering ----------------
        self.node_names = circuit.nodes()
        self.num_nodes = len(self.node_names)
        branch_elements = [el for el in circuit if el.has_branch_current]
        self.num_branches = len(branch_elements)
        self.size = self.num_nodes + self.num_branches
        self.ground_index = self.size  # dummy slot, sliced off by solvers

        self._node_index: dict[str, int] = {
            name: i for i, name in enumerate(self.node_names)
        }
        self._branch_index: dict[str, int] = {
            el.name: self.num_nodes + k for k, el in enumerate(branch_elements)
        }

        # ---------------- static stamps ----------------
        dim = self.size + 1
        self.g_static = np.zeros((dim, dim))
        self.c_static = np.zeros((dim, dim))

        self.vsources: list[VoltageSource] = []
        self.isources: list[CurrentSource] = []

        mos: list[Mosfet] = []
        bjts: list[Bjt] = []
        diodes: list[Diode] = []

        for el in circuit:
            if isinstance(el, Resistor):
                self._stamp_conductance(self.g_static, el.n1, el.n2, 1.0 / el.value_at(temp_c))
            elif isinstance(el, Switch):
                self._stamp_conductance(self.g_static, el.n1, el.n2, 1.0 / el.resistance)
            elif isinstance(el, Capacitor):
                self._stamp_conductance(self.c_static, el.n1, el.n2, el.value)
            elif isinstance(el, Inductor):
                j = self._branch_index[el.name]
                a, b = self.node(el.n1), self.node(el.n2)
                self.g_static[a, j] += 1.0
                self.g_static[b, j] -= 1.0
                self.g_static[j, a] += 1.0
                self.g_static[j, b] -= 1.0
                self.c_static[j, j] -= el.value
            elif isinstance(el, VoltageSource):
                self.vsources.append(el)
                self._stamp_vsource_topology(el.name, el.np, el.nn)
            elif isinstance(el, Vcvs):
                j = self._branch_index[el.name]
                self._stamp_vsource_topology(el.name, el.np, el.nn)
                self.g_static[j, self.node(el.ncp)] -= el.gain
                self.g_static[j, self.node(el.ncn)] += el.gain
            elif isinstance(el, Ccvs):
                j = self._branch_index[el.name]
                self._stamp_vsource_topology(el.name, el.np, el.nn)
                jc = self._control_branch(el.control)
                self.g_static[j, jc] -= el.transresistance
            elif isinstance(el, Vccs):
                a, b = self.node(el.np), self.node(el.nn)
                cp, cn = self.node(el.ncp), self.node(el.ncn)
                self.g_static[a, cp] += el.gm
                self.g_static[a, cn] -= el.gm
                self.g_static[b, cp] -= el.gm
                self.g_static[b, cn] += el.gm
            elif isinstance(el, Cccs):
                a, b = self.node(el.np), self.node(el.nn)
                jc = self._control_branch(el.control)
                self.g_static[a, jc] += el.gain
                self.g_static[b, jc] -= el.gain
            elif isinstance(el, CurrentSource):
                self.isources.append(el)
            elif isinstance(el, Mosfet):
                mos.append(el)
            elif isinstance(el, Bjt):
                bjts.append(el)
            elif isinstance(el, Diode):
                diodes.append(el)
            else:
                raise TypeError(f"unsupported element type {type(el).__name__}")

        # ---------------- device groups ----------------
        self.mos_group = self._build_mos_group(mos)
        self.bjt_group = self._build_bjt_group(bjts)
        self.diode_group = self._build_diode_group(diodes)
        if self.mos_group is not None:
            self._stamp_mos_capacitances()

        # index arrays reused every Newton iteration
        self._prepare_index_arrays()
        prof_count("mna.systems_built")

    # ------------------------------------------------------------------
    # Index helpers
    # ------------------------------------------------------------------
    def node(self, name: str) -> int:
        """Extended index for node ``name`` (ground maps to the dummy slot)."""
        if is_ground(name):
            return self.ground_index
        try:
            return self._node_index[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r} in circuit {self.circuit.name!r}") from None

    def branch(self, element_name: str) -> int:
        """Extended index of a branch-current unknown."""
        try:
            return self._branch_index[element_name]
        except KeyError:
            raise KeyError(f"element {element_name!r} has no branch current") from None

    def _control_branch(self, control: str) -> int:
        el = self.circuit.element(control)
        if not isinstance(el, (VoltageSource, Vcvs, Ccvs, Inductor)):
            raise TypeError(
                f"control element {control!r} must carry a branch current "
                f"(voltage source or inductor), got {type(el).__name__}"
            )
        return self._branch_index[control]

    # ------------------------------------------------------------------
    # Static stamping
    # ------------------------------------------------------------------
    def _stamp_conductance(self, mat: np.ndarray, n1: str, n2: str, g: float) -> None:
        a, b = self.node(n1), self.node(n2)
        mat[a, a] += g
        mat[a, b] -= g
        mat[b, a] -= g
        mat[b, b] += g

    def _stamp_vsource_topology(self, name: str, np_node: str, nn_node: str) -> None:
        j = self._branch_index[name]
        a, b = self.node(np_node), self.node(nn_node)
        self.g_static[a, j] += 1.0
        self.g_static[b, j] -= 1.0
        self.g_static[j, a] += 1.0
        self.g_static[j, b] -= 1.0

    def _build_mos_group(self, mos: list[Mosfet]) -> MosGroup | None:
        if not mos:
            return None
        return MosGroup(
            names=[el.name for el in mos],
            d=np.array([self.node(el.d) for el in mos]),
            g=np.array([self.node(el.g) for el in mos]),
            s=np.array([self.node(el.s) for el in mos]),
            b=np.array([self.node(el.b) for el in mos]),
            w=np.array([el.w for el in mos]),
            l=np.array([el.l for el in mos]),
            m=np.array([float(el.m) for el in mos]),
            models=[el.model for el in mos],
            temp_c=self.temp_c,
        )

    def _build_bjt_group(self, bjts: list[Bjt]) -> BjtGroup | None:
        if not bjts:
            return None
        return BjtGroup(
            names=[el.name for el in bjts],
            c=np.array([self.node(el.c) for el in bjts]),
            b=np.array([self.node(el.b) for el in bjts]),
            e=np.array([self.node(el.e) for el in bjts]),
            area=np.array([el.area for el in bjts]),
            models=[el.model for el in bjts],
            temp_c=self.temp_c,
        )

    def _build_diode_group(self, diodes: list[Diode]) -> DiodeGroup | None:
        if not diodes:
            return None
        return DiodeGroup(
            names=[el.name for el in diodes],
            np_idx=np.array([self.node(el.np) for el in diodes]),
            nn_idx=np.array([self.node(el.nn) for el in diodes]),
            area=np.array([el.area for el in diodes]),
            models=[el.model for el in diodes],
            temp_c=self.temp_c,
        )

    def _stamp_mos_capacitances(self) -> None:
        """Attach constant device capacitances to the dynamic matrix."""
        grp = self.mos_group
        cgs, cgd, cjun = grp.gate_capacitances()
        for k in range(len(grp)):
            pairs = (
                (grp.g[k], grp.s[k], cgs[k]),
                (grp.g[k], grp.d[k], cgd[k]),
                (grp.d[k], grp.b[k], cjun[k]),
                (grp.s[k], grp.b[k], cjun[k]),
            )
            for a, b, c in pairs:
                self.c_static[a, a] += c
                self.c_static[a, b] -= c
                self.c_static[b, a] -= c
                self.c_static[b, b] += c

    def stamp_plan(self) -> LinearStampPlan:
        """Flat COO indices of every linear ``+=`` this system performed.

        Walks the circuit with the dispatch chain of ``__init__`` and
        records, per scalar accumulation into ``g_static``/``c_static``,
        the flat extended index ``row*dim + col`` — in stamping order.
        Paired with :func:`linear_stamp_values` for a sibling circuit of
        the same topology, ``np.add.at`` replay rebuilds that sibling's
        static matrices bit for bit (see :mod:`repro.spice.batch`).
        """
        dim = self.size + 1
        g_idx: list[int] = []
        c_idx: list[int] = []

        def conduct(idx: list[int], n1: str, n2: str) -> None:
            a, b = self.node(n1), self.node(n2)
            idx += [a * dim + a, a * dim + b, b * dim + a, b * dim + b]

        def vsource_topology(name: str, np_node: str, nn_node: str) -> int:
            j = self._branch_index[name]
            a, b = self.node(np_node), self.node(nn_node)
            g_idx.extend([a * dim + j, b * dim + j, j * dim + a, j * dim + b])
            return j

        for el in self.circuit:
            if isinstance(el, Resistor):
                conduct(g_idx, el.n1, el.n2)
            elif isinstance(el, Switch):
                conduct(g_idx, el.n1, el.n2)
            elif isinstance(el, Capacitor):
                conduct(c_idx, el.n1, el.n2)
            elif isinstance(el, Inductor):
                j = self._branch_index[el.name]
                a, b = self.node(el.n1), self.node(el.n2)
                g_idx += [a * dim + j, b * dim + j, j * dim + a, j * dim + b]
                c_idx += [j * dim + j]
            elif isinstance(el, VoltageSource):
                vsource_topology(el.name, el.np, el.nn)
            elif isinstance(el, Vcvs):
                j = vsource_topology(el.name, el.np, el.nn)
                g_idx += [j * dim + self.node(el.ncp), j * dim + self.node(el.ncn)]
            elif isinstance(el, Ccvs):
                j = vsource_topology(el.name, el.np, el.nn)
                g_idx += [j * dim + self._control_branch(el.control)]
            elif isinstance(el, Vccs):
                a, b = self.node(el.np), self.node(el.nn)
                cp, cn = self.node(el.ncp), self.node(el.ncn)
                g_idx += [a * dim + cp, a * dim + cn, b * dim + cp, b * dim + cn]
            elif isinstance(el, Cccs):
                a, b = self.node(el.np), self.node(el.nn)
                jc = self._control_branch(el.control)
                g_idx += [a * dim + jc, b * dim + jc]
            elif isinstance(el, (CurrentSource, Mosfet, Bjt, Diode)):
                pass
            else:
                raise TypeError(f"unsupported element type {type(el).__name__}")
        return LinearStampPlan(
            g_idx=np.asarray(g_idx, dtype=np.intp),
            c_idx=np.asarray(c_idx, dtype=np.intp),
            dim=dim,
        )

    def _prepare_index_arrays(self) -> None:
        """Precompute flat COO stamp-index arrays for the device groups.

        Jacobian entries are addressed as flat indices into the extended
        (dim x dim) matrix: ``row*dim + col``.  BJT and diode stamp
        positions are fully static, so their 9/4 per-device entries
        collapse into one concatenated index array and a single
        ``np.add.at`` per Newton iteration.  MOS rows depend on the
        source/drain swap, so the row bases ``d*dim``/``s*dim`` are
        cached and the per-iteration work is a ``where`` selection into a
        preallocated (8, n_mos) buffer instead of recomputing the
        products from scratch.
        """
        dim = self.size + 1

        if self.mos_group is not None:
            grp = self.mos_group
            self._mos_row_d = grp.d * dim
            self._mos_row_s = grp.s * dim
            self._mos_idx_buf = np.empty((8, len(grp)), dtype=np.intp)
            self._mos_val_buf = np.empty((8, len(grp)))

        if self.bjt_group is not None:
            grp = self.bjt_group
            c, b, e = grp.c * dim, grp.b * dim, grp.e * dim
            self._bjt_idx = np.concatenate([
                c + grp.b, c + grp.c, c + grp.e,
                b + grp.b, b + grp.c, b + grp.e,
                e + grp.b, e + grp.c, e + grp.e,
            ])

        if self.diode_group is not None:
            grp = self.diode_group
            a, b = grp.np_idx, grp.nn_idx
            self._diode_idx = np.concatenate([
                a * dim + a, a * dim + b, b * dim + a, b * dim + b,
            ])

        # Source topology for the cached right-hand sides.
        self._vs_branch_idx = np.array(
            [self.branch(src.name) for src in self.vsources], dtype=np.intp
        )
        self._is_np_idx = np.array(
            [self.node(src.np) for src in self.isources], dtype=np.intp
        )
        self._is_nn_idx = np.array(
            [self.node(src.nn) for src in self.isources], dtype=np.intp
        )
        self._rhs_dc_key: tuple | None = None
        self._rhs_dc_cache: np.ndarray | None = None
        self._rhs_ac_key: tuple | None = None
        self._rhs_ac_cache: np.ndarray | None = None
        # Static COO triplets of the reduced g_static, built lazily on the
        # first assemble_csc call (dense-only systems never pay for it).
        self._coo_static: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    @property
    def prefer_sparse(self) -> bool:
        """True when this system is large enough for the sparse solvers."""
        return self.num_nodes >= self.sparse_threshold

    def cond1_estimate(self, x_ext: np.ndarray, rhs_ext: np.ndarray,
                       gmin: float = 0.0) -> float | None:
        """Cheap 1-norm condition estimate of the reduced Jacobian at
        ``x_ext``.

        The classic Hager/Higham estimator (LAPACK ``gecon`` on an LU
        factorization — O(n^2) beyond the factor), so a non-convergence
        event or ``repro doctor`` can report *the Jacobian was
        ill-conditioned* instead of a bare failure.  Diagnostics only:
        called on cold degradation paths, never on the solve hot path.
        Returns ``None`` when the estimate itself fails.
        """
        try:
            from scipy.linalg import lapack, lu_factor

            n = self.size
            jac, _, _ = self.assemble(x_ext, rhs_ext, gmin=gmin)
            a = np.asarray(jac[:n, :n], dtype=float, order="F")
            anorm = float(np.abs(a).sum(axis=0).max())
            lu, _piv = lu_factor(a, check_finite=False)
            rcond, info = lapack.dgecon(lu, anorm, norm="1")
            if info != 0 or not np.isfinite(rcond):
                return None
            return float("inf") if rcond == 0.0 else float(1.0 / rcond)
        except Exception:
            return None

    # ------------------------------------------------------------------
    # Right-hand sides
    # ------------------------------------------------------------------
    def rhs_dc(self, scale: float = 1.0) -> np.ndarray:
        """DC excitation vector (extended); cached, treat as read-only.

        The cache key snapshots every source's DC value, so mutating a
        source (gain switching, sweeps, source stepping via ``scale``)
        invalidates automatically on the next call.
        """
        key = (
            scale,
            tuple(src.dc for src in self.vsources),
            tuple(src.dc for src in self.isources),
        )
        if self._rhs_dc_cache is not None and key == self._rhs_dc_key:
            return self._rhs_dc_cache

        b = np.zeros(self.size + 1)
        if self.vsources:
            b[self._vs_branch_idx] = scale * np.array(key[1])
        if self.isources:
            vals = scale * np.array(key[2])
            np.subtract.at(b, self._is_np_idx, vals)
            np.add.at(b, self._is_nn_idx, vals)
        b[self.ground_index] = 0.0
        b.setflags(write=False)  # callers must copy() before mutating
        self._rhs_dc_key = key
        self._rhs_dc_cache = b
        return b

    def rhs_ac(self) -> np.ndarray:
        """Complex AC excitation vector (extended); cached, treat as read-only.

        Invalidation mirrors :meth:`rhs_dc`: the key snapshots every
        source's ``(ac, ac_phase)`` pair, which the PSRR/CMRR drivers
        mutate between solves.
        """
        key = (
            tuple((src.ac, src.ac_phase) for src in self.vsources),
            tuple((src.ac, src.ac_phase) for src in self.isources),
        )
        if self._rhs_ac_cache is not None and key == self._rhs_ac_key:
            return self._rhs_ac_cache

        b = np.zeros(self.size + 1, dtype=complex)
        for src, j in zip(self.vsources, self._vs_branch_idx):
            if src.ac != 0.0:
                b[j] += src.ac * np.exp(1j * src.ac_phase)
        for src, a, c in zip(self.isources, self._is_np_idx, self._is_nn_idx):
            if src.ac != 0.0:
                phasor = src.ac * np.exp(1j * src.ac_phase)
                b[a] -= phasor
                b[c] += phasor
        b[self.ground_index] = 0.0
        b.setflags(write=False)  # callers must copy() before mutating
        self._rhs_ac_key = key
        self._rhs_ac_cache = b
        return b

    def rhs_transient(self, t: float) -> np.ndarray:
        """Time-domain excitation vector at time ``t`` (extended)."""
        b = np.zeros(self.size + 1)
        for src in self.vsources:
            b[self.branch(src.name)] += src.value_at(t)
        for src in self.isources:
            a, c = self.node(src.np), self.node(src.nn)
            value = src.value_at(t)
            b[a] -= value
            b[c] += value
        return b

    # ------------------------------------------------------------------
    # Nonlinear assembly
    # ------------------------------------------------------------------
    def assemble(
        self, x_ext: np.ndarray, rhs_ext: np.ndarray, gmin: float = 0.0
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """Residual and Jacobian at solution ``x_ext``.

        Returns ``(jac, resid, evals)`` where both are extended-dimension
        and ``evals`` carries the device evaluations (reused for OP info
        and noise).  ``gmin`` adds a leak to every node diagonal (gmin
        stepping).
        """
        prof_count("mna.assemble")
        dim = self.size + 1
        jac = self.g_static.copy()
        resid = self.g_static @ x_ext - rhs_ext
        evals: dict = {}

        if gmin > 0.0:
            idx = np.arange(self.num_nodes)
            jac[idx, idx] += gmin
            resid[idx] += gmin * x_ext[idx]

        if self.mos_group is not None:
            ev = self.mos_group.evaluate(x_ext)
            evals["mos"] = ev
            self._stamp_mos(jac, resid, ev)

        if self.bjt_group is not None:
            ev = self.bjt_group.evaluate(x_ext)
            evals["bjt"] = ev
            self._stamp_bjt(jac, resid, ev)

        if self.diode_group is not None:
            ev = self.diode_group.evaluate(x_ext)
            evals["diode"] = ev
            self._stamp_diode(jac, resid, ev)

        # Zero the dummy ground row/column so it never feeds back.
        jac[self.ground_index, :] = 0.0
        jac[:, self.ground_index] = 0.0
        resid[self.ground_index] = 0.0
        return jac, resid, evals

    def _stamp_mos(self, jac: np.ndarray, resid: np.ndarray, ev) -> None:
        self._mos_residual(resid, ev)
        idx, vals = self._mos_jac_entries(ev)
        np.add.at(jac.reshape(-1), idx.reshape(-1), vals.reshape(-1))

    def _mos_residual(self, resid: np.ndarray, ev) -> None:
        grp = self.mos_group
        sw = ev.swapped
        eff_d = np.where(sw, grp.s, grp.d)
        eff_s = np.where(sw, grp.d, grp.s)
        ids_into_eff_drain = grp.sign * ev.ids  # physical current into eff_d
        np.add.at(resid, eff_d, ids_into_eff_drain)
        np.add.at(resid, eff_s, -ids_into_eff_drain)

    def _mos_jac_entries(self, ev) -> tuple[np.ndarray, np.ndarray]:
        """Flat extended Jacobian (index, value) buffers for the MOS group.

        Shared by the dense ``np.add.at`` stamp and the sparse COO
        assembly; the returned (8, n_mos) buffers are reused every
        iteration.
        """
        grp = self.mos_group
        sw = ev.swapped
        eff_d = np.where(sw, grp.s, grp.d)
        eff_s = np.where(sw, grp.d, grp.s)
        gm, gds, gmb = ev.gm, ev.gds, ev.gmb
        gss = gm + gds + gmb

        # Only the effective row/column selection depends on the per-
        # iteration swap state; the row bases and scratch buffers come
        # precomputed from _prepare_index_arrays.
        rows_d = np.where(sw, self._mos_row_s, self._mos_row_d)
        rows_s = np.where(sw, self._mos_row_d, self._mos_row_s)
        idx, vals = self._mos_idx_buf, self._mos_val_buf
        np.add(rows_d, eff_d, out=idx[0])
        np.add(rows_d, grp.g, out=idx[1])
        np.add(rows_d, eff_s, out=idx[2])
        np.add(rows_d, grp.b, out=idx[3])
        np.add(rows_s, eff_d, out=idx[4])
        np.add(rows_s, grp.g, out=idx[5])
        np.add(rows_s, eff_s, out=idx[6])
        np.add(rows_s, grp.b, out=idx[7])
        vals[0] = gds
        vals[1] = gm
        np.negative(gss, out=vals[2])
        vals[3] = gmb
        np.negative(gds, out=vals[4])
        np.negative(gm, out=vals[5])
        vals[6] = gss
        np.negative(gmb, out=vals[7])
        return idx, vals

    def _stamp_bjt(self, jac: np.ndarray, resid: np.ndarray, ev) -> None:
        self._bjt_residual(resid, ev)
        np.add.at(jac.reshape(-1), self._bjt_idx, self._bjt_jac_vals(ev))

    def _bjt_residual(self, resid: np.ndarray, ev) -> None:
        grp = self.bjt_group
        np.add.at(resid, grp.c, ev.ic)
        np.add.at(resid, grp.b, ev.ib)
        np.add.at(resid, grp.e, -(ev.ic + ev.ib))

    def _bjt_jac_vals(self, ev) -> np.ndarray:
        gm, gpi, go, gmu = ev.gm, ev.gpi, ev.go, ev.gmu
        return np.concatenate([
            gm - go, go, -gm,
            gpi + gmu, -gmu, -gpi,
            -(gm - go) - (gpi + gmu), -go + gmu, gm + gpi,
        ])

    def _stamp_diode(self, jac: np.ndarray, resid: np.ndarray, ev) -> None:
        self._diode_residual(resid, ev)
        np.add.at(jac.reshape(-1), self._diode_idx, self._diode_jac_vals(ev))

    def _diode_residual(self, resid: np.ndarray, ev) -> None:
        grp = self.diode_group
        np.add.at(resid, grp.np_idx, ev.current)
        np.add.at(resid, grp.nn_idx, -ev.current)

    def _diode_jac_vals(self, ev) -> np.ndarray:
        return np.concatenate([ev.gd, -ev.gd, -ev.gd, ev.gd])

    # ------------------------------------------------------------------
    # Sparse assembly
    # ------------------------------------------------------------------
    def assemble_csc(
        self, x_ext: np.ndarray, rhs_ext: np.ndarray, gmin: float = 0.0
    ):
        """Sparse analogue of :meth:`assemble` for large systems.

        Returns ``(a, resid, evals)`` where ``a`` is the *reduced*
        (size x size) Jacobian as a ``scipy.sparse`` CSC matrix (ground
        row/column dropped, which is what the dense path's explicit
        zeroing achieves) and ``resid`` is the extended residual exactly
        as :meth:`assemble` computes it.  Device stamps reuse the same
        (index, value) computations as the dense path; the only
        numerical difference is COO duplicate-summation order, which the
        sparse solvers' scaled-residual acceptance gate bounds.  Callers
        should consult :attr:`prefer_sparse` — below the threshold the
        dense path stays bit-identical to the historical behaviour.
        """
        from scipy import sparse

        n = self.size
        dim = n + 1
        if self._coo_static is None:
            rows, cols = np.nonzero(self.g_static[:n, :n])
            self._coo_static = (
                rows.astype(np.intp),
                cols.astype(np.intp),
                self.g_static[rows, cols].copy(),
            )
        srows, scols, svals = self._coo_static
        rows_parts = [srows]
        cols_parts = [scols]
        vals_parts = [svals]

        resid = self.g_static @ x_ext - rhs_ext
        evals: dict = {}

        if gmin > 0.0:
            idx = np.arange(self.num_nodes, dtype=np.intp)
            rows_parts.append(idx)
            cols_parts.append(idx)
            vals_parts.append(np.full(self.num_nodes, gmin))
            resid[idx] += gmin * x_ext[idx]

        def device(flat_idx: np.ndarray, vals: np.ndarray) -> None:
            r, c = np.divmod(flat_idx, dim)
            keep = (r < n) & (c < n)
            rows_parts.append(r[keep])
            cols_parts.append(c[keep])
            vals_parts.append(vals[keep])

        if self.mos_group is not None:
            ev = self.mos_group.evaluate(x_ext)
            evals["mos"] = ev
            self._mos_residual(resid, ev)
            idx, vals = self._mos_jac_entries(ev)
            device(idx.reshape(-1), vals.reshape(-1))
        if self.bjt_group is not None:
            ev = self.bjt_group.evaluate(x_ext)
            evals["bjt"] = ev
            self._bjt_residual(resid, ev)
            device(self._bjt_idx, self._bjt_jac_vals(ev))
        if self.diode_group is not None:
            ev = self.diode_group.evaluate(x_ext)
            evals["diode"] = ev
            self._diode_residual(resid, ev)
            device(self._diode_idx, self._diode_jac_vals(ev))

        resid[self.ground_index] = 0.0
        a = sparse.coo_matrix(
            (
                np.concatenate(vals_parts),
                (np.concatenate(rows_parts), np.concatenate(cols_parts)),
            ),
            shape=(n, n),
        ).tocsc()
        return a, resid, evals

    # ------------------------------------------------------------------
    # Small-signal linearisation and noise
    # ------------------------------------------------------------------
    def linearize(self, x_ext: np.ndarray) -> np.ndarray:
        """Small-signal conductance matrix at operating point ``x_ext``."""
        jac, _, _ = self.assemble(x_ext, np.zeros(self.size + 1))
        return jac

    def noise_sources(self, x_ext: np.ndarray) -> list[NoiseSource]:
        """Enumerate every noise generator at the operating point."""
        sources: list[NoiseSource] = []
        kt4 = 4.0 * BOLTZMANN * kelvin(self.temp_c)

        for el in self.circuit:
            if isinstance(el, Resistor) and el.noisy:
                sources.append(
                    NoiseSource(
                        device=el.name,
                        mechanism="thermal",
                        node_a=self.node(el.n1),
                        node_b=self.node(el.n2),
                        psd_flat=kt4 / el.value_at(self.temp_c),
                    )
                )
            elif isinstance(el, Switch) and el.noisy and el.closed:
                sources.append(
                    NoiseSource(
                        device=el.name,
                        mechanism="thermal",
                        node_a=self.node(el.n1),
                        node_b=self.node(el.n2),
                        psd_flat=kt4 / el.ron,
                    )
                )

        if self.mos_group is not None:
            grp = self.mos_group
            ev = grp.evaluate(x_ext)
            thermal = grp.thermal_noise_psd(ev)
            flicker_coeff = grp.kf / (grp.cox * grp.w * grp.l * grp.m) * ev.gm**2
            for k, name in enumerate(grp.names):
                sources.append(
                    NoiseSource(
                        device=name,
                        mechanism="thermal",
                        node_a=int(grp.d[k]),
                        node_b=int(grp.s[k]),
                        psd_flat=float(thermal[k]),
                    )
                )
                if flicker_coeff[k] > 0.0:
                    sources.append(
                        NoiseSource(
                            device=name,
                            mechanism="flicker",
                            node_a=int(grp.d[k]),
                            node_b=int(grp.s[k]),
                            psd_flat=0.0,
                            psd_flicker=float(flicker_coeff[k]),
                            af=float(grp.af[k]),
                        )
                    )

        if self.bjt_group is not None:
            grp = self.bjt_group
            ev = grp.evaluate(x_ext)
            sic, sib = grp.shot_noise_psd(ev)
            fl = grp.kf * np.power(np.abs(ev.ib), grp.af)
            for k, name in enumerate(grp.names):
                sources.append(
                    NoiseSource(
                        device=name,
                        mechanism="shot_c",
                        node_a=int(grp.c[k]),
                        node_b=int(grp.e[k]),
                        psd_flat=float(sic[k]),
                    )
                )
                sources.append(
                    NoiseSource(
                        device=name,
                        mechanism="shot_b",
                        node_a=int(grp.b[k]),
                        node_b=int(grp.e[k]),
                        psd_flat=float(sib[k]),
                        psd_flicker=float(fl[k]),
                        af=float(grp.af[k]),
                    )
                )

        if self.diode_group is not None:
            grp = self.diode_group
            ev = grp.evaluate(x_ext)
            shot = grp.shot_noise_psd(ev)
            for k, name in enumerate(grp.names):
                sources.append(
                    NoiseSource(
                        device=name,
                        mechanism="shot",
                        node_a=int(grp.np_idx[k]),
                        node_b=int(grp.nn_idx[k]),
                        psd_flat=float(shot[k]),
                    )
                )
        return sources
