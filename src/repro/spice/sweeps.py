"""Parameter sweeps with solution continuation.

Self-biased circuits (bandgap, bias generators, class-AB loops) have
degenerate or spurious DC states; jumping straight to an extreme
temperature or supply can land on the wrong one.  These helpers walk the
sweep from a trusted anchor point, warm-starting each solve from the
neighbouring solution — the numeric analogue of slowly turning the knob
on the bench.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.spice.dc import NewtonOptions, OperatingPoint, dc_operating_point
from repro.spice.netlist import Circuit


def temperature_sweep(
    circuit: Circuit,
    temps_c: np.ndarray,
    anchor_c: float = 25.0,
    options: NewtonOptions | None = None,
    max_step_c: float = 12.0,
) -> list[OperatingPoint]:
    """Operating point at each temperature, warm-started outward from the
    anchor temperature.  Returns points ordered like ``temps_c``.

    Continuation steps are limited to ``max_step_c``: bipolar saturation
    currents change by orders of magnitude across the consumer range, and
    a warm start across a 40 K jump can throw Newton into a degenerate
    equilibrium of a self-biased loop.  Hidden intermediate solves keep
    each jump small.
    """
    temps_c = np.asarray(temps_c, dtype=float)
    anchor_op = dc_operating_point(circuit, temp_c=anchor_c, options=options)

    def walk(x_from: np.ndarray, t_from: float, t_to: float) -> OperatingPoint:
        """Solve at t_to via intermediate solves every max_step_c."""
        n_steps = max(1, int(np.ceil(abs(t_to - t_from) / max_step_c)))
        x = x_from
        op = None
        for k in range(1, n_steps + 1):
            t_k = t_from + (t_to - t_from) * k / n_steps
            op = dc_operating_point(circuit, temp_c=float(t_k),
                                    options=options, x0=x)
            x = op.x
        return op

    results: dict[int, OperatingPoint] = {}
    below = sorted((i for i in range(len(temps_c)) if temps_c[i] <= anchor_c),
                   key=lambda i: -temps_c[i])
    above = sorted((i for i in range(len(temps_c)) if temps_c[i] > anchor_c),
                   key=lambda i: temps_c[i])
    for chain in (below, above):
        x_prev = anchor_op.x
        t_prev = anchor_c
        for i in chain:
            op = walk(x_prev, t_prev, float(temps_c[i]))
            results[i] = op
            x_prev = op.x
            t_prev = float(temps_c[i])
    return [results[i] for i in range(len(temps_c))]


def source_value_sweep(
    circuit: Circuit,
    source_name: str,
    values: np.ndarray,
    anchor: float | None = None,
    temp_c: float = 25.0,
    options: NewtonOptions | None = None,
) -> list[OperatingPoint]:
    """DC sweep of a source value with continuation from an anchor value.

    Unlike :func:`repro.spice.dc.dc_sweep` this returns full operating
    points and walks outward from ``anchor`` (default: first value).
    """
    from repro.spice.elements import CurrentSource, VoltageSource

    el = circuit.element(source_name)
    if not isinstance(el, (VoltageSource, CurrentSource)):
        raise TypeError(f"{source_name!r} is not a sweepable source")
    values = np.asarray(values, dtype=float)
    anchor_v = float(values[0]) if anchor is None else anchor

    original = el.dc
    system = circuit.compile(temp_c=temp_c)
    results: dict[int, OperatingPoint] = {}
    try:
        el.dc = anchor_v
        anchor_op = dc_operating_point(system, options=options)
        below = sorted((i for i in range(len(values)) if values[i] <= anchor_v),
                       key=lambda i: -values[i])
        above = sorted((i for i in range(len(values)) if values[i] > anchor_v),
                       key=lambda i: values[i])
        for chain in (below, above):
            x_prev = anchor_op.x
            for i in chain:
                el.dc = float(values[i])
                op = dc_operating_point(system, options=options, x0=x_prev)
                results[i] = op
                x_prev = op.x
    finally:
        el.dc = original
    return [results[i] for i in range(len(values))]


def binary_search_threshold(
    probe: Callable[[float], bool],
    lo: float,
    hi: float,
    tol: float = 1e-3,
    max_iter: int = 60,
) -> float:
    """Find the boundary where ``probe`` flips from True (at ``hi``) to
    False (at ``lo``); used for compliance/minimum-supply searches."""
    if not probe(hi):
        return float("nan")
    if probe(lo):
        return lo
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if probe(mid):
            hi = mid
        else:
            lo = mid
        if hi - lo < tol:
            break
    return hi
