"""SPICE-deck export.

Writes a :class:`~repro.spice.netlist.Circuit` as a standard ``.cir``
netlist (SPICE3/ngspice dialect) with ``.model`` cards for every device
flavour in use.  The point is auditability: anyone with a real SPICE can
re-run this package's circuits and cross-check the MNA engine.  The
export is lossy only where the engines differ (our EKV-style MOS maps to
LEVEL=1 cards with the same VTO/KP/GAMMA/PHI/LAMBDA; flicker/overlap
parameters carry over as KF/CGSO/CGDO).
"""

from __future__ import annotations

import io

from repro.spice.devices.bjt import BjtModel
from repro.spice.devices.diode import DiodeModel
from repro.spice.devices.mosfet import MosModel
from repro.spice.elements import (
    Bjt,
    Capacitor,
    Cccs,
    Ccvs,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    Pulse,
    Pwl,
    Resistor,
    Sine,
    Switch,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.spice.netlist import Circuit, is_ground


def _node(name: str) -> str:
    """SPICE node name (ground becomes 0; dots are legal in most dialects)."""
    return "0" if is_ground(name) else name


def _fmt(value: float) -> str:
    """Shortest decimal that parses back to the exact value.

    The old fixed ``.6g`` silently truncated mantissas (a hand-matched
    24.9993 fF compensation trim exported as ``2.49993e-14`` is fine,
    but a 7th significant digit was simply lost) and rendered negative
    zero as ``-0``; this version widens the precision until the text
    round-trips through ``float`` exactly, so sub-femto device values
    survive an export -> re-import cycle bit-for-bit and zero is always
    the literal ``0``.
    """
    v = float(value)
    if v == 0.0:  # catches -0.0 too: "0", not "-0"
        return "0"
    for spec in (".6g", ".9g", ".12g", ".17g"):
        text = format(v, spec)
        if float(text) == v:
            return text
    return repr(v)  # unreachable: .17g always round-trips


def _control_card_name(circuit: Circuit, control: str) -> str:
    """Card name of an F/H control element, prefixed by its real type.

    The control of a current-controlled source is any branch-current
    element — a V source, but also an E/H source or an inductor.  The
    old export hardcoded the ``V`` prefix, producing dangling references
    for the other three; emit the prefix the control element actually
    exports under so the reference resolves on re-ingest.
    """
    el = circuit.element(control)
    if isinstance(el, Vcvs):
        return f"E{control}"
    if isinstance(el, Ccvs):
        return f"H{control}"
    if isinstance(el, Inductor):
        return f"L{control}"
    return f"V{control}"


def _source_suffix(el: VoltageSource | CurrentSource) -> str:
    parts = [f"DC {_fmt(el.dc)}"]
    if el.ac:
        parts.append(f"AC {_fmt(el.ac)} {_fmt(el.ac_phase)}")
    wave = el.wave
    if isinstance(wave, Sine):
        parts.append(
            f"SIN({_fmt(wave.offset)} {_fmt(wave.amplitude)} "
            f"{_fmt(wave.freq)} {_fmt(wave.delay)} 0 "
            f"{_fmt(wave.phase * 180.0 / 3.141592653589793)})"
        )
    elif isinstance(wave, Pulse):
        parts.append(
            f"PULSE({_fmt(wave.v1)} {_fmt(wave.v2)} {_fmt(wave.delay)} "
            f"{_fmt(wave.rise)} {_fmt(wave.fall)} {_fmt(wave.width)} "
            f"{_fmt(wave.period)})"
        )
    elif isinstance(wave, Pwl):
        pts = " ".join(f"{_fmt(t)} {_fmt(v)}"
                       for t, v in zip(wave.times, wave.values))
        parts.append(f"PWL({pts})")
    return " ".join(parts)


def _mos_model_card(model: MosModel) -> str:
    kind = "NMOS" if model.polarity == "nmos" else "PMOS"
    lam = model.clm / 5e-6  # representative L for the card's fixed lambda
    return (
        f".model {model.name} {kind} (LEVEL=1 VTO={_fmt(model.vth0 if kind == 'NMOS' else -model.vth0)} "
        f"KP={_fmt(model.kp)} GAMMA={_fmt(model.gamma)} PHI={_fmt(model.phi)} "
        f"LAMBDA={_fmt(lam)} KF={_fmt(model.kf)} AF={_fmt(model.af)} "
        f"CGSO={_fmt(model.cgso)} CGDO={_fmt(model.cgdo)})"
    )


def _bjt_model_card(model: BjtModel) -> str:
    kind = "NPN" if model.polarity == "npn" else "PNP"
    return (
        f".model {model.name} {kind} (IS={_fmt(model.is_sat)} "
        f"BF={_fmt(model.beta_f)} BR={_fmt(model.beta_r)} VAF={_fmt(model.vaf)} "
        f"XTI={_fmt(model.xti)} EG={_fmt(model.eg)})"
    )


def _diode_model_card(model: DiodeModel) -> str:
    return (
        f".model {model.name} D (IS={_fmt(model.is_sat)} "
        f"N={_fmt(model.n_ideality)} XTI={_fmt(model.xti)} EG={_fmt(model.eg)})"
    )


def export_netlist(circuit: Circuit, title: str | None = None) -> str:
    """Render the circuit as a SPICE deck (returns the text)."""
    out = io.StringIO()
    out.write(f"* {title or circuit.name}\n")
    out.write("* exported by repro.spice.export (MNA engine cross-check deck)\n")

    mos_models: dict[str, MosModel] = {}
    bjt_models: dict[str, BjtModel] = {}
    diode_models: dict[str, DiodeModel] = {}

    for el in circuit:
        if isinstance(el, Resistor):
            out.write(f"R{el.name} {_node(el.n1)} {_node(el.n2)} "
                      f"{_fmt(el.value)}")
            if el.tc1 or el.tc2:
                out.write(f" TC={_fmt(el.tc1)},{_fmt(el.tc2)}")
            out.write("\n")
        elif isinstance(el, Capacitor):
            out.write(f"C{el.name} {_node(el.n1)} {_node(el.n2)} "
                      f"{_fmt(el.value)}\n")
        elif isinstance(el, Inductor):
            out.write(f"L{el.name} {_node(el.n1)} {_node(el.n2)} "
                      f"{_fmt(el.value)}\n")
        elif isinstance(el, VoltageSource):
            out.write(f"V{el.name} {_node(el.np)} {_node(el.nn)} "
                      f"{_source_suffix(el)}\n")
        elif isinstance(el, CurrentSource):
            out.write(f"I{el.name} {_node(el.np)} {_node(el.nn)} "
                      f"{_source_suffix(el)}\n")
        elif isinstance(el, Vcvs):
            out.write(f"E{el.name} {_node(el.np)} {_node(el.nn)} "
                      f"{_node(el.ncp)} {_node(el.ncn)} {_fmt(el.gain)}\n")
        elif isinstance(el, Vccs):
            out.write(f"G{el.name} {_node(el.np)} {_node(el.nn)} "
                      f"{_node(el.ncp)} {_node(el.ncn)} {_fmt(el.gm)}\n")
        elif isinstance(el, Cccs):
            out.write(f"F{el.name} {_node(el.np)} {_node(el.nn)} "
                      f"{_control_card_name(circuit, el.control)} "
                      f"{_fmt(el.gain)}\n")
        elif isinstance(el, Ccvs):
            out.write(f"H{el.name} {_node(el.np)} {_node(el.nn)} "
                      f"{_control_card_name(circuit, el.control)} "
                      f"{_fmt(el.transresistance)}\n")
        elif isinstance(el, Switch):
            # exported as the resistor it is modelled as
            out.write(f"R{el.name} {_node(el.n1)} {_node(el.n2)} "
                      f"{_fmt(el.resistance)} ; switch "
                      f"({'on' if el.closed else 'off'})\n")
        elif isinstance(el, Mosfet):
            mos_models[el.model.name] = el.model
            out.write(f"M{el.name} {_node(el.d)} {_node(el.g)} "
                      f"{_node(el.s)} {_node(el.b)} {el.model.name} "
                      f"W={_fmt(el.w)} L={_fmt(el.l)} M={el.m}\n")
        elif isinstance(el, Bjt):
            bjt_models[el.model.name] = el.model
            out.write(f"Q{el.name} {_node(el.c)} {_node(el.b)} "
                      f"{_node(el.e)} {el.model.name} {_fmt(el.area)}\n")
        elif isinstance(el, Diode):
            diode_models[el.model.name] = el.model
            out.write(f"D{el.name} {_node(el.np)} {_node(el.nn)} "
                      f"{el.model.name} {_fmt(el.area)}\n")
        else:
            raise TypeError(f"cannot export element type {type(el).__name__}")

    out.write("\n")
    # Model cards sorted by name: the deck is a canonical function of the
    # circuit *contents*, not of the order devices happened to be added.
    for _, model in sorted(mos_models.items()):
        out.write(_mos_model_card(model) + "\n")
    for _, model in sorted(bjt_models.items()):
        out.write(_bjt_model_card(model) + "\n")
    for _, model in sorted(diode_models.items()):
        out.write(_diode_model_card(model) + "\n")
    out.write(".end\n")
    return out.getvalue()


def write_netlist(circuit: Circuit, path: str, title: str | None = None) -> None:
    """Export to a file."""
    with open(path, "w") as fh:
        fh.write(export_netlist(circuit, title))
