"""DC operating point and DC sweeps.

Newton-Raphson with componentwise voltage limiting, falling back to gmin
stepping and then source stepping.  The paper's circuits (bandgap with a
degenerate zero-current state, class-AB loops) exercise all three paths;
builders provide nodesets so the common case converges directly.

Systems above :attr:`repro.spice.mna.MnaSystem.sparse_threshold` nodes
(large ingested netlists) take a SuperLU sparse linear step instead of
dense LAPACK, gated per step by the scaled-residual acceptance check and
falling back to the dense path on any doubt; smaller systems never touch
the sparse code and stay bit-identical to the historical behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.events import active_event_log, event
from repro.obs.profile import prof_count
from repro.spice.elements import CurrentSource, Mosfet, VoltageSource
from repro.spice.mna import MnaSystem
from repro.spice.netlist import Circuit, is_ground


class ConvergenceError(RuntimeError):
    """Raised when no DC solution could be found."""


@dataclass
class NewtonOptions:
    """Tolerances and limits for the Newton loop."""

    max_iterations: int = 150
    vntol: float = 1e-9          # voltage update tolerance [V]
    reltol: float = 1e-6
    abstol: float = 1e-10        # KCL residual tolerance [A]
    vlimit: float = 0.5          # componentwise per-iteration step clamp [V]


@dataclass
class MosOpInfo:
    """Operating-point record for one MOSFET."""

    name: str
    ids: float
    vgs: float
    vds: float
    vsb: float
    veff: float
    vdsat: float
    vth: float
    gm: float
    gds: float
    gmb: float
    saturated: bool


@dataclass
class BjtOpInfo:
    """Operating-point record for one BJT."""

    name: str
    ic: float
    ib: float
    vbe: float
    gm: float
    gpi: float
    go: float


class OperatingPoint:
    """A converged DC solution with inspection helpers."""

    def __init__(self, system: MnaSystem, x_ext: np.ndarray, iterations: int, strategy: str,
                 *, worst_resid: float | None = None,
                 latch_reason: str | None = None):
        self.system = system
        self.x = x_ext
        self.iterations = iterations
        self.strategy = strategy
        #: Worst KCL residual at the accepted solution [A] (telemetry).
        self.worst_resid = worst_resid
        #: Why the sparse Newton path latched to dense, if it did.
        self.latch_reason = latch_reason
        self._small_signal = None

    def health(self) -> dict:
        """Solver-health record for this solve — what the campaign
        sidecar aggregates per unit (never serialised into results)."""
        h: dict = {"iterations": self.iterations, "strategy": self.strategy,
                   "worst_resid": self.worst_resid}
        if self.latch_reason:
            h["latch_reason"] = self.latch_reason
        ss = self._small_signal
        if ss is not None:
            latches = ss.latch_reasons()
            if latches:
                h["small_signal_latches"] = latches
        return h

    def small_signal(self):
        """Cached :class:`repro.spice.linsolve.SmallSignalContext`.

        Every small-signal analysis (AC, noise, PSRR/CMRR, transfer
        probes) shares this one linearisation instead of re-calling
        ``system.linearize`` per metric.
        """
        if self._small_signal is None:
            from repro.spice.linsolve import SmallSignalContext

            self._small_signal = SmallSignalContext(self)
        return self._small_signal

    def v(self, node: str) -> float:
        """Node voltage [V]."""
        if is_ground(node):
            return 0.0
        return float(self.x[self.system.node(node)])

    def vdiff(self, node_p: str, node_n: str) -> float:
        """Differential voltage V(node_p) - V(node_n)."""
        return self.v(node_p) - self.v(node_n)

    def i(self, element_name: str) -> float:
        """Branch current of a voltage-source-like element [A]."""
        return float(self.x[self.system.branch(element_name)])

    def node_voltages(self) -> dict[str, float]:
        return {name: self.v(name) for name in self.system.node_names}

    # ------------------------------------------------------------------
    # Device inspection
    # ------------------------------------------------------------------
    def mos_op(self, name: str) -> MosOpInfo:
        grp = self.system.mos_group
        if grp is None or name not in grp.names:
            raise KeyError(f"no MOSFET named {name!r}")
        k = grp.names.index(name)
        ev = grp.evaluate(self.x)
        return MosOpInfo(
            name=name,
            ids=float(ev.ids[k]),
            vgs=float(ev.vgs[k]),
            vds=float(ev.vds[k]),
            vsb=float(ev.vsb[k]),
            veff=float(ev.veff[k]),
            vdsat=float(ev.vdsat[k]),
            vth=float(ev.vth[k]),
            gm=float(ev.gm[k]),
            gds=float(ev.gds[k]),
            gmb=float(ev.gmb[k]),
            saturated=bool(ev.vds[k] > ev.vdsat[k]),
        )

    def all_mos_op(self) -> dict[str, MosOpInfo]:
        grp = self.system.mos_group
        if grp is None:
            return {}
        return {name: self.mos_op(name) for name in grp.names}

    def bjt_op(self, name: str) -> BjtOpInfo:
        grp = self.system.bjt_group
        if grp is None or name not in grp.names:
            raise KeyError(f"no BJT named {name!r}")
        k = grp.names.index(name)
        ev = grp.evaluate(self.x)
        return BjtOpInfo(
            name=name,
            ic=float(ev.ic[k]),
            ib=float(ev.ib[k]),
            vbe=float(ev.vbe[k]),
            gm=float(ev.gm[k]),
            gpi=float(ev.gpi[k]),
            go=float(ev.go[k]),
        )

    def supply_current(self, source_name: str) -> float:
        """Magnitude of the current delivered by a supply source [A]."""
        return abs(self.i(source_name))

    def saturation_report(self) -> list[str]:
        """Names of MOSFETs operating OUT of saturation (diagnostics)."""
        return [
            name for name, op in self.all_mos_op().items()
            if not op.saturated and abs(op.ids) > 1e-9
        ]


def _sparse_newton_step(
    system: MnaSystem, x: np.ndarray, rhs: np.ndarray, gmin: float
) -> tuple[np.ndarray, np.ndarray] | None:
    """One ``splu``-backed Newton linearisation, or ``None`` for dense.

    Assembles the reduced Jacobian in CSC form and factorizes it with
    SuperLU.  The step is accepted only if the linear solve passes the
    same scaled-residual gate the spectral AC path uses
    (:data:`repro.spice.linsolve.SPECTRAL_RESIDUAL_TOL`); a singular
    factorization, non-finite step or gate rejection returns ``None``
    and the caller finishes the solve on the dense LAPACK path.
    """
    try:
        from scipy.sparse.linalg import splu
    except ImportError:                     # pragma: no cover - scipy baked in
        return None
    from repro.spice.linsolve import SPECTRAL_RESIDUAL_TOL

    n = system.size
    a, resid, _ = system.assemble_csc(x, rhs, gmin=gmin)
    r = resid[:n]
    try:
        with np.errstate(all="ignore"):
            dx = splu(a).solve(-r)
    except (RuntimeError, ValueError):
        return None
    if not np.all(np.isfinite(dx)):
        return None
    lin_resid = float(np.abs(a @ dx + r).max())
    a_norm = float(np.abs(a).sum(axis=1).max())
    x_norm = float(np.abs(dx).max())
    b_norm = float(np.abs(r).max()) + 1e-300
    if lin_resid > SPECTRAL_RESIDUAL_TOL * (a_norm * x_norm + b_norm):
        return None
    return dx, resid


def _newton(
    system: MnaSystem,
    x0: np.ndarray,
    rhs: np.ndarray,
    gmin: float,
    options: NewtonOptions,
    diag: dict | None = None,
) -> tuple[bool, np.ndarray, int]:
    """Damped Newton iteration; returns (converged, x, iterations).

    ``diag``, when given, is populated with solve forensics: ``resid``
    (last KCL residual norm seen) and ``latch`` (why the sparse path
    latched to dense, if it did) — telemetry only, never results.
    """
    n = system.size
    x = x0.copy()
    x[system.ground_index] = 0.0
    use_sparse = bool(getattr(system, "prefer_sparse", False))
    last_resid: float | None = None

    def done(converged: bool, iteration: int):
        if diag is not None and last_resid is not None:
            diag["resid"] = last_resid
        return converged, x, iteration

    for iteration in range(1, options.max_iterations + 1):
        prof_count("dc.newton_iterations")
        step = _sparse_newton_step(system, x, rhs, gmin) if use_sparse else None
        if use_sparse and step is None:
            use_sparse = False  # fall back to dense for the rest of this solve
            reason = (f"sparse step rejected at iteration {iteration} "
                      f"(gmin={gmin:g}); dense for the rest of this solve")
            if diag is not None:
                diag["latch"] = reason
            event("dc.dense_latch", "warn", circuit=system.circuit.name,
                  iteration=iteration, reason=reason)
        if step is not None:
            prof_count("dc.sparse_steps")
            dx, resid = step
        else:
            prof_count("dc.dense_solves")
            jac, resid, _ = system.assemble(x, rhs, gmin=gmin)
            a = jac[:n, :n]
            r = resid[:n]
            try:
                dx = np.linalg.solve(a, -r)
            except np.linalg.LinAlgError:
                event("dc.jacobian_singular", "warn",
                      circuit=system.circuit.name, iteration=iteration)
                a = a + np.eye(n) * 1e-12
                try:
                    dx = np.linalg.solve(a, -r)
                except np.linalg.LinAlgError:
                    return done(False, iteration)
        if not np.all(np.isfinite(dx)):
            return done(False, iteration)

        # Componentwise clamp on node voltages keeps junctions from
        # overshooting; branch currents are left unclamped (linear rows).
        nv = system.num_nodes
        dx_nodes = np.clip(dx[:nv], -options.vlimit, options.vlimit)
        limited = not np.array_equal(dx_nodes, dx[:nv])
        x[:nv] += dx_nodes
        x[nv:n] += dx[nv:n]

        max_dv = float(np.max(np.abs(dx_nodes))) if nv else 0.0
        kcl = resid[:nv]
        max_resid = float(np.max(np.abs(kcl))) if nv else 0.0
        last_resid = max_resid
        current_scale = float(np.max(np.abs(x[nv:n]))) if n > nv else 0.0
        itol = options.abstol + options.reltol * max(current_scale, 1e-6)
        if not limited and max_dv < options.vntol and max_resid < itol * 100:
            return done(True, iteration)

    return done(False, options.max_iterations)


def _solver_event(name: str, severity: str, system: MnaSystem,
                  x: np.ndarray, rhs: np.ndarray, diag: dict,
                  **fields) -> None:
    """Emit a solver degradation event with residual + condition
    forensics.  The expensive fields are only computed while an event
    log is armed — disarmed, this is one ``None`` check."""
    if active_event_log() is None:
        return
    event(name, severity, circuit=system.circuit.name,
          resid_norm=diag.get("resid"),
          cond1_est=system.cond1_estimate(x, rhs), **fields)


def _initial_guess(system: MnaSystem) -> np.ndarray:
    """Start vector: zeros, overridden by nodesets and grounded sources."""
    x = np.zeros(system.size + 1)
    # Nodes tied to ground through a DC voltage source start at the source
    # value; this makes supplies "appear" immediately.
    for src in system.vsources:
        if is_ground(src.nn) and not is_ground(src.np):
            x[system.node(src.np)] = src.dc
        elif is_ground(src.np) and not is_ground(src.nn):
            x[system.node(src.nn)] = -src.dc
    for node, volts in system.circuit.nodesets.items():
        if not is_ground(node):
            x[system.node(node)] = volts
    return x


def dc_operating_point(
    circuit_or_system: Circuit | MnaSystem,
    temp_c: float = 25.0,
    options: NewtonOptions | None = None,
    x0: np.ndarray | None = None,
) -> OperatingPoint:
    """Find the DC operating point, escalating through solver strategies.

    Strategy ladder:

    1. plain Newton from the nodeset-seeded initial guess;
    2. gmin stepping (1e-3 S down to 0, warm-started);
    3. source stepping (supplies ramped 0 -> 100 %, with a gmin ladder at
       the final rung).
    """
    if isinstance(circuit_or_system, Circuit):
        system = circuit_or_system.compile(temp_c=temp_c)
    else:
        system = circuit_or_system
    opts = options or NewtonOptions()
    rhs = system.rhs_dc()
    start = x0.copy() if x0 is not None else _initial_guess(system)

    prof_count("dc.operating_points")
    diag: dict = {}
    converged, x, iters = _newton(system, start, rhs, gmin=0.0, options=opts,
                                  diag=diag)
    if converged:
        prof_count("dc.strategy.newton")
        return OperatingPoint(system, x, iters, strategy="newton",
                              worst_resid=diag.get("resid"),
                              latch_reason=diag.get("latch"))

    # --- gmin stepping ---
    _solver_event("dc.strategy_escalation", "warn", system, x, rhs, diag,
                  from_strategy="newton", to_strategy="gmin-stepping",
                  iterations=iters)
    x = start.copy()
    total_iters = iters
    ladder = [10.0 ** (-k) for k in range(3, 13)] + [0.0]
    ok = True
    for gmin in ladder:
        converged, x_next, iters = _newton(system, x, rhs, gmin=gmin,
                                           options=opts, diag=diag)
        total_iters += iters
        if not converged:
            ok = False
            break
        x = x_next
    if ok:
        prof_count("dc.strategy.gmin-stepping")
        return OperatingPoint(system, x, total_iters, strategy="gmin-stepping",
                              worst_resid=diag.get("resid"),
                              latch_reason=diag.get("latch"))

    # --- source stepping ---
    _solver_event("dc.strategy_escalation", "warn", system, x, rhs, diag,
                  from_strategy="gmin-stepping", to_strategy="source-stepping",
                  iterations=total_iters)
    x = np.zeros(system.size + 1)
    scale = 0.0
    step = 0.1
    total_iters = 0
    while scale < 1.0:
        target = min(1.0, scale + step)
        converged, x_next, iters = _newton(
            system, x, system.rhs_dc(scale=target), gmin=1e-9, options=opts,
            diag=diag,
        )
        total_iters += iters
        if converged:
            x = x_next
            scale = target
            step = min(step * 2.0, 0.25)
        else:
            step /= 2.0
            if step < 1e-4:
                _solver_event("dc.nonconvergence", "error", system, x,
                              system.rhs_dc(scale=target), diag,
                              stage="source-stepping", scale=scale,
                              iterations=total_iters)
                raise ConvergenceError(
                    f"source stepping stalled at {scale:.4f} of full supplies "
                    f"for circuit {system.circuit.name!r}"
                )
    # Remove the convergence gmin at full excitation.
    for gmin in (1e-10, 1e-12, 0.0):
        converged, x_next, iters = _newton(system, x, rhs, gmin=gmin,
                                           options=opts, diag=diag)
        total_iters += iters
        if converged:
            x = x_next
    if not converged:
        _solver_event("dc.nonconvergence", "error", system, x, rhs, diag,
                      stage="gmin-removal", iterations=total_iters)
        raise ConvergenceError(
            f"no DC operating point found for circuit {system.circuit.name!r}"
        )
    prof_count("dc.strategy.source-stepping")
    return OperatingPoint(system, x, total_iters, strategy="source-stepping",
                          worst_resid=diag.get("resid"),
                          latch_reason=diag.get("latch"))


def dc_sweep(
    circuit: Circuit,
    element_name: str,
    values: np.ndarray,
    outputs: list[str],
    temp_c: float = 25.0,
    options: NewtonOptions | None = None,
) -> dict[str, np.ndarray]:
    """Sweep the DC value of a source; warm-start each point.

    ``outputs`` lists node names (voltages) and/or ``"i(<name>)"`` entries
    (branch currents).  Returns ``{"sweep": values, output: array, ...}``.
    """
    el = circuit.element(element_name)
    if not isinstance(el, (VoltageSource, CurrentSource)):
        raise TypeError(f"{element_name!r} is not a sweepable source")

    original = el.dc
    system = circuit.compile(temp_c=temp_c)
    results: dict[str, list[float]] = {out: [] for out in outputs}
    x_prev: np.ndarray | None = None
    try:
        for value in values:
            el.dc = float(value)
            op = dc_operating_point(system, temp_c=temp_c, options=options, x0=x_prev)
            x_prev = op.x
            for out in outputs:
                if out.startswith("i(") and out.endswith(")"):
                    results[out].append(op.i(out[2:-1]))
                else:
                    results[out].append(op.v(out))
    finally:
        el.dc = original

    data = {out: np.asarray(vals) for out, vals in results.items()}
    data["sweep"] = np.asarray(values, dtype=float)
    return data
