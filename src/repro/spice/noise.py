"""Noise analysis by the adjoint (transposed-system) method.

For each frequency the linearised MNA matrix ``A = G + jwC`` is factorised
once; the adjoint solve ``A^T psi = e_out`` yields, in one shot, the
transimpedance from *every* circuit branch to the output, so the output
noise PSD is a dot product over the noise-source list.  The signal
transfer ``H`` (for input-referring) falls out of the same factorisation:
``H = e_out^T A^-1 b_in = psi^T b_in``.

All frequencies are solved in one frequency-stacked batched
factorization (:mod:`repro.spice.linsolve`), and the per-source PSD and
contribution-grouping arithmetic is vectorised over the whole
``(n_source, n_freq)`` grid; the noise-source enumeration and its group
index arrays are cached on the operating point's small-signal context.

This mirrors how the paper reasons about noise: every device contributes
``|transfer|^2 * S_i`` and the budget is the ranked sum (Sec. 3.1/3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg as sla

from repro.spice.dc import OperatingPoint
from repro.spice.netlist import is_ground


@dataclass
class NoiseResult:
    """Noise spectra plus the per-device/mechanism decomposition."""

    freqs: np.ndarray
    output_psd: np.ndarray                       # [V^2/Hz] at the output
    gain: np.ndarray                             # |H| from input source to output
    input_psd: np.ndarray                        # output_psd / |H|^2
    contributions: dict[tuple[str, str], np.ndarray]  # (device, mechanism) -> V^2/Hz

    def output_nv(self) -> np.ndarray:
        """Output noise voltage density [nV/sqrt(Hz)]."""
        return np.sqrt(self.output_psd) * 1e9

    def input_nv(self) -> np.ndarray:
        """Input-referred noise voltage density [nV/sqrt(Hz)]."""
        return np.sqrt(self.input_psd) * 1e9

    def input_nv_at(self, freq: float) -> float:
        """Interpolated input-referred density at one frequency [nV/sqrt(Hz)]."""
        return float(np.interp(freq, self.freqs, self.input_nv()))

    def integrated_output_rms(self, f_lo: float, f_hi: float) -> float:
        """RMS output noise over [f_lo, f_hi] [V]."""
        return _integrate_band(self.freqs, self.output_psd, f_lo, f_hi) ** 0.5

    def integrated_input_rms(self, f_lo: float, f_hi: float) -> float:
        """RMS input-referred noise over [f_lo, f_hi] [V]."""
        return _integrate_band(self.freqs, self.input_psd, f_lo, f_hi) ** 0.5

    def average_input_density(self, f_lo: float, f_hi: float) -> float:
        """Band-average input density sqrt(int PSD df / BW) [V/sqrt(Hz)].

        This is the paper's "equivalent average input referred RMS noise
        voltage ... in the voice band" figure of merit (Table 1 row 5).
        """
        power = _integrate_band(self.freqs, self.input_psd, f_lo, f_hi)
        return (power / (f_hi - f_lo)) ** 0.5

    def weighted_output_rms(self, weight, f_lo: float, f_hi: float) -> float:
        """RMS output noise with a |W(f)|^2 weighting (e.g. psophometric)."""
        w = np.asarray([weight(f) for f in self.freqs])
        return _integrate_band(self.freqs, self.output_psd * w**2, f_lo, f_hi) ** 0.5

    def top_contributors(self, freq: float, count: int = 10) -> list[tuple[str, str, float]]:
        """Largest (device, mechanism, V^2/Hz) contributions near ``freq``."""
        k = int(np.argmin(np.abs(self.freqs - freq)))
        ranked = sorted(
            ((dev, mech, float(psd[k])) for (dev, mech), psd in self.contributions.items()),
            key=lambda item: item[2],
            reverse=True,
        )
        return ranked[:count]

    def contribution_fraction(self, device_prefix: str) -> float:
        """Fraction of total output noise power from devices whose name
        starts with ``device_prefix`` (integrated over the sweep)."""
        total = np.trapezoid(self.output_psd, self.freqs)
        part = sum(
            np.trapezoid(psd, self.freqs)
            for (dev, _), psd in self.contributions.items()
            if dev.startswith(device_prefix)
        )
        return float(part / total) if total > 0.0 else 0.0


def _integrate_band(freqs: np.ndarray, psd: np.ndarray, f_lo: float, f_hi: float) -> float:
    """Integrate a sampled PSD over a band, interpolating the edges."""
    if f_lo >= f_hi:
        raise ValueError(f"empty integration band [{f_lo}, {f_hi}]")
    if f_lo < freqs[0] * 0.999 or f_hi > freqs[-1] * 1.001:
        raise ValueError(
            f"band [{f_lo}, {f_hi}] outside swept range [{freqs[0]}, {freqs[-1]}]"
        )
    grid = np.unique(np.concatenate([freqs[(freqs > f_lo) & (freqs < f_hi)], [f_lo, f_hi]]))
    vals = np.interp(grid, freqs, psd)
    return float(np.trapezoid(vals, grid))


@dataclass
class _NoiseSourcePack:
    """Noise-source enumeration flattened to arrays, plus group indices.

    ``group_ids[j]`` maps source ``j`` to its (device, mechanism) group so
    the contribution breakdown is one ``np.add.at`` over the whole
    ``(n_source, n_freq)`` grid instead of a dict-merge loop per source.
    """

    sources: list
    idx_a: np.ndarray          # extended node index of each source's + node
    idx_b: np.ndarray
    psd_flat: np.ndarray
    psd_flicker: np.ndarray
    af: np.ndarray
    flicker_mask: np.ndarray   # sources with a nonzero 1/f part
    group_keys: list[tuple[str, str]]
    group_ids: np.ndarray


def _noise_pack(ctx) -> _NoiseSourcePack:
    """Build (or fetch from the context cache) the flattened source pack."""
    pack = ctx.cache.get("noise_pack")
    if pack is not None:
        return pack
    sources = ctx.system.noise_sources(ctx.op.x)
    keys = [(s.device, s.mechanism) for s in sources]
    group_keys = list(dict.fromkeys(keys))
    key_to_id = {key: i for i, key in enumerate(group_keys)}
    psd_flicker = np.array([s.psd_flicker for s in sources])
    pack = _NoiseSourcePack(
        sources=sources,
        idx_a=np.array([s.node_a for s in sources], dtype=np.intp),
        idx_b=np.array([s.node_b for s in sources], dtype=np.intp),
        psd_flat=np.array([s.psd_flat for s in sources]),
        psd_flicker=psd_flicker,
        af=np.array([s.af for s in sources]),
        flicker_mask=psd_flicker != 0.0,
        group_keys=group_keys,
        group_ids=np.array([key_to_id[key] for key in keys], dtype=np.intp),
    )
    ctx.cache["noise_pack"] = pack
    return pack


def noise_analysis(
    op: OperatingPoint,
    freqs: np.ndarray,
    out_p: str,
    out_n: str | None = None,
) -> NoiseResult:
    """Output and input-referred noise at the operating point.

    The input transfer ``H`` uses the circuit's AC stimulus (set ``ac=1``
    on the input source); input-referred PSD is output PSD divided by
    ``|H|^2``, matching the paper's "equivalent input referred" metric at
    the closed-loop gain in effect.
    """
    freqs = np.asarray(freqs, dtype=float)
    ctx = op.small_signal()
    system = op.system

    b_in = ctx.rhs_ac()
    if not np.any(b_in):
        raise ValueError(
            "no AC stimulus configured; set ac=1 on the input source so the "
            "noise can be input-referred"
        )
    e_out = ctx.output_selector(out_p, out_n)
    pack = _noise_pack(ctx)

    # Adjoint: A^T psi = e_out (plain transpose, not conjugate); one
    # batched factorization covers every frequency.
    _, adj = ctx.solve(freqs, adjoint_rhs=e_out)
    psi = adj[:, :, 0]                               # (n_freq, n)
    gain = np.abs(psi @ b_in)

    n_freq = len(freqs)
    psi_ext = np.zeros((n_freq, system.size + 1), dtype=complex)
    psi_ext[:, : system.size] = psi
    transfer_sq = np.abs(psi_ext[:, pack.idx_a] - psi_ext[:, pack.idx_b]) ** 2

    psd_f = np.broadcast_to(pack.psd_flat, (n_freq, len(pack.sources))).copy()
    fl = pack.flicker_mask
    if np.any(fl):
        psd_f[:, fl] += pack.psd_flicker[fl] / freqs[:, None] ** pack.af[fl]

    contrib = (transfer_sq * psd_f).T                # (n_source, n_freq)
    output_psd = contrib.sum(axis=0)

    safe_gain_sq = np.maximum(gain, 1e-300) ** 2
    input_psd = output_psd / safe_gain_sq

    group_psd = np.zeros((len(pack.group_keys), n_freq))
    np.add.at(group_psd, pack.group_ids, contrib)
    by_key = {key: group_psd[i] for i, key in enumerate(pack.group_keys)}

    return NoiseResult(
        freqs=freqs,
        output_psd=output_psd,
        gain=gain,
        input_psd=input_psd,
        contributions=by_key,
    )


def _noise_analysis_looped(
    op: OperatingPoint,
    freqs: np.ndarray,
    out_p: str,
    out_n: str | None = None,
) -> NoiseResult:
    """Seed-style reference path: re-linearize, one LU per frequency and a
    dict-merge grouping loop.  Kept for the equivalence tests and the
    perf benchmark."""
    system = op.system
    n = system.size
    freqs = np.asarray(freqs, dtype=float)

    g = system.linearize(op.x)[:n, :n]
    c = system.c_static[:n, :n]
    b_in = system.rhs_ac()[:n]
    if not np.any(b_in):
        raise ValueError(
            "no AC stimulus configured; set ac=1 on the input source so the "
            "noise can be input-referred"
        )

    e_out = np.zeros(n)
    if not is_ground(out_p):
        e_out[system.node(out_p)] = 1.0
    if out_n is not None and not is_ground(out_n):
        e_out[system.node(out_n)] -= 1.0

    sources = system.noise_sources(op.x)
    idx_a = np.array([s.node_a for s in sources], dtype=np.intp)
    idx_b = np.array([s.node_b for s in sources], dtype=np.intp)
    psd_flat = np.array([s.psd_flat for s in sources])
    psd_flicker = np.array([s.psd_flicker for s in sources])
    af = np.array([s.af for s in sources])

    n_freq = len(freqs)
    output_psd = np.zeros(n_freq)
    gain = np.zeros(n_freq)
    contrib = np.zeros((len(sources), n_freq))

    for k, f in enumerate(freqs):
        a = g + 2j * np.pi * f * c
        lu, piv = sla.lu_factor(a)
        psi = sla.lu_solve((lu, piv), e_out.astype(complex), trans=1)
        psi_ext = np.append(psi, 0.0)  # ground slot
        gain[k] = abs(np.dot(psi, b_in))

        transfer_sq = np.abs(psi_ext[idx_a] - psi_ext[idx_b]) ** 2
        psd_f = psd_flat + psd_flicker / f**af
        terms = transfer_sq * psd_f
        contrib[:, k] = terms
        output_psd[k] = terms.sum()

    safe_gain_sq = np.maximum(gain, 1e-300) ** 2
    input_psd = output_psd / safe_gain_sq

    by_key: dict[tuple[str, str], np.ndarray] = {}
    for j, s in enumerate(sources):
        key = (s.device, s.mechanism)
        if key in by_key:
            by_key[key] = by_key[key] + contrib[j]
        else:
            by_key[key] = contrib[j].copy()

    return NoiseResult(
        freqs=freqs,
        output_psd=output_psd,
        gain=gain,
        input_psd=input_psd,
        contributions=by_key,
    )
