"""Physical constants and unit helpers shared across the package.

All quantities are SI unless a suffix says otherwise.  Temperatures are
handled in degrees Celsius at API boundaries (the paper quotes 25 degC,
-20..85 degC ranges) and converted to Kelvin internally.
"""

from __future__ import annotations

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602176634e-19

#: 0 degC in Kelvin.
ZERO_CELSIUS = 273.15

#: Reference temperature used for nominal device parameters [degC].
NOMINAL_TEMP_C = 25.0


def kelvin(temp_c: float) -> float:
    """Convert a temperature from Celsius to Kelvin."""
    return temp_c + ZERO_CELSIUS


def thermal_voltage(temp_c: float = NOMINAL_TEMP_C) -> float:
    """Thermal voltage kT/q at the given temperature [V].

    At 25 degC this is about 25.7 mV, the value used throughout the
    paper's weak-inversion and noise arguments.
    """
    return BOLTZMANN * kelvin(temp_c) / ELEMENTARY_CHARGE


def db(ratio: float) -> float:
    """Voltage ratio to decibels (20*log10)."""
    import math

    if ratio <= 0.0:
        raise ValueError(f"db() requires a positive ratio, got {ratio!r}")
    return 20.0 * math.log10(ratio)


def undb(value_db: float) -> float:
    """Decibels to voltage ratio (inverse of :func:`db`)."""
    return 10.0 ** (value_db / 20.0)


def db_power(ratio: float) -> float:
    """Power ratio to decibels (10*log10)."""
    import math

    if ratio <= 0.0:
        raise ValueError(f"db_power() requires a positive ratio, got {ratio!r}")
    return 10.0 * math.log10(ratio)
