"""Closed-form noise budget: the paper's Eqs. 3, 4 and 5.

This module is the *analytic* model the authors used on paper; the
simulator's adjoint noise analysis is the *measured* counterpart.  Tests
check the two agree within the approximations (tail/CMFB rejection,
second-stage suppression), which is precisely the Sec. 3.1/3.2 argument
chain:

* each input device adds ``8kT/(3 gm)`` thermal and ``KF/(Cox W L f)``
  flicker, and there are four of them (two pairs, +3 dB);
* common loads add the same expressions scaled by ``(gm_load/gm_in)^2``;
* the gain network adds 4kT(R_a || R_f) per side — the gain-dependent
  term of Eq. 4;
* each of the two simultaneously-on switches adds 4kT*Ron (Eq. 5) with
  ``Ron = 1/(W/L * muCox * V_eff)``.

Transcription note: the OCR'd Eq. 4 prints a ``2kT[...]`` prefactor and a
``2*sqrt(2)*Ron`` switch term; dimensional consistency requires the 4kT
thermal forms used here (see DESIGN.md).  The *structure* — A_cl-scaled
network noise, noise-gain-scaled amplifier noise, Ron-proportional switch
noise — is preserved, which is what the paper uses the equation for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import BOLTZMANN, kelvin
from repro.pga.gain_control import GainControl
from repro.process.technology import Technology


def mos_thermal_svg(gm: float, temp_c: float = 25.0) -> float:
    """Gate-referred thermal noise voltage PSD of a saturated MOSFET
    [V^2/Hz]: 4kT * (2/3) / gm (Eq. 3's device term)."""
    if gm <= 0.0:
        raise ValueError("gm must be positive")
    return 4.0 * BOLTZMANN * kelvin(temp_c) * (2.0 / 3.0) / gm


def mos_flicker_svg(kf: float, cox: float, w: float, l: float, freq: float,
                    af: float = 1.0) -> float:
    """Gate-referred flicker noise PSD [V^2/Hz]: KF/(Cox W L f^AF)."""
    return kf / (cox * w * l * freq**af)


def resistor_psd(resistance: float, temp_c: float = 25.0) -> float:
    """Thermal noise voltage PSD of a resistor [V^2/Hz]: 4kTR."""
    return 4.0 * BOLTZMANN * kelvin(temp_c) * resistance


def eq5_switch_ron(tech: Technology, w_over_l: float, veff: float) -> float:
    """On-resistance of a MOS tap switch [ohm] (the paper's Eq. 5 body).

    Eq. 5:  e_sw^2 = 4kT*Ron with Ron = 1/((W/L) * muCox * V_eff).
    """
    if veff <= 0.0:
        raise ValueError("switch V_eff must be positive (switch is off)")
    return 1.0 / (w_over_l * tech.nmos.kp * veff)


def eq5_switch_noise(tech: Technology, w_over_l: float, veff: float,
                     temp_c: float = 25.0) -> float:
    """Eq. 5: squared RMS noise voltage of one on-switch [V^2/Hz]."""
    return resistor_psd(eq5_switch_ron(tech, w_over_l, veff), temp_c)


@dataclass
class MicAmpNoiseBudget:
    """Analytic input-referred noise of the Fig. 4 amplifier.

    Parameters are operating-point quantities (gm of one input device,
    gm of one load device) plus geometry; :meth:`from_design` pulls them
    from a solved instance so the budget tracks the actual bias.
    """

    tech: Technology
    gain: GainControl
    gm_input: float
    gm_load: float
    w_input: float
    l_input: float
    w_load: float
    l_load: float
    r_switch_on: float
    temp_c: float = 25.0
    n_input_devices: int = 4
    n_load_devices: int = 2

    @classmethod
    def from_design(cls, design, op) -> "MicAmpNoiseBudget":
        """Build the budget from a MicAmpDesign and its operating point."""
        t1 = op.mos_op("t1")
        tl = op.mos_op("tl_a")
        sw_name = None
        states = design.gain.switch_states(design.gain_code)
        for k, closed in enumerate(states):
            if closed:
                sw_name = f"swa_{k}"
        if design.switch_type == "mos" and sw_name is not None:
            sw = op.mos_op(sw_name)
            # triode on-resistance from the model's channel conductance
            ron = 1.0 / max(sw.gds, 1e-12)
        else:
            ron = design.sizes.r_switch_on
        return cls(
            tech=design.tech,
            gain=design.gain,
            gm_input=t1.gm,
            gm_load=tl.gm,
            w_input=design.sizes.w_input,
            l_input=design.sizes.l_input,
            w_load=design.sizes.w_load,
            l_load=design.sizes.l_load,
            r_switch_on=ron,
        )

    # ------------------------------------------------------------------
    # Component PSDs (input-referred, differential) [V^2/Hz]
    # ------------------------------------------------------------------
    def input_devices_thermal(self) -> float:
        """Eq. 3 applied to T1..T4: four devices' gate noise adds."""
        return self.n_input_devices * mos_thermal_svg(self.gm_input, self.temp_c)

    def load_devices_thermal(self) -> float:
        """Common loads, scaled by (gm_load/gm_input)^2."""
        per_load = 4.0 * BOLTZMANN * kelvin(self.temp_c) * (2.0 / 3.0) * self.gm_load
        return self.n_load_devices * per_load / self.gm_input**2

    def input_devices_flicker(self, freq: float) -> float:
        p = self.tech.pmos
        svg = mos_flicker_svg(p.kf, p.cox, self.w_input, self.l_input, freq, p.af)
        return self.n_input_devices * svg

    def load_devices_flicker(self, freq: float) -> float:
        n = self.tech.nmos
        svg = mos_flicker_svg(n.kf, n.cox, self.w_load, self.l_load, freq, n.af)
        return self.n_load_devices * svg * (self.gm_load / self.gm_input) ** 2

    def network_thermal(self, code: int) -> float:
        """Eq. 4's R_a || R_f term; two matched strings (one per side)."""
        r_par = self.gain.noise_source_resistance(code)
        return 2.0 * resistor_psd(r_par, self.temp_c)

    def switch_thermal(self) -> float:
        """Eq. 5: two switches simultaneously on (one per side)."""
        return 2.0 * resistor_psd(self.r_switch_on, self.temp_c)

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    def input_psd(self, freq: float, code: int | None = None) -> float:
        """Total input-referred PSD at ``freq`` [V^2/Hz]."""
        c = self.gain.num_codes - 1 if code is None else code
        return (
            self.input_devices_thermal()
            + self.load_devices_thermal()
            + self.network_thermal(c)
            + self.switch_thermal()
            + self.input_devices_flicker(freq)
            + self.load_devices_flicker(freq)
        )

    def input_nv(self, freq: float, code: int | None = None) -> float:
        """Input-referred density [nV/sqrt(Hz)]."""
        return float(np.sqrt(self.input_psd(freq, code)) * 1e9)

    def average_input_nv(self, f_lo: float = 300.0, f_hi: float = 3400.0,
                         code: int | None = None, points: int = 200) -> float:
        """Band-average density [nV/sqrt(Hz)] (Table 1's headline row)."""
        freqs = np.linspace(f_lo, f_hi, points)
        psd = np.array([self.input_psd(f, code) for f in freqs])
        avg = np.trapezoid(psd, freqs) / (f_hi - f_lo)
        return float(np.sqrt(avg) * 1e9)

    def flicker_corner_hz(self, code: int | None = None) -> float:
        """Frequency where flicker equals thermal (the Fig. 7 knee)."""
        thermal = (
            self.input_devices_thermal()
            + self.load_devices_thermal()
            + self.network_thermal(self.gain.num_codes - 1 if code is None else code)
            + self.switch_thermal()
        )
        flicker_1hz = self.input_devices_flicker(1.0) + self.load_devices_flicker(1.0)
        return float(flicker_1hz / thermal)

    def breakdown(self, freq: float, code: int | None = None) -> dict[str, float]:
        """Named component PSDs for reporting [V^2/Hz]."""
        c = self.gain.num_codes - 1 if code is None else code
        return {
            "input_thermal": self.input_devices_thermal(),
            "load_thermal": self.load_devices_thermal(),
            "network_thermal": self.network_thermal(c),
            "switch_thermal": self.switch_thermal(),
            "input_flicker": self.input_devices_flicker(freq),
            "load_flicker": self.load_devices_flicker(freq),
        }


def eq4_output_noise_psd(
    acl: float,
    ra: float,
    rf: float,
    req_amplifier: float,
    ron: float,
    temp_c: float = 25.0,
) -> float:
    """Output-referred Eq. 4 in its dimensionally consistent form
    [V^2/Hz]:

        e_out^2 = A_cl^2 * [ 2*4kT*(Ra||Rf) + 2*4kT*Ron + Req ]

    where Req is the amplifier's own input-referred PSD.  For the DDA
    both input pairs see the same gain, so every term carries A_cl^2
    (the classic single-ended non-inverting stage would split into
    A_cl^2 and (1+A_cl)^2 factors, which is how the paper prints it).
    The factors of two are the two matched strings and the two
    simultaneously-on switches of the fully differential network.
    """
    kt4 = 4.0 * BOLTZMANN * kelvin(temp_c)
    r_par = ra * rf / (ra + rf)
    return acl**2 * (2.0 * kt4 * r_par + 2.0 * kt4 * ron + req_amplifier)
