"""Harmonic distortion measurements.

Two paths, cross-checked in the tests:

* **static**: sweep the DC transfer curve, pass an ideal sine through the
  fitted nonlinearity, read harmonics with a coherent DFT.  Valid when
  the stimulus is far below the loop bandwidth — true for every voice-
  band experiment in the paper — and orders of magnitude faster, so the
  amplitude sweeps (V_omax at 0.6 %/0.3 % HD, Table 2) use it;
* **transient**: full nonlinear time-domain run (the Fig. 11 spectrum).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spice.dc import OperatingPoint, dc_operating_point
from repro.spice.elements import VoltageSource
from repro.spice.netlist import Circuit
from repro.spice.transient import transient_analysis
from repro.spice.waveform import Waveform, make_time_grid


def goertzel_dft(y: np.ndarray, freqs_norm) -> np.ndarray:
    """DTFT of ``y`` at arbitrary normalised frequencies via Goertzel.

    Returns ``sum_n y[n] * exp(-2j*pi*f*n)`` for each ``f`` in
    ``freqs_norm`` (cycles/sample).  The second-order recurrence runs in
    C through ``scipy.signal.lfilter``; the closing step is the
    generalised (non-integer-bin) form, so harmonics can be read at
    exactly ``k*f0`` instead of the nearest FFT grid bin — the FFT pick
    leaks badly whenever the record does not hold an integer number of
    fundamental cycles, which is the usual case for a transient segment.
    """
    from scipy.signal import lfilter

    y = np.asarray(y, dtype=float)
    n = y.size
    if n < 4:
        raise ValueError("need at least 4 samples for a harmonic readout")
    freqs_norm = np.atleast_1d(np.asarray(freqs_norm, dtype=float))
    out = np.empty(freqs_norm.size, dtype=complex)
    for i, f in enumerate(freqs_norm):
        w = 2.0 * np.pi * f
        s = lfilter([1.0], [1.0, -2.0 * np.cos(w), 1.0], y)
        out[i] = (s[-1] - np.exp(-1j * w) * s[-2]) * np.exp(-1j * w * (n - 1))
    return out


def goertzel_harmonics(y: np.ndarray, f0_norm: float,
                       n_harmonics: int) -> np.ndarray:
    """|amplitude| of harmonics ``1..n_harmonics`` of a tone at
    ``f0_norm`` cycles/sample (2/N-normalised, mean removed).

    The record is first trimmed (from the front) to the largest whole
    number of fundamental cycles: a stray edge sample leaks
    ``~2*sin(phase)/N`` of the fundamental into every harmonic bin,
    which at voice-band THD levels (-52 dB spec) would dominate the
    harmonics being measured.  Exactly coherent records are unaffected.
    """
    y = np.asarray(y, dtype=float)
    n_cycles = int(np.floor(y.size * f0_norm))
    if n_cycles >= 1:
        y = y[-min(y.size, int(round(n_cycles / f0_norm))):]
    orders = np.arange(1, n_harmonics + 1, dtype=float)
    bins = goertzel_dft(y - y.mean(), orders * f0_norm)
    return 2.0 * np.abs(bins) / y.size


def _thd_from_harmonics(amps: np.ndarray) -> float:
    if amps[0] <= 0.0:
        raise ValueError("no fundamental found; cannot compute THD")
    return float(np.sqrt(np.sum(amps[1:] ** 2)) / amps[0])


@dataclass
class StaticTransfer:
    """A measured DC transfer curve out = f(in)."""

    vin: np.ndarray
    vout: np.ndarray

    def __post_init__(self) -> None:
        if len(self.vin) != len(self.vout):
            raise ValueError("vin and vout must have equal length")
        if len(self.vin) < 8:
            raise ValueError("need at least 8 sweep points for harmonic fitting")

    def gain_at(self, vin: float = 0.0) -> float:
        """Incremental gain d(vout)/d(vin) at an input level."""
        return float(np.interp(vin, self.vin, np.gradient(self.vout, self.vin)))

    def apply(self, signal: np.ndarray) -> np.ndarray:
        """Pass a signal through the (interpolated) static nonlinearity."""
        if signal.min() < self.vin.min() or signal.max() > self.vin.max():
            raise ValueError(
                f"signal range [{signal.min():.3g}, {signal.max():.3g}] exceeds "
                f"measured transfer range [{self.vin.min():.3g}, {self.vin.max():.3g}]"
            )
        # Cubic-ish interpolation via numpy: fit local polynomial through
        # the curve with a spline from scipy for smooth derivatives.
        from scipy.interpolate import CubicSpline

        spline = CubicSpline(self.vin, self.vout)
        return np.asarray(spline(signal))

    def thd(self, amplitude: float, n_harmonics: int = 7, n_points: int = 4096,
            bias: float = 0.0) -> float:
        """THD (ratio) of a sine of ``amplitude`` through the curve.

        The synthetic sine spans exactly one cycle, so the Goertzel bins
        at ``k/n_points`` coincide with the coherent DFT the FFT pick
        used to take — but only the ``n_harmonics`` bins are computed.
        """
        t = np.arange(n_points) / n_points
        sine = bias + amplitude * np.sin(2.0 * np.pi * t)
        out = self.apply(sine)
        return _thd_from_harmonics(
            goertzel_harmonics(out, 1.0 / n_points, n_harmonics))

    def output_amplitude(self, amplitude: float, n_points: int = 1024,
                         bias: float = 0.0) -> float:
        """Fundamental amplitude at the output for a sine input."""
        t = np.arange(n_points) / n_points
        sine = bias + amplitude * np.sin(2.0 * np.pi * t)
        out = self.apply(sine)
        return float(goertzel_harmonics(out, 1.0 / n_points, 1)[0])


def measure_static_transfer(
    circuit: Circuit,
    source_p: str,
    source_n: str | None,
    out_p: str,
    out_n: str | None,
    amplitude: float,
    points: int = 41,
    temp_c: float = 25.0,
) -> StaticTransfer:
    """Sweep a differential source pair and record the DC transfer.

    ``source_n`` (if given) is driven anti-phase, so ``vin`` is the full
    differential input.  Sweeping walks outward from zero with warm
    starts — the same continuation trick the other sweeps use.
    """
    el_p = circuit.element(source_p)
    el_n = circuit.element(source_n) if source_n else None
    for el in (el_p, el_n):
        if el is not None and not isinstance(el, VoltageSource):
            raise TypeError(f"{el.name!r} is not a voltage source")

    system = circuit.compile(temp_c=temp_c)
    half = amplitude / 2.0 if el_n is not None else amplitude
    steps = np.linspace(0.0, half, (points + 1) // 2)
    orig_p = el_p.dc
    orig_n = el_n.dc if el_n is not None else 0.0

    vin_list: list[float] = []
    vout_list: list[float] = []
    try:
        for direction in (+1.0, -1.0):
            x_prev = None
            for v in steps:
                el_p.dc = direction * v
                if el_n is not None:
                    el_n.dc = -direction * v
                op = dc_operating_point(system, x0=x_prev)
                x_prev = op.x
                vd = 2.0 * direction * v if el_n is not None else direction * v
                out = op.v(out_p) - (op.v(out_n) if out_n else 0.0)
                vin_list.append(vd)
                vout_list.append(out)
    finally:
        el_p.dc = orig_p
        if el_n is not None:
            el_n.dc = orig_n

    order = np.argsort(vin_list)
    vin = np.asarray(vin_list)[order]
    vout = np.asarray(vout_list)[order]
    # Drop the duplicated zero point.
    keep = np.concatenate([[True], np.diff(vin) > 0.0])
    return StaticTransfer(vin[keep], vout[keep])


def static_thd(
    circuit: Circuit,
    source_p: str,
    source_n: str | None,
    out_p: str,
    out_n: str | None,
    amplitude: float,
    points: int = 41,
    n_harmonics: int = 7,
    temp_c: float = 25.0,
) -> float:
    """One-call static THD at a differential amplitude."""
    transfer = measure_static_transfer(
        circuit, source_p, source_n, out_p, out_n,
        amplitude * 1.05, points, temp_c,
    )
    return transfer.thd(amplitude, n_harmonics)


def transient_thd(
    circuit: Circuit,
    source_p: str,
    source_n: str | None,
    out_p: str,
    out_n: str | None,
    amplitude: float,
    freq: float = 1e3,
    cycles: int = 3,
    points_per_cycle: int = 400,
    n_harmonics: int = 9,
    temp_c: float = 25.0,
) -> tuple[float, Waveform]:
    """Full transient THD; returns (thd_ratio, output waveform).

    The last two cycles are used for the coherent DFT so start-up
    transients don't leak into the harmonics.
    """
    from repro.spice.elements import Sine

    el_p = circuit.element(source_p)
    half = amplitude / 2.0 if source_n else amplitude
    orig_p_wave = el_p.wave
    el_p.wave = Sine(offset=el_p.dc, amplitude=half, freq=freq)
    el_n = None
    orig_n_wave = None
    if source_n:
        el_n = circuit.element(source_n)
        orig_n_wave = el_n.wave
        el_n.wave = Sine(offset=el_n.dc, amplitude=-half, freq=freq)

    try:
        t_stop, dt = make_time_grid(freq, cycles, points_per_cycle)
        result = transient_analysis(circuit, t_stop, dt, temp_c=temp_c)
        y = result.v(out_p) - (result.v(out_n) if out_n else 0.0)
        wave = Waveform(result.t, y)
        seg = wave.last_cycles(freq, min(2, cycles))
        # Exact Goertzel bins at k*f0: the analysis segment carries an
        # extra edge sample (non-integer cycle count), which would leak
        # fundamental energy across an FFT-grid harmonic pick.
        amps = goertzel_harmonics(seg.y, freq * seg.dt, n_harmonics)
        return _thd_from_harmonics(amps), wave
    finally:
        el_p.wave = orig_p_wave
        if el_n is not None:
            el_n.wave = orig_n_wave


def amplitude_at_thd(
    transfer: StaticTransfer,
    thd_target: float,
    amp_lo: float,
    amp_hi: float,
    tol: float = 1e-3,
) -> float:
    """Largest sine amplitude whose static THD stays below ``thd_target``.

    Used for the Table 2 V_omax(0.6 % HD)/V_omax(0.3 % HD) rows: sweep
    amplitude by bisection on the monotone THD-vs-amplitude curve.
    """
    if transfer.thd(amp_lo) > thd_target:
        return float("nan")
    if transfer.thd(amp_hi) < thd_target:
        return amp_hi
    lo, hi = amp_lo, amp_hi
    while hi - lo > tol * amp_hi:
        mid = 0.5 * (lo + hi)
        if transfer.thd(mid) < thd_target:
            lo = mid
        else:
            hi = mid
    return lo
