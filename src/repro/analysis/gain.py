"""Closed-loop gain measurements (Fig. 5 / Table 1 rows).

Measures per-code gain at a reference frequency, absolute accuracy
against the nominal dB table, step errors (consecutive-code deltas) and
the -3 dB bandwidth — the quantities the paper summarises as "accurate
gain steps of 6 dB and accuracy of the gain".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.micamp import MicAmpDesign
from repro.spice.dc import dc_operating_point


@dataclass
class GainMeasurement:
    """Per-code gain results for one amplifier instance."""

    codes: list[int]
    nominal_db: list[float]
    measured_db: list[float]
    bandwidth_hz: list[float] = field(default_factory=list)

    @property
    def errors_db(self) -> list[float]:
        return [m - n for m, n in zip(self.measured_db, self.nominal_db)]

    @property
    def worst_error_db(self) -> float:
        return max(abs(e) for e in self.errors_db)

    @property
    def step_errors_db(self) -> list[float]:
        nominal_steps = np.diff(self.nominal_db)
        measured_steps = np.diff(self.measured_db)
        return list(measured_steps - nominal_steps)

    @property
    def worst_step_error_db(self) -> float:
        steps = self.step_errors_db
        return max(abs(e) for e in steps) if steps else 0.0

    def format(self) -> str:
        lines = ["code  nominal   measured   error"]
        for c, n, m in zip(self.codes, self.nominal_db, self.measured_db):
            lines.append(f"  {c}    {n:5.1f} dB  {m:7.3f} dB  {m - n:+.4f} dB")
        return "\n".join(lines)


def measure_gain_codes(
    design: MicAmpDesign,
    freq: float = 1e3,
    temp_c: float = 25.0,
    with_bandwidth: bool = False,
) -> GainMeasurement:
    """Measure the closed-loop gain of every code at ``freq``."""
    result = GainMeasurement(codes=[], nominal_db=[], measured_db=[])
    restore = design.gain_code
    try:
        for code in range(design.gain.num_codes):
            design.set_gain_code(code)
            op = dc_operating_point(design.circuit, temp_c=temp_c)
            # One cached linearisation per code serves this probe and the
            # optional bandwidth sweep below.
            h = abs(op.small_signal().transfer(np.array([freq]), design.outp, design.outn)[0])
            result.codes.append(code)
            result.nominal_db.append(design.gain.gain_db(code))
            result.measured_db.append(20.0 * float(np.log10(h)))
            if with_bandwidth:
                result.bandwidth_hz.append(
                    _bandwidth(design, op, h, freq)
                )
    finally:
        design.set_gain_code(restore)
    return result


def _bandwidth(design: MicAmpDesign, op, g_ref: float, f_ref: float) -> float:
    """-3 dB closed-loop bandwidth by log-sweep + interpolation."""
    freqs = np.logspace(np.log10(f_ref), 8, 120)
    h = np.abs(op.small_signal().transfer(freqs, design.outp, design.outn))
    target = g_ref / np.sqrt(2.0)
    below = np.where(h < target)[0]
    if below.size == 0:
        return float(freqs[-1])
    k = below[0]
    if k == 0:
        return float(freqs[0])
    # log-log interpolation
    f1, f2 = freqs[k - 1], freqs[k]
    h1, h2 = h[k - 1], h[k]
    frac = (np.log(target) - np.log(h1)) / (np.log(h2) - np.log(h1))
    return float(f1 * (f2 / f1) ** frac)
