"""Slew-rate measurement (Table 2: SR = 2.5 V/us at Vin = +/-1 V).

Applies a differential step through the circuit's source pair and reads
the maximum output dV/dt, plus 10-90 % rise time and settling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spice.elements import Pulse, VoltageSource
from repro.spice.netlist import Circuit
from repro.spice.transient import transient_analysis
from repro.spice.waveform import Waveform


@dataclass
class SlewResult:
    """Step-response figures of merit."""

    slew_v_per_s: float
    rise_time_s: float
    settle_time_s: float
    overshoot_frac: float
    waveform: Waveform


def measure_slew_rate(
    circuit: Circuit,
    source_p: str,
    source_n: str | None,
    out_p: str,
    out_n: str | None,
    step: float = 1.0,
    t_settle_frac: float = 0.01,
    duration: float = 20e-6,
    dt: float = 20e-9,
    temp_c: float = 25.0,
) -> SlewResult:
    """Differential step of ``step`` volts; returns slew and settling.

    The step starts 10 % into the run so the waveform has a clean
    pre-step baseline for overshoot/settling measurements.
    """
    el_p = circuit.element(source_p)
    if not isinstance(el_p, VoltageSource):
        raise TypeError(f"{source_p!r} is not a voltage source")
    el_n = circuit.element(source_n) if source_n else None

    half = step / 2.0 if el_n is not None else step
    delay = duration * 0.1
    saved = (el_p.wave, el_n.wave if el_n is not None else None)
    el_p.wave = Pulse(v1=-half / 2, v2=half / 2, delay=delay, rise=dt / 2,
                      fall=dt / 2, width=duration, period=2 * duration)
    if el_n is not None:
        el_n.wave = Pulse(v1=half / 2, v2=-half / 2, delay=delay, rise=dt / 2,
                          fall=dt / 2, width=duration, period=2 * duration)

    try:
        result = transient_analysis(circuit, duration, dt, temp_c=temp_c)
    finally:
        el_p.wave = saved[0]
        if el_n is not None:
            el_n.wave = saved[1]

    y = result.v(out_p) - (result.v(out_n) if out_n else 0.0)
    wave = Waveform(result.t, y)

    initial = float(np.median(y[result.t < delay * 0.8]))
    final = float(np.median(y[result.t > duration * 0.8]))
    swing = final - initial
    if abs(swing) < 1e-9:
        raise ValueError("output did not move; check source/step wiring")

    # 10-90 % rise time.
    lo_level = initial + 0.1 * swing
    hi_level = initial + 0.9 * swing
    t_lo = wave.crossing_times(lo_level, rising=swing > 0)
    t_hi = wave.crossing_times(hi_level, rising=swing > 0)
    rise = float(t_hi[0] - t_lo[0]) if len(t_lo) and len(t_hi) else float("nan")

    post = wave.slice_time(delay, duration)
    settle = post.settling_time(final, abs(swing) * t_settle_frac)
    peak = np.max(y * np.sign(swing))
    overshoot = float(max(0.0, (peak - abs(final)) / abs(swing))) if swing else 0.0

    return SlewResult(
        slew_v_per_s=wave.max_slope(),
        rise_time_s=rise,
        settle_time_s=settle,
        overshoot_frac=overshoot,
        waveform=wave,
    )
