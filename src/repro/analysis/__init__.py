"""Measurement layer: the software equivalent of the authors' bench."""

from repro.analysis.distortion import (
    StaticTransfer,
    measure_static_transfer,
    static_thd,
    transient_thd,
)
from repro.analysis.dynamic_range import eq2_required_noise, snr_from_noise
from repro.analysis.gain import GainMeasurement, measure_gain_codes
from repro.analysis.noise_budget import MicAmpNoiseBudget, eq5_switch_noise
from repro.analysis.psophometric import psophometric_weight, psophometric_rms
from repro.analysis.psrr import measure_cmrr, measure_psrr
from repro.analysis.slew import measure_slew_rate

__all__ = [
    "GainMeasurement",
    "MicAmpNoiseBudget",
    "StaticTransfer",
    "eq2_required_noise",
    "eq5_switch_noise",
    "measure_cmrr",
    "measure_gain_codes",
    "measure_psrr",
    "measure_slew_rate",
    "measure_static_transfer",
    "psophometric_rms",
    "psophometric_weight",
    "snr_from_noise",
    "static_thd",
    "transient_thd",
]
