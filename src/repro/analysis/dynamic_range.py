"""Eq. 2: the dynamic-range budget that sets the 5.1 nV/rtHz target.

    V_noise <= V_modmax / (G_mic * sqrt(BW) * 10^(S/N / 20))

with V_modmax = 0.6 Vrms, G_mic = 100 (40 dB), BW = 3.1 kHz and
S/N = 86.5 dB, giving 5.1 nV/rtHz — the paper's headline spec.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class VoiceBandBudget:
    """The paper's Eq. 2 parameter set."""

    v_mod_max_rms: float = 0.6    # modulator full-scale input [Vrms]
    gain_mic: float = 100.0       # microphone amplifier gain (40 dB)
    bandwidth: float = 3.1e3      # voice bandwidth [Hz]
    snr_db: float = 86.5          # required psophometric S/N [dB]

    def required_noise_density(self) -> float:
        """Maximum allowed input-referred density [V/sqrt(Hz)] (Eq. 2)."""
        return self.v_mod_max_rms / (
            self.gain_mic * np.sqrt(self.bandwidth) * 10.0 ** (self.snr_db / 20.0)
        )

    def effective_bits(self) -> float:
        """ENOB corresponding to the S/N requirement (sine-wave rule)."""
        return (self.snr_db - 1.76) / 6.02


def eq2_required_noise(
    v_mod_max_rms: float = 0.6,
    gain_mic: float = 100.0,
    bandwidth: float = 3.1e3,
    snr_db: float = 86.5,
) -> float:
    """Functional form of Eq. 2 [V/sqrt(Hz)]."""
    return VoiceBandBudget(v_mod_max_rms, gain_mic, bandwidth, snr_db).required_noise_density()


def snr_from_noise(
    noise_density: float,
    v_mod_max_rms: float = 0.6,
    gain_mic: float = 100.0,
    bandwidth: float = 3.1e3,
) -> float:
    """Invert Eq. 2: S/N [dB] achieved by a flat input noise density."""
    if noise_density <= 0.0:
        raise ValueError("noise density must be positive")
    ratio = v_mod_max_rms / (gain_mic * noise_density * np.sqrt(bandwidth))
    return 20.0 * float(np.log10(ratio))


def snr_from_spectrum(
    freqs: np.ndarray,
    input_psd: np.ndarray,
    f_lo: float = 300.0,
    f_hi: float = 3400.0,
    v_mod_max_rms: float = 0.6,
    gain_mic: float = 100.0,
) -> float:
    """S/N [dB] from a measured input-referred noise spectrum.

    Integrates the actual (non-flat) spectrum over the voice band — the
    measurement behind Table 1's "S/N(at 40 dB) >= 87 dB" row.
    """
    mask = (freqs >= f_lo) & (freqs <= f_hi)
    grid = np.concatenate([[f_lo], freqs[mask], [f_hi]])
    vals = np.interp(grid, freqs, input_psd)
    power = np.trapezoid(vals, grid)
    noise_at_output = gain_mic * np.sqrt(power)
    return 20.0 * float(np.log10(v_mod_max_rms / noise_at_output))
