"""PSRR and CMRR measurements.

A perfectly matched fully differential circuit has *infinite* simulated
differential PSRR — supply ripple enters purely as common mode.  That is
the paper's central argument for the FD structure ("low supply voltage
and the coexistence of a sensitive analogue front-end with a large and
fast digital network dictate a fully differential structure, because of
critical requirements on PSRR, CMRR and dynamic range").  The measured
75..78 dB of Tables 1/2 is therefore a *mismatch-limited* number, and the
reproduction measures it the same way: Monte Carlo over Pelgrom mismatch,
reporting the distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spice.dc import OperatingPoint, dc_operating_point
from repro.spice.elements import VoltageSource
from repro.spice.netlist import Circuit


@dataclass
class RejectionResult:
    """One rejection measurement (PSRR or CMRR) at one frequency."""

    freq: float
    gain_signal: float      # |H| from the differential input
    gain_disturb: float     # |H| from the disturbance (supply or CM)
    ratio_db: float         # 20*log10(gain_signal / gain_disturb)


def _signal_sources(circuit: Circuit, names: tuple[str, ...]) -> list[VoltageSource]:
    sources = []
    for name in names:
        el = circuit.element(name)
        if not isinstance(el, VoltageSource):
            raise TypeError(f"{name!r} is not a voltage source")
        sources.append(el)
    return sources


def _rejection(ctx, freq: float, b_signal, b_disturb, out_p: str, out_n: str) -> RejectionResult:
    """Solve both excitations as two RHS columns of one factorization."""
    fwd, _ = ctx.solve(np.array([freq]), rhs=np.stack([b_signal, b_disturb], axis=1))
    h = np.abs(ctx.probe(fwd, out_p, out_n)[0])
    h_sig, h_dist = float(h[0]), float(h[1])
    ratio = h_sig / max(h_dist, 1e-30)
    return RejectionResult(freq, h_sig, h_dist, 20.0 * float(np.log10(ratio)))


def measure_psrr(
    circuit: Circuit,
    supply_source: str,
    input_sources: tuple[str, ...],
    out_p: str,
    out_n: str,
    freq: float = 1e3,
    temp_c: float = 25.0,
    op: OperatingPoint | None = None,
) -> RejectionResult:
    """PSRR at one frequency: signal gain over supply-ripple gain.

    Both excitations are solved as two RHS columns of the *same*
    factorization (one linearisation, one LU at ``freq``).  Restores
    every source's AC stimulus afterwards, so the circuit can be reused
    for further measurements.

    Pass a precomputed ``op`` (of the *same* circuit) to reuse its cached
    :class:`~repro.spice.linsolve.SmallSignalContext` instead of paying a
    fresh DC solve + linearisation — the campaign engine shares one
    operating point across every measurement of a work unit this way.
    ``temp_c`` is ignored when ``op`` is given (the operating point fixes
    the temperature).
    """
    ins = _signal_sources(circuit, input_sources)
    sup = _signal_sources(circuit, (supply_source,))[0]
    saved = [(el, el.ac, el.ac_phase) for el in (*ins, sup)]
    try:
        if op is None:
            op = dc_operating_point(circuit, temp_c=temp_c)
        ctx = op.small_signal()

        # Column 0: the normal differential stimulus, supply quiet.
        for el, ac, ph in saved:
            el.ac, el.ac_phase = ac, ph
        sup.ac = 0.0
        b_sig = ctx.rhs_ac().copy()

        # Column 1: unit ripple on the supply only.
        for el in ins:
            el.ac = 0.0
        sup.ac = 1.0
        sup.ac_phase = 0.0
        b_sup = ctx.rhs_ac().copy()
    finally:
        for el, ac, ph in saved:
            el.ac, el.ac_phase = ac, ph

    return _rejection(ctx, freq, b_sig, b_sup, out_p, out_n)


def measure_cmrr(
    circuit: Circuit,
    input_sources: tuple[str, str],
    out_p: str,
    out_n: str,
    freq: float = 1e3,
    temp_c: float = 25.0,
    op: OperatingPoint | None = None,
) -> RejectionResult:
    """CMRR: differential gain over common-mode gain (one factorization).

    ``op`` behaves as in :func:`measure_psrr`: a precomputed operating
    point of the same circuit whose cached linearisation is reused.
    """
    el_p, el_n = _signal_sources(circuit, input_sources)
    saved = [(el, el.ac, el.ac_phase) for el in (el_p, el_n)]
    try:
        if op is None:
            op = dc_operating_point(circuit, temp_c=temp_c)
        ctx = op.small_signal()

        for el, ac, ph in saved:
            el.ac, el.ac_phase = ac, ph
        b_diff = ctx.rhs_ac().copy()

        # Common-mode drive: both inputs in phase, unit amplitude.
        for el in (el_p, el_n):
            el.ac = 1.0
            el.ac_phase = 0.0
        b_cm = ctx.rhs_ac().copy()
    finally:
        for el, ac, ph in saved:
            el.ac, el.ac_phase = ac, ph

    return _rejection(ctx, freq, b_diff, b_cm, out_p, out_n)


def psrr_monte_carlo(
    build_fn,
    n_trials: int,
    supply_source: str,
    input_sources: tuple[str, ...],
    out_p: str,
    out_n: str,
    freq: float = 1e3,
    seed: int = 2026,
) -> np.ndarray:
    """PSRR distribution over mismatch: ``build_fn(sampler) -> Circuit``.

    Returns the per-trial PSRR in dB.  The paper's Table 1/2 values
    should fall near the lower tail (they quote guaranteed minima).
    """
    from repro.process.mismatch import MismatchSampler

    rng = np.random.default_rng(seed)
    values = np.empty(n_trials)
    for k in range(n_trials):
        sampler_rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
        circuit = build_fn(sampler_rng)
        res = measure_psrr(circuit, supply_source, input_sources, out_p, out_n, freq)
        values[k] = res.ratio_db
    return values
