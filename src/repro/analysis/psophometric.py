"""ITU-T O.41 (CCITT) psophometric weighting.

The paper's S/N requirement is "a psophometrically weighted S/N ratio of
86.5 dB at the output of the microphone amplifier ... for 14 bits
resolution of the modulator" (Eq. 2 context).  The weighting emphasises
the 800 Hz..1 kHz region where the ear is most sensitive to telephone-
band noise and rolls off steeply outside 300..3400 Hz.

The curve is implemented as log-frequency interpolation of the published
O.41 table; between table points the standard's tolerance is wider than
our interpolation error.
"""

from __future__ import annotations

import numpy as np

#: (frequency [Hz], weight [dB]) points of the ITU-T O.41 psophometric curve.
O41_TABLE: tuple[tuple[float, float], ...] = (
    (16.66, -85.0),
    (50.0, -63.0),
    (100.0, -41.0),
    (200.0, -21.0),
    (300.0, -10.6),
    (400.0, -6.3),
    (500.0, -3.6),
    (600.0, -2.0),
    (700.0, -0.9),
    (800.0, 0.0),
    (900.0, 0.6),
    (1000.0, 1.0),
    (1200.0, 0.0),
    (1400.0, -0.9),
    (1600.0, -1.7),
    (1800.0, -2.4),
    (2000.0, -3.0),
    (2500.0, -4.2),
    (3000.0, -5.6),
    (3500.0, -8.5),
    (4000.0, -15.0),
    (4500.0, -25.0),
    (5000.0, -36.0),
    (6000.0, -43.0),
)

_LOG_F = np.log10([p[0] for p in O41_TABLE])
_DB = np.array([p[1] for p in O41_TABLE])


def psophometric_weight_db(freq: float | np.ndarray) -> np.ndarray:
    """O.41 weight in dB at ``freq`` (clamped to the table ends)."""
    logf = np.log10(np.clip(np.asarray(freq, dtype=float), 1.0, None))
    return np.interp(logf, _LOG_F, _DB, left=_DB[0], right=-60.0)


def psophometric_weight(freq: float | np.ndarray) -> np.ndarray:
    """O.41 weight as a linear voltage factor."""
    return 10.0 ** (psophometric_weight_db(freq) / 20.0)


def psophometric_rms(freqs: np.ndarray, psd: np.ndarray) -> float:
    """Psophometrically weighted RMS of a voltage PSD [V].

    ``psd`` is one-sided [V^2/Hz] sampled at ``freqs``; integration runs
    over the sampled range (which should cover ~30 Hz..6 kHz to capture
    the weighted band).
    """
    freqs = np.asarray(freqs, dtype=float)
    psd = np.asarray(psd, dtype=float)
    if freqs.shape != psd.shape:
        raise ValueError("freqs and psd must have matching shapes")
    w = psophometric_weight(freqs)
    return float(np.sqrt(np.trapezoid(psd * w**2, freqs)))


def weighted_snr_db(signal_rms: float, freqs: np.ndarray, noise_psd: np.ndarray) -> float:
    """Psophometric S/N [dB] of an RMS signal against a noise PSD."""
    noise = psophometric_rms(freqs, noise_psd)
    if noise <= 0.0:
        raise ValueError("noise PSD integrates to zero; cannot form an SNR")
    return 20.0 * float(np.log10(signal_rms / noise))
