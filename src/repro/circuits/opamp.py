"""The modulator's fully differential opamp (Sec. 2.2).

The paper's design-consideration list describes one more amplifier we
have not yet built: the opamp inside the sigma-delta modulator —

* "A class A output stage is used in the opamp for the modulator because
  of the low supply voltage and to keep the linearity of the converter;
  because of which the quiescent supply current for the modulators opamp
  is about 150 uA."
* fully differential, long-channel loads, no cascodes, resistive
  common-mode detector, "low voltage" current sources.

This is a scaled-down sibling of the microphone amplifier's core: one
PMOS input pair (no DDA — the modulator uses switched-capacitor feedback
around it), common NMOS loads with the CM amplifier summed in, and a
class-A second stage per side with Miller compensation.  It is the
natural building block for a future switched-capacitor extension and is
characterised in its own right (gain, GBW, phase margin, IQ).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.process.mismatch import MismatchSampler
from repro.process.technology import Technology
from repro.spice import Circuit


@dataclass(frozen=True)
class ModulatorOpampSizes:
    """Geometry/currents; defaults hit the paper's ~150 uA I_Q."""

    w_input: float = 240e-6
    l_input: float = 6e-6
    i_pair: float = 60e-6

    w_load: float = 60e-6
    l_load: float = 12e-6

    w_tail: float = 120e-6
    l_tail: float = 2e-6

    w_cm: float = 120e-6
    l_cm: float = 6e-6
    i_cm: float = 20e-6

    w_cm_diode: float = 20e-6
    l_cm_diode: float = 12e-6

    w_driver: float = 120e-6
    l_driver: float = 3e-6
    l_stage2_load: float = 4e-6
    i_stage2: float = 25e-6

    i_bias: float = 10e-6
    c_miller: float = 3.3e-12
    r_zero: float = 2.4e3
    r_cm_detect: float = 400e3
    c_load: float = 2e-12           # integrating-cap-scale load per side


@dataclass
class ModulatorOpampDesign:
    """Built opamp with role->net map."""

    circuit: Circuit
    tech: Technology
    sizes: ModulatorOpampSizes
    nodes: dict[str, str] = field(default_factory=dict)

    @property
    def outp(self) -> str:
        return self.nodes["outp"]

    @property
    def outn(self) -> str:
        return self.nodes["outn"]


def build_modulator_opamp(
    tech: Technology,
    sizes: ModulatorOpampSizes | None = None,
    mismatch: MismatchSampler | None = None,
    vdd: float | None = None,
    vss: float | None = None,
    open_loop: bool = True,
) -> ModulatorOpampDesign:
    """Build the Sec. 2.2 modulator opamp.

    ``open_loop=True`` drives the input pair directly from the
    differential source (for gain/GBW/phase-margin characterisation);
    ``False`` closes resistive unity feedback for step/settling tests.
    """
    sz = sizes or ModulatorOpampSizes()
    sampler = mismatch or MismatchSampler.nominal(tech)
    vdd_v = tech.vdd_nominal if vdd is None else vdd
    vss_v = tech.vss_nominal if vss is None else vss

    ckt = Circuit("modulator_opamp")
    ckt.vsource("vdd_src", "vdd", "gnd", dc=vdd_v)
    ckt.vsource("vss_src", "vss", "gnd", dc=vss_v)
    ckt.vsource("vin_p", "src_p", "gnd", dc=0.0, ac=0.5)
    ckt.vsource("vin_n", "src_n", "gnd", dc=0.0, ac=0.5,
                ac_phase=3.141592653589793)

    def mos(name, d, g, s, b, model, w, l):
        dvt, dbeta = sampler.mos_deltas(model.polarity, w, l)
        mdl = replace(model, vth0=model.vth0 + dvt, kp=model.kp * (1.0 + dbeta))
        ckt.mosfet(name, d, g, s, b, mdl, w=w, l=l)

    if open_loop:
        ckt.resistor("rtie_p", "src_p", "inp", 1.0, noisy=False)
        ckt.resistor("rtie_n", "src_n", "inn", 1.0, noisy=False)
    else:
        # Unity resistive feedback (for settling tests): in -> R -> gate,
        # out -> R -> gate, cross-connected for negative feedback.
        for side, src, out in (("p", "src_p", "outn"), ("n", "src_n", "outp")):
            ckt.resistor(f"rin_{side}", src, f"in{side}", 100e3)
            ckt.resistor(f"rfb_{side}", out, f"in{side}", 100e3)

    # Bias branch.
    ckt.isource("ibias", "pbias", "vss", dc=sz.i_bias)
    mos("tb", "pbias", "pbias", "vdd", "vdd", tech.pmos, 30e-6, 2e-6)
    w_per = 30e-6 * 2e-6 / sz.l_tail

    mos("t5", "tail", "pbias", "vdd", "vdd", tech.pmos,
        w_per * (sz.i_pair / sz.i_bias), sz.l_tail)
    mos("t5c", "tail_c", "pbias", "vdd", "vdd", tech.pmos,
        w_per * (sz.i_cm / sz.i_bias), sz.l_tail)

    # Input pair, wells on source (same noise rule as the mic amp).
    mos("t1", "x_a", "inp", "tail", "tail", tech.pmos, sz.w_input, sz.l_input)
    mos("t2", "x_b", "inn", "tail", "tail", tech.pmos, sz.w_input, sz.l_input)

    # Common loads, gates on the CMFB rail.
    mos("tl_a", "x_a", "cmfb", "vss", "vss", tech.nmos, sz.w_load, sz.l_load)
    mos("tl_b", "x_b", "cmfb", "vss", "vss", tech.nmos, sz.w_load, sz.l_load)

    # Resistive CM detector + CM pair into the load-gate diode.
    ckt.resistor("rcm_p", "outp", "vcm_sense", sz.r_cm_detect)
    ckt.resistor("rcm_n", "outn", "vcm_sense", sz.r_cm_detect)
    mos("tc1", "cmfb", "vcm_sense", "tail_c", "tail_c", tech.pmos,
        sz.w_cm, sz.l_cm)
    mos("tc2", "dump", "gnd", "tail_c", "tail_c", tech.pmos, sz.w_cm, sz.l_cm)
    mos("tcd", "cmfb", "cmfb", "vss", "vss", tech.nmos,
        sz.w_cm_diode, sz.l_cm_diode)
    mos("tcd2", "dump", "dump", "vss", "vss", tech.nmos,
        sz.w_cm_diode, sz.l_cm_diode)

    # Class-A second stage per side ("class A ... to keep the linearity").
    w_s2 = 30e-6 * (sz.i_stage2 / sz.i_bias) * (sz.l_stage2_load / 2e-6)
    mos("td_a", "outp", "x_a", "vss", "vss", tech.nmos, sz.w_driver, sz.l_driver)
    mos("tp_a", "outp", "pbias", "vdd", "vdd", tech.pmos, w_s2, sz.l_stage2_load)
    mos("td_b", "outn", "x_b", "vss", "vss", tech.nmos, sz.w_driver, sz.l_driver)
    mos("tp_b", "outn", "pbias", "vdd", "vdd", tech.pmos, w_s2, sz.l_stage2_load)

    ckt.capacitor("cc_a", "x_a", "cz_a", sz.c_miller)
    ckt.resistor("rz_a", "cz_a", "outp", sz.r_zero)
    ckt.capacitor("cc_b", "x_b", "cz_b", sz.c_miller)
    ckt.resistor("rz_b", "cz_b", "outn", sz.r_zero)

    ckt.capacitor("cl_a", "outp", "gnd", sz.c_load)
    ckt.capacitor("cl_b", "outn", "gnd", sz.c_load)

    for node, volts in {
        "pbias": vdd_v - 0.95, "tail": 0.93, "tail_c": 0.93,
        "x_a": vss_v + 0.9, "x_b": vss_v + 0.9,
        "cmfb": vss_v + 1.05, "dump": vss_v + 1.05,
        "outp": 0.0, "outn": 0.0, "vcm_sense": 0.0,
        "inp": 0.0, "inn": 0.0,
    }.items():
        ckt.nodeset(node, volts)

    return ModulatorOpampDesign(
        circuit=ckt,
        tech=tech,
        sizes=sz,
        nodes={"outp": "outp", "outn": "outn", "inp": "inp", "inn": "inn"},
    )


def characterize_modulator_opamp(tech: Technology) -> dict[str, float]:
    """Gain/GBW/phase margin/IQ of the modulator opamp."""
    import numpy as np

    from repro.spice.ac import ac_analysis, loop_gain_margins
    from repro.spice.analysis import log_freqs
    from repro.spice.dc import dc_operating_point

    design = build_modulator_opamp(tech, open_loop=True)
    op = dc_operating_point(design.circuit)
    freqs = log_freqs(10.0, 300e6, 12)
    ac = ac_analysis(op, freqs)
    h = ac.vdiff(design.outp, design.outn)
    margins = loop_gain_margins(freqs, h)  # open-loop == unity-feedback loop
    return {
        "iq_ua": abs(op.i("vdd_src")) * 1e6,
        "dc_gain_db": 20.0 * float(np.log10(abs(h[0]))),
        "gbw_hz": margins["f_unity"],
        "phase_margin_deg": margins["phase_margin_deg"],
    }
