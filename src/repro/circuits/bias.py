"""The simple bias circuit of Fig. 2 and its Eq. 1 minimum-supply model.

Topology (classic VGS-matched delta-VBE loop, drawn exactly as the paper
describes it: "compatible-vertical-bipolar transistors ... a polysilicon
resistor ... simple low voltage current mirrors in the collectors"):

    vdd ──┬───────────┬──────────────┬────
          MP1 (diode)  MP2            MPO   <- "low-voltage" mirrors
          │            │              │
          x1           x2             iout
          │            │
          MN1 (diode)  MN2 (gate=x1g)
          │            │
          e1           r_top
          │            R1 (poly)
          Q1 1x        e2
          │            Q2 (area N)
    vss ──┴────────────┴──────────── substrate collectors

VGS(MN1)+VEB(Q1) = VGS(MN2)+I*R1+VEB(Q2)  =>  I = UT*ln(N)/R1 (PTAT),
with the poly resistor's positive tempco deliberately flattening the pure
PTAT slope ("Pure PTAT behaviour ... is minimized by using a polysilicon
resistor").  A resistor start-up leg keeps the zero-current state out.

The minimum supply of the reference branch is the paper's Eq. 1:

    V_smin >= V_thmax(T) + V_bemax(T) + 2*sqrt(2*Ib / (mu*Cox*W/L))
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.constants import thermal_voltage
from repro.process.mismatch import MismatchSampler
from repro.process.technology import Technology
from repro.spice import Circuit


@dataclass
class BiasDesign:
    """Built bias circuit plus its design knobs and named nodes."""

    circuit: Circuit
    tech: Technology
    i_nominal: float              # target PTAT current [A]
    r1: float                     # poly resistor [ohm]
    area_ratio: int               # Q2:Q1 emitter area ratio
    w_mirror: float
    l_mirror: float
    w_nmos: float
    l_nmos: float
    nodes: dict[str, str] = field(default_factory=dict)

    @property
    def out_node(self) -> str:
        return self.nodes["iout"]

    @property
    def supply_source(self) -> str:
        return "vsup"


def build_bias_circuit(
    tech: Technology,
    i_nominal: float = 20e-6,
    area_ratio: int = 8,
    supply: float | None = None,
    w_mirror: float = 120e-6,
    l_mirror: float = 6e-6,
    w_nmos: float = 200e-6,
    l_nmos: float = 4e-6,
    r_load: float = 10e3,
    mismatch: MismatchSampler | None = None,
    temp_c: float = 25.0,
) -> BiasDesign:
    """Build the Fig. 2 bias generator.

    ``supply`` is the single-rail total supply (the bias cell is drawn
    rail-to-rail; the split-supply front-end derives it from vdd-vss).
    The output branch mirrors the PTAT current into ``r_load`` so supply
    sweeps can watch the current collapse (the Eq. 1 experiment).

    Large W/L for MN1/MN2 and small current implement the paper's "the
    current I_b must be small and the (W/L) ratio of the MOS transistors
    large" low-voltage recipe.
    """
    sampler = mismatch or MismatchSampler.nominal(tech)
    ut = thermal_voltage(temp_c)
    r1 = ut * math.log(area_ratio) / i_nominal
    vsup = supply if supply is not None else tech.supply_total

    ckt = Circuit("bias_fig2")
    ckt.vsource("vsup", "vdd", "gnd", dc=vsup)

    def mos(name, d, g, s, model, w, l):
        dvt, dbeta = sampler.mos_deltas(model.polarity, w, l)
        from dataclasses import replace

        mdl = replace(model, vth0=model.vth0 + dvt, kp=model.kp * (1.0 + dbeta))
        bulk = "vdd" if model.polarity == "pmos" else "gnd"
        ckt.mosfet(name, d, g, s, bulk, mdl, w=w, l=l)

    # PMOS mirror rail (MP1 diode on branch 1).
    mos("mp1", "x1", "x1", "vdd", tech.pmos, w_mirror, l_mirror)
    mos("mp2", "x2", "x1", "vdd", tech.pmos, w_mirror, l_mirror)
    mos("mpo", "iout", "x1", "vdd", tech.pmos, w_mirror, l_mirror)

    # NMOS VGS-matched pair.
    mos("mn1", "x1", "x2", "e1", tech.nmos, w_nmos, l_nmos)
    mos("mn2", "x2", "x2", "rtop", tech.nmos, w_nmos, l_nmos)

    # Vertical PNPs (collector = substrate = gnd rail of this cell).
    from dataclasses import replace as _replace

    q_model = tech.vpnp
    d_is1 = sampler.bjt_is_delta(1.0)
    d_is2 = sampler.bjt_is_delta(float(area_ratio))
    ckt.bjt("q1", "gnd", "gnd", "e1", _replace(q_model, is_sat=q_model.is_sat * (1 + d_is1)))
    ckt.bjt(
        "q2", "gnd", "gnd", "e2",
        _replace(q_model, is_sat=q_model.is_sat * (1 + d_is2)),
        area=float(area_ratio),
    )

    # Poly resistor between the matched branch and the big PNP.
    dr = sampler.resistor_delta(r1)
    ckt.resistor("r1", "rtop", "e2", r1 * (1 + dr),
                 tc1=tech.poly.tc1, tc2=tech.poly.tc2)

    # Start-up leg: weak resistor into the NMOS gate rail.
    ckt.resistor("rstart", "vdd", "x2", 2.2e6, noisy=True)

    # Output branch load (observing resistor).
    ckt.resistor("rload", "iout", "gnd", r_load, noisy=False)

    # Nodesets: the loop has a stable zero state; aim Newton at the
    # operating one.
    vbe = 0.75
    ckt.nodeset("e1", vbe)
    ckt.nodeset("e2", vbe - ut * math.log(area_ratio))
    ckt.nodeset("rtop", vbe)
    ckt.nodeset("x2", vbe + 1.0)
    ckt.nodeset("x1", vbe + 1.0)
    ckt.nodeset("iout", i_nominal * r_load)

    design = BiasDesign(
        circuit=ckt,
        tech=tech,
        i_nominal=i_nominal,
        r1=r1,
        area_ratio=area_ratio,
        w_mirror=w_mirror,
        l_mirror=l_mirror,
        w_nmos=w_nmos,
        l_nmos=l_nmos,
        nodes={"iout": "iout", "x1": "x1", "x2": "x2", "e1": "e1", "e2": "e2"},
    )
    return design


def eq1_min_supply(
    tech: Technology,
    i_bias: float,
    w_over_l: float,
    temp_c: float,
    area_ratio: int = 8,
    vbe_bias_current: float | None = None,
) -> float:
    """The paper's Eq. 1 minimum supply voltage [V].

        V_smin >= V_thmax(T) + V_bemax(T) + 2*sqrt(2*I_b/(mu*Cox*(W/L)))

    V_bemax is evaluated at the *lowest* temperature of the range (the
    paper: "the maximum V_be voltage depends on the transistor current
    I_b and the lowest temperature required, which is also the most
    critical parameter").  Here we evaluate all terms at ``temp_c`` so
    sweeping it reproduces that claim.
    """
    nmos = tech.nmos
    vth = nmos.vth_at(temp_c)
    kp = nmos.kp_at(temp_c)
    # VBE from the vertical-PNP model at the branch current.
    i_be = vbe_bias_current if vbe_bias_current is not None else i_bias
    is_t = tech.vpnp.is_at(temp_c)
    ut = thermal_voltage(temp_c)
    vbe = ut * math.log(max(i_be / is_t, 1.0))
    vdsat_term = 2.0 * math.sqrt(2.0 * i_bias / (kp * w_over_l))
    return vth + vbe + vdsat_term
