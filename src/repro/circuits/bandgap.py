"""The fully differential bandgap reference of Fig. 3.

Current-mode architecture: two self-biased loops generate a PTAT current
(delta-VBE across the poly resistor R1) and a CTAT current (VBE across
R2); their weighted sum is first-order temperature independent.  The sum
is mirrored both ways to build the paper's *symmetrical* reference —
"the analogue front-end ... operates with a symmetrical reference voltage
of +/-0.6 V around ground level":

    vrefp = +(I_ptat + I_ctat) * R_p     (PMOS mirror sourcing into R_p)
    vrefn = -(I_ptat + I_ctat) * R_n     (NMOS mirror sinking from R_n)

Because both the zero-TC condition and the output voltage are resistor
*ratios*, the poly tempco cancels to first order — the circuit-level
reason the paper can quote < +/-40 ppm/degC from a plain poly process.
MOS mirror geometry is "chosen to minimise the noise energy in the audio
frequency band" (long L, large area, moderate currents), checked by the
Fig. 3 noise bench against the < 200 nV/rtHz claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.constants import thermal_voltage
from repro.process.mismatch import MismatchSampler
from repro.process.technology import Technology
from repro.spice import Circuit


@dataclass
class BandgapDesign:
    """Built bandgap plus its design values and node roles."""

    circuit: Circuit
    tech: Technology
    i_ptat: float
    r1: float
    r2: float
    r_out: float
    area_ratio: int
    vref_target: float
    nodes: dict[str, str] = field(default_factory=dict)

    @property
    def vrefp(self) -> str:
        return self.nodes["vrefp"]

    @property
    def vrefn(self) -> str:
        return self.nodes["vrefn"]


def ctat_slope(tech: Technology, i_bias: float, temp_c: float = 25.0,
               dt: float = 0.5) -> float:
    """Numerical dVBE/dT of the process PNP at a bias current [V/K]."""
    ut_p = thermal_voltage(temp_c + dt)
    ut_m = thermal_voltage(temp_c - dt)
    vbe_p = ut_p * math.log(i_bias / tech.vpnp.is_at(temp_c + dt))
    vbe_m = ut_m * math.log(i_bias / tech.vpnp.is_at(temp_c - dt))
    return (vbe_p - vbe_m) / (2.0 * dt)


def find_r2_trim(
    tech: Technology,
    t_lo: float = -20.0,
    t_hi: float = 85.0,
    start: float = 1.2,
    iterations: int = 4,
    **build_kwargs,
) -> float:
    """Null the bandgap's residual tempco slope by trimming R2.

    Mirrors what production does with the real part: measure the
    reference at the range ends, adjust the CTAT resistor, repeat.  A
    secant iteration on d(vref)/dT converges in a few steps.  Returns the
    trim factor to pass as ``r2_trim``.
    """
    from repro.spice.sweeps import temperature_sweep
    import numpy as np

    temps = np.array([t_lo, 25.0, t_hi])

    def slope(trim: float) -> float:
        design = build_bandgap(tech, r2_trim=trim, **build_kwargs)
        ops = temperature_sweep(design.circuit, temps)
        vr = np.array([op.v(design.vrefp) - op.v(design.vrefn) for op in ops])
        return float(np.polyfit(temps, vr, 1)[0])

    trim0, trim1 = start, start * 1.05
    s0 = slope(trim0)
    for _ in range(iterations):
        s1 = slope(trim1)
        if abs(s1 - s0) < 1e-12:
            break
        trim2 = trim1 - s1 * (trim1 - trim0) / (s1 - s0)
        trim2 = min(max(trim2, 0.5), 2.0)
        trim0, s0, trim1 = trim1, s1, trim2
        if abs(s0) < 1e-6:  # < 1 uV/K residual slope
            return trim0
    return trim1


def build_bandgap(
    tech: Technology,
    i_ptat: float = 20e-6,
    area_ratio: int = 8,
    vref_target: float = 0.6,
    supply: float | None = None,
    w_pmirror: float = 160e-6,
    l_pmirror: float = 8e-6,
    w_nmos: float = 240e-6,
    l_nmos: float = 4e-6,
    w_nmirror: float = 120e-6,
    l_nmirror: float = 8e-6,
    r2_trim: float = 1.0,
    mismatch: MismatchSampler | None = None,
    temp_c: float = 25.0,
) -> BandgapDesign:
    """Build the Fig. 3 fully differential bandgap.

    ``r2_trim`` scales the CTAT resistor, the knob a production part
    would trim to null the residual tempco slope; the Fig. 3 bench uses
    it to centre the curvature in the -20..85 degC window.

    The split supply is vdd/vss = +/- tech rails; references come out on
    ``vrefp``/``vrefn`` around the analogue ground.
    """
    sampler = mismatch or MismatchSampler.nominal(tech)
    ut = thermal_voltage(temp_c)
    r1 = ut * math.log(area_ratio) / i_ptat

    # Zero-TC weighting.  vref = R_out*(dVBE/R1 + VBE/R2) is a pure
    # resistor-ratio expression, so d(vref)/dT = 0 reduces to
    #   (k/q)*ln(N)/R1 = |dVBE/dT|/R2.
    ptat_current_slope = (ut / (temp_c + 273.15)) * math.log(area_ratio) / r1  # [A/K]
    vbe_slope = ctat_slope(tech, i_ptat, temp_c)                               # [V/K] < 0
    r2 = abs(vbe_slope) / ptat_current_slope * r2_trim
    i_ctat_est = 0.72 / r2
    i_sum = i_ptat + i_ctat_est
    r_out = vref_target / i_sum

    vdd = tech.vdd_nominal if supply is None else supply / 2.0
    vss = tech.vss_nominal if supply is None else -supply / 2.0

    ckt = Circuit("bandgap_fig3")
    ckt.vsource("vdd_src", "vdd", "gnd", dc=vdd)
    ckt.vsource("vss_src", "vss", "gnd", dc=vss)

    def mos(name, d, g, s, model, w, l, m=1):
        dvt, dbeta = sampler.mos_deltas(model.polarity, w, l)
        mdl = replace(model, vth0=model.vth0 + dvt, kp=model.kp * (1.0 + dbeta))
        bulk = "vdd" if model.polarity == "pmos" else "vss"
        ckt.mosfet(name, d, g, s, bulk, mdl, w=w, l=l, m=m)

    def pnp(name, e_node, area=1.0):
        d_is = sampler.bjt_is_delta(area)
        ckt.bjt(name, "vss", "vss", e_node,
                replace(tech.vpnp, is_sat=tech.vpnp.is_sat * (1 + d_is)),
                area=area)

    def poly(name, n1, n2, value, width_um=4.0):
        dr = sampler.resistor_delta(value, width_um)
        ckt.resistor(name, n1, n2, value * (1 + dr),
                     tc1=tech.poly.tc1, tc2=tech.poly.tc2)

    # ------------------------------------------------------------------
    # PTAT loop (same cell as the Fig. 2 bias, referenced to vss)
    # ------------------------------------------------------------------
    mos("mp1", "x1", "x1", "vdd", tech.pmos, w_pmirror, l_pmirror)
    mos("mp2", "x2", "x1", "vdd", tech.pmos, w_pmirror, l_pmirror)
    mos("mn1", "x1", "x2", "e1", tech.nmos, w_nmos, l_nmos)
    mos("mn2", "x2", "x2", "rtop", tech.nmos, w_nmos, l_nmos)
    pnp("q1", "e1", 1.0)
    pnp("q2", "e2", float(area_ratio))
    poly("r1", "rtop", "e2", r1)
    ckt.resistor("rstart1", "vdd", "x2", 3.3e6)

    # ------------------------------------------------------------------
    # CTAT loop: I = VBE/R2 via the same VGS-matched trick
    # ------------------------------------------------------------------
    mos("mp3", "y1", "y1", "vdd", tech.pmos, w_pmirror, l_pmirror)
    mos("mp4", "y2", "y1", "vdd", tech.pmos, w_pmirror, l_pmirror)
    mos("mn3", "y1", "y2", "e3", tech.nmos, w_nmos, l_nmos)
    mos("mn4", "y2", "y2", "r2top", tech.nmos, w_nmos, l_nmos)
    pnp("q3", "e3", 1.0)
    poly("r2", "r2top", "vss", r2)
    ckt.resistor("rstart2", "vdd", "y2", 3.3e6)

    # ------------------------------------------------------------------
    # Summing mirrors and symmetric outputs
    # ------------------------------------------------------------------
    # Positive reference: PMOS copies of both loop currents into R_p.
    mos("mp5", "vrefp", "x1", "vdd", tech.pmos, w_pmirror, l_pmirror)
    mos("mp6", "vrefp", "y1", "vdd", tech.pmos, w_pmirror, l_pmirror)
    poly("rp", "vrefp", "gnd", r_out)

    # Negative reference: sum into an NMOS diode, sink from R_n.
    mos("mp7", "nsum", "x1", "vdd", tech.pmos, w_pmirror, l_pmirror)
    mos("mp8", "nsum", "y1", "vdd", tech.pmos, w_pmirror, l_pmirror)
    mos("mn5", "nsum", "nsum", "vss", tech.nmos, w_nmirror, l_nmirror)
    mos("mn6", "vrefn", "nsum", "vss", tech.nmos, w_nmirror, l_nmirror)
    poly("rn", "gnd", "vrefn", r_out)

    # Decoupling (the paper's front-end buffers these nets).
    ckt.capacitor("cp", "vrefp", "gnd", 20e-12)
    ckt.capacitor("cn", "vrefn", "gnd", 20e-12)

    # Nodesets aiming at the operating solution.
    vbe = 0.73
    for node, volts in {
        "e1": vss + vbe, "e2": vss + vbe - ut * math.log(area_ratio),
        "rtop": vss + vbe, "x2": vss + vbe + 1.0, "x1": vdd - 1.0,
        "e3": vss + vbe, "r2top": vss + vbe, "y2": vss + vbe + 1.0,
        "y1": vdd - 1.0, "vrefp": vref_target, "vrefn": -vref_target,
        "nsum": vss + 1.0,
    }.items():
        ckt.nodeset(node, volts)

    return BandgapDesign(
        circuit=ckt,
        tech=tech,
        i_ptat=i_ptat,
        r1=r1,
        r2=r2,
        r_out=r_out,
        area_ratio=area_ratio,
        vref_target=vref_target,
        nodes={"vrefp": "vrefp", "vrefn": "vrefn", "x1": "x1", "y1": "y1"},
    )
