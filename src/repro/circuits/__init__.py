"""The paper's circuits as parameterised netlist builders.

Every builder returns a :class:`repro.spice.Circuit` plus a small design
object describing the interesting nodes, so benches and tests can address
outputs by role instead of by raw net name.
"""

from repro.circuits.bias import BiasDesign, build_bias_circuit, eq1_min_supply
from repro.circuits.bandgap import BandgapDesign, build_bandgap
from repro.circuits.library import (
    build_cascode_mirror_cell,
    build_simple_mirror_cell,
    mirror_compliance_voltage,
)
from repro.circuits.micamp import MicAmpDesign, build_mic_amp
from repro.circuits.opamp import (
    ModulatorOpampDesign,
    build_modulator_opamp,
    characterize_modulator_opamp,
)
from repro.circuits.powerbuffer import PowerBufferDesign, build_power_buffer

__all__ = [
    "BandgapDesign",
    "BiasDesign",
    "MicAmpDesign",
    "ModulatorOpampDesign",
    "PowerBufferDesign",
    "build_modulator_opamp",
    "characterize_modulator_opamp",
    "build_bandgap",
    "build_bias_circuit",
    "build_cascode_mirror_cell",
    "build_mic_amp",
    "build_power_buffer",
    "build_simple_mirror_cell",
    "eq1_min_supply",
    "mirror_compliance_voltage",
]
