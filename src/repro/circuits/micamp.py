"""The programmable-gain low-noise microphone amplifier (Figs. 4 and 5).

Architecture, following the paper:

* a fully differential **differential difference amplifier** (DDA, ref [6]):
  two identical PMOS input pairs — pair A takes the microphone signal on
  high-impedance gates, pair B takes the feedback taps — summing into
  common NMOS load devices;
* **PMOS inputs with source-tied wells**: "for a high gain and low noise
  amplifier operating on a noisy substrate, the input transistors
  substrate must be connected to its own source" (Sec. 3.2), which also
  removes the body effect from the input path;
* **resistive common-mode detector** across the outputs and a CM amplifier
  whose output current is "added in the common load devices" (Sec. 2.2,
  ref [3]);
* class-A second stage per side with Miller compensation (no cascodes
  anywhere — 2.6 V supply, 0.7 V thresholds);
* gain programming by two **matched resistor strings** with MOS switches
  in series with pair-B gates: the taps are unloaded (gate current is
  zero), so switch Ron adds only its 4kTRon noise (Eq. 5) and no gain
  error — the closed-loop gain is A_cl = R_total/R_a (10..40 dB in 6 dB
  steps).

Default sizes implement the paper's Sec. 3.2 noise recipe and meet the
Table 1 budget: gm of T1..T4 maximised (thermal), large gate areas
(flicker), load gm a fraction of input gm, small R_a at high gain.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.pga.gain_control import GainControl
from repro.process.mismatch import MismatchSampler
from repro.process.technology import Technology
from repro.spice import Circuit
from repro.spice.elements import Switch


@dataclass(frozen=True)
class MicAmpSizes:
    """Device geometry of the microphone amplifier (all in metres/amps).

    The defaults follow the Sec. 3.2 sizing walk-through in
    :mod:`repro.pga.design`; they are re-derived there from the noise
    target so tests can check the two agree.
    """

    # input devices T1..T4 (PMOS, wells tied to source).  Long channel:
    # "long channel devices used in the gain stages are the only
    # possibilities of maintaining the performances" (Sec. 1) — here it
    # buys the output resistance that cascodes would normally provide.
    w_input: float = 7200e-6
    l_input: float = 8e-6
    i_pair: float = 0.8e-3          # tail current per input pair

    # common NMOS loads (large area: the N-flicker penalty, Sec. 3.1)
    w_load: float = 1200e-6
    l_load: float = 25e-6

    # tail current sources T5 (PMOS)
    w_tail: float = 2400e-6
    l_tail: float = 2e-6

    # CM amplifier pair ("twice the size and current of the input pair"
    # per *device* would double IQ; half-current tail with double-size
    # devices keeps the 6 dB CM-noise advantage at budget)
    w_cm: float = 1500e-6
    l_cm: float = 5e-6
    i_cm: float = 0.4e-3

    # CMFB diode + mirror into the loads
    w_cm_diode: float = 310e-6
    l_cm_diode: float = 25e-6

    # second stage (class A); long-L load for output resistance (the
    # no-cascode route to loop gain, hence gain accuracy).  The load
    # width is derived in the builder from i_stage2 via the bias mirror
    # ratio.
    w_driver: float = 900e-6
    l_driver: float = 3e-6
    l_stage2_load: float = 4e-6
    i_stage2: float = 0.25e-3

    # bias reference branch
    i_bias: float = 0.1e-3

    # compensation
    c_miller: float = 33e-12
    r_zero: float = 310.0

    # CM detector resistors
    r_cm_detect: float = 100e3

    # gain switch Ron target (sets W/L of the MOS switches, Eq. 5)
    r_switch_on: float = 70.0

    # feed-forward lead capacitor across the feedback string.  The
    # noise-sized input pair presents ~50 pF at the feedback gate; with
    # the string's source resistance that pole would sit inside the loop
    # at the low-gain codes.  A fixed lead cap turns the divider
    # capacitive above ~500 kHz (out of the voice band) and restores the
    # phase margin at every code.
    c_feedforward: float = 24e-12


@dataclass
class MicAmpDesign:
    """Built amplifier: circuit, control and the role->net map."""

    circuit: Circuit
    tech: Technology
    sizes: MicAmpSizes
    gain: GainControl
    gain_code: int
    switch_type: str
    nodes: dict[str, str] = field(default_factory=dict)
    input_devices: tuple[str, ...] = ("t1", "t2", "t3", "t4")
    load_devices: tuple[str, ...] = ("tl_a", "tl_b")

    @property
    def outp(self) -> str:
        return self.nodes["outp"]

    @property
    def outn(self) -> str:
        return self.nodes["outn"]

    def set_gain_code(self, code: int) -> None:
        """Reprogram the gain switches in place (recompile required)."""
        self.gain.validate_code(code)
        states = self.gain.switch_states(code)
        for side in ("a", "b"):
            for k, closed in enumerate(states):
                el = self.circuit.element(f"sw{side}_{k}")
                if isinstance(el, Switch):
                    el.closed = closed
                else:
                    # MOS switch: move the gate between the rails.
                    gate_src = self.circuit.element(f"vsw{side}_{k}")
                    gate_src.dc = 1.3 if closed else -1.3
        self.gain_code = code

    def supply_current_sources(self) -> tuple[str, str]:
        return ("vdd_src", "vss_src")


def build_mic_amp(
    tech: Technology,
    gain_code: int = 5,
    gain: GainControl | None = None,
    sizes: MicAmpSizes | None = None,
    switch_type: str = "mos",
    mismatch: MismatchSampler | None = None,
    vdd: float | None = None,
    vss: float | None = None,
) -> MicAmpDesign:
    """Build the Figs. 4/5 microphone amplifier at a gain code.

    ``switch_type`` selects MOS-transistor tap switches ("mos", the full
    physics including Eq. 5 noise and charge-free off state) or ideal
    ron/roff switches ("ideal", faster convergence for behavioural runs).
    """
    gc = gain or GainControl()
    gc.validate_code(gain_code)
    sz = sizes or MicAmpSizes()
    sampler = mismatch or MismatchSampler.nominal(tech)
    if switch_type not in ("mos", "ideal"):
        raise ValueError(f"switch_type must be 'mos' or 'ideal', got {switch_type!r}")

    vdd_v = tech.vdd_nominal if vdd is None else vdd
    vss_v = tech.vss_nominal if vss is None else vss

    ckt = Circuit("micamp_fig4")
    ckt.vsource("vdd_src", "vdd", "gnd", dc=vdd_v)
    ckt.vsource("vss_src", "vss", "gnd", dc=vss_v)

    # Microphone input: differential source, 1 V AC differential for
    # gain/noise measurements.
    ckt.vsource("vin_p", "inp", "gnd", dc=0.0, ac=0.5)
    ckt.vsource("vin_n", "inn", "gnd", dc=0.0, ac=0.5, ac_phase=3.141592653589793)

    def mos(name, d, g, s, b, model, w, l):
        dvt, dbeta = sampler.mos_deltas(model.polarity, w, l)
        mdl = replace(model, vth0=model.vth0 + dvt, kp=model.kp * (1.0 + dbeta))
        ckt.mosfet(name, d, g, s, b, mdl, w=w, l=l)

    # ------------------------------------------------------------------
    # Bias distribution (central generator feeds this cell; modelled as
    # a clean current source — its noise enters common-mode only).
    # ------------------------------------------------------------------
    ckt.isource("ibias", "pbias", "vss", dc=sz.i_bias)
    mos("tb", "pbias", "pbias", "vdd", "vdd", tech.pmos, 300e-6, 2e-6)

    # Tails sized by mirror ratio from the 300u/2u bias diode.
    w_per_amp = 300e-6 * 2e-6 / sz.l_tail  # width for 1:1 at this L
    mos("t5a", "tail_a", "pbias", "vdd", "vdd", tech.pmos,
        w_per_amp * (sz.i_pair / sz.i_bias), sz.l_tail)
    mos("t5b", "tail_b", "pbias", "vdd", "vdd", tech.pmos,
        w_per_amp * (sz.i_pair / sz.i_bias), sz.l_tail)
    mos("t5c", "tail_c", "pbias", "vdd", "vdd", tech.pmos,
        w_per_amp * (sz.i_cm / sz.i_bias), sz.l_tail)

    # ------------------------------------------------------------------
    # Stage 1: two PMOS input pairs into common NMOS loads.
    # Wells tied to the pair's own source node (noise + body effect).
    # ------------------------------------------------------------------
    mos("t1", "x_a", "inp", "tail_a", "tail_a", tech.pmos, sz.w_input, sz.l_input)
    mos("t2", "x_b", "inn", "tail_a", "tail_a", tech.pmos, sz.w_input, sz.l_input)
    mos("t3", "x_b", "fbp", "tail_b", "tail_b", tech.pmos, sz.w_input, sz.l_input)
    mos("t4", "x_a", "fbn", "tail_b", "tail_b", tech.pmos, sz.w_input, sz.l_input)

    mos("tl_a", "x_a", "cmfb", "vss", "vss", tech.nmos, sz.w_load, sz.l_load)
    mos("tl_b", "x_b", "cmfb", "vss", "vss", tech.nmos, sz.w_load, sz.l_load)

    # ------------------------------------------------------------------
    # Common-mode feedback: resistive detector + CM pair into a diode
    # that mirrors into the loads ("added in the common load devices").
    # ------------------------------------------------------------------
    ckt.resistor("rcm_p", "outp", "vcm_sense", sz.r_cm_detect,
                 tc1=tech.poly.tc1, tc2=tech.poly.tc2)
    ckt.resistor("rcm_n", "outn", "vcm_sense", sz.r_cm_detect,
                 tc1=tech.poly.tc1, tc2=tech.poly.tc2)

    mos("tc1", "cmfb", "vcm_sense", "tail_c", "tail_c", tech.pmos, sz.w_cm, sz.l_cm)
    mos("tc2", "dump", "gnd", "tail_c", "tail_c", tech.pmos, sz.w_cm, sz.l_cm)
    mos("tcd", "cmfb", "cmfb", "vss", "vss", tech.nmos, sz.w_cm_diode, sz.l_cm_diode)
    # tc2's current is absorbed by a matched diode so its VDS stays sane.
    mos("tcd2", "dump", "dump", "vss", "vss", tech.nmos, sz.w_cm_diode, sz.l_cm_diode)

    # ------------------------------------------------------------------
    # Stage 2 (class A) per side + Miller compensation.
    # ------------------------------------------------------------------
    # Stage-2 current-source width from the bias-diode mirror ratio
    # (reference diode is 300u/2u at i_bias).
    w_s2 = 300e-6 * (sz.i_stage2 / sz.i_bias) * (sz.l_stage2_load / 2e-6)
    mos("td_a", "outp", "x_a", "vss", "vss", tech.nmos, sz.w_driver, sz.l_driver)
    mos("tp_a", "outp", "pbias", "vdd", "vdd", tech.pmos, w_s2, sz.l_stage2_load)
    mos("td_b", "outn", "x_b", "vss", "vss", tech.nmos, sz.w_driver, sz.l_driver)
    mos("tp_b", "outn", "pbias", "vdd", "vdd", tech.pmos, w_s2, sz.l_stage2_load)

    ckt.capacitor("cc_a", "x_a", "cz_a", sz.c_miller)
    ckt.resistor("rz_a", "cz_a", "outp", sz.r_zero, noisy=True)
    ckt.capacitor("cc_b", "x_b", "cz_b", sz.c_miller)
    ckt.resistor("rz_b", "cz_b", "outn", sz.r_zero, noisy=True)

    # ------------------------------------------------------------------
    # Gain-programming network (Fig. 5): two matched strings + switches.
    # String runs from each output down to analogue ground; the tap for
    # the selected code feeds the pair-B gate through its switch.
    # ------------------------------------------------------------------
    segments = gc.segment_resistances()
    states = gc.switch_states(gain_code)
    n_taps = gc.num_codes

    ckt.capacitor("cff_a", "outp", "fbp", sz.c_feedforward)
    ckt.capacitor("cff_b", "outn", "fbn", sz.c_feedforward)

    for side, out_node, fb_node in (("a", "outp", "fbp"), ("b", "outn", "fbn")):
        # Build from ground up: node chain gnd -> tap0 -> tap1 ... -> out.
        below = "gnd"
        for k, seg in enumerate(segments):
            above = f"tap{side}_{k}" if k < n_taps else out_node
            dr = sampler.resistor_delta(seg, width_um=4.0)
            ckt.resistor(f"rs{side}_{k}", above, below, seg * (1 + dr),
                         tc1=tech.poly.tc1, tc2=tech.poly.tc2)
            below = above
        for k in range(n_taps):
            tap = f"tap{side}_{k}"
            if switch_type == "ideal":
                ckt.switch(f"sw{side}_{k}", tap, fb_node, closed=states[k],
                           ron=sz.r_switch_on, roff=1e12)
            else:
                # NMOS switch, gate rail-driven.  Taps sit near ground so
                # the body effect (bulk at vss) raises VTH substantially —
                # the low-voltage switch problem behind Eq. 5.  Size W/L
                # for the Ron target at the body-degraded V_eff.
                import math as _math

                nm = tech.nmos
                vsb = 0.0 - vss_v
                vth_sw = nm.vth0 + nm.gamma * (
                    _math.sqrt(nm.phi + vsb) - _math.sqrt(nm.phi)
                )
                veff = vdd_v - vth_sw
                if veff <= 0.05:
                    raise ValueError(
                        "supply too low to turn the tap switches on; "
                        f"effective gate drive {veff:.3f} V"
                    )
                w_over_l = 1.0 / (sz.r_switch_on * nm.kp * veff)
                l_sw = tech.l_min
                ckt.mosfet(f"sw{side}_{k}", tap, f"swg{side}_{k}", fb_node, "vss",
                           tech.nmos, w=w_over_l * l_sw, l=l_sw)
                ckt.vsource(f"vsw{side}_{k}", f"swg{side}_{k}", "gnd",
                            dc=vdd_v if states[k] else vss_v)

    # ------------------------------------------------------------------
    # Solver hints.
    # ------------------------------------------------------------------
    for node, volts in {
        "pbias": vdd_v - 0.95,
        "tail_a": 0.93, "tail_b": 0.93, "tail_c": 0.93,
        "x_a": vss_v + 0.9, "x_b": vss_v + 0.9,
        "cmfb": vss_v + 1.05, "dump": vss_v + 1.05,
        "outp": 0.0, "outn": 0.0, "vcm_sense": 0.0,
        "fbp": 0.0, "fbn": 0.0,
    }.items():
        ckt.nodeset(node, volts)

    return MicAmpDesign(
        circuit=ckt,
        tech=tech,
        sizes=sz,
        gain=gc,
        gain_code=gain_code,
        switch_type=switch_type,
        nodes={
            "outp": "outp", "outn": "outn", "inp": "inp", "inn": "inn",
            "fbp": "fbp", "fbn": "fbn", "x_a": "x_a", "x_b": "x_b",
            "cmfb": "cmfb", "vcm_sense": "vcm_sense",
        },
    )
