"""Shared sub-circuit builders and the cascode-vs-simple mirror cells.

The mirror cells back the paper's Section 2 argument that "cascoding ...
can no longer be used" at a 2.6 V supply with 0.7 V thresholds: the
regulated/cascode mirror's compliance voltage is V_th + 2V_dssat (about
1.1 V) against the simple mirror's single V_dssat.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.process.technology import Technology
from repro.spice import Circuit
from repro.spice.dc import dc_sweep


@dataclass
class MirrorCell:
    """A current-mirror test cell with a swept output compliance node."""

    circuit: Circuit
    out_node: str
    sweep_source: str
    i_ref: float
    kind: str


def build_simple_mirror_cell(
    tech: Technology,
    i_ref: float = 50e-6,
    w: float = 60e-6,
    l: float = 5e-6,
) -> MirrorCell:
    """NMOS simple mirror: compliance ~ one V_dssat."""
    ckt = Circuit("simple_mirror")
    ckt.vsource("vo", "out", "gnd", dc=1.0)
    ckt.isource("iref", "vdd_ref", "d1", dc=i_ref)
    ckt.vsource("vref_sup", "vdd_ref", "gnd", dc=3.0)
    ckt.mosfet("mn1", "d1", "d1", "gnd", "gnd", tech.nmos, w=w, l=l)
    ckt.mosfet("mn2", "out", "d1", "gnd", "gnd", tech.nmos, w=w, l=l)
    ckt.nodeset("d1", 0.9)
    return MirrorCell(ckt, "out", "vo", i_ref, "simple")


def build_cascode_mirror_cell(
    tech: Technology,
    i_ref: float = 50e-6,
    w: float = 60e-6,
    l: float = 5e-6,
) -> MirrorCell:
    """NMOS cascode mirror: compliance ~ V_th + 2 V_dssat (Sec. 2 claim)."""
    ckt = Circuit("cascode_mirror")
    ckt.vsource("vo", "out", "gnd", dc=1.5)
    ckt.vsource("vref_sup", "vdd_ref", "gnd", dc=3.0)
    ckt.isource("iref", "vdd_ref", "d1c", dc=i_ref)
    # Stacked-diode reference branch sets both gate rails.
    ckt.mosfet("mn1c", "d1c", "d1c", "d1", "gnd", tech.nmos, w=w, l=l)
    ckt.mosfet("mn1", "d1", "d1", "gnd", "gnd", tech.nmos, w=w, l=l)
    # Output branch: cascode on top of the mirror device.
    ckt.mosfet("mn2c", "out", "d1c", "dm", "gnd", tech.nmos, w=w, l=l)
    ckt.mosfet("mn2", "dm", "d1", "gnd", "gnd", tech.nmos, w=w, l=l)
    ckt.nodeset("d1", 0.9)
    ckt.nodeset("d1c", 1.9)
    ckt.nodeset("dm", 0.2)
    return MirrorCell(ckt, "out", "vo", i_ref, "cascode")


def mirror_saturation_compliance(
    cell: MirrorCell,
    v_max: float = 2.5,
    points: int = 51,
) -> float:
    """Lowest output voltage keeping every output-branch device saturated.

    This is the compliance notion behind the paper's Sec. 2 argument: a
    cascode loses *output resistance* (its raison d'etre) as soon as the
    stacked device leaves saturation, long before the raw current copy
    collapses — with long-channel devices the copy alone degrades very
    gracefully (see :func:`mirror_compliance_voltage`).
    """
    from repro.spice.sweeps import source_value_sweep

    volts = np.linspace(v_max, 0.05, points)
    out_devices = [name for name in ("mn2", "mn2c")
                   if name in cell.circuit]
    ops = source_value_sweep(cell.circuit, cell.sweep_source, volts, anchor=v_max)
    lowest = float("nan")
    for v, op in zip(volts, ops):
        saturated = all(op.mos_op(name).saturated for name in out_devices)
        if saturated:
            lowest = float(v)
        else:
            break
    return lowest


def mirror_compliance_voltage(
    cell: MirrorCell,
    accuracy: float = 0.95,
    v_max: float = 2.5,
    points: int = 126,
) -> float:
    """Lowest output voltage where the mirror still delivers ``accuracy``
    of its large-headroom current (measured like the paper's Eq. 1 bound:
    sweep the output node down until the copy collapses)."""
    volts = np.linspace(v_max, 0.0, points)
    data = dc_sweep(cell.circuit, cell.sweep_source, volts, [f"i({cell.sweep_source})"])
    i_out = -data[f"i({cell.sweep_source})"]  # source absorbs the mirror current
    i_ref_measured = float(np.median(i_out[: points // 5]))
    good = i_out >= accuracy * i_ref_measured
    if not np.any(good):
        return float("nan")
    # Find the lowest voltage for which all higher voltages are good.
    idx = np.where(~good)[0]
    if idx.size == 0:
        return float(volts[-1])
    first_bad = idx[0]
    if first_bad == 0:
        return float("nan")
    return float(volts[first_bad - 1])


def add_split_supplies(ckt: Circuit, tech: Technology,
                       vdd_node: str = "vdd", vss_node: str = "vss") -> None:
    """Add the paper's split +/-1.3 V supplies around analogue ground."""
    ckt.vsource("vdd_src", vdd_node, "gnd", dc=tech.vdd_nominal)
    ckt.vsource("vss_src", vss_node, "gnd", dc=tech.vss_nominal)
