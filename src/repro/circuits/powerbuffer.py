"""The class-AB fully differential "power" driver (Figs. 8 and 9).

Architecture, following the paper's Sec. 4:

* **two complementary differential input stages** (NMOS + PMOS pairs) so
  the input range reaches both rails — Eqs. 6/7 bound where each pair
  drops out, and together they cover rail-to-rail;
* per-side **summing node** fed by mirror copies of both pairs' output
  currents (the "combined P and N channel differential stage" of the
  abstract);
* **class-AB output stage** whose P and N gates are "driven directly from
  the differential stage" through a floating class-AB head; a translinear
  replica loop ("quiescent current control circuitry") sets the output
  quiescent current as a mirror ratio of a reference — the paper's claim
  that total supply-current variation stays ~15 % over temperature,
  process and 2.8..5 V supply rests on this loop;
* **resistive common-mode divider** to the gate of the CM pair, balanced
  against the ``vbal`` input ("the common mode output voltage is very
  close to the input balance voltage connected to the gate of T4");
* one RC compensation network per output.

The open-loop gain into a 50 ohm load is deliberately modest — the paper
itself reports the consequence ("the major drawback ... is the signal
dependent gain (5 % over the full range)"), which the Fig. 8/9 bench
reproduces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.process.mismatch import MismatchSampler
from repro.process.technology import Technology
from repro.spice import Circuit


@dataclass(frozen=True)
class PowerBufferSizes:
    """Device geometry and currents of the class-AB driver."""

    # input pairs
    w_nin: float = 200e-6
    l_nin: float = 2e-6
    w_pin: float = 600e-6
    l_pin: float = 2e-6
    i_ntail: float = 200e-6
    i_ptail: float = 200e-6

    # first-stage diodes/mirrors
    w_pmirror: float = 240e-6
    l_pmirror: float = 3e-6
    w_nmirror: float = 80e-6
    l_nmirror: float = 3e-6

    # CM amplifier
    w_cm: float = 200e-6
    l_cm: float = 2e-6
    i_cmtail: float = 100e-6
    r_cm_detect: float = 100e3

    # keep-alive bias into each load diode (Sec. 4's "additional bias
    # current ... if the input stages are turned off").  The bottom
    # (NMOS-diode) side gets an extra i_cmtail/2 so the summing nodes
    # stay balanced when either input pair cuts off near a rail — the
    # top side carries the CM-amplifier injection, the bottom side the
    # enlarged keep-alive, and both total the same head current.
    i_keepalive: float = 30e-6

    # class-AB head + translinear bias
    w_nab: float = 100e-6
    l_nab: float = 1.6e-6
    w_pab: float = 300e-6
    l_pab: float = 1.6e-6
    i_ab_bias: float = 50e-6      # reference current of the bias stacks

    # output devices ("optimized for maximum transconductance")
    w_pout: float = 4000e-6
    l_pout: float = 1.2e-6
    w_nout: float = 1400e-6
    l_nout: float = 1.2e-6
    quiescent_ratio: int = 20     # IQ(out) = ratio * i_ab_bias

    # compensation
    c_miller: float = 47e-12
    r_zero: float = 250.0

    i_bias: float = 50e-6         # master bias current


@dataclass
class PowerBufferDesign:
    """Built driver with role->net map."""

    circuit: Circuit
    tech: Technology
    sizes: PowerBufferSizes
    nodes: dict[str, str] = field(default_factory=dict)

    @property
    def outp(self) -> str:
        return self.nodes["outp"]

    @property
    def outn(self) -> str:
        return self.nodes["outn"]

    @property
    def vip(self) -> str:
        return self.nodes["vip"]

    @property
    def vin(self) -> str:
        return self.nodes["vin"]


def _add_core(
    ckt: Circuit,
    tech: Technology,
    sz: PowerBufferSizes,
    sampler: MismatchSampler,
    vdd_v: float,
    vss_v: float,
) -> None:
    """Stamp the amplifier core between nodes vip/vin and outp/outn."""

    def mos(name, d, g, s, b, model, w, l):
        dvt, dbeta = sampler.mos_deltas(model.polarity, w, l)
        mdl = replace(model, vth0=model.vth0 + dvt, kp=model.kp * (1.0 + dbeta))
        ckt.mosfet(name, d, g, s, b, mdl, w=w, l=l)

    # ------------------------------------------------------------------
    # Bias rails: master current into NMOS and PMOS diodes.
    # ------------------------------------------------------------------
    ckt.isource("ibias", "vdd", "nbias", dc=sz.i_bias)
    mos("mbn", "nbias", "nbias", "vss", "vss", tech.nmos, 80e-6, 3e-6)
    ckt.isource("ibias_p", "pbias", "vss", dc=sz.i_bias)
    mos("mbp", "pbias", "pbias", "vdd", "vdd", tech.pmos, 240e-6, 3e-6)

    def ntail(name, node, current):
        mos(name, node, "nbias", "vss", "vss", tech.nmos,
            80e-6 * current / sz.i_bias, 3e-6)

    def ptail(name, node, current):
        mos(name, node, "pbias", "vdd", "vdd", tech.pmos,
            240e-6 * current / sz.i_bias, 3e-6)

    # ------------------------------------------------------------------
    # Complementary input pairs (T1/T2 of both flavours).
    # ------------------------------------------------------------------
    ntail("mnt", "ntail", sz.i_ntail)
    mos("mn1", "n1_a", "vip", "ntail", "vss", tech.nmos, sz.w_nin, sz.l_nin)
    mos("mn2", "n1_b", "vin", "ntail", "vss", tech.nmos, sz.w_nin, sz.l_nin)

    ptail("mpt", "ptail", sz.i_ptail)
    mos("mp1", "p1_a", "vip", "ptail", "vdd", tech.pmos, sz.w_pin, sz.l_pin)
    mos("mp2", "p1_b", "vin", "ptail", "vdd", tech.pmos, sz.w_pin, sz.l_pin)

    # Load diodes ("common load devices": CM injection lands here too).
    mos("mpl_a", "n1_a", "n1_a", "vdd", "vdd", tech.pmos, sz.w_pmirror, sz.l_pmirror)
    mos("mpl_b", "n1_b", "n1_b", "vdd", "vdd", tech.pmos, sz.w_pmirror, sz.l_pmirror)
    mos("mnl_a", "p1_a", "p1_a", "vss", "vss", tech.nmos, sz.w_nmirror, sz.l_nmirror)
    mos("mnl_b", "p1_b", "p1_b", "vss", "vss", tech.nmos, sz.w_nmirror, sz.l_nmirror)

    # "Additional bias current is added to the load devices to avoid an
    # unbalanced condition if the input stages are turned off" (Sec. 4):
    # near either rail one complementary pair cuts off; these keep-alive
    # currents hold the mirrors and the class-AB head biased so the
    # follower keeps tracking — the rail-to-rail input-range mechanism.
    ntail("nkeep_a", "n1_a", sz.i_keepalive)
    ntail("nkeep_b", "n1_b", sz.i_keepalive)
    keep_p = sz.i_keepalive + sz.i_cmtail / 2.0
    ptail("pkeep_a", "p1_a", keep_p)
    ptail("pkeep_b", "p1_b", keep_p)

    # ------------------------------------------------------------------
    # Common-mode amplifier (T3/T4) + symmetric injection mirror.
    # ------------------------------------------------------------------
    ckt.resistor("rcm_p", "outp", "vcm_sense", sz.r_cm_detect)
    ckt.resistor("rcm_n", "outn", "vcm_sense", sz.r_cm_detect)
    ntail("mct", "cmtail", sz.i_cmtail)
    mos("mc1", "cmd", "vcm_sense", "cmtail", "vss", tech.nmos, sz.w_cm, sz.l_cm)
    mos("mc2", "cmdump", "vbal", "cmtail", "vss", tech.nmos, sz.w_cm, sz.l_cm)
    mos("mpcd", "cmd", "cmd", "vdd", "vdd", tech.pmos, sz.w_pmirror, sz.l_pmirror)
    mos("mpcd2", "cmdump", "cmdump", "vdd", "vdd", tech.pmos, sz.w_pmirror, sz.l_pmirror)
    # Equal copies of the CM correction into both summing nodes.
    mos("mpcm_a", "s_a", "cmd", "vdd", "vdd", tech.pmos, sz.w_pmirror, sz.l_pmirror)
    mos("mpcm_b", "s_b", "cmd", "vdd", "vdd", tech.pmos, sz.w_pmirror, sz.l_pmirror)

    # ------------------------------------------------------------------
    # Per-side signal mirrors into the summing nodes (cross-connected
    # drains give negative feedback polarity in closed loop).
    # ------------------------------------------------------------------
    mos("mpm_a", "s_a", "n1_b", "vdd", "vdd", tech.pmos, sz.w_pmirror, sz.l_pmirror)
    mos("mpm_b", "s_b", "n1_a", "vdd", "vdd", tech.pmos, sz.w_pmirror, sz.l_pmirror)
    mos("mnm_a", "gn_a", "p1_b", "vss", "vss", tech.nmos, sz.w_nmirror, sz.l_nmirror)
    mos("mnm_b", "gn_b", "p1_a", "vss", "vss", tech.nmos, sz.w_nmirror, sz.l_nmirror)

    # ------------------------------------------------------------------
    # Translinear class-AB bias stacks (shared by both sides).
    # The floating head carries the full summing-node current (half the
    # N tail plus the CM injection), split between its two devices; the
    # stack diodes MNd1/MPd1 are scaled so the loop equation
    #   Vgs(ab device @ I_head/2) + Vgs(output @ IQ) = Vgs(d1) + Vgs(d2)
    # sets IQ = quiescent_ratio * i_ab_bias.
    # ------------------------------------------------------------------
    ratio = float(sz.quiescent_ratio)
    i_head = sz.i_ntail / 2.0 + sz.i_cmtail / 2.0 + sz.i_keepalive
    d1_scale = sz.i_ab_bias / (i_head / 2.0)
    ptail("iabn", "biasn", sz.i_ab_bias)
    mos("mnd1", "biasn", "biasn", "midn", "vss", tech.nmos,
        sz.w_nab * d1_scale, sz.l_nab)
    mos("mnd2", "midn", "midn", "vss", "vss", tech.nmos, sz.w_nout / ratio, sz.l_nout)
    ntail("iabp", "biasp", sz.i_ab_bias)
    mos("mpd1", "biasp", "biasp", "midp", "vdd", tech.pmos,
        sz.w_pab * d1_scale, sz.l_pab)
    mos("mpd2", "midp", "midp", "vdd", "vdd", tech.pmos, sz.w_pout / ratio, sz.l_pout)

    # ------------------------------------------------------------------
    # Per-side: AB head, output devices, compensation.
    # ------------------------------------------------------------------
    for side, out in (("a", "outp"), ("b", "outn")):
        gp, gn, s = f"gp_{side}", f"gn_{side}", f"s_{side}"
        # The summing node is the PMOS gate; the AB head hangs gn below it.
        ckt.resistor(f"rsg_{side}", s, gp, 1.0, noisy=False)  # net tie
        mos(f"mnab_{side}", gp, "biasn", gn, "vss", tech.nmos, sz.w_nab, sz.l_nab)
        mos(f"mpab_{side}", gn, "biasp", gp, "vdd", tech.pmos, sz.w_pab, sz.l_pab)
        mos(f"mpo_{side}", out, gp, "vdd", "vdd", tech.pmos, sz.w_pout, sz.l_pout)
        mos(f"mno_{side}", out, gn, "vss", "vss", tech.nmos, sz.w_nout, sz.l_nout)
        ckt.capacitor(f"cc_{side}", gn, f"cz_{side}", sz.c_miller)
        ckt.resistor(f"rz_{side}", f"cz_{side}", out, sz.r_zero, noisy=True)

    # Solver hints.
    for node, volts in {
        "nbias": vss_v + 0.85, "pbias": vdd_v - 0.95,
        "ntail": -0.95, "ptail": 0.95,
        "n1_a": vdd_v - 0.95, "n1_b": vdd_v - 0.95,
        "p1_a": vss_v + 0.85, "p1_b": vss_v + 0.85,
        "cmd": vdd_v - 0.95, "cmdump": vdd_v - 0.95,
        "cmtail": -0.95, "vcm_sense": 0.0,
        "biasn": vss_v + 1.75, "midn": vss_v + 0.85,
        "biasp": vdd_v - 1.9, "midp": vdd_v - 0.95,
        "s_a": vdd_v - 0.9, "s_b": vdd_v - 0.9,
        "gp_a": vdd_v - 0.9, "gp_b": vdd_v - 0.9,
        "gn_a": vss_v + 0.85, "gn_b": vss_v + 0.85,
        "outp": 0.0, "outn": 0.0,
    }.items():
        ckt.nodeset(node, volts)


def build_power_buffer(
    tech: Technology,
    sizes: PowerBufferSizes | None = None,
    load: str = "resistive",
    r_load: float = 50.0,
    c_load: float = 100e-9,
    vbal: float = 0.0,
    mismatch: MismatchSampler | None = None,
    vdd: float | None = None,
    vss: float | None = None,
    feedback: str = "unity",
    r_in: float = 20e3,
    r_fb: float = 20e3,
) -> PowerBufferDesign:
    """Build the Fig. 8 driver, optionally in the Fig. 9 closed loop.

    ``feedback``:

    * ``"unity"`` — outputs tied back to the inputs (differential unity
      buffer, the configuration of the input-range discussion);
    * ``"inverting"`` — Fig. 9: external R_in/R_fb network, gain
      -R_fb/R_in, driven from ``src_p``/``src_n`` sources;
    * ``"open"`` — raw amplifier, inputs driven directly.

    ``load``: "resistive" (50 ohm differential), "capacitive" (100 nF
    differential), "both", or "none".
    """
    sz = sizes or PowerBufferSizes()
    sampler = mismatch or MismatchSampler.nominal(tech)
    vdd_v = tech.vdd_nominal if vdd is None else vdd
    vss_v = tech.vss_nominal if vss is None else vss

    ckt = Circuit("powerbuffer_fig8")
    ckt.vsource("vdd_src", "vdd", "gnd", dc=vdd_v)
    ckt.vsource("vss_src", "vss", "gnd", dc=vss_v)
    ckt.vsource("vbal_src", "vbal", "gnd", dc=vbal)

    _add_core(ckt, tech, sz, sampler, vdd_v, vss_v)

    if feedback == "unity":
        # Differential follower: outp is fed back to the inverting input,
        # so outp tracks the source and outn mirrors it through the CM
        # loop — the configuration of the paper's input-range discussion.
        ckt.vsource("vsrc_p", "srcp", "gnd", dc=0.0, ac=1.0)
        ckt.resistor("rtie_p", "srcp", "vip", 1.0, noisy=False)
        ckt.resistor("rfb_p", "outp", "vin", 1.0, noisy=False)
    elif feedback == "inverting":
        ckt.vsource("vsrc_p", "srcp", "gnd", dc=0.0, ac=0.5)
        ckt.vsource("vsrc_n", "srcn", "gnd", dc=0.0, ac=0.5,
                    ac_phase=math.pi)
        ckt.resistor("rin_p", "srcp", "vin", r_in, tc1=tech.poly.tc1)
        ckt.resistor("rin_n", "srcn", "vip", r_in, tc1=tech.poly.tc1)
        ckt.resistor("rfb_p", "outp", "vin", r_fb, tc1=tech.poly.tc1)
        ckt.resistor("rfb_n", "outn", "vip", r_fb, tc1=tech.poly.tc1)
    elif feedback == "open":
        ckt.vsource("vsrc_p", "vip", "gnd", dc=0.0, ac=0.5)
        ckt.vsource("vsrc_n", "vin", "gnd", dc=0.0, ac=0.5,
                    ac_phase=math.pi)
    else:
        raise ValueError(f"unknown feedback mode {feedback!r}")

    if load in ("resistive", "both"):
        ckt.resistor("rload", "outp", "outn", r_load, noisy=False)
    if load in ("capacitive", "both"):
        ckt.capacitor("cload", "outp", "outn", c_load)
    elif load not in ("resistive", "both", "none"):
        raise ValueError(f"unknown load {load!r}")

    return PowerBufferDesign(
        circuit=ckt,
        tech=tech,
        sizes=sz,
        nodes={
            "outp": "outp", "outn": "outn", "vip": "vip", "vin": "vin",
            "vbal": "vbal", "s_a": "s_a", "s_b": "s_b",
            "gn_a": "gn_a", "gp_a": "gp_a",
        },
    )
