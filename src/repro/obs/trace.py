"""Spans and trace IDs: who spent the wall clock, structured.

The stack is instrumented with **spans** — ``with span("campaign.chunk",
n_units=12):`` around the phases worth attributing time to — and
**trace points**, zero-duration events inside a span.  Disarmed (the
default), both are a single module-global ``None`` check returning a
shared no-op handle, the same cost contract as
:func:`repro.faults.harness.fault_point`; nothing on a hot path changes
its bytes or its budget.

Armed (:func:`activate`, :meth:`Tracer.activate`, or ``REPRO_OBS=trace``
via :mod:`repro.obs.harness`), every finished span lands in the active
:class:`Tracer` as one plain dict::

    {"trace_id": ..., "span_id": ..., "parent_id": ..., "name": ...,
     "t0": <wall epoch>, "dur_s": ..., "attrs": {...}}

Parent/child nesting is tracked per thread: the innermost open span is
the parent of anything opened under it, so a serve worker's
``serve.job`` span automatically parents the campaign's
``campaign.run`` which parents each ``campaign.chunk``.  Crossing a
process boundary is explicit — :func:`current_context` captures
``(trace_id, span_id)`` into a picklable tuple, :func:`seed_context`
adopts it on the far side, and the pool executor ships the child's
collected span dicts back with the chunk results for the parent's
tracer to :meth:`~Tracer.absorb`.

Spans record timing and metadata only — never results — so tracing
armed cannot perturb any byte-identity contract (CI proves it with
``cmp``).
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid


def new_id() -> str:
    """A fresh 16-hex-char trace/span id (random, not deterministic —
    ids are telemetry, never part of any result)."""
    return uuid.uuid4().hex[:16]


_TLS = threading.local()    # .ctx = (trace_id, innermost open span_id)


class Tracer:
    """A bounded, thread-safe buffer of finished spans.

    ``buffer`` caps retained spans (oldest dropped first — a long-lived
    service must not grow without bound); ``export_path`` additionally
    appends every span as one JSONL line the moment it finishes (crash-
    safe flush per line), which is what ``repro trace`` reads back.
    """

    def __init__(self, buffer: int = 65536, export_path=None) -> None:
        if buffer < 1:
            raise ValueError(f"buffer must be >= 1, got {buffer}")
        self._lock = threading.Lock()
        self._buffer = buffer
        self._spans: list[dict] = []
        self.export_path = export_path
        self._export_fh = None
        #: Total spans recorded (monotonic, survives buffer eviction).
        self.recorded = 0

    def record(self, span_dict: dict) -> None:
        with self._lock:
            self.recorded += 1
            self._spans.append(span_dict)
            if len(self._spans) > self._buffer:
                del self._spans[: len(self._spans) - self._buffer]
            if self.export_path is not None:
                if self._export_fh is None:
                    self._export_fh = open(self.export_path, "a")
                self._export_fh.write(json.dumps(span_dict) + "\n")
                self._export_fh.flush()

    def absorb(self, span_dicts) -> None:
        """Merge spans collected elsewhere (a pool worker, a batch
        group) into this tracer, preserving their ids."""
        for sd in span_dicts:
            self.record(sd)

    def spans(self, trace_id: str | None = None) -> list[dict]:
        """Buffered spans (a copy), optionally only one trace's."""
        with self._lock:
            spans = list(self._spans)
        if trace_id is None:
            return spans
        return [s for s in spans if s.get("trace_id") == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids in the buffer, oldest first."""
        seen: dict[str, None] = {}
        for s in self.spans():
            seen.setdefault(s.get("trace_id"), None)
        return list(seen)

    def export_jsonl(self, path) -> int:
        """Write every buffered span to ``path`` as JSONL; returns the
        span count."""
        spans = self.spans()
        with open(path, "w") as fh:
            for s in spans:
                fh.write(json.dumps(s) + "\n")
        return len(spans)

    def close(self) -> None:
        with self._lock:
            if self._export_fh is not None:
                self._export_fh.close()
                self._export_fh = None

    def activate(self) -> "_ActiveTracer":
        """Context manager arming this tracer (restores the previous
        one on exit) — the worker/test-scoped arming path."""
        return _ActiveTracer(self)


class _ActiveTracer:
    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        self._previous = activate(self.tracer)
        return self.tracer

    def __exit__(self, *exc) -> None:
        _set_active(self._previous)


class _NullSpan:
    """The disarmed span handle: one shared instance, no state."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """One armed, open span (context manager)."""

    __slots__ = ("tracer", "name", "attrs", "trace_id", "span_id",
                 "parent_id", "_prev_ctx", "_t0_wall", "_t0")

    def __init__(self, tracer: Tracer, name: str, attrs: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_SpanHandle":
        ctx = getattr(_TLS, "ctx", None)
        self._prev_ctx = ctx
        if ctx is None:
            self.trace_id = new_id()
            self.parent_id = None
        else:
            self.trace_id, self.parent_id = ctx
        self.span_id = new_id()
        _TLS.ctx = (self.trace_id, self.span_id)
        self._t0_wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def annotate(self, **attrs) -> None:
        """Attach attributes discovered mid-span (e.g. units executed)."""
        self.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._t0
        _TLS.ctx = self._prev_ctx
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer.record({
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t0": self._t0_wall,
            "dur_s": dur,
            "attrs": self.attrs,
            "pid": os.getpid(),
        })
        return False


#: The single armed tracer; ``None`` keeps every span/trace point inert.
_ACTIVE: Tracer | None = None


def _set_active(tracer: Tracer | None) -> None:
    global _ACTIVE
    _ACTIVE = tracer


def activate(tracer: Tracer) -> Tracer | None:
    """Arm ``tracer`` globally; returns the previously armed tracer."""
    previous = _ACTIVE
    _set_active(tracer)
    return previous


def deactivate() -> None:
    """Disarm tracing entirely."""
    _set_active(None)


def active_tracer() -> Tracer | None:
    return _ACTIVE


def span(name: str, **attrs):
    """Open a named span under the thread's current trace context.
    Disarmed this is one global load and a falsy check returning a
    shared no-op handle."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return _SpanHandle(tracer, name, attrs)


def trace_point(name: str, **attrs) -> None:
    """Record a zero-duration event under the current span.  Disarmed
    this is one global load and a falsy check — hot-path safe."""
    tracer = _ACTIVE
    if tracer is None:
        return
    ctx = getattr(_TLS, "ctx", None)
    if ctx is None:
        trace_id, parent_id = new_id(), None
    else:
        trace_id, parent_id = ctx
    tracer.record({
        "trace_id": trace_id,
        "span_id": new_id(),
        "parent_id": parent_id,
        "name": name,
        "t0": time.time(),
        "dur_s": 0.0,
        "attrs": attrs,
        "pid": os.getpid(),
    })


def current_context() -> tuple[str, str] | None:
    """The thread's ``(trace_id, span_id)``, picklable for shipping
    across a process boundary; ``None`` outside any span."""
    return getattr(_TLS, "ctx", None)


class seed_context:
    """Adopt a remote parent context for this thread (context manager):
    spans opened inside nest under ``(trace_id, span_id)`` exactly as if
    the remote span were open locally."""

    def __init__(self, trace_id: str, span_id: str) -> None:
        self._ctx = (trace_id, span_id)
        self._prev = None

    def __enter__(self) -> "seed_context":
        self._prev = getattr(_TLS, "ctx", None)
        _TLS.ctx = self._ctx
        return self

    def __exit__(self, *exc) -> None:
        _TLS.ctx = self._prev


# ----------------------------------------------------------------------
# Presentation
# ----------------------------------------------------------------------
def format_tree(spans, max_attrs: int = 4) -> str:
    """A per-trace indented tree of span names and durations — what
    ``repro trace`` prints.  Children sort by start time; orphaned
    parents (evicted from the buffer) surface their subtree at root."""
    by_id = {s["span_id"]: s for s in spans}
    children: dict[str | None, list[dict]] = {}
    for s in spans:
        parent = s.get("parent_id")
        if parent is not None and parent not in by_id:
            parent = None           # orphan: parent span not in this set
        children.setdefault(parent, []).append(s)
    for group in children.values():
        group.sort(key=lambda s: (s.get("t0", 0.0), s.get("span_id", "")))

    lines: list[str] = []

    def walk(parent_id, depth: int) -> None:
        for s in children.get(parent_id, []):
            attrs = s.get("attrs") or {}
            shown = {k: attrs[k] for k in list(attrs)[:max_attrs]}
            extra = f"  {shown}" if shown else ""
            lines.append(f"{'  ' * depth}{s['name']:<24} "
                         f"{1e3 * s.get('dur_s', 0.0):9.2f} ms{extra}")
            walk(s["span_id"], depth + 1)

    traces: dict[str, None] = {}
    for s in spans:
        traces.setdefault(s.get("trace_id"), None)
    for trace_id in traces:
        trace_spans = [s for s in children.get(None, [])
                       if s.get("trace_id") == trace_id]
        if not trace_spans:
            continue
        lines.append(f"trace {trace_id}")
        for root in trace_spans:
            attrs = root.get("attrs") or {}
            shown = {k: attrs[k] for k in list(attrs)[:max_attrs]}
            extra = f"  {shown}" if shown else ""
            lines.append(f"  {root['name']:<24} "
                         f"{1e3 * root.get('dur_s', 0.0):9.2f} ms{extra}")
            walk(root["span_id"], 2)
    return "\n".join(lines)


def slowest_spans(spans, top: int = 10) -> list[dict]:
    """The ``top`` spans by **self-time** (own duration minus the time
    covered by direct children, clamped at zero), slowest first.

    Self-time is what makes a hot *leaf* visible: a ``campaign.run``
    span covering the whole wall clock ranks below the one chunk that
    actually burned it.  Returns copies of the span dicts with a
    ``self_s`` key added — what ``repro trace --top`` prints.
    """
    child_time: dict[str, float] = {}
    for s in spans:
        parent = s.get("parent_id")
        if parent is not None:
            child_time[parent] = (child_time.get(parent, 0.0)
                                  + s.get("dur_s", 0.0))
    ranked = []
    for s in spans:
        self_s = max(0.0, s.get("dur_s", 0.0)
                     - child_time.get(s.get("span_id"), 0.0))
        entry = dict(s)
        entry["self_s"] = self_s
        ranked.append(entry)
    ranked.sort(key=lambda s: s["self_s"], reverse=True)
    return ranked[:max(0, top)]


def format_slowest(spans, top: int = 10) -> str:
    """Flat ``--top`` summary: name, self-time, total, trace id."""
    rows = slowest_spans(spans, top)
    if not rows:
        return ""
    lines = [f"slowest {len(rows)} spans by self-time:"]
    for s in rows:
        lines.append(f"  {s.get('name', '?'):<24} "
                     f"self {1e3 * s['self_s']:9.2f} ms   "
                     f"total {1e3 * s.get('dur_s', 0.0):9.2f} ms   "
                     f"trace {s.get('trace_id', '-')}")
    return "\n".join(lines)


def load_jsonl(path) -> list[dict]:
    """Read spans back from a JSONL export (inverse of the tracer's
    export); blank lines are ignored, corrupt lines raise."""
    spans = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans
