"""Structured events: the stack's degradation paths, recorded with cause.

Spans say *where the wall clock went*; events say *what went wrong and
why*.  Every silent fallback in the stack — a Newton ladder escalating
to gmin stepping, a sparse step latching to dense, a spectral solve
rejected on residual, a batched group dropping to serial, a store
payload quarantined, a pool worker restarted, a serve job timed out —
emits one :func:`event` with a name, a severity, and the fields a
post-mortem needs (the rejecting residual, the triggering exception,
the quarantine reason).

Disarmed (the default), :func:`event` is a single module-global
``None`` check — the same cost contract as ``span`` / ``prof_count`` /
``fault_point`` — so the hooks live permanently on degradation paths
without perturbing any byte-identity or overhead budget.  Armed
(:func:`activate`, :meth:`EventLog.activate`, or ``REPRO_OBS=events``),
each event lands in the active :class:`EventLog` as one plain dict::

    {"name": ..., "severity": "info"|"warn"|"error", "t": <wall epoch>,
     "trace_id": ..., "span_id": ..., "pid": ..., "fields": {...}}

``trace_id``/``span_id`` come from the thread's current span context
(:func:`repro.obs.trace.current_context`), so an event raised three
layers under a ``serve.job`` span is correlated to that job's trace
with no plumbing.  The log is a bounded ring — overflow evicts the
oldest and counts the drops — and severity tallies are monotonic
(they survive eviction), which is what the service surfaces as the
``events.*`` counters in ``/v1/metrics`` and the Prometheus
exposition.  Pool workers collect into a fresh local log and ship
``events()`` home with the chunk results for the parent to
:meth:`~EventLog.absorb` — the same pattern the tracer uses.

Events record diagnosis only — never results — so arming cannot change
the bytes of any exported document (CI proves it with ``cmp``).
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.obs import trace as _trace

#: Recognised severities, mildest first.
SEVERITIES = ("info", "warn", "error")


class EventLog:
    """A bounded, thread-safe ring buffer of structured events.

    ``buffer`` caps retained events (oldest evicted first — a long-lived
    service must not grow without bound); eviction is counted in
    :attr:`dropped` so triage knows the window is partial.
    ``export_path`` additionally appends every event as one JSONL line
    the moment it is recorded (crash-safe flush per line).
    """

    def __init__(self, buffer: int = 65536, export_path=None) -> None:
        if buffer < 1:
            raise ValueError(f"buffer must be >= 1, got {buffer}")
        self._lock = threading.Lock()
        self._buffer = buffer
        self._events: list[dict] = []
        self.export_path = export_path
        self._export_fh = None
        #: Total events recorded (monotonic, survives eviction).
        self.recorded = 0
        #: Events evicted by ring overflow (monotonic).
        self.dropped = 0
        self._severity_counts = {s: 0 for s in SEVERITIES}

    def record(self, event_dict: dict) -> None:
        with self._lock:
            self.recorded += 1
            sev = event_dict.get("severity")
            if sev in self._severity_counts:
                self._severity_counts[sev] += 1
            self._events.append(event_dict)
            overflow = len(self._events) - self._buffer
            if overflow > 0:
                del self._events[:overflow]
                self.dropped += overflow
            if self.export_path is not None:
                if self._export_fh is None:
                    self._export_fh = open(self.export_path, "a")
                self._export_fh.write(json.dumps(event_dict) + "\n")
                self._export_fh.flush()

    def absorb(self, event_dicts) -> None:
        """Merge events collected elsewhere (a pool worker) into this
        log, preserving their trace correlation and pids."""
        for ed in event_dicts:
            self.record(ed)

    def events(self, name: str | None = None,
               severity: str | None = None) -> list[dict]:
        """Buffered events (a copy), optionally filtered by exact name
        and/or severity."""
        with self._lock:
            events = list(self._events)
        if name is not None:
            events = [e for e in events if e.get("name") == name]
        if severity is not None:
            events = [e for e in events if e.get("severity") == severity]
        return events

    def severity_counts(self) -> dict:
        """Monotonic per-severity tallies (survive ring eviction) —
        the ``events.*`` counters the service exposes."""
        with self._lock:
            return dict(self._severity_counts)

    def export_jsonl(self, path) -> int:
        """Write every buffered event to ``path`` as JSONL; returns the
        event count."""
        events = self.events()
        with open(path, "w") as fh:
            for e in events:
                fh.write(json.dumps(e) + "\n")
        return len(events)

    def close(self) -> None:
        with self._lock:
            if self._export_fh is not None:
                self._export_fh.close()
                self._export_fh = None

    def activate(self) -> "_ActiveEventLog":
        """Context manager arming this log (restores the previous one
        on exit) — the worker/test-scoped arming path."""
        return _ActiveEventLog(self)


class _ActiveEventLog:
    def __init__(self, log: EventLog) -> None:
        self.log = log
        self._previous: EventLog | None = None

    def __enter__(self) -> EventLog:
        self._previous = activate(self.log)
        return self.log

    def __exit__(self, *exc) -> None:
        _set_active(self._previous)


#: The single armed event log; ``None`` keeps every hook inert.
_ACTIVE: EventLog | None = None


def _set_active(log: EventLog | None) -> None:
    global _ACTIVE
    _ACTIVE = log


def activate(log: EventLog) -> EventLog | None:
    """Arm ``log`` globally; returns the previously armed log."""
    previous = _ACTIVE
    _set_active(log)
    return previous


def deactivate() -> None:
    """Disarm event logging entirely."""
    _set_active(None)


def active_event_log() -> EventLog | None:
    return _ACTIVE


def event(name: str, severity: str = "warn", **fields) -> None:
    """Record one structured event under the current trace context.
    Disarmed this is one global load and a falsy check — hot-path safe.

    Callers that must *compute* expensive fields (a condition estimate,
    a residual norm) should guard the computation on
    ``active_event_log() is not None`` so the disarmed path stays free.
    """
    log = _ACTIVE
    if log is None:
        return
    ctx = _trace.current_context()
    trace_id, span_id = ctx if ctx is not None else (None, None)
    log.record({
        "name": name,
        "severity": severity,
        "t": time.time(),
        "trace_id": trace_id,
        "span_id": span_id,
        "pid": os.getpid(),
        "fields": fields,
    })


# ----------------------------------------------------------------------
# Presentation / triage
# ----------------------------------------------------------------------
def format_events(events, limit: int = 50) -> str:
    """A flat, newest-last rendering of events for terminal triage."""
    lines = []
    for e in events[-limit:]:
        fields = e.get("fields") or {}
        shown = " ".join(f"{k}={fields[k]!r}" for k in fields)
        trace = e.get("trace_id") or "-"
        lines.append(f"[{e.get('severity', '?'):<5}] "
                     f"{e.get('name', '?'):<32} trace={trace} {shown}")
    return "\n".join(lines)


def load_jsonl(path) -> list[dict]:
    """Read events back from a JSONL export (inverse of the log's
    export); blank lines are ignored, corrupt lines raise."""
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
