"""``REPRO_OBS`` arming: one env var turns the observability layer on.

The grammar mirrors ``REPRO_FAULTS`` (semicolon-separated components,
colon-separated options)::

    REPRO_OBS="1"                               # everything on
    REPRO_OBS="trace"                           # tracing only
    REPRO_OBS="trace:export=/tmp/spans.jsonl"   # + JSONL append per span
    REPRO_OBS="trace:buffer=100000;profile"     # tracing + profiling
    REPRO_OBS="profile"                         # profiling accumulators
    REPRO_OBS="events"                          # structured event log
    REPRO_OBS="events:export=/tmp/events.jsonl" # + JSONL append per event

Components: ``trace`` (span collection — see :mod:`repro.obs.trace`),
``profile`` (engine accumulators — :mod:`repro.obs.profile`),
``events`` (degradation-path event log — :mod:`repro.obs.events`), and
``metrics`` (accepted for symmetry; service histograms/gauges are
always on, they live on ``ServiceMetrics`` and cost one lock + bisect
per observation).  ``1`` / ``all`` / ``on`` arm every component.

Like the fault harness, arming happens at import time so subprocesses
(CLI runs, CI smoke jobs, forked pool workers) inherit the armed state
from their environment with no code changes.  With ``REPRO_OBS`` unset
this module is inert and every hook stays a single ``None`` check.
"""

from __future__ import annotations

import os

from repro.obs import events as _events
from repro.obs import profile as _profile
from repro.obs import trace as _trace

#: Environment variable holding the compact obs spec.
OBS_ENV = "REPRO_OBS"


class ObsConfig:
    """Parsed arming request: which components, with which options."""

    def __init__(self, trace: bool = False, profile: bool = False,
                 metrics: bool = False, events: bool = False,
                 trace_export=None, trace_buffer: int = 65536,
                 events_export=None, events_buffer: int = 65536) -> None:
        self.trace = trace
        self.profile = profile
        self.metrics = metrics
        self.events = events
        self.trace_export = trace_export
        self.trace_buffer = trace_buffer
        self.events_export = events_export
        self.events_buffer = events_buffer

    @property
    def any(self) -> bool:
        return self.trace or self.profile or self.metrics or self.events

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (f"ObsConfig(trace={self.trace}, profile={self.profile}, "
                f"metrics={self.metrics}, events={self.events}, "
                f"export={self.trace_export!r})")


def config_from_env(spec: str) -> ObsConfig:
    """Parse a compact ``REPRO_OBS`` spec (see module docstring)."""
    config = ObsConfig()
    parts = [p.strip() for p in spec.replace(",", ";").split(";")
             if p.strip()]
    for part in parts:
        fields = part.split(":")
        component = fields[0].lower()
        if component in ("1", "all", "on", "true"):
            config.trace = config.profile = config.metrics = True
            config.events = True
        elif component == "trace":
            config.trace = True
        elif component == "profile":
            config.profile = True
        elif component == "metrics":
            config.metrics = True
        elif component == "events":
            config.events = True
        else:
            raise ValueError(
                f"unknown component {component!r} in {OBS_ENV}; one of "
                "['1', 'all', 'trace', 'profile', 'metrics', 'events']")
        for opt in fields[1:]:
            if opt.startswith("export="):
                if component == "events":
                    config.events_export = opt[7:]
                elif component in ("trace", "1", "all", "on", "true"):
                    config.trace_export = opt[7:]
                else:
                    raise ValueError(
                        f"export= applies to trace/events, not "
                        f"{component!r}")
            elif opt.startswith("buffer="):
                if component == "events":
                    config.events_buffer = int(opt[7:])
                else:
                    config.trace_buffer = int(opt[7:])
            else:
                raise ValueError(
                    f"unknown option {opt!r} in {OBS_ENV} part {part!r}")
    return config


def arm(config: ObsConfig) -> dict:
    """Arm the requested components globally; returns the armed objects
    (``{"tracer": ..., "profiler": ...}``, absent keys disarmed)."""
    armed: dict = {}
    if config.trace:
        tracer = _trace.Tracer(buffer=config.trace_buffer,
                               export_path=config.trace_export)
        _trace.activate(tracer)
        armed["tracer"] = tracer
    if config.profile:
        profiler = _profile.Profiler()
        _profile.activate(profiler)
        armed["profiler"] = profiler
    if config.events:
        log = _events.EventLog(buffer=config.events_buffer,
                               export_path=config.events_export)
        _events.activate(log)
        armed["events"] = log
    return armed


def arm_from_env(environ=None) -> dict | None:
    """Arm from ``$REPRO_OBS`` if set; returns the armed objects."""
    spec = (os.environ if environ is None else environ).get(OBS_ENV)
    if not spec:
        return None
    return arm(config_from_env(spec))


def trace_enabled() -> bool:
    """Is a tracer armed right now (any scope)?"""
    return _trace.active_tracer() is not None


def profile_enabled() -> bool:
    """Is a profiler armed right now (any scope)?"""
    return _profile.active_profiler() is not None


def events_enabled() -> bool:
    """Is an event log armed right now (any scope)?"""
    return _events.active_event_log() is not None


# CLI / subprocess / CI runs arm the moment any instrumented module
# imports repro.obs; with REPRO_OBS unset this is a no-op and every
# span/profile hook stays inert.
arm_from_env()
