"""``repro doctor`` — one-shot stack self-checks with a triaged verdict.

Each check probes one layer the way an operator would by hand — solve a
known circuit, read-verify the store, hit ``/healthz``, re-run the
bench drift watchdog, triage the recent event log — and reports
``pass`` / ``warn`` / ``fail`` with a one-line detail.  The process
exit code is the worst status seen: 0 all-pass, 1 any warn, 2 any
fail — pinned by tests, so scripts and CI can branch on it.

Severity semantics: *fail* means the stack cannot be trusted (the
sanity solve did not converge, the store holds corrupt or missing
payloads, the service is unreachable); *warn* means the stack works
but something deserves a look (bench metrics drifted, error-severity
events in the log, a solver fallback on the sanity circuit).  Checks
that have nothing to examine (no store directory, no bench file, no
event log) pass with a "skipped" detail rather than inventing a
problem.

The check functions are module-level and individually importable so
tests can exercise them against fixtures (and monkeypatch the sanity
solve to simulate a sick engine) without going through the CLI.
"""

from __future__ import annotations

import json
import pathlib

PASS, WARN, FAIL = "pass", "warn", "fail"

#: Worst KCL residual the sanity solve may leave before the engine is
#: considered sick (the tier-1 tests pin 1e-8 on the same circuit; the
#: doctor leaves headroom for host jitter).
SANITY_RESID_LIMIT = 1e-6


def _check(name: str, status: str, detail: str) -> dict:
    return {"name": name, "status": status, "detail": detail}


# ----------------------------------------------------------------------
# Individual checks
# ----------------------------------------------------------------------
def check_engine() -> dict:
    """DC-solve the Fig. 2 bias generator and inspect its health
    sidecar: non-convergence is a *fail*, a strategy fallback or dense
    latch on this easy circuit is a *warn*."""
    try:
        from repro.circuits.bias import build_bias_circuit
        from repro.process.technology import CMOS12
        from repro.spice.dc import dc_operating_point

        op = dc_operating_point(build_bias_circuit(CMOS12).circuit)
    except Exception as exc:
        return _check("engine", FAIL,
                      f"sanity solve failed: {type(exc).__name__}: {exc}")
    health = op.health()
    resid = health.get("worst_resid")
    if resid is not None and resid > SANITY_RESID_LIMIT:
        return _check("engine", FAIL,
                      f"sanity solve residual {resid:.2e} exceeds "
                      f"{SANITY_RESID_LIMIT:.0e}")
    detail = (f"bias solve converged in {health.get('iterations')} "
              f"iteration(s), strategy={health.get('strategy')}")
    if health.get("strategy") not in (None, "newton"):
        return _check("engine", WARN, detail + " (fallback strategy "
                      "on a circuit newton should handle)")
    if health.get("latch_reason"):
        return _check("engine", WARN,
                      f"{detail}; dense latch: {health['latch_reason']}")
    return _check("engine", PASS, detail)


def check_store(root) -> dict:
    """Read-verify every payload in the store at ``root`` against its
    hash: any quarantined or missing payload is a *fail*."""
    root = pathlib.Path(root)
    if not root.exists():
        return _check("store", PASS, f"skipped: no store at {root}")
    try:
        from repro.store.backend import ResultStore

        with ResultStore(root) as store:
            stats = store.verify()
    except Exception as exc:
        return _check("store", FAIL,
                      f"verify failed: {type(exc).__name__}: {exc}")
    if stats["quarantined"] or stats["missing"]:
        return _check(
            "store", FAIL,
            f"{stats['quarantined']} quarantined, {stats['missing']} "
            f"missing of {stats['checked']} payload(s)")
    return _check("store", PASS,
                  f"{stats['intact']}/{stats['checked']} payload(s) intact")


def check_serve(url: str) -> dict:
    """Hit ``<url>/healthz``: unreachable or non-200 is a *fail*, a
    degraded status (hung workers, detached store) is a *warn*."""
    import urllib.error
    import urllib.request

    target = url.rstrip("/") + "/healthz"
    try:
        with urllib.request.urlopen(target, timeout=10.0) as resp:
            payload = json.loads(resp.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as exc:
        return _check("serve", FAIL, f"{target} unreachable: {exc}")
    status = payload.get("status")
    detail = (f"{target}: status={status}, "
              f"workers_alive={payload.get('workers_alive')}, "
              f"queue_depth={payload.get('queue_depth')}")
    if status != "ok":
        return _check("serve", WARN, detail)
    return _check("serve", PASS, detail)


def check_bench(path) -> dict:
    """Run the EWMA drift watchdog over ``BENCH_perf.json``: flagged
    metrics are a *warn* (perf drift deserves a look, not a page)."""
    from repro.obs import drift

    path = pathlib.Path(path)
    if not path.exists():
        return _check("bench", PASS, f"skipped: no bench file at {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return _check("bench", WARN, f"{path} is not valid JSON: {exc}")
    flags = drift.analyze(payload)
    if flags:
        worst = max(flags, key=lambda f: abs(f["z"]))
        return _check(
            "bench", WARN,
            f"{len(flags)} metric(s) drifted; worst "
            f"{worst['trajectory']}.{worst['metric']} z={worst['z']:+.1f}")
    n = sum(1 for k in payload if k.endswith("_trajectory"))
    return _check("bench", PASS, f"no drift across {n} trajectory(ies)")


def check_events(path=None) -> dict:
    """Triage the recent event log — the active in-process log, or a
    JSONL export when ``path`` is given: any error-severity events are
    a *warn* (the error already happened; the doctor's job is to make
    sure somebody reads it)."""
    from repro.obs.events import active_event_log, load_jsonl

    if path is not None:
        path = pathlib.Path(path)
        if not path.exists():
            return _check("events", PASS,
                          f"skipped: no event log at {path}")
        try:
            events = load_jsonl(path)
        except (OSError, json.JSONDecodeError) as exc:
            return _check("events", WARN, f"unreadable event log: {exc}")
        source = str(path)
    else:
        log = active_event_log()
        if log is None:
            return _check("events", PASS,
                          "skipped: event log disarmed "
                          "(REPRO_OBS=events arms it)")
        events = log.events()
        source = "active log"
    errors = [e for e in events if e.get("severity") == "error"]
    if errors:
        names = sorted({e["name"] for e in errors})
        return _check("events", WARN,
                      f"{len(errors)} error event(s) in {source}: "
                      + ", ".join(names[:5]))
    return _check("events", PASS,
                  f"{len(events)} event(s) in {source}, none at error "
                  "severity")


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
def run_doctor(store=None, url: str | None = None, bench=None,
               events=None) -> tuple[list[dict], int]:
    """Run every applicable check; return ``(checks, exit_code)`` with
    exit 2 on any fail, 1 on any warn, else 0."""
    checks = [check_engine()]
    if store is not None:
        checks.append(check_store(store))
    if url is not None:
        checks.append(check_serve(url))
    if bench is not None:
        checks.append(check_bench(bench))
    checks.append(check_events(events))
    statuses = {c["status"] for c in checks}
    code = 2 if FAIL in statuses else (1 if WARN in statuses else 0)
    return checks, code


def format_report(checks: list[dict], code: int) -> list[str]:
    lines = ["repro doctor"]
    for c in checks:
        lines.append(f"  [{c['status'].upper():<4}] "
                     f"{c['name']:<7} {c['detail']}")
    verdict = {0: "healthy", 1: "needs attention", 2: "unhealthy"}[code]
    lines.append(f"verdict: {verdict} (exit {code})")
    return lines


def main(argv: list[str] | None = None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="repro.obs.doctor", description="stack self-checks")
    parser.add_argument("--store", default=None,
                        help="result-store root to read-verify")
    parser.add_argument("--url", default=None,
                        help="running service base URL (checks /healthz)")
    parser.add_argument("--bench", default=None,
                        help="BENCH_perf.json for the drift watchdog")
    parser.add_argument("--events", default=None,
                        help="event-log JSONL export to triage")
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    checks, code = run_doctor(store=args.store, url=args.url,
                              bench=args.bench, events=args.events)
    for line in format_report(checks, code):
        print(line)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
