"""Benchmark-trajectory drift watchdog over ``BENCH_perf.json``.

Every perf bench appends one point to its ``*_trajectory`` list on each
full run (``campaign_trajectory``, ``serve_trajectory``, ...).  This
module reads the file back and answers two questions:

1. *What moved?* — per trajectory and per numeric metric, the previous
   -> latest delta and the full first -> latest drift, exactly as the
   old ``tools/bench_report.py`` printed them (that script now
   delegates here).

2. *Did it move too far?* — an exponentially-weighted moving average
   baseline (mean and variance, ``alpha`` per point) is folded over the
   historical points of each metric, and the latest point is flagged
   when its z-score against that baseline exceeds ``z_threshold``.
   Smoke points are excluded from the baseline and never judged: they
   run truncated workloads whose numbers are not comparable to full
   runs.  A metric needs ``min_points`` full historical points before
   it is judged at all — with fewer, there is no baseline worth
   trusting.

The EWMA (rather than a plain mean over all history) makes the baseline
track slow legitimate drift — a host upgrade, a deliberate perf PR —
while still catching a step change: after a few runs the baseline
re-centres and the watchdog re-arms around the new normal.

Exit codes: always 0 without ``--gate``.  With ``--gate``, drift flags
exit 1 — unless ``--warn-only`` also given, which prints the flags but
exits 0 (the CI rollout mode: visible, not yet blocking).

Usage::

    python -m repro.obs.drift [BENCH_perf.json] [--gate] [--warn-only]
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_PATH = REPO_ROOT / "BENCH_perf.json"

#: Relative moves larger than this are flagged in the delta report
#: (informational only — the z-score watchdog is what gates).
DRIFT_THRESHOLD = 0.10

#: EWMA weight of each new point (higher = baseline adapts faster).
DEFAULT_ALPHA = 0.3

#: Latest-point z-scores beyond this are drift flags.
DEFAULT_Z = 3.0

#: Full (non-smoke) historical points required before judging a metric.
MIN_BASELINE_POINTS = 3

#: Relative std floor: hosts jitter a few percent run to run even when
#: nothing changed, so a suspiciously tight baseline must not turn that
#: jitter into a flag.
REL_STD_FLOOR = 0.02

PROVENANCE_KEYS = ("platform", "cpu_count", "single_cpu", "numpy", "scipy")


def _numeric_keys(points: list[dict]) -> list[str]:
    """Metric keys worth comparing: numeric, non-bool, present in the
    latest point."""
    latest = points[-1]
    return [k for k, v in latest.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)]


def ewma_baseline(values: list[float],
                  alpha: float = DEFAULT_ALPHA) -> tuple[float, float]:
    """Exponentially-weighted mean and standard deviation of ``values``
    (oldest first).  Variance uses the standard EW recurrence
    ``var = (1 - alpha) * (var + alpha * delta**2)`` so one outlier
    widens the band instead of permanently shifting it."""
    mean = float(values[0])
    var = 0.0
    for v in values[1:]:
        delta = float(v) - mean
        mean += alpha * delta
        var = (1.0 - alpha) * (var + alpha * delta * delta)
    return mean, math.sqrt(var)


def analyze(payload: dict, *, alpha: float = DEFAULT_ALPHA,
            z_threshold: float = DEFAULT_Z,
            min_points: int = MIN_BASELINE_POINTS) -> list[dict]:
    """Drift flags for the latest point of every trajectory metric.

    Returns one dict per flagged metric: ``{"trajectory", "metric",
    "latest", "mean", "std", "z"}``.  An empty list means no drift (or
    not enough history to judge)."""
    flags: list[dict] = []
    for key in sorted(k for k in payload if k.endswith("_trajectory")):
        points = [p for p in payload[key] if isinstance(p, dict)]
        if not points or points[-1].get("smoke"):
            continue
        latest = points[-1]
        baseline_points = [p for p in points[:-1] if not p.get("smoke")]
        if len(baseline_points) < min_points:
            continue
        for metric in _numeric_keys(points):
            history = [p[metric] for p in baseline_points
                       if isinstance(p.get(metric), (int, float))
                       and not isinstance(p.get(metric), bool)
                       and math.isfinite(p[metric])]
            value = latest[metric]
            if len(history) < min_points or not math.isfinite(value):
                continue
            mean, std = ewma_baseline(history, alpha=alpha)
            floor = REL_STD_FLOOR * abs(mean)
            spread = max(std, floor)
            if spread <= 0.0:
                # Constant-zero history: any nonzero latest is a flag.
                if value != mean:
                    flags.append({"trajectory": key, "metric": metric,
                                  "latest": value, "mean": mean,
                                  "std": std, "z": math.inf})
                continue
            z = (value - mean) / spread
            if abs(z) > z_threshold:
                flags.append({"trajectory": key, "metric": metric,
                              "latest": value, "mean": mean,
                              "std": std, "z": z})
    return flags


# ----------------------------------------------------------------------
# The human-facing report (delta lines + watchdog verdict)
# ----------------------------------------------------------------------
def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _delta_line(name: str, old, new, label: str) -> str:
    line = f"    {name:<28} {_fmt(old):>10} -> {_fmt(new):>10}  ({label})"
    if isinstance(old, (int, float)) and old:
        rel = (new - old) / abs(old)
        line += f"  {rel:+.1%}"
        if abs(rel) > DRIFT_THRESHOLD:
            line += "  DRIFT"
    return line


def report(payload: dict) -> list[str]:
    lines: list[str] = []
    trajectories = sorted(k for k in payload if k.endswith("_trajectory"))
    if not trajectories:
        return ["no *_trajectory keys found — run a full bench first"]
    for key in trajectories:
        points = [p for p in payload[key] if isinstance(p, dict)]
        if not points:
            continue
        bench = key[: -len("_trajectory")]
        n_smoke = sum(1 for p in points if p.get("smoke"))
        lines.append(f"{bench}: {len(points)} point(s)"
                     + (f" ({n_smoke} smoke)" if n_smoke else ""))
        entry = payload.get(bench)
        if isinstance(entry, dict):
            prov = {k: entry[k] for k in PROVENANCE_KEYS if k in entry}
            if prov:
                lines.append(f"  latest host: {prov}")
        latest = points[-1]
        first = points[0]
        prev = points[-2] if len(points) > 1 else None
        for metric in _numeric_keys(points):
            if prev is not None and metric in prev:
                lines.append(_delta_line(metric, prev[metric],
                                         latest[metric], "prev -> latest"))
            if len(points) > 1 and metric in first:
                lines.append(_delta_line(metric, first[metric],
                                         latest[metric], "first -> latest"))
        lines.append("")
    return lines


def format_flags(flags: list[dict]) -> list[str]:
    if not flags:
        return ["drift watchdog: no drift flagged"]
    lines = [f"drift watchdog: {len(flags)} metric(s) drifted:"]
    for f in flags:
        lines.append(
            f"  {f['trajectory']}.{f['metric']}: latest {_fmt(f['latest'])} "
            f"vs EWMA {_fmt(f['mean'])} (+/-{_fmt(f['std'])}), "
            f"z={f['z']:+.1f}")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.drift",
        description="benchmark trajectory report + EWMA drift watchdog")
    parser.add_argument("path", nargs="?", default=str(DEFAULT_PATH),
                        help="BENCH_perf.json location")
    parser.add_argument("--gate", action="store_true",
                        help="exit 1 when the watchdog flags drift")
    parser.add_argument("--warn-only", action="store_true",
                        help="with --gate: print flags but still exit 0")
    parser.add_argument("--alpha", type=float, default=DEFAULT_ALPHA,
                        help=f"EWMA weight per point "
                             f"(default {DEFAULT_ALPHA})")
    parser.add_argument("--z", type=float, default=DEFAULT_Z,
                        help=f"z-score flag threshold (default {DEFAULT_Z})")
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)

    path = pathlib.Path(args.path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        print(f"[drift] {path} does not exist — nothing to report")
        return 0
    except json.JSONDecodeError as exc:
        print(f"[drift] {path} is not valid JSON: {exc}")
        return 0

    print(f"[drift] trajectories in {path} "
          f"(delta flag threshold {DRIFT_THRESHOLD:.0%})")
    for line in report(payload):
        print(line)
    flags = analyze(payload, alpha=args.alpha, z_threshold=args.z)
    for line in format_flags(flags):
        print(line)
    if flags and args.gate:
        if args.warn_only:
            print("[drift] --warn-only: drift flagged but not gating")
            return 0
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
