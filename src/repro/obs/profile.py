"""Per-phase engine profiling: counters and accumulated seconds.

Where tracing answers *when* (a timeline of spans), profiling answers
*how much in total*: Newton iterations, complex-LU factor/solve calls,
sparse-vs-dense path decisions, store payload reads, cache hits per
level — cheap monotone accumulators keyed by dotted names, summed over
a whole campaign or optimization run.

The hot-path contract matches :func:`repro.faults.harness.fault_point`:
disarmed, :func:`prof_count` / :func:`prof_add` are one module-global
``None`` check.  Inner loops count; only coarse boundaries time (a
``perf_counter`` pair costs more than a count, so per-iteration timing
is deliberately absent).

Arming is scoped: :meth:`Profiler.activate` (the ``--profile`` CLI
flag and ``run_campaign(profile=True)`` wrap one run), or process-wide
via ``REPRO_OBS=profile`` (see :mod:`repro.obs.harness`).  Pool workers
ship their snapshot back with each chunk's results; the parent
:meth:`~Profiler.merge`\\ s them, so a pooled campaign's profile covers
child-process work too.
"""

from __future__ import annotations

import threading
import time


class Profiler:
    """Thread-safe named accumulators: integer counts and float seconds."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._times: dict[str, float] = {}

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + n

    def add_time(self, name: str, seconds: float) -> None:
        with self._lock:
            self._times[name] = self._times.get(name, 0.0) + seconds

    def merge(self, snapshot: dict) -> None:
        """Fold another profiler's :meth:`snapshot` into this one
        (pool-worker results coming home)."""
        with self._lock:
            for name, n in (snapshot.get("counts") or {}).items():
                self._counts[name] = self._counts.get(name, 0) + n
            for name, s in (snapshot.get("times_s") or {}).items():
                self._times[name] = self._times.get(name, 0.0) + s

    def snapshot(self) -> dict:
        """``{"counts": {...}, "times_s": {...}}``, keys sorted (stable
        for JSON round-trips and test assertions)."""
        with self._lock:
            return {
                "counts": dict(sorted(self._counts.items())),
                "times_s": dict(sorted(self._times.items())),
            }

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()
            self._times.clear()

    def activate(self) -> "_ActiveProfiler":
        """Context manager arming this profiler (restores the previous
        one on exit)."""
        return _ActiveProfiler(self)


class _ActiveProfiler:
    def __init__(self, profiler: Profiler) -> None:
        self.profiler = profiler
        self._previous: Profiler | None = None

    def __enter__(self) -> Profiler:
        self._previous = activate(self.profiler)
        return self.profiler

    def __exit__(self, *exc) -> None:
        _set_active(self._previous)


#: The single armed profiler; ``None`` keeps every hook inert.
_ACTIVE: Profiler | None = None


def _set_active(profiler: Profiler | None) -> None:
    global _ACTIVE
    _ACTIVE = profiler


def activate(profiler: Profiler) -> Profiler | None:
    """Arm ``profiler`` globally; returns the previously armed one."""
    previous = _ACTIVE
    _set_active(profiler)
    return previous


def deactivate() -> None:
    """Disarm profiling entirely."""
    _set_active(None)


def active_profiler() -> Profiler | None:
    return _ACTIVE


def prof_count(name: str, n: int = 1) -> None:
    """Bump a named counter.  Disarmed: one global load and a falsy
    check — safe inside Newton iterations and per-payload store reads."""
    p = _ACTIVE
    if p is None:
        return
    p.count(name, n)


def prof_add(name: str, seconds: float) -> None:
    """Accumulate seconds against a named phase (caller timed it)."""
    p = _ACTIVE
    if p is None:
        return
    p.add_time(name, seconds)


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class _Timer:
    __slots__ = ("profiler", "name", "_t0")

    def __init__(self, profiler: Profiler, name: str) -> None:
        self.profiler = profiler
        self.name = name

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.profiler.add_time(self.name, time.perf_counter() - self._t0)
        return False


def timed(name: str):
    """``with timed("campaign.store_merge_s"):`` — coarse-phase timing.
    Disarmed returns a shared no-op handle (do not use per-iteration;
    that is what counts are for)."""
    p = _ACTIVE
    if p is None:
        return _NULL_TIMER
    return _Timer(p, name)


def format_profile(snapshot: dict) -> str:
    """Human-readable breakdown for ``--profile`` output: timed phases
    first (descending seconds), then counters."""
    lines = []
    times = snapshot.get("times_s") or {}
    counts = snapshot.get("counts") or {}
    if times:
        lines.append("profile — timed phases:")
        for name, s in sorted(times.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:<32} {1e3 * s:10.2f} ms")
    if counts:
        lines.append("profile — counters:")
        for name, n in sorted(counts.items()):
            lines.append(f"  {name:<32} {n:>10}")
    if not lines:
        return "profile — empty (no instrumented work ran)"
    return "\n".join(lines)
