"""repro.obs — tracing, metrics, and engine profiling for the stack.

Three dependency-free components with one cost contract — disarmed,
every hook is a single module-global ``None`` check (the
``fault_point`` discipline from :mod:`repro.faults`), so arming state
can never perturb a byte-identity or determinism gate:

* :mod:`repro.obs.trace` — spans with parent/child nesting, trace-ID
  propagation across threads *and* pool worker processes, JSONL export,
  queryable per job via ``GET /v1/jobs/<id>/trace`` and ``repro trace``.
* :mod:`repro.obs.metrics` — fixed-bucket latency histograms, gauges,
  and the Prometheus text exposition behind ``GET /metrics``.
* :mod:`repro.obs.profile` — per-phase accumulators (Newton iterations,
  LU factor/solve, sparse-vs-dense decisions, store I/O, cache levels)
  surfaced through ``CampaignResult.stats`` and ``--profile``.
* :mod:`repro.obs.events` — structured degradation events (strategy
  escalations, fallback latches, quarantines, worker restarts) with
  severities, trace correlation, and ring-buffered retention; surfaced
  as ``events.*`` counters in ``/v1/metrics`` and triaged by
  ``repro doctor``.

Arming: ``REPRO_OBS=`` env grammar (parsed at import —
:mod:`repro.obs.harness`), or scoped ``Tracer.activate()`` /
``Profiler.activate()`` / ``EventLog.activate()`` context managers.
"""

from repro.obs.events import (
    SEVERITIES,
    EventLog,
    active_event_log,
    event,
    format_events,
)
from repro.obs.harness import (
    OBS_ENV,
    ObsConfig,
    arm,
    arm_from_env,
    config_from_env,
    events_enabled,
    profile_enabled,
    trace_enabled,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.profile import (
    Profiler,
    active_profiler,
    format_profile,
    prof_add,
    prof_count,
    timed,
)
from repro.obs.trace import (
    Tracer,
    active_tracer,
    current_context,
    format_tree,
    load_jsonl,
    seed_context,
    slowest_spans,
    span,
    trace_point,
)

__all__ = [
    "OBS_ENV", "ObsConfig", "arm", "arm_from_env", "config_from_env",
    "trace_enabled", "profile_enabled", "events_enabled",
    "DEFAULT_BUCKETS", "Histogram", "parse_prometheus", "render_prometheus",
    "Profiler", "active_profiler", "format_profile", "prof_add",
    "prof_count", "timed",
    "Tracer", "active_tracer", "current_context", "format_tree",
    "load_jsonl", "seed_context", "slowest_spans", "span", "trace_point",
    "SEVERITIES", "EventLog", "active_event_log", "event", "format_events",
]
