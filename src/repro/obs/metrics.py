"""Fixed-bucket histograms, gauges, and Prometheus text exposition.

:class:`Histogram` is the latency primitive behind
``ServiceMetrics.observe``: a fixed set of upper bounds chosen at
construction, one integer count per bucket, O(log n_buckets) per
observation under a lock — no per-sample storage, so a year of traffic
costs the same memory as a minute.  Quantiles are estimated by linear
interpolation inside the owning bucket (the classic Prometheus
``histogram_quantile`` scheme); the estimate is exact at bucket edges
and off by at most one bucket width inside, which the test suite pins
against ``numpy.quantile`` on known data.

:func:`render_prometheus` serialises counters/gauges/histograms in the
Prometheus text exposition format (``# HELP``/``# TYPE`` lines,
cumulative ``_bucket{le=...}`` series, ``_sum``/``_count``) for
``GET /metrics`` — dependency-free, parseable by any Prometheus scraper.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left

#: Default latency buckets (seconds): 1 ms to 60 s, roughly log-spaced —
#: wide enough for a warm store hit (sub-ms) and a cold robust optimize
#: (tens of seconds) on one axis.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Histogram:
    """Thread-safe fixed-bucket histogram (counts per upper bound, plus
    an implicit ``+Inf`` overflow bucket)."""

    def __init__(self, buckets=DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)      # last = overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        i = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[i] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> dict:
        """``{"count", "sum", "buckets": [{"le", "count"}, ...]}`` with
        *cumulative* bucket counts ending in the ``+Inf`` total —
        exactly the Prometheus histogram shape, consistent even
        mid-observe (taken under the lock)."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            total_sum = self._sum
        cum = 0
        buckets = []
        for bound, n in zip(self.bounds, counts):
            cum += n
            buckets.append({"le": bound, "count": cum})
        buckets.append({"le": "+Inf", "count": total})
        return {"count": total, "sum": total_sum, "buckets": buckets}

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (``q`` in [0, 1]) by linear interpolation
        within the owning bucket.  Empty histograms return ``nan``;
        overflow-bucket quantiles clamp to the largest finite bound."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return math.nan
        rank = q * total
        cum = 0
        for i, n in enumerate(counts[:-1]):
            if n == 0:
                cum += n
                continue
            if cum + n >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i]
                frac = (rank - cum) / n
                return lo + (hi - lo) * max(0.0, min(1.0, frac))
            cum += n
        return self.bounds[-1]      # overflow bucket: clamp

    def quantiles(self, qs=(0.5, 0.95, 0.99)) -> dict[str, float]:
        """p-labelled quantile dict, e.g. ``{"p50": ..., "p99": ...}``."""
        return {f"p{round(100 * q) if q < 1 else 100}": self.quantile(q)
                for q in qs}


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Help strings for the well-known series (fallback is generated).
HELP: dict[str, str] = {
    "requests": "HTTP requests served, by handler outcome",
    "request_latency": "HTTP request wall time in seconds, per route",
    "job_latency": "job execution wall time in seconds, per kind",
    "queue_depth": "jobs waiting in the queue right now",
    "workers_busy": "worker threads currently running a job",
    "store_entries": "payload entries in the attached result store",
    "jobs_done": "jobs finished successfully",
    "jobs_failed": "jobs finished in failure",
    "warm_hits": "campaign submissions answered entirely from the store",
    "events.armed": "1 when the structured event log is armed",
    "events.info": "info-severity events recorded (monotone)",
    "events.warn": "warn-severity events recorded (monotone)",
    "events.error": "error-severity events recorded (monotone)",
    "events.recorded": "structured events recorded in total (monotone)",
    "events.dropped": "structured events evicted by ring-buffer overflow",
}


def sanitize(name: str) -> str:
    """A metric name valid for Prometheus (dots and dashes become
    underscores)."""
    return _NAME_RE.sub("_", name)


def _fmt(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(counters: dict | None = None,
                      gauges: dict | None = None,
                      histograms: dict | None = None,
                      prefix: str = "repro") -> str:
    """The ``GET /metrics`` document: counters as ``<name>_total``,
    gauges bare, histograms as cumulative ``_bucket``/``_sum``/
    ``_count`` series.  ``histograms`` maps name → :class:`Histogram`
    *or* an already-taken :meth:`Histogram.snapshot` dict."""
    lines: list[str] = []

    def emit_header(name: str, kind: str, base: str) -> None:
        help_text = HELP.get(base, f"repro {kind} {base}")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    for raw, value in sorted((counters or {}).items()):
        name = f"{prefix}_{sanitize(raw)}_total"
        emit_header(name, "counter", raw)
        lines.append(f"{name} {_fmt(value)}")

    for raw, value in sorted((gauges or {}).items()):
        name = f"{prefix}_{sanitize(raw)}"
        emit_header(name, "gauge", raw)
        lines.append(f"{name} {_fmt(value)}")

    for raw, hist in sorted((histograms or {}).items()):
        snap = hist.snapshot() if isinstance(hist, Histogram) else hist
        name = f"{prefix}_{sanitize(raw)}"
        emit_header(name, "histogram", raw)
        for bucket in snap["buckets"]:
            le = bucket["le"]
            le_text = le if le == "+Inf" else _fmt(le)
            lines.append(f'{name}_bucket{{le="{le_text}"}} {bucket["count"]}')
        lines.append(f"{name}_sum {_fmt(snap['sum'])}")
        lines.append(f"{name}_count {snap['count']}")

    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, dict]:
    """A minimal parser for the exposition format (the CI smoke and
    tests use it to assert structure): returns ``{series_name:
    {"type", "help", "samples": [(labels_text, value), ...]}}``."""
    series: dict[str, dict] = {}
    current: dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            current[name] = help_text
            series.setdefault(name, {"help": help_text, "type": None,
                                     "samples": []})
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            series.setdefault(name, {"help": current.get(name, ""),
                                     "type": None, "samples": []})
            series[name]["type"] = kind.strip()
        elif line.startswith("#"):
            continue
        else:
            name_and_labels, _, value = line.rpartition(" ")
            name, labels = name_and_labels, ""
            if "{" in name_and_labels:
                name, _, labels = name_and_labels.partition("{")
                labels = "{" + labels
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[: -len(suffix)] in series:
                    base = name[: -len(suffix)]
                    break
            target = series.setdefault(
                base, {"help": "", "type": None, "samples": []})
            target["samples"].append((name + labels, float(value)))
    return series
