"""The on-disk result store: an sqlite index over JSON payload objects.

Layout under the store root::

    <root>/index.db            sqlite: key -> (kind, payload path, meta)
    <root>/objects/ab/<key>.json

Payloads are content-addressed by the caller-supplied key (see
:mod:`repro.store.keys`) and written **atomically**: the JSON is staged
to a unique temporary file in the same directory and ``os.replace``\\ d
into place, then the index row is committed.  A crash between the two
steps leaves an orphan payload (cleaned by :meth:`ResultStore.gc`), a
concurrent reader either sees the complete entry or a miss — never a
torn file.  Index writes go through sqlite's own locking (30 s busy
timeout), so any number of processes can share one store root; two
writers racing on the same key both write the same bytes, because keys
are content hashes of everything the value depends on.

Floats survive exactly: payload JSON renders them via ``repr`` (the
shortest round-trip form), so a record read back from the store is
bit-identical to the one that was written — the foundation of the
"warm rerun is byte-identical" contract that
``benchmarks/bench_store.py`` enforces.  Non-finite values are wrapped
in ``{"$nf": ...}`` tokens to keep every payload strict JSON.

Two defensive layers keep a damaged store from lying or crashing:

* every index row carries the **SHA-256 of the payload bytes**; reads
  verify it, and a corrupt or truncated payload is **quarantined**
  (moved to ``<root>/quarantine/``) and reported as a miss, so the
  caller transparently recomputes instead of serving garbage;
* every index access runs under :meth:`ResultStore._index_retry` —
  bounded exponential backoff over transient
  ``sqlite3.OperationalError`` (locked database), so a burst of writers
  degrades to latency, not tracebacks.

Both paths are exercised deterministically through the
``store.payload_read`` / ``store.index`` fault points
(:mod:`repro.faults`) by ``tests/faults/test_store_faults.py``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
import os
import pathlib
import sqlite3
import threading
import time

from repro.faults.harness import fault_point
from repro.obs.events import event
from repro.obs.profile import prof_count

#: Environment variable naming the default store root for the CLI.
STORE_ENV = "REPRO_STORE"

_tmp_counter = itertools.count()


def default_store_root() -> pathlib.Path:
    """``$REPRO_STORE`` if set, else ``~/.cache/repro-store``."""
    root = os.environ.get(STORE_ENV)
    if root:
        return pathlib.Path(root).expanduser()
    return pathlib.Path("~/.cache/repro-store").expanduser()


def open_store(root=None) -> "ResultStore":
    """Open (creating if needed) the store at ``root`` or the default."""
    return ResultStore(default_store_root() if root is None else root)


# ----------------------------------------------------------------------
# Payload encoding: strict JSON with exact float round-trip
# ----------------------------------------------------------------------
def _encode(value):
    if isinstance(value, float):
        if math.isnan(value):
            return {"$nf": "nan"}
        if math.isinf(value):
            return {"$nf": "inf" if value > 0 else "-inf"}
        return value
    if isinstance(value, dict):
        if "$nf" in value:
            # "$nf" is the reserved non-finite token key; a record using
            # it would decode to something else.  No repo-produced record
            # (metric names, evaluation payloads) can contain it, so
            # reject loudly rather than corrupt silently.
            raise ValueError("records may not use the reserved key '$nf'")
        return {k: _encode(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    return value


_NF = {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}


def _decode(value):
    if isinstance(value, dict):
        if set(value) == {"$nf"}:
            return _NF[value["$nf"]]
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


class ResultStore:
    """Persistent, concurrency-safe ``key -> record`` store.

    ``record`` is any JSON-encodable structure of dicts/lists/strings/
    numbers (campaign-unit metric dicts, design evaluations); the one
    reserved name is the ``"$nf"`` dict key, which the non-finite
    tokenisation owns (``put`` rejects it).  Connections are opened
    lazily and held **per thread** (sqlite objects must not cross
    threads): one store object can be shared by the serve layer's HTTP
    handler threads and worker pool exactly like it is shared by
    processes — sqlite's own file locking arbitrates, and the schema
    bootstrap is idempotent.  Pickling drops the connection state, so a
    store can ride inside structures that cross process boundaries and
    reconnect on first use.
    """

    #: Bounded backoff over transient sqlite errors (locked database):
    #: attempts and the initial delay, doubled per retry.
    INDEX_RETRIES = 5
    INDEX_BACKOFF_S = 0.05

    def __init__(self, root, index_retries: int | None = None,
                 index_backoff_s: float | None = None) -> None:
        self.root = pathlib.Path(root)
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)
        self.index_retries = (self.INDEX_RETRIES if index_retries is None
                              else index_retries)
        self.index_backoff_s = (self.INDEX_BACKOFF_S if index_backoff_s is None
                                else index_backoff_s)
        self._local = threading.local()
        self._counter_lock = threading.Lock()
        self._counters: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Connection / schema
    # ------------------------------------------------------------------
    @property
    def conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(str(self.root / "index.db"), timeout=30.0)
            with conn:
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS entries ("
                    " key TEXT PRIMARY KEY,"
                    " kind TEXT NOT NULL,"
                    " path TEXT NOT NULL,"
                    " nbytes INTEGER NOT NULL,"
                    " created_at REAL NOT NULL,"
                    " meta TEXT NOT NULL DEFAULT '{}',"
                    " sha256 TEXT NOT NULL DEFAULT '')"
                )
                conn.execute(
                    "CREATE INDEX IF NOT EXISTS entries_kind ON entries(kind)"
                )
                # Stores written before payload hashing gain the column
                # in place; their rows keep an empty hash, which skips
                # verification (JSON decoding still guards them).
                cols = {row[1] for row in
                        conn.execute("PRAGMA table_info(entries)")}
                if "sha256" not in cols:
                    conn.execute("ALTER TABLE entries "
                                 "ADD COLUMN sha256 TEXT NOT NULL DEFAULT ''")
            self._local.conn = conn
        return conn

    # ------------------------------------------------------------------
    # Fault accounting / retry
    # ------------------------------------------------------------------
    def _count(self, name: str, by: int = 1) -> None:
        with self._counter_lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def fault_stats(self) -> dict[str, int]:
        """Per-instance defect counters: ``quarantined`` (corrupt
        payloads moved aside), ``read_errors`` (payloads unreadable this
        attempt), ``index_retries`` (transient sqlite errors absorbed)."""
        with self._counter_lock:
            return dict(sorted(self._counters.items()))

    def _index_retry(self, fn, op: str):
        """Run one index access with bounded backoff over transient
        ``sqlite3.OperationalError`` (a locked database under writer
        bursts).  The last attempt re-raises: a persistently unavailable
        index is the caller's degradation decision, not ours."""
        delay = self.index_backoff_s
        for attempt in range(self.index_retries):
            try:
                fault_point("store.index", op=op, attempt=attempt)
                return fn()
            except sqlite3.OperationalError as exc:
                self._count("index_retries")
                if attempt == self.index_retries - 1:
                    event("store.index_unavailable", "error", op=op,
                          attempts=self.index_retries, error=str(exc))
                    raise
                event("store.index_retry", "warn", op=op, attempt=attempt,
                      delay_s=delay)
                time.sleep(delay)
                delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        """Close the *calling thread's* connection (other threads'
        connections close when they are garbage-collected — sqlite
        forbids closing them from here)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_local"] = None
        state["_counter_lock"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._local = threading.local()
        self._counter_lock = threading.Lock()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def _object_path(self, key: str) -> pathlib.Path:
        return self.objects / key[:2] / f"{key}.json"

    def _stage_payload(self, key: str, record) -> tuple[str, int, str]:
        """Atomically materialise one payload file; returns its
        root-relative path, byte size and content hash."""
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(_encode(record), allow_nan=False,
                          separators=(",", ":"))
        tmp = path.parent / f".{key}.{os.getpid()}.{next(_tmp_counter)}.tmp"
        tmp.write_text(text)
        os.replace(tmp, path)
        sha = hashlib.sha256(text.encode("utf-8")).hexdigest()
        return str(path.relative_to(self.root)), len(text), sha

    def put(self, key: str, record, kind: str = "record",
            meta: dict | None = None) -> None:
        """Atomically write ``record`` under ``key`` (idempotent)."""
        self.put_many([(key, record, kind, meta)])

    def put_many(self, items) -> None:
        """Write many ``(key, record, kind, meta)`` entries with one
        index transaction.

        Payload files are still written (atomically) one by one, but the
        N index rows commit together — one journal sync instead of N,
        which is what keeps the write-back of a large cold campaign from
        being serialized on per-unit sqlite commits.
        """
        rows = []
        now = time.time()
        for key, record, kind, meta in items:
            rel, nbytes, sha = self._stage_payload(key, record)
            rows.append((key, kind, rel, nbytes, now,
                         json.dumps(meta or {}, sort_keys=True), sha))
        if not rows:
            return
        prof_count("store.payload_writes", len(rows))

        def _commit():
            with self.conn as conn:
                conn.executemany(
                    "INSERT OR REPLACE INTO entries "
                    "(key, kind, path, nbytes, created_at, meta, sha256) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)", rows,
                )
        self._index_retry(_commit, "write")

    # ------------------------------------------------------------------
    # Verified payload reads
    # ------------------------------------------------------------------
    def _drop_row(self, key: str) -> None:
        def _delete():
            with self.conn as conn:
                conn.execute("DELETE FROM entries WHERE key = ?", (key,))
        self._index_retry(_delete, "write")

    def _quarantine(self, key: str, rel: str, reason: str) -> None:
        """Move a corrupt payload out of the object tree (keeping the
        evidence) and drop its index row, so the key reads as a miss and
        the caller recomputes."""
        path = self.root / rel
        qdir = self.root / "quarantine"
        qdir.mkdir(exist_ok=True)
        try:
            os.replace(path, qdir / path.name)
        except OSError:
            path.unlink(missing_ok=True)
        self._drop_row(key)
        self._count("quarantined")
        event("store.quarantine", "error", key=key, path=rel, reason=reason)

    def _load_payload(self, key: str, rel: str, sha: str):
        """Read + verify one payload; ``None`` means "treat as a miss".

        A vanished file drops the (dangling) row; an I/O error counts as
        transiently unreadable and leaves the row for a later attempt; a
        hash mismatch or truncated/garbled JSON quarantines the file —
        corruption must never crash the reader *or* silently serve a
        wrong record.
        """
        prof_count("store.payload_reads")
        try:
            fault_point("store.payload_read", key=key)
            text = (self.root / rel).read_text()
        except FileNotFoundError:
            self._drop_row(key)
            return None
        except OSError as exc:
            self._count("read_errors")
            event("store.read_error", "warn", key=key,
                  error=f"{type(exc).__name__}: {exc}")
            return None
        if sha and hashlib.sha256(text.encode("utf-8")).hexdigest() != sha:
            self._quarantine(key, rel, "sha256 mismatch")
            return None
        try:
            return _decode(json.loads(text))
        except json.JSONDecodeError:
            self._quarantine(key, rel, "invalid JSON")
            return None

    def get(self, key: str):
        """The record under ``key``, or ``None``.  Dangling, unreadable
        and corrupt entries all read as misses (see
        :meth:`_load_payload`)."""
        row = self._index_retry(
            lambda: self.conn.execute(
                "SELECT path, sha256 FROM entries WHERE key = ?", (key,)
            ).fetchone(), "read")
        if row is None:
            return None
        return self._load_payload(key, row[0], row[1])

    def get_many(self, keys) -> dict:
        """``{key: record}`` for every present, intact key (one query
        per 500; corrupt payloads quarantined and skipped)."""
        keys = list(keys)
        out: dict = {}
        for i in range(0, len(keys), 500):
            batch = keys[i:i + 500]
            marks = ",".join("?" * len(batch))
            rows = self._index_retry(
                lambda b=batch, m=marks: self.conn.execute(
                    f"SELECT key, path, sha256 FROM entries "
                    f"WHERE key IN ({m})", b,
                ).fetchall(), "read")
            for key, rel, sha in rows:
                record = self._load_payload(key, rel, sha)
                if record is not None:
                    out[key] = record
        return out

    def verify(self) -> dict:
        """Read-verify every payload against its stored hash, moving
        corrupt ones to quarantine.  Returns ``{checked, intact,
        quarantined, missing}`` (`repro store verify`)."""
        rows = self._index_retry(
            lambda: self.conn.execute(
                "SELECT key, path, sha256 FROM entries").fetchall(), "read")
        before = self.fault_stats().get("quarantined", 0)
        intact = 0
        for key, rel, sha in rows:
            if self._load_payload(key, rel, sha) is not None:
                intact += 1
        quarantined = self.fault_stats().get("quarantined", 0) - before
        return {
            "checked": len(rows),
            "intact": intact,
            "quarantined": quarantined,
            "missing": len(rows) - intact - quarantined,
        }

    def contains_many(self, keys) -> set:
        """The subset of ``keys`` present in the index, without reading
        a single payload (one batched ``IN`` query per 500 keys).

        This is the serve layer's warm-hit probe: deciding whether a
        whole campaign can be answered from the store must not cost N
        point lookups or N payload reads.  An index row whose payload
        file has since vanished still counts as present here — the
        follow-up :meth:`get_many` self-heals such rows into misses and
        the caller re-executes exactly those units.
        """
        keys = list(keys)
        prof_count("store.index_probes", len(keys))
        out: set = set()
        for i in range(0, len(keys), 500):
            batch = keys[i:i + 500]
            marks = ",".join("?" * len(batch))
            rows = self._index_retry(
                lambda b=batch, m=marks: self.conn.execute(
                    f"SELECT key FROM entries WHERE key IN ({m})", b,
                ).fetchall(), "read")
            out.update(key for (key,) in rows)
        return out

    def contains(self, key: str) -> bool:
        row = self._index_retry(
            lambda: self.conn.execute(
                "SELECT 1 FROM entries WHERE key = ?", (key,)
            ).fetchone(), "read")
        return row is not None

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        return int(self._index_retry(
            lambda: self.conn.execute(
                "SELECT COUNT(*) FROM entries").fetchone(), "read")[0])

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def entries(self, kind: str | None = None):
        """Yield ``(key, kind, nbytes, created_at, meta)`` rows, newest
        first."""
        sql = ("SELECT key, kind, nbytes, created_at, meta FROM entries "
               + ("WHERE kind = ? " if kind else "")
               + "ORDER BY created_at DESC, key")
        args = (kind,) if kind else ()
        rows = self._index_retry(
            lambda: self.conn.execute(sql, args).fetchall(), "read")
        for key, k, nbytes, created, meta in rows:
            yield key, k, nbytes, created, json.loads(meta)

    def keys(self, kind: str | None = None) -> list[str]:
        return [key for key, *_ in self.entries(kind)]

    def stat(self) -> dict:
        """Aggregate counts and bytes, overall and per kind."""
        kinds: dict[str, dict] = {}
        rows = self._index_retry(
            lambda: self.conn.execute(
                "SELECT kind, COUNT(*), COALESCE(SUM(nbytes), 0) "
                "FROM entries GROUP BY kind ORDER BY kind").fetchall(),
            "read")
        for kind, count, nbytes in rows:
            kinds[kind] = {"entries": int(count), "bytes": int(nbytes)}
        return {
            "root": str(self.root),
            "entries": sum(k["entries"] for k in kinds.values()),
            "bytes": sum(k["bytes"] for k in kinds.values()),
            "kinds": kinds,
        }

    def gc(self, grace_s: float = 300.0) -> dict:
        """Restore index/objects consistency.

        Drops index rows whose payload file is gone, deletes payload
        files (and stale ``.tmp`` staging files) the index does not
        reference, and prunes empty fan-out directories.  Safe to run
        concurrently with readers and writers: files younger than
        ``grace_s`` are left alone — a concurrent ``put`` stages its
        payload and commits its index row moments apart, and the grace
        window keeps that in-flight pair out of reach.  Everything
        older that gc removes is either unreachable or the leftover of
        an interrupted write.
        """
        def _drop_dangling() -> int:
            removed = 0
            with self.conn as conn:
                for (key, rel) in conn.execute(
                    "SELECT key, path FROM entries"
                ).fetchall():
                    if not (self.root / rel).exists():
                        conn.execute("DELETE FROM entries WHERE key = ?",
                                     (key,))
                        removed += 1
            return removed
        removed_rows = self._index_retry(_drop_dangling, "write")
        # File walk first, index snapshot second: a payload replaced and
        # committed between the two shows up in `indexed` and is kept.
        candidates = []
        now = time.time()
        for path in sorted(self.objects.rglob("*")):
            if path.is_dir():
                continue
            try:
                if now - path.stat().st_mtime < grace_s:
                    continue
            except FileNotFoundError:
                continue
            candidates.append(path)
        indexed = {rel for (rel,) in self._index_retry(
            lambda: self.conn.execute(
                "SELECT path FROM entries").fetchall(), "read")}
        removed_files = 0
        for path in candidates:
            if str(path.relative_to(self.root)) not in indexed:
                path.unlink(missing_ok=True)
                removed_files += 1
        dir_now = time.time()  # fresh: the unlinks above touched dir mtimes
        for sub in sorted(self.objects.iterdir()):
            try:
                # Same grace rule as for files: a concurrent put mkdirs
                # its fan-out directory moments before staging into it.
                if (sub.is_dir() and dir_now - sub.stat().st_mtime >= grace_s
                        and not any(sub.iterdir())):
                    sub.rmdir()
            except OSError:
                pass  # a writer landed in it between the check and rmdir
        return {
            "removed_rows": removed_rows,
            "removed_files": removed_files,
            "entries": len(self),
        }

    def export(self, path, kind: str | None = None) -> int:
        """Dump entries (optionally one kind) as a single JSON document
        ``{"entries": [{key, kind, created_at, meta, record}, ...]}``;
        returns the number exported."""
        dumped = []
        for key, k, _nbytes, created, meta in self.entries(kind):
            record = self.get(key)
            if record is None:
                continue
            dumped.append({"key": key, "kind": k, "created_at": created,
                           "meta": meta, "record": _encode(record)})
        payload = {"root": str(self.root), "entries": dumped}
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, allow_nan=False)
            fh.write("\n")
        return len(dumped)
