"""Deterministic content-addressed keys for campaign units and designs.

Every cached artifact is addressed by the SHA-256 of a *canonical JSON*
rendering of everything its value depends on — and nothing else:

* a **campaign unit record** depends on the builder name, the
  spec-wide builder kwargs, the ordered measurement tuple, the base
  technology and the unit's own coordinates (corner, temperature,
  supply, seed, gain code).  The *other* axis values of the spec are
  deliberately absent: shrinking or growing an axis re-uses every
  overlapping unit, which is what makes incremental campaign execution
  work at the unit level rather than the whole-result level.
* a **design evaluation** depends on the quantized design vector, the
  full design-space definition (names, bounds, log flags, quantization
  steps), the evaluator context (builder, measurements, gain code,
  robust grid) and the technology.  The objective is *not* part of the
  key: the store holds raw metrics and the score is recomputed on load,
  so re-weighting a cost function never invalidates simulations.

Both key kinds are salted with :data:`SCHEMA_VERSION`.  Bump it whenever
the meaning of a stored record changes (a measurement's definition, the
record encoding, the mismatch-sampling scheme): every old entry then
silently becomes a miss instead of a wrong answer.

Canonical JSON: mappings are key-sorted, sequences ordered, dataclasses
tagged with their type name, floats rendered by ``repr`` (shortest
round-trip form — identical for identical bits on every CPython), and
non-finite floats tokenised so the text stays strict JSON.  The same
spec therefore hashes to the same key in any process on any host, which
``tests/store/test_keys.py`` pins with a subprocess round-trip.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math

import numpy as np

from repro.campaign.spec import CampaignSpec, WorkUnit

#: Version salt of every key. Bump on any change to record semantics:
#: measurement definitions, the payload encoding, sampler derivations.
SCHEMA_VERSION = 1


def canonical_payload(obj):
    """Recursively normalise ``obj`` into plain JSON-encodable data.

    Dataclasses are tagged with their type name (two specs that happen
    to flatten to the same fields but mean different things must not
    collide); numpy scalars/arrays become Python numbers/lists;
    non-finite floats become ``{"$nf": ...}`` tokens.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: canonical_payload(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return {"$type": type(obj).__qualname__, "fields": fields}
    if isinstance(obj, np.ndarray):
        return [canonical_payload(v) for v in obj.tolist()]
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        obj = obj.item()
    if isinstance(obj, float):
        if math.isnan(obj):
            return {"$nf": "nan"}
        if math.isinf(obj):
            return {"$nf": "inf" if obj > 0 else "-inf"}
        return obj
    if isinstance(obj, dict):
        # No pre-sort: canonical_json's sort_keys=True orders the
        # stringified keys (a pre-sort would also choke on mixed-type
        # keys before the str() normalisation gets to them).
        return {str(k): canonical_payload(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical_payload(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    raise TypeError(f"cannot canonicalise {type(obj).__name__}: {obj!r}")


def canonical_json(obj) -> str:
    """The canonical (sorted, compact, strict) JSON text of ``obj``."""
    return json.dumps(canonical_payload(obj), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def canonical_hash(obj) -> str:
    """SHA-256 hex digest of :func:`canonical_json`."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Campaign-unit keys
# ----------------------------------------------------------------------
def tech_fingerprint(tech) -> dict:
    """Everything a technology contributes to a measurement."""
    return canonical_payload(tech)


def spec_fingerprint(spec: CampaignSpec) -> dict:
    """The unit-invariant part of a campaign spec: what a single unit's
    record depends on besides its own coordinates.  Axis *contents* are
    excluded on purpose (see the module docstring)."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "campaign-unit",
        "builder": spec.builder,
        "builder_kwargs": canonical_payload(spec.builder_kwargs),
        "measurements": list(spec.measurements),
        "tech": tech_fingerprint(spec.tech),
    }


def campaign_key(spec: CampaignSpec) -> str:
    """Whole-campaign identity: the unit-invariant fingerprint *plus*
    every axis — two specs share it iff they expand to the same units
    measured the same way.  Used for grouping/metadata, not lookup."""
    return canonical_hash({
        "base": spec_fingerprint(spec),
        "corners": list(spec.corners),
        "temps_c": canonical_payload(spec.temps_c),
        "supplies": canonical_payload(spec.supplies),
        "seeds": canonical_payload(spec.seeds),
        "gain_codes": canonical_payload(spec.gain_codes),
    })


class UnitKeyer:
    """Per-unit key factory amortising the spec fingerprint.

    Hashing the full spec fingerprint once and folding only the unit
    coordinates per call keeps key generation ~O(units), not
    O(units x spec size) — partitioning a thousand-unit campaign is a
    few hundred microseconds.
    """

    def __init__(self, spec: CampaignSpec) -> None:
        self.spec = spec
        self._base = canonical_hash(spec_fingerprint(spec))

    def key(self, unit: WorkUnit) -> str:
        coords = canonical_json({
            "corner": unit.corner,
            "temp_c": unit.temp_c,
            "supply": unit.supply,
            "seed": unit.seed,
            "gain_code": unit.gain_code,
        })
        return hashlib.sha256(
            f"{self._base}|{coords}".encode("utf-8")
        ).hexdigest()


def unit_key(spec: CampaignSpec, unit: WorkUnit) -> str:
    """One-shot form of :meth:`UnitKeyer.key`."""
    return UnitKeyer(spec).key(unit)


# ----------------------------------------------------------------------
# Design-evaluation keys
# ----------------------------------------------------------------------
def space_fingerprint(space) -> dict:
    """Full definition of a :class:`~repro.optimize.space.DesignSpace`:
    parameter names, bounds, defaults, log flags and quantization steps
    (any of which changes what a quantized vector *means*)."""
    return {"parameters": [canonical_payload(p) for p in space.parameters]}


def evaluator_fingerprint(*, space, tech, builder: str,
                          measurements, gain_code, robust) -> dict:
    """The design-invariant context of a
    :class:`~repro.optimize.evaluate.CandidateEvaluator`."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "design-eval",
        "space": space_fingerprint(space),
        "tech": tech_fingerprint(tech),
        "builder": builder,
        "measurements": list(measurements),
        "gain_code": gain_code,
        "robust": canonical_payload(robust) if robust is not None else None,
    }


def design_key(context: dict, x) -> str:
    """Key of one quantized design vector under an evaluator context
    (pass :func:`evaluator_fingerprint` output, or its precomputed
    :func:`canonical_hash`, as ``context``)."""
    base = context if isinstance(context, str) else canonical_hash(context)
    return hashlib.sha256(
        f"{base}|{canonical_json(list(x))}".encode("utf-8")
    ).hexdigest()
