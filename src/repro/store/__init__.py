"""Persistent content-addressed result store (the fourth layer).

Every other cache in the repo dies with its process; this package makes
simulation results survive it.  Records are addressed by deterministic
content hashes of everything they depend on (:mod:`repro.store.keys`)
and kept in an sqlite-indexed, atomically-written on-disk store
(:mod:`repro.store.backend`) that any number of processes can share.

Two workloads ride on it:

* **incremental campaigns** — ``run_campaign(spec, store=store)``
  partitions the expanded units into cached-vs-missing, executes only
  the missing ones (serial or pool) and merges a byte-identical
  :class:`~repro.campaign.result.CampaignResult`; a warm rerun executes
  zero units;
* **resumable optimizer runs** — ``CandidateEvaluator(store=store)``
  consults the store beneath its in-memory memo, so a repeated or
  extended sizing search pays a JSON read, not a Newton solve, for
  every design it has ever measured (in any process).

Quickstart::

    from repro.campaign import CampaignSpec, run_campaign
    from repro.store import ResultStore

    store = ResultStore("results/store")
    spec = CampaignSpec(builder="micamp", seeds=tuple(range(20)),
                        measurements=("offset_v", "psrr_1khz_db"))
    run_campaign(spec, store=store)    # cold: executes 300 units
    run_campaign(spec, store=store)    # warm: executes 0, same bytes

``python -m repro store ls|stat|gc|export`` inspects and maintains a
store; ``benchmarks/bench_store.py`` enforces the >= 10x warm-rerun
floor.
"""

from repro.store.backend import (
    STORE_ENV,
    ResultStore,
    default_store_root,
    open_store,
)
from repro.store.keys import (
    SCHEMA_VERSION,
    UnitKeyer,
    campaign_key,
    canonical_hash,
    canonical_json,
    canonical_payload,
    design_key,
    evaluator_fingerprint,
    spec_fingerprint,
    tech_fingerprint,
    unit_key,
)

__all__ = [
    "SCHEMA_VERSION",
    "STORE_ENV",
    "ResultStore",
    "UnitKeyer",
    "campaign_key",
    "canonical_hash",
    "canonical_json",
    "canonical_payload",
    "default_store_root",
    "design_key",
    "evaluator_fingerprint",
    "open_store",
    "spec_fingerprint",
    "tech_fingerprint",
    "unit_key",
]
