"""Ingest error type: every failure is one line with a deck:line anchor.

The serve layer answers HTTP 400 with the message body and the CLI
prints it after ``error:`` — neither ever shows a traceback — so the
message must carry everything a user needs to fix the deck: the deck
name, the *physical* line number of the offending card (the first line
of a continued card) and a short description.
"""

from __future__ import annotations

import re


def one_line(message: str) -> str:
    """Collapse whitespace so the message survives as a single line."""
    return re.sub(r"\s+", " ", str(message)).strip()


class IngestError(ValueError):
    """A malformed SPICE deck. ``str()`` is ``<deck>:<line>: <message>``."""

    def __init__(self, message: str, *, deck: str = "deck",
                 line: int | None = None):
        self.deck = deck
        self.line = line
        where = f"{deck}:{line}" if line is not None else deck
        super().__init__(f"{where}: {one_line(message)}")
