"""SPICE number literals: engineering suffixes and trailing unit letters.

``270n``, ``540e-9``, ``1meg``, ``4.7k``, ``10pF`` all parse; the scale
suffix is the *first* letters after the mantissa (``meg``/``mil`` checked
before the single-letter scales) and anything after it — ``f`` in
``10pF``, ``ohm`` in ``1kohm`` — is a unit annotation SPICE ignores.
"""

from __future__ import annotations

import re

#: Engineering scale factors, longest-match first (meg before m!).
_SCALES = (
    ("meg", 1e6),
    ("mil", 25.4e-6),
    ("t", 1e12),
    ("g", 1e9),
    ("k", 1e3),
    ("m", 1e-3),
    ("u", 1e-6),
    ("n", 1e-9),
    ("p", 1e-12),
    ("f", 1e-15),
)

_NUMBER_RE = re.compile(
    r"^([+-]?(?:\d+\.?\d*|\.\d+)(?:e[+-]?\d+)?)([a-z]*)$"
)


def parse_number(token: str):
    """``float`` value of a SPICE numeric token, or ``None`` if it isn't one.

    The token must already be lowercase (the lexer lowercases cards).
    """
    m = _NUMBER_RE.match(token)
    if m is None:
        return None
    base, tail = m.groups()
    value = float(base)
    if not tail:
        return value
    for suffix, scale in _SCALES:
        if tail.startswith(suffix):
            return value * scale
    # No scale prefix: the tail is a bare unit annotation ("v", "hz").
    return value
