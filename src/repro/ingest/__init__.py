"""repro.ingest — the SPICE netlist front door.

Compiles external SPICE decks (device cards, ``.SUBCKT`` hierarchy,
``.MODEL`` and ``.PARAM`` cards, engineering suffixes, continuations)
into :class:`repro.spice.netlist.Circuit`, so every downstream layer —
DC/AC/noise analyses, campaigns, the store, the serve API — works on
circuits this package didn't write.  See ``docs/architecture.md`` for
the dataflow and :mod:`repro.ingest.elaborate` for the determinism
contract that makes store keys of ingested decks stable.
"""

from repro.ingest.binding import (
    BoundPorts,
    apply_binding,
    canonical_binding,
    parse_binding,
)
from repro.ingest.elaborate import (
    CompiledDeck,
    canonicalize_deck,
    compile_deck,
    elaborate,
)
from repro.ingest.errors import IngestError
from repro.ingest.parser import Deck, parse_deck

__all__ = [
    "BoundPorts",
    "CompiledDeck",
    "Deck",
    "IngestError",
    "apply_binding",
    "canonical_binding",
    "canonicalize_deck",
    "compile_deck",
    "elaborate",
    "parse_deck",
    "parse_binding",
]
