"""Deck parser: cards -> a :class:`Deck` AST.

The parser is purely structural — it sorts cards into top-level device
cards, ``.subckt`` bodies, ``.model`` definitions and the (eagerly
evaluated, file-ordered) ``.param`` environment.  Device semantics —
node mapping, model resolution, hierarchy flattening — live in
:mod:`repro.ingest.elaborate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ingest.errors import IngestError
from repro.ingest.expressions import eval_value
from repro.ingest.lexer import Card, lex, tokenize
from repro.ingest.models import (
    bjt_model_from_card,
    diode_model_from_card,
    mos_model_from_card,
)

#: Device card letters the elaborator understands.
DEVICE_LETTERS = frozenset("mqdrclviegfhx")

_MODEL_KINDS = ("nmos", "pmos", "npn", "pnp", "d")


@dataclass
class Subckt:
    """A ``.subckt`` definition: ports plus its body cards."""

    name: str
    ports: list[str]
    cards: list[Card] = field(default_factory=list)
    line: int = 0


@dataclass
class Deck:
    """Parsed deck: top-level cards, subcircuits, models, parameters."""

    name: str = "deck"
    cards: list[Card] = field(default_factory=list)
    subckts: dict[str, Subckt] = field(default_factory=dict)
    models: dict[str, object] = field(default_factory=dict)
    params: dict[str, float] = field(default_factory=dict)


def parse_params(tokens: list[str], env: dict, *, deck: str,
                 line: int) -> tuple[list[str], dict[str, float]]:
    """Split a token tail into positional tokens and ``key=value`` params.

    Values are evaluated immediately (numbers, suffixes, expressions
    against ``env``).  ``tc=a,b``-style comma pairs are returned under
    the key with a tuple value.
    """
    positional: list[str] = []
    params: dict = {}
    i = 0
    while i < len(tokens):
        if i + 1 < len(tokens) and tokens[i + 1] == "=":
            if i + 2 >= len(tokens):
                raise IngestError(f"missing value after {tokens[i]!r}=",
                                  deck=deck, line=line)
            key, raw = tokens[i], tokens[i + 2]
            if "," in raw:
                params[key] = tuple(
                    eval_value(part, env, deck=deck, line=line)
                    for part in raw.split(",") if part
                )
            else:
                params[key] = eval_value(raw, env, deck=deck, line=line)
            i += 3
        elif tokens[i] == "=":
            raise IngestError("stray '=' (missing parameter name)",
                              deck=deck, line=line)
        else:
            positional.append(tokens[i])
            i += 1
    return positional, params


def _parse_model_card(card: Card, deck: Deck) -> None:
    # .model <name> <kind> (<params>)  |  .model <name> <kind> <params...>
    tokens = card.tokens[1:]
    if len(tokens) < 2:
        raise IngestError(".model needs a name and a type",
                          deck=deck.name, line=card.line)
    name, kind = tokens[0], tokens[1]
    if kind not in _MODEL_KINDS:
        raise IngestError(f"unsupported .model type {kind!r} "
                          f"(one of {', '.join(_MODEL_KINDS)})",
                          deck=deck.name, line=card.line)
    tail = tokens[2:]
    if len(tail) == 1 and tail[0].startswith("(") and tail[0].endswith(")"):
        tail = tokenize(tail[0][1:-1], deck.name, card.line)
    _, params = parse_params(tail, deck.params, deck=deck.name,
                             line=card.line)
    params.pop("level", None)   # only LEVEL=1-style cards are modelled
    if name in deck.models:
        raise IngestError(f"duplicate .model {name!r}",
                          deck=deck.name, line=card.line)
    if kind in ("nmos", "pmos"):
        deck.models[name] = mos_model_from_card(
            name, kind, params, deck=deck.name, line=card.line)
    elif kind in ("npn", "pnp"):
        deck.models[name] = bjt_model_from_card(
            name, kind, params, deck=deck.name, line=card.line)
    else:
        deck.models[name] = diode_model_from_card(
            name, params, deck=deck.name, line=card.line)


def _parse_param_card(card: Card, deck: Deck) -> None:
    _, params = parse_params(card.tokens[1:], deck.params,
                             deck=deck.name, line=card.line)
    if not params:
        raise IngestError(".param needs name=value assignments",
                          deck=deck.name, line=card.line)
    for key, value in params.items():
        if isinstance(value, tuple):
            raise IngestError(f"parameter {key!r} cannot be a comma list",
                              deck=deck.name, line=card.line)
        deck.params[key] = value


def parse_deck(text: str, name: str = "deck") -> Deck:
    """Parse deck text into a :class:`Deck` (no elaboration yet)."""
    deck = Deck(name=name)
    current: Subckt | None = None
    for card in lex(text, name):
        head = card.tokens[0]
        if head.startswith("."):
            if head == ".subckt":
                if current is not None:
                    raise IngestError(
                        f"nested .subckt (still inside {current.name!r})",
                        deck=name, line=card.line)
                if len(card.tokens) < 2:
                    raise IngestError(".subckt needs a name",
                                      deck=name, line=card.line)
                sub = Subckt(name=card.tokens[1], ports=card.tokens[2:],
                             line=card.line)
                if sub.name in deck.subckts:
                    raise IngestError(f"duplicate .subckt {sub.name!r}",
                                      deck=name, line=card.line)
                deck.subckts[sub.name] = sub
                current = sub
            elif head == ".ends":
                if current is None:
                    raise IngestError(".ends without .subckt",
                                      deck=name, line=card.line)
                if len(card.tokens) > 1 and card.tokens[1] != current.name:
                    raise IngestError(
                        f".ends {card.tokens[1]} does not close "
                        f".subckt {current.name}",
                        deck=name, line=card.line)
                current = None
            elif head == ".model":
                _parse_model_card(card, deck)
            elif head == ".param":
                _parse_param_card(card, deck)
            elif head == ".end":
                break
            else:
                raise IngestError(f"unsupported card {head!r}",
                                  deck=name, line=card.line)
        else:
            if head[0] not in DEVICE_LETTERS:
                raise IngestError(
                    f"unknown device card {head!r} (expected one of "
                    f"{''.join(sorted(DEVICE_LETTERS)).upper()} or a dot card)",
                    deck=name, line=card.line)
            if len(head) < 2:
                raise IngestError(f"device card {head!r} needs a name after "
                                  f"the type letter", deck=name, line=card.line)
            (current.cards if current is not None else deck.cards).append(card)
    if current is not None:
        raise IngestError(f".subckt {current.name!r} is never closed "
                          f"(missing .ends)", deck=name, line=current.line)
    return deck
