"""``.MODEL`` cards -> engine device models, plus builtin fallbacks.

The mapping mirrors :mod:`repro.spice.export` exactly, so an exported
deck re-ingests onto the same model objects: LEVEL=1 MOS cards carry
VTO/KP/GAMMA/PHI/LAMBDA/KF/AF/CGSO/CGDO (``clm = LAMBDA * 5e-6``, the
representative length the exporter divides by), bipolar cards carry
IS/BF/BR/VAF/XTI/EG and diode cards IS/N/XTI/EG.  Parameters the engine
has no use for (TOX, CJ0, RS, ...) are ignored — real foundry decks
carry dozens and erroring on them would make the front door useless.

Decks that name a model without defining it (the OTA/diff-amp/comparator
exemplars use bare ``nmos_rvt`` / ``pmos_rvt``) fall back to a builtin
generic: any undefined MOS model name containing ``nmos`` or ``pmos``
resolves to the corresponding 1.2 um generic device.  The builtin
``clm`` is pre-stabilised under the exporter's ``clm/5e-6`` LAMBDA round
trip so export -> re-ingest reproduces bit-identical MNA stamps.
"""

from __future__ import annotations

from repro.ingest.errors import IngestError
from repro.spice.devices.bjt import BjtModel
from repro.spice.devices.diode import DiodeModel
from repro.spice.devices.mosfet import MosModel

#: Representative channel length the exporter folds into LAMBDA.
_LAMBDA_LREF = 5e-6


def _lambda_stable(clm: float) -> float:
    """Fixed point of ``clm -> (clm / LREF) * LREF`` (export round trip)."""
    for _ in range(4):
        nxt = (clm / _LAMBDA_LREF) * _LAMBDA_LREF
        if nxt == clm:
            break
        clm = nxt
    return clm


def _builtin_mos(name: str) -> MosModel | None:
    """Generic MOS for an undefined model name, by polarity substring."""
    if "pmos" in name:
        return MosModel(name=name, polarity="pmos", kp=30e-6,
                        clm=_lambda_stable(0.06e-6))
    if "nmos" in name:
        return MosModel(name=name, polarity="nmos", kp=90e-6,
                        clm=_lambda_stable(0.06e-6))
    return None


def _num_params(params: dict[str, float], card_params: dict[str, float],
                mapping: dict[str, str]) -> None:
    for spice_key, field in mapping.items():
        if spice_key in card_params:
            params[field] = card_params[spice_key]


def mos_model_from_card(name: str, kind: str, card_params: dict[str, float],
                        *, deck: str, line: int) -> MosModel:
    polarity = "nmos" if kind == "nmos" else "pmos"
    kwargs: dict = {"name": name, "polarity": polarity}
    if polarity == "pmos":
        kwargs["kp"] = 30e-6   # generic PMOS default when the card omits KP
    if "vto" in card_params:
        vto = card_params["vto"]
        kwargs["vth0"] = abs(vto)   # engine stores the magnitude
    if "lambda" in card_params:
        kwargs["clm"] = card_params["lambda"] * _LAMBDA_LREF
    _num_params(kwargs, card_params, {
        "kp": "kp", "gamma": "gamma", "phi": "phi", "kf": "kf",
        "af": "af", "cgso": "cgso", "cgdo": "cgdo",
    })
    try:
        return MosModel(**kwargs)
    except ValueError as exc:
        raise IngestError(f"bad .model {name!r}: {exc}",
                          deck=deck, line=line) from None


def bjt_model_from_card(name: str, kind: str, card_params: dict[str, float],
                        *, deck: str, line: int) -> BjtModel:
    kwargs: dict = {"name": name, "polarity": kind}
    _num_params(kwargs, card_params, {
        "is": "is_sat", "bf": "beta_f", "br": "beta_r", "vaf": "vaf",
        "xti": "xti", "eg": "eg", "kf": "kf", "af": "af",
    })
    try:
        return BjtModel(**kwargs)
    except ValueError as exc:
        raise IngestError(f"bad .model {name!r}: {exc}",
                          deck=deck, line=line) from None


def diode_model_from_card(name: str, card_params: dict[str, float],
                          *, deck: str, line: int) -> DiodeModel:
    kwargs: dict = {"name": name}
    _num_params(kwargs, card_params, {
        "is": "is_sat", "n": "n_ideality", "xti": "xti", "eg": "eg",
        "kf": "kf", "af": "af",
    })
    return DiodeModel(**kwargs)


def resolve_mos_model(name: str, models: dict, *, deck: str,
                      line: int) -> MosModel:
    """A deck-defined MOS model, or the builtin generic fallback."""
    model = models.get(name)
    if model is not None:
        if not isinstance(model, MosModel):
            raise IngestError(f"model {name!r} is not a MOS model",
                              deck=deck, line=line)
        return model
    builtin = _builtin_mos(name)
    if builtin is None:
        raise IngestError(
            f"unknown MOS model {name!r} (no .model card, and the name "
            f"does not contain 'nmos'/'pmos' for the builtin generic)",
            deck=deck, line=line)
    return builtin
