"""Deck lexer: physical lines -> logical cards -> tokens.

SPICE decks are line-oriented with three wrinkles this module absorbs so
the parser sees clean token lists:

* ``+`` in column 1 continues the previous card;
* ``*`` as the first non-blank character comments out the whole line,
  and ``;`` / ``$ `` start inline comments;
* parenthesised groups (``SIN(0 1m 1k)``, ``.model``'s ``(...)`` body),
  ``{...}`` brace expressions and ``'...'`` quoted expressions are each
  one token even when they contain spaces.

SPICE is case-insensitive, so every card is lowercased before
tokenizing; node and element names therefore come out lowercase
(a documented part of the canonical form — see
:mod:`repro.ingest.elaborate`).  Unlike classic SPICE the first line is
*not* swallowed as a title: the decks this front door accepts are
subcircuit libraries whose first line is usually a card or a ``*``
comment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ingest.errors import IngestError


@dataclass
class Card:
    """One logical deck line: its tokens plus the physical line number."""

    line: int                 # physical line of the card's first line (1-based)
    tokens: list[str] = field(default_factory=list)
    text: str = ""            # the assembled logical line, for diagnostics

    @property
    def kind(self) -> str:
        """Leading character (device letter or ``.`` for dot cards)."""
        return self.tokens[0][0] if self.tokens else ""


def _strip_inline_comment(line: str) -> str:
    """Drop ``;`` and ``$ `` inline comments (outside quotes)."""
    out = []
    in_quote = False
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == "'":
            in_quote = not in_quote
        elif not in_quote:
            if ch == ";":
                break
            if ch == "$" and (i + 1 == len(line) or line[i + 1] in " \t"):
                break
        out.append(ch)
        i += 1
    return "".join(out)


def logical_lines(text: str, deck: str = "deck") -> list[tuple[int, str]]:
    """Assemble ``(first_line_no, text)`` logical lines.

    Comments and blanks are removed; ``+`` continuations are joined with
    a single space.  A continuation with nothing to continue is an error.
    """
    lines: list[tuple[int, str]] = []
    for no, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("*"):
            continue
        stripped = _strip_inline_comment(stripped).strip()
        if not stripped:
            continue
        if stripped.startswith("+"):
            if not lines:
                raise IngestError("continuation '+' with no card to continue",
                                  deck=deck, line=no)
            first_no, prev = lines[-1]
            lines[-1] = (first_no, prev + " " + stripped[1:].strip())
        else:
            lines.append((no, stripped))
    return lines


def tokenize(line: str, deck: str = "deck", line_no: int = 0) -> list[str]:
    """Split one logical line into tokens (lowercased).

    Whitespace separates tokens at depth 0; ``=`` is its own token (so
    ``w=270n``, ``w = 270n`` and ``w =270n`` all tokenize identically);
    ``(...)`` / ``{...}`` groups and ``'...'`` quotes are kept as single
    tokens, attached to any prefix they follow (``sin(0 1 1k)``).
    """
    tokens: list[str] = []
    buf: list[str] = []
    depth = 0
    brace = 0
    in_quote = False
    for ch in line.lower():
        if in_quote:
            buf.append(ch)
            if ch == "'":
                in_quote = False
            continue
        if brace:
            buf.append(ch)
            if ch == "{":
                brace += 1
            elif ch == "}":
                brace -= 1
            continue
        if depth:
            buf.append(ch)
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            continue
        if ch == "'":
            in_quote = True
            buf.append(ch)
        elif ch == "{":
            brace = 1
            buf.append(ch)
        elif ch == "(":
            depth = 1
            buf.append(ch)
        elif ch in " \t":
            if buf:
                tokens.append("".join(buf))
                buf = []
        elif ch == "=":
            if buf:
                tokens.append("".join(buf))
                buf = []
            tokens.append("=")
        else:
            buf.append(ch)
    if depth or brace or in_quote:
        what = "parenthesis" if depth else ("brace" if brace else "quote")
        raise IngestError(f"unterminated {what} in {line!r}",
                          deck=deck, line=line_no)
    if buf:
        tokens.append("".join(buf))
    return tokens


def lex(text: str, deck: str = "deck") -> list[Card]:
    """Full lexer pass: deck text to a list of :class:`Card`."""
    cards = []
    for no, line in logical_lines(text, deck):
        tokens = tokenize(line, deck, no)
        if tokens:
            cards.append(Card(line=no, tokens=tokens, text=line))
    return cards
