"""Safe arithmetic for ``.PARAM`` and ``{...}`` / ``'...'`` expressions.

SPICE parameter expressions are plain arithmetic over earlier parameters
(``.param cl=2p  rbig='10k*4'  w={2*wmin}``).  We evaluate them with a
whitelisted ``ast`` walk — names resolve against the parameter
environment, engineering-suffixed literals (``10k``) are rewritten to
plain floats before parsing, and only arithmetic operators plus a small
set of math functions are allowed.  No attribute access, no subscripts,
no calls to anything outside the table: deck text can never execute
code.
"""

from __future__ import annotations

import ast
import math
import re

from repro.ingest.errors import IngestError
from repro.ingest.numbers import parse_number

#: Functions callable from deck expressions.
_FUNCTIONS = {
    "abs": abs,
    "min": min,
    "max": max,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "log10": math.log10,
    "pow": pow,
    "sin": math.sin,
    "cos": math.cos,
    "atan": math.atan,
    "floor": math.floor,
    "ceil": math.ceil,
}

_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.Pow: lambda a, b: a ** b,
    ast.Mod: lambda a, b: a % b,
    ast.FloorDiv: lambda a, b: a // b,
}

#: A numeric literal with an engineering suffix, to rewrite before ast.parse
#: (``10k`` is not valid Python).  Must not touch identifiers (``m1``) —
#: the literal has to *start* with a digit or dot-digit — nor the ``e``
#: of a plain exponent (handled inside the match).
_SUFFIXED = re.compile(
    r"(?<![\w.])((?:\d+\.?\d*|\.\d+)(?:e[+-]?\d+)?[a-z]+)\b"
)


def _rewrite_literals(text: str, deck: str, line: int | None) -> str:
    def repl(m: re.Match) -> str:
        value = parse_number(m.group(1))
        if value is None:
            raise IngestError(f"bad numeric literal {m.group(1)!r}",
                              deck=deck, line=line)
        return repr(value)

    return _SUFFIXED.sub(repl, text)


def _eval_node(node: ast.AST, env: dict, deck: str, line: int | None) -> float:
    if isinstance(node, ast.Expression):
        return _eval_node(node.body, env, deck, line)
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return float(node.value)
    if isinstance(node, ast.Name):
        try:
            return float(env[node.id])
        except KeyError:
            raise IngestError(f"unknown parameter {node.id!r}",
                              deck=deck, line=line) from None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        value = _eval_node(node.operand, env, deck, line)
        return value if isinstance(node.op, ast.UAdd) else -value
    if isinstance(node, ast.BinOp) and type(node.op) in _BINOPS:
        left = _eval_node(node.left, env, deck, line)
        right = _eval_node(node.right, env, deck, line)
        return float(_BINOPS[type(node.op)](left, right))
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in _FUNCTIONS and not node.keywords:
        args = [_eval_node(a, env, deck, line) for a in node.args]
        return float(_FUNCTIONS[node.func.id](*args))
    raise IngestError(f"unsupported expression construct "
                      f"{type(node).__name__}", deck=deck, line=line)


def eval_expr(text: str, env: dict, *, deck: str = "deck",
              line: int | None = None) -> float:
    """Evaluate an expression body (no surrounding braces/quotes)."""
    direct = parse_number(text.strip())
    if direct is not None:
        return direct
    rewritten = _rewrite_literals(text.strip(), deck, line)
    try:
        tree = ast.parse(rewritten, mode="eval")
    except SyntaxError as exc:
        raise IngestError(f"bad expression {text!r}: {exc.msg}",
                          deck=deck, line=line) from None
    try:
        return _eval_node(tree, env, deck, line)
    except (ZeroDivisionError, OverflowError, ValueError) as exc:
        if isinstance(exc, IngestError):
            raise
        raise IngestError(f"expression {text!r} failed: {exc}",
                          deck=deck, line=line) from None


def eval_value(token: str, env: dict, *, deck: str = "deck",
               line: int | None = None) -> float:
    """Evaluate a value token: a number, ``{expr}``, ``'expr'`` or a
    bare parameter/expression reference."""
    value = parse_number(token)
    if value is not None:
        return value
    body = token
    if token.startswith("{") and token.endswith("}"):
        body = token[1:-1]
    elif token.startswith("'") and token.endswith("'"):
        body = token[1:-1]
    return eval_expr(body, env, deck=deck, line=line)
