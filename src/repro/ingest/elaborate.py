"""Elaboration: a parsed :class:`~repro.ingest.parser.Deck` -> ``Circuit``.

Determinism contract (store keys hash the canonical flattened deck, so
two processes ingesting the same text must produce byte-identical
circuits):

* SPICE is case-insensitive; the lexer lowercases every card, so all
  element and node names are lowercase.
* Element names are the full card token (``XM1`` -> ``xm1``); instance
  expansion prefixes child names with the instance path
  (``x1.m1``), depth-first in card order, so element *insertion order*
  — which fixes MNA branch ordering and the exported card order — is a
  pure function of the deck text.
* Node names: the top cell's ports and internal nets keep their local
  names; each nested ``X`` instance maps its subcircuit ports onto the
  parent's nets positionally and prefixes internal nets with
  ``<instance>.``.  ``Circuit.nodes()`` then sorts, so node indexing is
  deterministic too.

Top-cell selection: explicit ``top=`` wins; otherwise top-level device
cards are the top; otherwise a deck that is exactly one ``.subckt``
(the OTA/diff-amp/comparator exemplar shape) elaborates that subcircuit
as the top cell — its ports *and* internal nets (e.g. an undriven bias
net like ``vb1``) stay unprefixed and directly addressable by a port
binding.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.ingest.errors import IngestError
from repro.ingest.expressions import eval_value
from repro.ingest.lexer import Card
from repro.ingest.models import resolve_mos_model
from repro.ingest.numbers import parse_number
from repro.ingest.parser import Deck, Subckt, parse_deck, parse_params
from repro.spice.devices.bjt import BjtModel
from repro.spice.devices.diode import DiodeModel
from repro.spice.elements import Pulse, Pwl, Sine
from repro.spice.netlist import GROUND, Circuit, is_ground

#: Instance-expansion depth guard (also catches A-instantiates-B-instantiates-A).
MAX_DEPTH = 64

#: MOS instance parameters accepted and ignored (layout/parasitic hints).
_MOS_IGNORED = frozenset({"nfin", "ad", "as", "pd", "ps", "nrd", "nrs"})


@dataclass
class CompiledDeck:
    """Result of :func:`compile_deck`: the flat circuit plus provenance."""

    circuit: Circuit
    deck: Deck
    top: str | None

    def canonical(self) -> str:
        """Canonical flattened deck text (the store-key surface)."""
        from repro.spice.export import export_netlist

        return export_netlist(self.circuit, title=self.deck.name)


class _Elaborator:
    def __init__(self, deck: Deck):
        self.deck = deck
        self.circuit = Circuit(name=deck.name)
        self.controls: list[tuple[str, int]] = []

    def fail(self, message: str, line: int) -> IngestError:
        return IngestError(message, deck=self.deck.name, line=line)

    def add(self, factory, card: Card, *args, **kwargs):
        try:
            return factory(*args, **kwargs)
        except (ValueError, KeyError) as exc:
            raise self.fail(str(exc), card.line) from None

    # ------------------------------------------------------------------
    def emit(self, cards: list[Card], prefix: str,
             node_map: dict[str, str], stack: tuple[str, ...]) -> None:
        for card in cards:
            head = card.tokens[0]
            letter = head[0]
            if letter == "x":
                self.emit_x(card, prefix, node_map, stack)
                continue
            handler = getattr(self, f"emit_{letter}", None)
            if handler is None:
                raise self.fail(f"device card {head!r} is not supported",
                                card.line)
            handler(card, prefix, node_map)
        if not stack:
            for control, line in self.controls:
                if control not in self.circuit:
                    raise self.fail(
                        f"controlled source references unknown element "
                        f"{control!r}", line)
                if not self.circuit.element(control).has_branch_current:
                    raise self.fail(
                        f"control element {control!r} carries no branch "
                        f"current (use a voltage source)", line)

    def node(self, token: str, prefix: str, node_map: dict[str, str]) -> str:
        if is_ground(token):
            return GROUND
        mapped = node_map.get(token)
        if mapped is not None:
            return mapped
        return f"{prefix}{token}"

    def split(self, card: Card, n_nodes: int, prefix: str,
              node_map: dict[str, str], *, exact: int | None = None):
        """Card tail -> (mapped nodes, extra positionals, params)."""
        positional, params = parse_params(
            card.tokens[1:], self.deck.params,
            deck=self.deck.name, line=card.line)
        if len(positional) < n_nodes:
            raise self.fail(
                f"{card.tokens[0]!r} needs at least {n_nodes} nodes, "
                f"got {len(positional)}", card.line)
        if exact is not None and len(positional) != exact:
            raise self.fail(
                f"{card.tokens[0]!r} takes {exact} positional fields, "
                f"got {len(positional)}: {card.text!r}", card.line)
        nodes = [self.node(t, prefix, node_map) for t in positional[:n_nodes]]
        return nodes, positional[n_nodes:], params

    def value(self, token: str, line: int) -> float:
        return eval_value(token, self.deck.params,
                          deck=self.deck.name, line=line)

    # -- two-terminal passives -----------------------------------------
    def emit_r(self, card: Card, prefix: str, node_map: dict) -> None:
        nodes, rest, params = self.split(card, 2, prefix, node_map, exact=3)
        tc = params.pop("tc", (0.0, 0.0))
        if not isinstance(tc, tuple):
            tc = (tc, 0.0)
        self.reject_params(card, params)
        self.add(self.circuit.resistor, card, prefix + card.tokens[0],
                 nodes[0], nodes[1], self.value(rest[0], card.line),
                 tc1=tc[0], tc2=(tc[1] if len(tc) > 1 else 0.0))

    def emit_c(self, card: Card, prefix: str, node_map: dict) -> None:
        nodes, rest, params = self.split(card, 2, prefix, node_map, exact=3)
        self.reject_params(card, params)
        self.add(self.circuit.capacitor, card, prefix + card.tokens[0],
                 nodes[0], nodes[1], self.value(rest[0], card.line))

    def emit_l(self, card: Card, prefix: str, node_map: dict) -> None:
        nodes, rest, params = self.split(card, 2, prefix, node_map, exact=3)
        self.reject_params(card, params)
        self.add(self.circuit.inductor, card, prefix + card.tokens[0],
                 nodes[0], nodes[1], self.value(rest[0], card.line))

    # -- independent sources -------------------------------------------
    def parse_source(self, rest: list[str], line: int) -> dict:
        out = {"dc": 0.0, "ac": 0.0, "ac_phase": 0.0, "wave": None}
        i = 0
        seen_any = False
        while i < len(rest):
            tok = rest[i]
            if tok == "dc" and i + 1 < len(rest):
                out["dc"] = self.value(rest[i + 1], line)
                i += 2
            elif tok == "ac" and i + 1 < len(rest):
                out["ac"] = self.value(rest[i + 1], line)
                i += 2
                if i < len(rest) and parse_number(rest[i]) is not None:
                    out["ac_phase"] = parse_number(rest[i])
                    i += 1
            elif tok.startswith("sin(") and tok.endswith(")"):
                out["wave"] = self.parse_sine(tok[4:-1], line)
                i += 1
            elif tok.startswith("pulse(") and tok.endswith(")"):
                out["wave"] = self.parse_pulse(tok[6:-1], line)
                i += 1
            elif tok.startswith("pwl(") and tok.endswith(")"):
                out["wave"] = self.parse_pwl(tok[4:-1], line)
                i += 1
            elif not seen_any and parse_number(tok) is not None:
                out["dc"] = parse_number(tok)
                i += 1
            else:
                raise self.fail(f"bad source field {tok!r}", line)
            seen_any = True
        return out

    def _wave_fields(self, body: str, line: int, what: str,
                     minimum: int) -> list[float]:
        tokens = body.split()
        if len(tokens) < minimum:
            raise self.fail(f"{what} needs at least {minimum} fields", line)
        return [self.value(t, line) for t in tokens]

    def parse_sine(self, body: str, line: int) -> Sine:
        f = self._wave_fields(body, line, "SIN()", 3)
        f += [0.0] * (6 - len(f))
        if f[4] != 0.0:
            raise self.fail("damped SIN() (theta != 0) is not supported", line)
        return Sine(offset=f[0], amplitude=f[1], freq=f[2], delay=f[3],
                    phase=f[5] * math.pi / 180.0)

    def parse_pulse(self, body: str, line: int) -> Pulse:
        f = self._wave_fields(body, line, "PULSE()", 7)
        return Pulse(v1=f[0], v2=f[1], delay=f[2], rise=f[3], fall=f[4],
                     width=f[5], period=f[6])

    def parse_pwl(self, body: str, line: int) -> Pwl:
        f = self._wave_fields(body, line, "PWL()", 2)
        if len(f) % 2:
            raise self.fail("PWL() needs time/value pairs", line)
        return Pwl(times=tuple(f[0::2]), values=tuple(f[1::2]))

    def emit_v(self, card: Card, prefix: str, node_map: dict) -> None:
        nodes, rest, params = self.split(card, 2, prefix, node_map)
        self.reject_params(card, params)
        src = self.parse_source(rest, card.line)
        self.add(self.circuit.vsource, card, prefix + card.tokens[0],
                 nodes[0], nodes[1], **src)

    def emit_i(self, card: Card, prefix: str, node_map: dict) -> None:
        nodes, rest, params = self.split(card, 2, prefix, node_map)
        self.reject_params(card, params)
        src = self.parse_source(rest, card.line)
        self.add(self.circuit.isource, card, prefix + card.tokens[0],
                 nodes[0], nodes[1], **src)

    # -- controlled sources --------------------------------------------
    def emit_e(self, card: Card, prefix: str, node_map: dict) -> None:
        nodes, rest, params = self.split(card, 4, prefix, node_map, exact=5)
        self.reject_params(card, params)
        self.add(self.circuit.vcvs, card, prefix + card.tokens[0],
                 *nodes, self.value(rest[0], card.line))

    def emit_g(self, card: Card, prefix: str, node_map: dict) -> None:
        nodes, rest, params = self.split(card, 4, prefix, node_map, exact=5)
        self.reject_params(card, params)
        self.add(self.circuit.vccs, card, prefix + card.tokens[0],
                 *nodes, self.value(rest[0], card.line))

    def emit_f(self, card: Card, prefix: str, node_map: dict) -> None:
        nodes, rest, params = self.split(card, 2, prefix, node_map, exact=4)
        self.reject_params(card, params)
        control = prefix + rest[0]
        self.controls.append((control, card.line))
        self.add(self.circuit.cccs, card, prefix + card.tokens[0],
                 nodes[0], nodes[1], control=control,
                 gain=self.value(rest[1], card.line))

    def emit_h(self, card: Card, prefix: str, node_map: dict) -> None:
        nodes, rest, params = self.split(card, 2, prefix, node_map, exact=4)
        self.reject_params(card, params)
        control = prefix + rest[0]
        self.controls.append((control, card.line))
        self.add(self.circuit.ccvs, card, prefix + card.tokens[0],
                 nodes[0], nodes[1], control=control,
                 transresistance=self.value(rest[1], card.line))

    # -- devices -------------------------------------------------------
    def _emit_mos(self, card: Card, name: str, nodes: list[str],
                  model_name: str, params: dict) -> None:
        model = resolve_mos_model(model_name, self.deck.models,
                                  deck=self.deck.name, line=card.line)
        w = params.pop("w", None)
        length = params.pop("l", None)
        mult = params.pop("m", 1.0)
        nf = params.pop("nf", 1.0)
        for key in list(params):
            if key in _MOS_IGNORED:
                params.pop(key)
        self.reject_params(card, params)
        kwargs = {"model": model, "m": int(round(mult)) * int(round(nf))}
        if w is not None:
            kwargs["w"] = w
        if length is not None:
            kwargs["l"] = length
        self.add(self.circuit.mosfet, card, name, *nodes, **kwargs)

    def emit_m(self, card: Card, prefix: str, node_map: dict) -> None:
        nodes, rest, params = self.split(card, 4, prefix, node_map, exact=5)
        self._emit_mos(card, prefix + card.tokens[0], nodes, rest[0], params)

    def emit_q(self, card: Card, prefix: str, node_map: dict) -> None:
        nodes, rest, params = self.split(card, 3, prefix, node_map)
        if len(rest) not in (1, 2):
            raise self.fail(f"Q card takes 3 nodes, a model and an "
                            f"optional area: {card.text!r}", card.line)
        self.reject_params(card, params)
        model = self.deck.models.get(rest[0])
        if not isinstance(model, BjtModel):
            raise self.fail(f"unknown BJT model {rest[0]!r}", card.line)
        area = self.value(rest[1], card.line) if len(rest) == 2 else 1.0
        self.add(self.circuit.bjt, card, prefix + card.tokens[0],
                 *nodes, model=model, area=area)

    def emit_d(self, card: Card, prefix: str, node_map: dict) -> None:
        nodes, rest, params = self.split(card, 2, prefix, node_map)
        if len(rest) not in (1, 2):
            raise self.fail(f"D card takes 2 nodes, a model and an "
                            f"optional area: {card.text!r}", card.line)
        self.reject_params(card, params)
        model = self.deck.models.get(rest[0])
        if not isinstance(model, DiodeModel):
            raise self.fail(f"unknown diode model {rest[0]!r}", card.line)
        area = self.value(rest[1], card.line) if len(rest) == 2 else 1.0
        self.add(self.circuit.diode, card, prefix + card.tokens[0],
                 *nodes, model=model, area=area)

    # -- hierarchy -----------------------------------------------------
    def emit_x(self, card: Card, prefix: str, node_map: dict,
               stack: tuple[str, ...]) -> None:
        positional, params = parse_params(
            card.tokens[1:], self.deck.params,
            deck=self.deck.name, line=card.line)
        if not positional:
            raise self.fail("X card needs nodes and a subcircuit/model name",
                            card.line)
        ref = positional[-1]
        sub = self.deck.subckts.get(ref)
        if sub is not None:
            if params:
                raise self.fail(
                    f"subcircuit parameter overrides are not supported "
                    f"(got {sorted(params)!r}); use .param", card.line)
            if len(positional) - 1 != len(sub.ports):
                raise self.fail(
                    f"instance of {ref!r} connects {len(positional) - 1} "
                    f"nodes but the subcircuit has {len(sub.ports)} ports",
                    card.line)
            if ref in stack:
                raise self.fail(f"recursive subcircuit instantiation "
                                f"of {ref!r}", card.line)
            if len(stack) >= MAX_DEPTH:
                raise self.fail(f"subcircuit nesting deeper than "
                                f"{MAX_DEPTH}", card.line)
            inst_prefix = f"{prefix}{card.tokens[0]}."
            child_map = {
                port: self.node(tok, prefix, node_map)
                for port, tok in zip(sub.ports, positional[:-1])
            }
            self.emit(sub.cards, inst_prefix, child_map, stack + (ref,))
            return
        # Not a defined subcircuit: an X card with exactly d/g/s/b nodes
        # and a resolvable MOS model name is a MOS primitive (the
        # exemplar decks' XM1 ... nmos_rvt idiom).
        if len(positional) == 5:
            nodes = [self.node(t, prefix, node_map) for t in positional[:4]]
            self._emit_mos(card, prefix + card.tokens[0], nodes, ref,
                           dict(params))
            return
        known = sorted(self.deck.subckts)
        hint = f"; defined subcircuits: {known}" if known else ""
        raise self.fail(f"unknown subcircuit {ref!r}{hint}", card.line)

    def reject_params(self, card: Card, params: dict) -> None:
        if params:
            raise self.fail(
                f"unsupported parameter(s) {sorted(params)} on "
                f"{card.tokens[0]!r}", card.line)


def _pick_top(deck: Deck, top: str | None) -> tuple[list[Card], str | None]:
    if top is not None:
        sub = deck.subckts.get(top)
        if sub is None:
            raise IngestError(
                f"no .subckt named {top!r}; defined: {sorted(deck.subckts)}",
                deck=deck.name)
        return sub.cards, top
    if deck.cards:
        return deck.cards, None
    if len(deck.subckts) == 1:
        name = next(iter(deck.subckts))
        return deck.subckts[name].cards, name
    if deck.subckts:
        raise IngestError(
            f"deck has no top-level cards and several subcircuits; "
            f"pick one with top=: {sorted(deck.subckts)}", deck=deck.name)
    raise IngestError("deck has no device cards", deck=deck.name)


def elaborate(deck: Deck, top: str | None = None) -> CompiledDeck:
    """Flatten a parsed deck into a :class:`Circuit`."""
    cards, picked = _pick_top(deck, top)
    elab = _Elaborator(deck)
    elab.emit(cards, "", {}, ())
    if not len(elab.circuit):
        raise IngestError("deck elaborated to an empty circuit",
                          deck=deck.name)
    return CompiledDeck(circuit=elab.circuit, deck=deck, top=picked)


def compile_deck(text: str, name: str = "deck",
                 top: str | None = None) -> CompiledDeck:
    """Parse + elaborate deck text in one call."""
    return elaborate(parse_deck(text, name), top=top)


def canonicalize_deck(text: str, name: str = "deck",
                      top: str | None = None) -> str:
    """Canonical flattened deck for store keys: whitespace, comments,
    card order of semantically identical decks all normalise away."""
    return compile_deck(text, name, top).canonical()
