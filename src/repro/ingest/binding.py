"""Port binding: how a bare ingested circuit becomes a measurable unit.

The exemplar decks (and any netlist a user POSTs) are *unpowered*
subcircuits — no supplies, no stimulus, no designated outputs.  A
binding spec is a small JSON object that closes that gap against the
flattened top cell::

    {"ports":   {"vdd":  {"dc": 1.2},
                 "vss":  {"dc": 0.0},
                 "vin+": {"dc": 0.6, "ac": 1.0},
                 "vb1":  {"dc": 0.7}},
     "outputs": ["vout"],              // or ["outp", "outn"]
     "supply":  "vdd",                 // port whose source carries I_Q
     "loads":   {"vout": 1e-12},       // node: capacitance to ground
     "nodesets": {"vout": 0.6}}        // optional DC initial guesses

Every entry in ``ports`` grounds a voltage source on that net (named
``bind.<port>``); ``supply`` names which of them the campaign's supply
axis overrides and ``iq_ma`` measures.  Names resolve against the
flattened top cell, so a subcircuit-internal net like the OTA's ``vb1``
bias gate is directly bindable.  Binding mutates a circuit in place —
apply it to a freshly compiled deck.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.ingest.errors import IngestError, one_line
from repro.spice.netlist import GROUND, Circuit, is_ground

_BINDING_KEYS = ("ports", "outputs", "supply", "loads", "nodesets")
_PORT_KEYS = ("dc", "ac", "ac_phase")


@dataclass
class BoundPorts:
    """What :func:`apply_binding` wired up, in BuiltUnit vocabulary."""

    out_p: str
    out_n: str
    supply_source: str | None
    input_sources: tuple[str, ...] = ()
    source_names: tuple[str, ...] = field(default=())


def _fail(message: str) -> IngestError:
    return IngestError(one_line(message), deck="binding")


def parse_binding(text_or_obj) -> dict:
    """Validate a binding spec (JSON text or already-decoded object)."""
    if isinstance(text_or_obj, str):
        try:
            obj = json.loads(text_or_obj)
        except json.JSONDecodeError as exc:
            raise _fail(f"not valid JSON: {exc}") from None
    else:
        obj = text_or_obj
    if not isinstance(obj, dict):
        raise _fail(f"must be a JSON object, got {type(obj).__name__}")
    unknown = sorted(set(obj) - set(_BINDING_KEYS))
    if unknown:
        raise _fail(f"unknown key(s) {unknown}; allowed: "
                    f"{sorted(_BINDING_KEYS)}")
    ports = obj.get("ports", {})
    if not isinstance(ports, dict):
        raise _fail("'ports' must be an object")
    for port, drive in ports.items():
        if not isinstance(drive, dict):
            raise _fail(f"port {port!r} must map to an object "
                        f"like {{'dc': 1.2}}")
        bad = sorted(set(drive) - set(_PORT_KEYS))
        if bad:
            raise _fail(f"port {port!r}: unknown key(s) {bad}; "
                        f"allowed: {sorted(_PORT_KEYS)}")
        for key, value in drive.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise _fail(f"port {port!r}: {key} must be a number")
    outputs = obj.get("outputs", [])
    if not isinstance(outputs, list) or \
            not all(isinstance(o, str) for o in outputs):
        raise _fail("'outputs' must be an array of node names")
    if len(outputs) > 2:
        raise _fail(f"'outputs' takes one (single-ended) or two "
                    f"(differential) nodes, got {len(outputs)}")
    supply = obj.get("supply")
    if supply is not None:
        if not isinstance(supply, str):
            raise _fail("'supply' must be a port name")
        if supply not in ports:
            raise _fail(f"supply port {supply!r} is not in 'ports'")
    for key in ("loads", "nodesets"):
        table = obj.get(key, {})
        if not isinstance(table, dict):
            raise _fail(f"{key!r} must be an object")
        for node, value in table.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise _fail(f"{key}[{node!r}] must be a number")
    return obj


def canonical_binding(text_or_obj) -> str:
    """Canonical JSON for the binding (sorted keys, compact) — the form
    that enters ``builder_kwargs`` and hence the store keys."""
    return json.dumps(parse_binding(text_or_obj), sort_keys=True,
                      separators=(",", ":"))


def apply_binding(circuit: Circuit, binding, *,
                  supply: float | None = None) -> BoundPorts:
    """Wire a validated binding into ``circuit`` (mutates it).

    ``supply`` (the campaign supply-axis value) overrides the DC of the
    supply port's source when given; the binding must then name a
    ``supply`` port.
    """
    obj = parse_binding(binding)
    known = set(circuit.nodes())
    ports = obj.get("ports", {})

    def check_node(node: str, what: str) -> str:
        node = node.lower()
        if is_ground(node):
            return GROUND
        if node not in known:
            raise _fail(f"{what} {node!r} is not a node of the flattened "
                        f"circuit (has {len(known)} nodes)")
        return node

    supply_port = obj.get("supply")
    if supply is not None and supply_port is None:
        raise _fail("a campaign supply value was given but the binding "
                    "names no 'supply' port")
    sources: list[str] = []
    input_sources: list[str] = []
    supply_source = None
    for port in ports:   # JSON object order = user order, deterministic
        drive = ports[port]
        node = check_node(port, "bound port")
        name = f"bind.{port.lower()}"
        dc = float(drive.get("dc", 0.0))
        if port == supply_port and supply is not None:
            dc = float(supply)
        src = circuit.vsource(name, node, GROUND, dc=dc,
                              ac=float(drive.get("ac", 0.0)),
                              ac_phase=float(drive.get("ac_phase", 0.0)))
        sources.append(src.name)
        if src.ac:
            input_sources.append(src.name)
        if port == supply_port:
            supply_source = src.name
    for node, cap in obj.get("loads", {}).items():
        target = check_node(node, "load node")
        circuit.capacitor(f"bind.load.{node.lower()}", target, GROUND,
                          float(cap))
    for node, volts in obj.get("nodesets", {}).items():
        circuit.nodeset(check_node(node, "nodeset node"), float(volts))

    outputs = [check_node(o, "output") for o in obj.get("outputs", [])]
    if not outputs:
        raise _fail("binding must name at least one output node")
    out_p = outputs[0]
    out_n = outputs[1] if len(outputs) == 2 else GROUND
    return BoundPorts(out_p=out_p, out_n=out_n,
                      supply_source=supply_source,
                      input_sources=tuple(input_sources),
                      source_names=tuple(sources))
