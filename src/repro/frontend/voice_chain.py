"""End-to-end voice transmit chain (the paper's Fig. 1).

microphone signal -> programmable-gain amplifier (gain + measured
input-referred noise) -> sigma-delta modulator -> sinc^3 decimator ->
psophometric S/N.

The PGA is represented behaviourally by its *measured* properties (gain
per code, input-referred noise spectrum from the adjoint analysis), so a
full-chain run costs milliseconds while remaining anchored to the
transistor-level results — this is the experiment that closes Eq. 2:
with the microphone amplifier at 40 dB and its ~5 nV/rtHz noise, the
14-bit modulator budget still holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.psophometric import psophometric_weight
from repro.frontend.decimator import decimated_snr, sinc3_decimate
from repro.frontend.sigma_delta import SigmaDeltaModulator
from repro.pga.gain_control import GainControl


def synthesize_noise(
    freqs: np.ndarray,
    psd: np.ndarray,
    n_samples: int,
    f_sample: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Time-domain noise with a target one-sided PSD [V^2/Hz].

    Frequency-domain shaping of white Gaussian noise; the PSD is
    log-log-interpolated onto the FFT grid and extended flat beyond the
    measured range.
    """
    n_freq = n_samples // 2 + 1
    grid = np.fft.rfftfreq(n_samples, 1.0 / f_sample)
    log_psd = np.interp(
        np.log10(np.maximum(grid, freqs[0])),
        np.log10(freqs),
        np.log10(np.maximum(psd, 1e-40)),
    )
    shaped = 10.0 ** (log_psd / 2.0)  # amplitude shaping
    white = rng.normal(0.0, 1.0, n_freq) + 1j * rng.normal(0.0, 1.0, n_freq)
    white[0] = 0.0
    spectrum = white * shaped * np.sqrt(f_sample * n_samples / 4.0)
    return np.fft.irfft(spectrum, n_samples)


@dataclass
class VoiceChainResult:
    """Outcome of one chain simulation."""

    gain_db: float
    signal_in_rms: float
    signal_at_modulator_rms: float
    snr_db: float
    snr_psophometric_db: float
    clipped: bool


@dataclass
class VoiceChain:
    """Behavioural Fig. 1 transmit path."""

    gain: GainControl = field(default_factory=GainControl)
    modulator: SigmaDeltaModulator = field(default_factory=SigmaDeltaModulator)
    osr: int = 128
    f_voice: float = 8e3            # PCM rate
    modulator_full_scale_rms: float = 0.6

    @property
    def f_sample(self) -> float:
        return self.osr * self.f_voice

    def run(
        self,
        code: int,
        mic_rms: float,
        noise_freqs: np.ndarray | None = None,
        noise_psd: np.ndarray | None = None,
        f_tone: float = 1020.0,
        duration: float = 0.25,
        seed: int = 7,
    ) -> VoiceChainResult:
        """Simulate a test tone of ``mic_rms`` volts through the chain.

        ``noise_psd`` is the PGA's *input-referred* noise (V^2/Hz at
        ``noise_freqs``); omit both for a noiseless reference run.
        """
        rng = np.random.default_rng(seed)
        n = int(duration * self.f_sample)
        n = 1 << int(np.ceil(np.log2(max(n, 1 << 14))))
        t = np.arange(n) / self.f_sample

        # Coherent tone placement for clean FFT bins.
        bins = max(3, int(round(f_tone * n / self.f_sample)))
        f_actual = bins * self.f_sample / n

        gain_lin = self.gain.gain_linear(code)
        signal = mic_rms * np.sqrt(2.0) * np.sin(2 * np.pi * f_actual * t)
        if noise_psd is not None:
            if noise_freqs is None:
                raise ValueError("noise_psd requires noise_freqs")
            signal = signal + synthesize_noise(
                np.asarray(noise_freqs), np.asarray(noise_psd), n, self.f_sample, rng
            )
        at_mod = gain_lin * signal

        # Scale to the modulator's +/-1 internal full scale.
        fs_peak = self.modulator_full_scale_rms * np.sqrt(2.0)
        x = at_mod / fs_peak * self.modulator.full_scale
        clipped = bool(np.max(np.abs(x)) > 0.98 * self.modulator.full_scale)
        x = np.clip(x, -0.98 * self.modulator.full_scale, 0.98 * self.modulator.full_scale)

        bits = self.modulator.run(x)
        pcm = sinc3_decimate(bits, self.osr)
        snr = decimated_snr(pcm, f_actual, self.f_voice)
        snr_psoph = self._psophometric_snr(pcm, f_actual)

        return VoiceChainResult(
            gain_db=self.gain.gain_db(code),
            signal_in_rms=mic_rms,
            signal_at_modulator_rms=gain_lin * mic_rms,
            snr_db=snr,
            snr_psophometric_db=snr_psoph,
            clipped=clipped,
        )

    def _psophometric_snr(self, pcm: np.ndarray, f_tone: float) -> float:
        return decimated_snr(
            pcm, f_tone, self.f_voice, band=(100.0, 3800.0),
            weights=psophometric_weight,
        )

    def sweep_codes(
        self,
        mic_rms: float,
        noise_freqs: np.ndarray | None = None,
        noise_psd: np.ndarray | None = None,
    ) -> list[VoiceChainResult]:
        """The hands-free story: one acoustic level, all gain codes."""
        return [
            self.run(code, mic_rms, noise_freqs, noise_psd)
            for code in range(self.gain.num_codes)
        ]
