"""Behavioural second-order sigma-delta modulator.

The paper's front-end feeds a sigma-delta A/D ("to be able to provide
appropriate signal levels for optimum usage of a sigma-delta A/D
converter's dynamic range"); reference [1] is the 13-bit voice CODEC the
blocks were built for.  This behavioural model closes the Eq. 2 loop:
the microphone amplifier's measured noise plus this modulator must still
deliver ~14-bit voice-band performance.

Discrete-time CIFB structure with half-delay-free integrators:

    w1[n] = w1[n-1] + b1*(x[n] - y[n-1])
    w2[n] = w2[n-1] + c1*w1[n-1] - a2*y[n-1]
    y[n]  = sign(w2[n])

Coefficients follow the classic Boser-Wooley scaling (0.5/0.5) so the
integrator states stay bounded for inputs up to ~-2 dBFS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SigmaDeltaModulator:
    """A 1-bit, second-order modulator."""

    full_scale: float = 1.0     # quantizer output levels are +/- full_scale
    b1: float = 0.5
    c1: float = 0.5
    stability_limit: float = 10.0

    def run(self, x: np.ndarray) -> np.ndarray:
        """Modulate an input sequence (same rate) into a +/-FS bitstream."""
        x = np.asarray(x, dtype=float)
        if np.max(np.abs(x)) > self.full_scale:
            raise ValueError(
                f"input peak {np.max(np.abs(x)):.3g} exceeds modulator full "
                f"scale {self.full_scale:.3g}; scale the signal first"
            )
        y = np.empty_like(x)
        w1 = 0.0
        w2 = 0.0
        fb = self.full_scale
        prev_y = fb
        limit = self.stability_limit * self.full_scale
        for n in range(len(x)):
            w1 = w1 + self.b1 * (x[n] - prev_y)
            w2 = w2 + self.c1 * (w1 - prev_y)
            if abs(w1) > limit or abs(w2) > limit:
                # Integrator clipping (overload recovery), like the real part.
                w1 = float(np.clip(w1, -limit, limit))
                w2 = float(np.clip(w2, -limit, limit))
            prev_y = fb if w2 >= 0.0 else -fb
            y[n] = prev_y
        return y


def _band_power(spectrum: np.ndarray, freqs: np.ndarray, f_lo: float, f_hi: float,
                exclude: tuple[float, float] | None = None) -> float:
    mask = (freqs >= f_lo) & (freqs <= f_hi)
    if exclude is not None:
        mask &= ~((freqs >= exclude[0]) & (freqs <= exclude[1]))
    return float(np.sum(spectrum[mask]))


def sigma_delta_snr(
    modulator: SigmaDeltaModulator,
    amplitude: float,
    f_signal: float,
    f_sample: float,
    band: tuple[float, float] = (300.0, 3400.0),
    n_samples: int = 1 << 16,
    seed: int | None = 12345,
) -> float:
    """In-band SNR [dB] of the modulator for a sine input.

    Coherent windowed FFT of the bitstream; the signal bin (+/-2 bins) is
    the signal, everything else in ``band`` is noise+distortion.  A tiny
    dither decorrelates idle tones, as the real front-end's thermal noise
    would.
    """
    n = n_samples
    cycles = max(3, int(round(f_signal / f_sample * n)))
    f_actual = cycles * f_sample / n  # coherent bin
    t = np.arange(n) / f_sample
    x = amplitude * np.sin(2 * np.pi * f_actual * t)
    if seed is not None:
        rng = np.random.default_rng(seed)
        x = x + rng.normal(0.0, 1e-5 * modulator.full_scale, n)
    bits = modulator.run(x)

    win = np.hanning(n)
    spec = np.abs(np.fft.rfft(bits * win)) ** 2
    freqs = np.fft.rfftfreq(n, 1.0 / f_sample)
    bin_width = freqs[1] - freqs[0]
    sig = _band_power(spec, freqs, f_actual - 3 * bin_width, f_actual + 3 * bin_width)
    noise = _band_power(
        spec, freqs, band[0], band[1],
        exclude=(f_actual - 3 * bin_width, f_actual + 3 * bin_width),
    )
    if noise <= 0.0:
        raise ValueError("no in-band noise measured; lengthen the run")
    return 10.0 * float(np.log10(sig / noise))
