"""Sinc^3 decimation filter for the sigma-delta bitstream.

A third-order comb is the textbook partner of a second-order modulator
(comb order = modulator order + 1); it turns the +/-1 bitstream into
voice-rate PCM words, completing the Fig. 1 receive path.
"""

from __future__ import annotations

import numpy as np


def sinc3_kernel(osr: int) -> np.ndarray:
    """Impulse response of a cascade of three boxcars of length ``osr``."""
    if osr < 2:
        raise ValueError("oversampling ratio must be >= 2")
    box = np.ones(osr) / osr
    k = np.convolve(np.convolve(box, box), box)
    return k


def sinc3_decimate(bitstream: np.ndarray, osr: int) -> np.ndarray:
    """Filter and downsample a bitstream by ``osr``."""
    kernel = sinc3_kernel(osr)
    filtered = np.convolve(np.asarray(bitstream, dtype=float), kernel, mode="valid")
    return filtered[::osr]


def blackman_harris(n: int) -> np.ndarray:
    """4-term Blackman-Harris window (-92 dB sidelobes).

    After decimation the test tone is generally *not* coherent with the
    shortened PCM record, so a Hann window's -32 dB/oct skirt would leak
    tone energy across the whole voice band and dominate the noise
    estimate; BH4's skirts sit below the modulator's own floor.
    """
    k = np.arange(n)
    a = (0.35875, 0.48829, 0.14128, 0.01168)
    return (a[0]
            - a[1] * np.cos(2 * np.pi * k / (n - 1))
            + a[2] * np.cos(4 * np.pi * k / (n - 1))
            - a[3] * np.cos(6 * np.pi * k / (n - 1)))


def decimated_snr(
    pcm: np.ndarray,
    f_signal: float,
    f_rate: float,
    band: tuple[float, float] = (300.0, 3400.0),
    weights=None,
) -> float:
    """In-band SNR [dB] of decimated PCM with a known test tone.

    ``weights`` optionally maps the frequency grid to a voltage weighting
    (e.g. the psophometric curve) applied to the noise only.
    """
    n = len(pcm)
    win = blackman_harris(n)
    spec = np.abs(np.fft.rfft((pcm - pcm.mean()) * win)) ** 2
    freqs = np.fft.rfftfreq(n, 1.0 / f_rate)
    bw = freqs[1] - freqs[0]
    # BH4 main lobe is 8 bins wide; exclude it fully around the tone.
    sig_mask = np.abs(freqs - f_signal) <= 5 * bw
    band_mask = (freqs >= band[0]) & (freqs <= band[1]) & ~sig_mask
    sig = float(np.sum(spec[sig_mask]))
    noise_spec = spec
    if weights is not None:
        w = np.asarray(weights(freqs), dtype=float)
        noise_spec = spec * w**2
    noise = float(np.sum(noise_spec[band_mask]))
    if noise <= 0.0:
        raise ValueError("no in-band noise; lengthen the capture")
    return 10.0 * float(np.log10(sig / noise))
