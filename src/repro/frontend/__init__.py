"""System context (the paper's Fig. 1): behavioural sigma-delta voice chain."""

from repro.frontend.sigma_delta import SigmaDeltaModulator, sigma_delta_snr
from repro.frontend.decimator import sinc3_decimate
from repro.frontend.receive_path import ReceivePath
from repro.frontend.voice_chain import VoiceChain, VoiceChainResult

__all__ = [
    "ReceivePath",
    "SigmaDeltaModulator",
    "VoiceChain",
    "VoiceChainResult",
    "sigma_delta_snr",
    "sinc3_decimate",
]
