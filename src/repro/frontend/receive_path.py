"""The Fig. 1 receive path: PCM -> D/A -> reconstruction -> power buffer.

The block diagram's right half: voice samples return from the digital
network, a (behavioural) oversampling D/A turns them back into a
1-bit-coded analogue signal, an RC reconstruction filter smooths it and
the Fig. 8 class-AB buffer drives the earpiece/line.  The buffer is
represented by its *measured* static transfer curve, so the path's
distortion and level budget track the transistor-level results without a
transient run per audio block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.distortion import StaticTransfer, measure_static_transfer
from repro.circuits.powerbuffer import build_power_buffer
from repro.frontend.decimator import decimated_snr
from repro.process.technology import Technology


def upsample_hold(pcm: np.ndarray, osr: int) -> np.ndarray:
    """Zero-order-hold interpolation (the simplest voice-band D/A)."""
    if osr < 1:
        raise ValueError("oversampling ratio must be >= 1")
    return np.repeat(np.asarray(pcm, dtype=float), osr)


def rc_reconstruct(x: np.ndarray, f_sample: float, f_cut: float) -> np.ndarray:
    """Single-pole RC smoothing of the held staircase."""
    if f_cut <= 0.0 or f_sample <= 0.0:
        raise ValueError("cut-off and sample rate must be positive")
    alpha = 1.0 - np.exp(-2.0 * np.pi * f_cut / f_sample)
    y = np.empty_like(x)
    state = x[0]
    for k, v in enumerate(x):
        state += alpha * (v - state)
        y[k] = state
    return y


@dataclass
class ReceivePath:
    """Behavioural D/A + reconstruction + measured-buffer output stage."""

    tech: Technology
    osr: int = 32
    f_voice: float = 8e3
    f_cut: float = 3.6e3
    supply_total: float = 3.0
    _transfer: StaticTransfer | None = field(default=None, repr=False)

    @property
    def f_sample(self) -> float:
        return self.osr * self.f_voice

    def buffer_transfer(self) -> StaticTransfer:
        """Static transfer of the Fig. 9 inverting buffer (cached)."""
        if self._transfer is None:
            half = self.supply_total / 2.0
            design = build_power_buffer(
                self.tech, feedback="inverting", load="resistive",
                vdd=half, vss=-half,
            )
            self._transfer = measure_static_transfer(
                design.circuit, "vsrc_p", "vsrc_n", "outp", "outn",
                amplitude=0.8 * self.supply_total, points=41,
            )
        return self._transfer

    def run(self, pcm: np.ndarray) -> np.ndarray:
        """PCM words [V] -> line-driver differential output [V].

        The hold images at k*f_voice +/- f_tone would sail through a
        single-pole RC (a 7 kHz image only drops ~6 dB), so the D/A
        interpolates with a sinc^3 comb first — the transmit-side mirror
        of the decimator, with nulls exactly on the image frequencies.
        """
        from repro.frontend.decimator import sinc3_kernel

        held = upsample_hold(pcm, self.osr)
        interpolated = np.convolve(held, sinc3_kernel(self.osr), mode="same")
        smooth = rc_reconstruct(interpolated, self.f_sample, self.f_cut)
        transfer = self.buffer_transfer()
        lim = 0.98 * float(np.max(np.abs(transfer.vin)))
        return transfer.apply(np.clip(smooth, -lim, lim))

    def tone_metrics(self, amplitude: float, f_tone: float = 1e3,
                     n_samples: int = 4096) -> dict[str, float]:
        """Drive a voice-band tone through the path; report level/THD/SNR.

        ``amplitude`` is the PCM tone amplitude in volts (differential at
        the buffer input; gain is -1)."""
        n = n_samples
        bins = max(2, int(round(f_tone * n / self.f_voice)))
        f_actual = bins * self.f_voice / n
        t = np.arange(n) / self.f_voice
        pcm = amplitude * np.sin(2 * np.pi * f_actual * t)
        out = self.run(pcm)
        # analyse at the oversampled rate on the last half (settled)
        from repro.spice.waveform import Waveform

        tt = np.arange(len(out)) / self.f_sample
        wave = Waveform(tt, out)
        seg = wave.slice_time(tt[-1] / 2, tt[-1])
        fund = abs(seg.fourier_component(f_actual))
        thd = seg.thd(f_actual, 7)
        pcm_down = out[:: self.osr]
        snr = decimated_snr(pcm_down, f_actual, self.f_voice)
        return {
            "fundamental_vp": fund,
            "thd_pct": thd * 100.0,
            "snr_db": snr,
            "f_tone": f_actual,
        }
