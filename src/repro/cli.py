"""Command-line interface: ``python -m repro <command>``.

Gives the reproduction a bench-style front door:

* ``table1`` / ``table2``     — run the full characterisation and print
  the paper-vs-measured spec report;
* ``noise``                   — Fig. 7 noise spectrum at a gain code;
* ``gains``                   — Fig. 5 per-code gain table;
* ``opamp``                   — the modulator opamp's figures of merit;
* ``export <block> <file>``   — write a block's SPICE deck for
  cross-checking with an external simulator.
"""

from __future__ import annotations

import argparse
import sys

from repro.process import CMOS12


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.pga.characterize import CharacterizationOptions, characterize_mic_amp
    from repro.pga.specs import MIC_AMP_SPEC

    measured = characterize_mic_amp(
        CMOS12, CharacterizationOptions(quick=args.quick)
    )
    report = MIC_AMP_SPEC.check(measured)
    print(report.format())
    return 0 if report.passed else 1


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.pga.characterize import (
        CharacterizationOptions,
        characterize_power_buffer,
    )
    from repro.pga.specs import POWER_BUFFER_SPEC

    measured = characterize_power_buffer(
        CMOS12, CharacterizationOptions(quick=args.quick)
    )
    report = POWER_BUFFER_SPEC.check(measured)
    print(report.format())
    return 0 if report.passed else 1


def _cmd_noise(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.circuits.micamp import build_mic_amp
    from repro.spice.analysis import log_freqs
    from repro.spice.dc import dc_operating_point
    from repro.spice.noise import noise_analysis

    design = build_mic_amp(CMOS12, gain_code=args.code)
    op = dc_operating_point(design.circuit)
    freqs = log_freqs(10, 100e3, 10)
    nr = noise_analysis(op, freqs, design.outp, design.outn)
    print(f"input-referred noise at gain code {args.code} "
          f"({design.gain.gain_db(args.code):.0f} dB):")
    for f, nv in zip(freqs, nr.input_nv()):
        print(f"  {f:10.1f} Hz   {nv:7.2f} nV/rtHz")
    avg = nr.average_input_density(300, 3400) * 1e9
    print(f"voice-band average: {avg:.2f} nV/rtHz (paper: 5.1 at 40 dB)")
    _ = np
    return 0


def _cmd_gains(args: argparse.Namespace) -> int:
    from repro.analysis.gain import measure_gain_codes
    from repro.circuits.micamp import build_mic_amp

    design = build_mic_amp(CMOS12, gain_code=5)
    gm = measure_gain_codes(design)
    print(gm.format())
    print(f"worst absolute error: {gm.worst_error_db:.4f} dB "
          f"(paper: <= 0.05)")
    return 0


def _cmd_opamp(args: argparse.Namespace) -> int:
    from repro.circuits.opamp import characterize_modulator_opamp

    result = characterize_modulator_opamp(CMOS12)
    print("modulator opamp (Sec. 2.2, class A output, ~150 uA):")
    print(f"  I_Q          {result['iq_ua']:7.1f} uA")
    print(f"  DC gain      {result['dc_gain_db']:7.1f} dB")
    print(f"  GBW          {result['gbw_hz'] / 1e6:7.2f} MHz")
    print(f"  phase margin {result['phase_margin_deg']:7.1f} deg")
    return 0


_BLOCKS = ("micamp", "powerbuffer", "bandgap", "bias", "opamp")


def _build_block(name: str):
    if name == "micamp":
        from repro.circuits.micamp import build_mic_amp

        return build_mic_amp(CMOS12, gain_code=5).circuit
    if name == "powerbuffer":
        from repro.circuits.powerbuffer import build_power_buffer

        return build_power_buffer(CMOS12, feedback="inverting",
                                  load="resistive").circuit
    if name == "bandgap":
        from repro.circuits.bandgap import build_bandgap

        return build_bandgap(CMOS12, r2_trim=1.2).circuit
    if name == "bias":
        from repro.circuits.bias import build_bias_circuit

        return build_bias_circuit(CMOS12).circuit
    if name == "opamp":
        from repro.circuits.opamp import build_modulator_opamp

        return build_modulator_opamp(CMOS12).circuit
    raise ValueError(f"unknown block {name!r}; choose from {_BLOCKS}")


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.spice.export import export_netlist

    circuit = _build_block(args.block)
    deck = export_netlist(circuit)
    if args.output == "-":
        sys.stdout.write(deck)
    else:
        with open(args.output, "w") as fh:
            fh.write(deck)
        print(f"wrote {args.output} ({len(deck.splitlines())} lines)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the 1995 low-voltage FD PGA paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", help="characterise the microphone amplifier")
    p1.add_argument("--quick", action="store_true")
    p1.set_defaults(func=_cmd_table1)

    p2 = sub.add_parser("table2", help="characterise the power buffer")
    p2.add_argument("--quick", action="store_true")
    p2.set_defaults(func=_cmd_table2)

    pn = sub.add_parser("noise", help="Fig. 7 noise spectrum")
    pn.add_argument("--code", type=int, default=5, choices=range(6))
    pn.set_defaults(func=_cmd_noise)

    pg = sub.add_parser("gains", help="Fig. 5 gain table")
    pg.set_defaults(func=_cmd_gains)

    po = sub.add_parser("opamp", help="modulator opamp figures of merit")
    po.set_defaults(func=_cmd_opamp)

    pe = sub.add_parser("export", help="write a block's SPICE deck")
    pe.add_argument("block", choices=_BLOCKS)
    pe.add_argument("output", help="output file, or - for stdout")
    pe.set_defaults(func=_cmd_export)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
