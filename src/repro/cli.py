"""Command-line interface: ``python -m repro <command>``.

Gives the reproduction a bench-style front door:

* ``table1`` / ``table2``     — run the full characterisation and print
  the paper-vs-measured spec report;
* ``noise``                   — Fig. 7 noise spectrum at a gain code;
* ``gains``                   — Fig. 5 per-code gain table;
* ``opamp``                   — the modulator opamp's figures of merit;
* ``campaign``                — declarative PVT x mismatch x gain-code
  characterization sweeps through :mod:`repro.campaign`, with optional
  parallel execution, CSV/JSON export, ``--store``-backed incremental
  reruns and ``--spec FILE`` request files (the serve-layer schema);
* ``store ls|stat|gc|export`` — inspect and maintain a persistent
  result store (:mod:`repro.store`);
* ``serve``                   — run the characterization service
  (:mod:`repro.serve`): HTTP/JSON job submission, request coalescing,
  store-backed warm hits;
* ``client``                  — submit/poll/fetch against a running
  ``repro serve`` endpoint;
* ``ingest <deck>``           — compile an external SPICE netlist
  (:mod:`repro.ingest`): validate, flatten, DC/AC analyses via a
  port-binding file;
* ``export <block> <file>``   — write a block's SPICE deck for
  cross-checking with an external simulator.
"""

from __future__ import annotations

import argparse
import sys

from repro.process import CMOS12


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.pga.characterize import CharacterizationOptions, characterize_mic_amp
    from repro.pga.specs import MIC_AMP_SPEC

    measured = characterize_mic_amp(
        CMOS12, CharacterizationOptions(quick=args.quick)
    )
    report = MIC_AMP_SPEC.check(measured)
    print(report.format())
    return 0 if report.passed else 1


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.pga.characterize import (
        CharacterizationOptions,
        characterize_power_buffer,
    )
    from repro.pga.specs import POWER_BUFFER_SPEC

    measured = characterize_power_buffer(
        CMOS12, CharacterizationOptions(quick=args.quick)
    )
    report = POWER_BUFFER_SPEC.check(measured)
    print(report.format())
    return 0 if report.passed else 1


def _cmd_noise(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.circuits.micamp import build_mic_amp
    from repro.spice.analysis import log_freqs
    from repro.spice.dc import dc_operating_point
    from repro.spice.noise import noise_analysis

    design = build_mic_amp(CMOS12, gain_code=args.code)
    op = dc_operating_point(design.circuit)
    freqs = log_freqs(10, 100e3, 10)
    nr = noise_analysis(op, freqs, design.outp, design.outn)
    print(f"input-referred noise at gain code {args.code} "
          f"({design.gain.gain_db(args.code):.0f} dB):")
    for f, nv in zip(freqs, nr.input_nv()):
        print(f"  {f:10.1f} Hz   {nv:7.2f} nV/rtHz")
    avg = nr.average_input_density(300, 3400) * 1e9
    print(f"voice-band average: {avg:.2f} nV/rtHz (paper: 5.1 at 40 dB)")
    _ = np
    return 0


def _cmd_gains(args: argparse.Namespace) -> int:
    from repro.analysis.gain import measure_gain_codes
    from repro.circuits.micamp import build_mic_amp

    design = build_mic_amp(CMOS12, gain_code=5)
    gm = measure_gain_codes(design)
    print(gm.format())
    print(f"worst absolute error: {gm.worst_error_db:.4f} dB "
          f"(paper: <= 0.05)")
    return 0


def _cmd_opamp(args: argparse.Namespace) -> int:
    from repro.circuits.opamp import characterize_modulator_opamp

    result = characterize_modulator_opamp(CMOS12)
    print("modulator opamp (Sec. 2.2, class A output, ~150 uA):")
    print(f"  I_Q          {result['iq_ua']:7.1f} uA")
    print(f"  DC gain      {result['dc_gain_db']:7.1f} dB")
    print(f"  GBW          {result['gbw_hz'] / 1e6:7.2f} MHz")
    print(f"  phase margin {result['phase_margin_deg']:7.1f} deg")
    return 0


def _parse_axis(text: str, cast, none_words=()):
    """Comma list -> tuple, mapping the ``none_words`` to ``None``.

    Only axes where ``None`` is meaningful (nominal supply/devices/code)
    pass ``none_words``; elsewhere the word is a parse error like any
    other bad token.
    """
    out = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        out.append(None if item.lower() in none_words else cast(item))
    return tuple(out)


_NONE_WORDS = ("none", "nominal")


def _cmd_campaign(args: argparse.Namespace) -> int:
    import contextlib
    import time

    from repro.campaign import (
        BatchedCampaignExecutor,
        CampaignSpec,
        ProcessPoolCampaignExecutor,
        SerialExecutor,
        run_campaign,
    )
    from repro.process import CORNERS

    if args.spec is not None:
        # Shared schema with the serve layer: any malformed file —
        # invalid JSON, unknown keys, bad axes — is a single error line
        # and exit 2, exactly like POST /v1/campaigns answers 400.
        from repro.serve.validate import SpecValidationError, load_request_file

        try:
            spec = load_request_file(args.spec, "campaign")
        except SpecValidationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        corners = (tuple(CORNERS) if args.corners.lower() == "all"
                   else _parse_axis(args.corners, str))
        try:
            if args.seeds is not None:
                seeds = _parse_axis(args.seeds, int, _NONE_WORDS)
            elif args.trials > 0:
                seeds = tuple(range(args.trials))
            else:
                seeds = (None,)
            spec = CampaignSpec(
                builder=args.builder,
                corners=corners,
                temps_c=_parse_axis(args.temps, float),
                supplies=_parse_axis(args.supplies, float, _NONE_WORDS),
                seeds=seeds,
                gain_codes=_parse_axis(args.codes, int, _NONE_WORDS),
                measurements=_parse_axis(args.measure, str),
            )
        except (KeyError, ValueError, TypeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    choice = getattr(args, "executor", "auto")
    if choice == "serial":
        executor = SerialExecutor()
    elif choice == "pool":
        executor = ProcessPoolCampaignExecutor(max_workers=max(args.workers, 2))
    elif choice == "batched":
        executor = BatchedCampaignExecutor()
    elif args.workers > 1:
        executor = ProcessPoolCampaignExecutor(max_workers=args.workers)
    else:
        executor = BatchedCampaignExecutor()
    store = None
    if args.store is not None:
        from repro.store import ResultStore

        store = ResultStore(args.store)
    print(f"campaign: {spec.n_units} units "
          f"({len(spec.corners)} corners x {len(spec.temps_c)} temps x "
          f"{len(spec.supplies)} supplies x {len(spec.seeds)} seeds x "
          f"{len(spec.gain_codes)} codes), executor={executor.name}")
    tracer = None
    with contextlib.ExitStack() as stack:
        if args.profile:
            from repro.obs.profile import Profiler

            stack.enter_context(Profiler().activate())
        if args.trace_out is not None:
            from repro.obs.trace import Tracer

            tracer = Tracer(export_path=args.trace_out)
            stack.enter_context(tracer.activate())
            stack.callback(tracer.close)
        t0 = time.perf_counter()
        try:
            result = run_campaign(spec, executor=executor,
                                  chunk_size=args.chunk, store=store)
        except ValueError as exc:
            # Builder/measurement incompatibilities surface at run time
            # (e.g. gain codes on a codeless builder); report them like
            # parse errors.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        wall = time.perf_counter() - t0
    print(f"done in {wall:.2f} s ({spec.n_units / wall:.1f} units/s)")
    if result.store_stats is not None:
        print(f"store: {result.store_stats['reused_units']} reused, "
              f"{result.store_stats['executed_units']} executed "
              f"(root {result.store_stats['store_root']})")
    if tracer is not None:
        print(f"trace: wrote {tracer.recorded} span(s) to {args.trace_out}")
    if args.profile and result.stats is not None:
        from repro.obs.profile import format_profile

        print()
        print(format_profile(result.stats["profile"]))
    print()
    print(result.summary())
    for metric in result.metrics:
        worst = result.worst_by(metric, by=("corner",), sense="min")
        best = result.worst_by(metric, by=("corner",), sense="max")
        row = "   ".join(f"{k[0]} [{lo:.4g}, {best[k]:.4g}]"
                         for k, lo in worst.items())
        print(f"  {metric} per corner: {row}")
    if args.csv:
        result.to_csv(args.csv)
        print(f"wrote {args.csv}")
    if args.json:
        result.to_json(args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    import time

    from repro.campaign import ProcessPoolCampaignExecutor
    from repro.optimize import RobustSettings, optimize_mic_amp
    from repro.pga.specs import MIC_AMP_SPEC

    if args.spec is not None:
        # Same request schema and validator as POST /v1/optimize.
        from repro.serve.validate import SpecValidationError, load_request_file

        try:
            request = load_request_file(args.spec, "optimize")
        except SpecValidationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        budget, seed = request["budget"], request["seed"]
        mode, robust = request["mode"], request["robust"]
    else:
        robust = None
        grid_given = (args.corners is not None or args.temps is not None
                      or args.trials is not None)
        if grid_given and not args.robust:
            print("error: --corners/--temps/--trials define the robust "
                  "evaluation grid; pass --robust to use them",
                  file=sys.stderr)
            return 2
        if args.robust:
            try:
                trials = args.trials or 0
                seeds = (None,) if trials == 0 else (None,) + tuple(range(trials))
                robust = RobustSettings(
                    corners=_parse_axis(args.corners or "tt,ss,ff", str),
                    temps_c=_parse_axis(args.temps or "25", float),
                    seeds=seeds,
                )
            except (KeyError, ValueError, TypeError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        budget = 60 if args.quick else args.budget
        seed, mode = args.seed, args.mode
    executor = (ProcessPoolCampaignExecutor(max_workers=args.workers)
                if args.workers > 1 else None)
    store = None
    if args.store is not None:
        from repro.store import ResultStore

        store = ResultStore(args.store)

    grid = robust.n_units if robust else 1
    print(f"optimize: mic amp vs Table 1, budget {budget} evaluations "
          f"x {grid} unit(s) each, mode={mode}, seed={seed}")
    import contextlib

    with contextlib.ExitStack() as stack:
        if args.profile:
            from repro.obs.profile import Profiler

            stack.enter_context(Profiler().activate())
        t0 = time.perf_counter()
        result = optimize_mic_amp(
            budget=budget, seed=seed, mode=mode,
            robust=robust, executor=executor, store=store,
            log=(None if args.no_progress else print),
        )
        wall = time.perf_counter() - t0
    print(f"done in {wall:.2f} s "
          f"({result.n_evaluations / wall:.1f} evaluations/s)\n")
    print(result.summary())
    if args.verbose and result.evaluator_stats is not None:
        s = result.evaluator_stats
        print(f"evaluator cache: {s['evaluations']} evaluations, "
              f"{s['hits']} hits / {s['misses']} misses "
              f"(hit rate {s['hit_rate']:.0%}), "
              f"store hits {s['store_hits']}, "
              f"simulated {s['simulated']}")
    if args.profile and result.evaluator_stats is not None \
            and "profile" in result.evaluator_stats:
        from repro.obs.profile import format_profile

        print()
        print(format_profile(result.evaluator_stats["profile"]))
    print()
    report = MIC_AMP_SPEC.check(result.best.metrics)
    print(report.format())
    from repro.pga.specs import Bound

    unsearched = [l.metric for l in MIC_AMP_SPEC.limits
                  if l.metric not in result.best.metrics
                  and l.bound is not Bound.INFO]
    if unsearched:
        print(f"(rows not searched per candidate — verify with "
              f"`repro table1`: {', '.join(unsearched)})")
    print()
    print(result.pareto.format())
    if args.pareto_csv:
        result.pareto.to_csv(args.pareto_csv)
        print(f"wrote {args.pareto_csv}")
    if args.pareto_json:
        result.pareto.to_json(args.pareto_json)
        print(f"wrote {args.pareto_json}")
    return 0 if (report.passed and result.best.feasible) else 1


def _cmd_store(args: argparse.Namespace) -> int:
    import time as _time

    from repro.store import open_store

    store = open_store(args.store)
    if args.store_cmd == "ls":
        rows = list(store.entries(kind=args.kind))
        for key, kind, nbytes, created, meta in rows[:args.limit]:
            age = _time.time() - created
            tag = (f"{meta.get('builder', '?')}" if meta else "?")
            print(f"{key[:16]}  {kind:<14} {nbytes:>7} B  "
                  f"{age:8.0f} s ago  {tag}")
        if len(rows) > args.limit:
            print(f"... ({len(rows) - args.limit} more; --limit to see them)")
        if not rows:
            print(f"(store at {store.root} is empty)")
        return 0
    if args.store_cmd == "stat":
        stat = store.stat()
        print(f"store {stat['root']}: {stat['entries']} entries, "
              f"{stat['bytes']} bytes")
        for kind, info in stat["kinds"].items():
            print(f"  {kind:<14} {info['entries']:>6} entries  "
                  f"{info['bytes']:>9} bytes")
        return 0
    if args.store_cmd == "gc":
        summary = store.gc()
        print(f"gc: removed {summary['removed_rows']} dangling index rows, "
              f"{summary['removed_files']} orphan files; "
              f"{summary['entries']} entries remain")
        return 0
    if args.store_cmd == "export":
        n = store.export(args.output, kind=args.kind)
        print(f"wrote {args.output} ({n} entries)")
        return 0
    if args.store_cmd == "verify":
        report = store.verify()
        print(f"verify: {report['checked']} checked, "
              f"{report['intact']} intact, "
              f"{report['quarantined']} quarantined, "
              f"{report['missing']} missing")
        return 0 if report["intact"] == report["checked"] else 1
    raise AssertionError(f"unhandled store command {args.store_cmd!r}")


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import CharacterizationService, make_server
    from repro.store import open_store

    store = None if args.no_store else open_store(args.store)
    service = CharacterizationService(store=store, workers=args.workers,
                                      pool_workers=args.pool_workers,
                                      journal_dir=args.journal,
                                      max_jobs=args.max_jobs,
                                      job_timeout=args.job_timeout)
    server = make_server(args.host, args.port, service, verbose=args.verbose)
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port} "
          f"(store: {'disabled' if store is None else store.root}, "
          f"{args.workers} worker(s), pool={args.pool_workers})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down", flush=True)
    finally:
        server.shutdown()
        service.stop()
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve import ServeClient, ServeError

    client = ServeClient(args.url)
    try:
        if args.client_cmd == "submit":
            with open(args.spec) as fh:
                try:
                    payload = _json.load(fh)
                except _json.JSONDecodeError as exc:
                    print(f"error: spec file {args.spec} is not valid "
                          f"JSON: {exc}", file=sys.stderr)
                    return 2
            view = client.submit(args.kind, payload)
            tag = " (warm store hit)" if view["warm"] else (
                " (coalesced)" if view["attached"] else "")
            print(f"job {view['id']} state {view['state']}{tag}")
            if args.wait and view["state"] not in ("done", "failed"):
                view = client.wait(view["id"], timeout=args.timeout)
                print(f"job {view['id']} state {view['state']}")
            if view["state"] == "failed":
                print(f"error: {view['error']}", file=sys.stderr)
                return 1
            if args.json is not None:
                if view["state"] != "done":
                    print("error: result not ready (pass --wait)",
                          file=sys.stderr)
                    return 1
                body = client.result_bytes(view["id"])
                with open(args.json, "wb") as fh:
                    fh.write(body)
                print(f"wrote {args.json}")
            return 0
        if args.client_cmd == "status":
            view = client.job(args.job)
            print(_json.dumps(view, indent=2))
            return 0 if view["state"] != "failed" else 1
        if args.client_cmd == "wait":
            view = client.wait(args.job, timeout=args.timeout)
            print(f"job {view['id']} state {view['state']}")
            if view["state"] == "failed":
                print(f"error: {view['error']}", file=sys.stderr)
            return 0 if view["state"] == "done" else 1
        if args.client_cmd == "result":
            if args.offset is not None or args.limit is not None:
                page = client.result_page(args.job, args.offset or 0,
                                          args.limit or 100)
                text = _json.dumps(page, indent=2) + "\n"
            else:
                text = client.result_bytes(args.job).decode("utf-8")
            if args.json is not None:
                with open(args.json, "w") as fh:
                    fh.write(text)
                print(f"wrote {args.json}")
            else:
                sys.stdout.write(text)
            return 0
        if args.client_cmd == "metrics":
            print(_json.dumps(client.metrics(), indent=2))
            return 0
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except TimeoutError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled client command {args.client_cmd!r}")


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.trace import format_slowest, format_tree, load_jsonl

    if args.url is not None:
        from repro.serve import ServeClient, ServeError

        client = ServeClient(args.url)
        try:
            doc = client.job_trace(args.source)
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        spans = doc.get("spans", [])
    else:
        try:
            spans = load_jsonl(args.source)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except _json.JSONDecodeError as exc:
            print(f"error: {args.source} is not a span JSONL file: {exc}",
                  file=sys.stderr)
            return 2
    if args.trace_id is not None:
        spans = [s for s in spans if s.get("trace_id") == args.trace_id]
    if args.json:
        print(_json.dumps(spans, indent=2))
        return 0
    if not spans:
        print("(no spans)")
        return 0
    traces = {s.get("trace_id") for s in spans}
    print(f"{len(spans)} span(s) across {len(traces)} trace(s)")
    print(format_tree(spans))
    if args.top:
        print()
        print(format_slowest(spans, top=args.top))
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    from repro.obs.doctor import format_report, run_doctor

    checks, code = run_doctor(store=args.store, url=args.url,
                              bench=args.bench, events=args.events)
    for line in format_report(checks, code):
        print(line)
    return code


def _cmd_ingest(args: argparse.Namespace) -> int:
    import os

    from repro.ingest import IngestError, apply_binding, compile_deck

    try:
        with open(args.deck) as fh:
            text = fh.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    name = os.path.basename(args.deck)
    try:
        compiled = compile_deck(text, name=name, top=args.top)
    except IngestError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    circuit = compiled.circuit

    if args.canonical:
        sys.stdout.write(compiled.canonical())
        return 0

    bound = None
    if args.binding is not None:
        try:
            with open(args.binding) as fh:
                binding_text = fh.read()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            bound = apply_binding(circuit, binding_text)
        except IngestError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if (args.op or args.ac) and bound is None:
        print("error: --op/--ac need --binding FILE (ports, outputs, supply)",
              file=sys.stderr)
        return 2

    counts: dict[str, int] = {}
    for el in circuit:
        kind = type(el).__name__
        counts[kind] = counts.get(kind, 0) + 1
    inventory = ", ".join(f"{n} {k}" for k, n in sorted(counts.items()))
    if not args.validate:
        print(f"{name}: top {compiled.top!r}, {len(circuit.nodes())} nodes, "
              f"{sum(counts.values())} elements ({inventory})")
    if not (args.op or args.ac):
        return 0

    from repro.spice.dc import ConvergenceError, dc_operating_point

    try:
        op = dc_operating_point(circuit)
    except ConvergenceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    out_tag = (bound.out_p if bound.out_n in ("gnd", "0")
               else f"{bound.out_p}-{bound.out_n}")
    if args.op:
        print(f"dc: converged via {op.strategy} in {op.iterations} iterations")
        print(f"  v({out_tag}) = {op.vdiff(bound.out_p, bound.out_n):.6g} V")
        if bound.supply_source is not None:
            print(f"  i({bound.supply_source}) = "
                  f"{op.supply_current(bound.supply_source) * 1e3:.6g} mA")
    if args.ac:
        import numpy as np

        if not bound.input_sources:
            print("error: --ac needs a binding port with a nonzero 'ac'",
                  file=sys.stderr)
            return 2
        freqs = np.logspace(1, 8, 8 * 4 + 1)
        tf = op.small_signal().transfer(freqs, bound.out_p, bound.out_n)
        mag_db = 20.0 * np.log10(np.maximum(np.abs(tf), 1e-300))
        k1k = int(np.argmin(np.abs(freqs - 1e3)))
        print(f"ac: gain({out_tag}) at 1 kHz = {mag_db[k1k]:.2f} dB")
        for k in range(0, freqs.size, 4):
            print(f"  {freqs[k]:12.4g} Hz   {mag_db[k]:8.2f} dB")
    return 0


_BLOCKS = ("micamp", "powerbuffer", "bandgap", "bias", "opamp")


def _build_block(name: str):
    if name == "micamp":
        from repro.circuits.micamp import build_mic_amp

        return build_mic_amp(CMOS12, gain_code=5).circuit
    if name == "powerbuffer":
        from repro.circuits.powerbuffer import build_power_buffer

        return build_power_buffer(CMOS12, feedback="inverting",
                                  load="resistive").circuit
    if name == "bandgap":
        from repro.circuits.bandgap import build_bandgap

        return build_bandgap(CMOS12, r2_trim=1.2).circuit
    if name == "bias":
        from repro.circuits.bias import build_bias_circuit

        return build_bias_circuit(CMOS12).circuit
    if name == "opamp":
        from repro.circuits.opamp import build_modulator_opamp

        return build_modulator_opamp(CMOS12).circuit
    raise ValueError(f"unknown block {name!r}; choose from {_BLOCKS}")


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.spice.export import export_netlist

    circuit = _build_block(args.block)
    deck = export_netlist(circuit)
    if args.output == "-":
        sys.stdout.write(deck)
    else:
        with open(args.output, "w") as fh:
            fh.write(deck)
        print(f"wrote {args.output} ({len(deck.splitlines())} lines)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the 1995 low-voltage FD PGA paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", help="characterise the microphone amplifier")
    p1.add_argument("--quick", action="store_true")
    p1.set_defaults(func=_cmd_table1)

    p2 = sub.add_parser("table2", help="characterise the power buffer")
    p2.add_argument("--quick", action="store_true")
    p2.set_defaults(func=_cmd_table2)

    pn = sub.add_parser("noise", help="Fig. 7 noise spectrum")
    pn.add_argument("--code", type=int, default=5, choices=range(6))
    pn.set_defaults(func=_cmd_noise)

    pg = sub.add_parser("gains", help="Fig. 5 gain table")
    pg.set_defaults(func=_cmd_gains)

    po = sub.add_parser("opamp", help="modulator opamp figures of merit")
    po.set_defaults(func=_cmd_opamp)

    pc = sub.add_parser(
        "campaign",
        help="declarative PVT x mismatch x gain-code characterization sweep",
        description="Expand a corner/temperature/supply/seed/gain-code "
                    "cross-product into work units, execute them (serially "
                    "or on a process pool) and print reduced statistics.",
    )
    pc.add_argument("--builder", default="micamp",
                    help="registered circuit builder (default: micamp)")
    pc.add_argument("--corners", default="all",
                    help="comma list of corners, or 'all' (default)")
    pc.add_argument("--temps", default="-20,25,85",
                    help="comma list of temperatures [degC] "
                         "(use --temps=-20,25,85 for negative values)")
    pc.add_argument("--supplies", default="nominal",
                    help="comma list of total supply voltages, 'nominal' "
                         "entries keep the technology default")
    pc.add_argument("--trials", type=int, default=0,
                    help="number of mismatch seeds 0..N-1 (0 = nominal devices)")
    pc.add_argument("--seeds", default=None,
                    help="explicit comma list of mismatch seeds (overrides --trials)")
    pc.add_argument("--codes", default="nominal",
                    help="comma list of gain codes; 'nominal' = builder default")
    pc.add_argument("--measure", default="offset_v,iq_ma",
                    help="comma list of registered measurements")
    pc.add_argument("--workers", type=int, default=1,
                    help="process-pool workers (1 = in-process, default)")
    pc.add_argument("--executor", default="auto",
                    choices=("auto", "serial", "pool", "batched"),
                    help="execution engine: auto picks batched in-process "
                         "(or the pool when --workers > 1); all choices "
                         "produce byte-identical records")
    pc.add_argument("--chunk", type=int, default=None,
                    help="units per dispatch chunk (default: executor heuristic)")
    pc.add_argument("--csv", default=None, help="write the full table as CSV")
    pc.add_argument("--json", default=None, help="write the full table as JSON")
    pc.add_argument("--store", default=None, metavar="ROOT",
                    help="persistent result store root: reuse cached units, "
                         "execute only missing ones (byte-identical merge)")
    pc.add_argument("--spec", default=None, metavar="FILE",
                    help="campaign request JSON file (serve-layer schema; "
                         "overrides the axis flags)")
    pc.add_argument("--profile", action="store_true",
                    help="print the engine profile (Newton iterations, "
                         "LU calls, store I/O) after the run")
    pc.add_argument("--trace-out", default=None, metavar="FILE",
                    help="export the run's span trace as JSONL "
                         "(inspect with `repro trace FILE`)")
    pc.set_defaults(func=_cmd_campaign)

    po2 = sub.add_parser(
        "optimize",
        help="spec-driven sizing search over the Sec. 3.2 design space",
        description="Search the mic-amp sizing space (budget splits, "
                    "currents, lengths, gain string) for a minimum "
                    "current/area design meeting the Table 1 spec, with "
                    "a noise/IQ/area Pareto front as a by-product.",
    )
    po2.add_argument("--budget", type=int, default=150,
                     help="candidate-evaluation budget (default: 150)")
    po2.add_argument("--seed", type=int, default=2026,
                     help="optimizer RNG seed (runs are deterministic per seed)")
    po2.add_argument("--mode", choices=("feasibility", "penalty"),
                     default="feasibility",
                     help="constraint handling (default: feasibility-first)")
    po2.add_argument("--robust", action="store_true",
                     help="score candidates worst-case over a PVT campaign "
                          "instead of the typical point")
    po2.add_argument("--corners", default=None,
                     help="robust-mode corner list (default: tt,ss,ff; "
                          "requires --robust)")
    po2.add_argument("--temps", default=None,
                     help="robust-mode temperature list [degC] "
                          "(default: 25; requires --robust)")
    po2.add_argument("--trials", type=int, default=None,
                     help="robust-mode mismatch seeds on top of nominal "
                          "(requires --robust)")
    po2.add_argument("--workers", type=int, default=1,
                     help="campaign process-pool workers (1 = serial)")
    po2.add_argument("--quick", action="store_true",
                     help="60-evaluation smoke run")
    po2.add_argument("--no-progress", action="store_true",
                     help="suppress per-improvement progress lines")
    po2.add_argument("--pareto-csv", default=None,
                     help="write the Pareto front as CSV")
    po2.add_argument("--pareto-json", default=None,
                     help="write the Pareto front as JSON")
    po2.add_argument("--store", default=None, metavar="ROOT",
                     help="persistent evaluation store root: resume "
                          "measured candidates across runs/processes")
    po2.add_argument("--verbose", action="store_true",
                     help="print evaluator cache statistics (memo + store)")
    po2.add_argument("--profile", action="store_true",
                     help="print the engine profile accumulated over "
                          "every candidate evaluation")
    po2.add_argument("--spec", default=None, metavar="FILE",
                     help="optimize request JSON file (serve-layer schema; "
                          "overrides --budget/--seed/--mode/--robust)")
    po2.set_defaults(func=_cmd_optimize)

    pst = sub.add_parser(
        "store",
        help="inspect / maintain a persistent result store",
        description="List, summarise, garbage-collect or export the "
                    "content-addressed result store used by --store "
                    "campaign and optimize runs.",
    )
    pstsub = pst.add_subparsers(dest="store_cmd", required=True)
    pls = pstsub.add_parser("ls", help="list entries, newest first")
    pls.add_argument("--kind", default=None,
                     help="filter by kind (campaign-unit, design-eval)")
    pls.add_argument("--limit", type=int, default=20,
                     help="max rows to print (default: 20)")
    pstat = pstsub.add_parser("stat", help="entry/byte totals per kind")
    pgc = pstsub.add_parser("gc", help="drop dangling rows + orphan files")
    pexp = pstsub.add_parser("export", help="dump entries as one JSON file")
    pexp.add_argument("output", help="output JSON path")
    pexp.add_argument("--kind", default=None, help="filter by kind")
    pver = pstsub.add_parser(
        "verify",
        help="re-hash every payload; quarantine corrupt/truncated files "
             "(exit 1 if anything was unhealthy)")
    for sp in (pls, pstat, pgc, pexp, pver):
        sp.add_argument("--store", default=None, metavar="ROOT",
                        help="store root (default: $REPRO_STORE or "
                             "~/.cache/repro-store)")
        sp.set_defaults(func=_cmd_store)

    psv = sub.add_parser(
        "serve",
        help="run the characterization service (HTTP/JSON API)",
        description="Serve campaigns and sizing searches over HTTP: job "
                    "queue + worker pool, request coalescing of identical "
                    "in-flight submissions, and store-backed warm hits "
                    "that never touch the engine.",
    )
    psv.add_argument("--host", default="127.0.0.1")
    psv.add_argument("--port", type=int, default=8765,
                     help="listen port (0 = pick a free one; default: 8765)")
    psv.add_argument("--workers", type=int, default=2,
                     help="service worker threads (default: 2)")
    psv.add_argument("--pool-workers", type=int, default=1,
                     help="campaign process-pool size per job (1 = serial)")
    psv.add_argument("--job-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-job wall-clock budget; overruns fail the "
                          "job instead of wedging a worker (default: none)")
    psv.add_argument("--store", default=None, metavar="ROOT",
                     help="result store root (default: $REPRO_STORE or "
                          "~/.cache/repro-store)")
    psv.add_argument("--no-store", action="store_true",
                     help="serve without a store (no warm hits)")
    psv.add_argument("--journal", default=None, metavar="DIR",
                     help="job journal directory (jobs survive restarts)")
    psv.add_argument("--max-jobs", type=int, default=1024,
                     help="retained job cap; oldest finished jobs are "
                          "evicted past it (default: 1024)")
    psv.add_argument("--verbose", action="store_true",
                     help="log every HTTP request")
    psv.set_defaults(func=_cmd_serve)

    pcl = sub.add_parser(
        "client",
        help="talk to a running `repro serve` endpoint",
        description="Submit request files, poll job status and fetch "
                    "results from a characterization service.",
    )
    pclsub = pcl.add_subparsers(dest="client_cmd", required=True)
    psub = pclsub.add_parser("submit", help="submit a request JSON file")
    psub.add_argument("spec", help="request JSON file (serve-layer schema)")
    psub.add_argument("--kind", choices=("campaign", "optimize"),
                      default="campaign")
    psub.add_argument("--wait", action="store_true",
                      help="poll until the job is terminal")
    psub.add_argument("--json", default=None, metavar="PATH",
                      help="write the result document (implies --wait "
                           "completed successfully)")
    pstat2 = pclsub.add_parser("status", help="print one job's status view")
    pstat2.add_argument("job")
    pwait = pclsub.add_parser("wait", help="block until a job is terminal")
    pwait.add_argument("job")
    pres = pclsub.add_parser("result", help="fetch a job's result")
    pres.add_argument("job")
    pres.add_argument("--offset", type=int, default=None,
                      help="paginate: first row of the page")
    pres.add_argument("--limit", type=int, default=None,
                      help="paginate: rows per page")
    pres.add_argument("--json", default=None, metavar="PATH",
                      help="write to a file instead of stdout")
    pmet = pclsub.add_parser("metrics", help="print service counters")
    for sp in (psub, pstat2, pwait, pres, pmet):
        sp.add_argument("--url", default="http://127.0.0.1:8765",
                        help="service base URL (default: %(default)s)")
        sp.add_argument("--timeout", type=float, default=600.0,
                        help="wait timeout in seconds (default: 600)")
        sp.set_defaults(func=_cmd_client)

    pt = sub.add_parser(
        "trace",
        help="inspect a span trace (JSONL export or a served job)",
        description="Render the span tree of a trace: from a JSONL file "
                    "written by `repro campaign --trace-out` (or "
                    "REPRO_OBS=trace:export=FILE), or fetched from a "
                    "running service's GET /v1/jobs/<id>/trace.",
    )
    pt.add_argument("source",
                    help="span JSONL file, or a job id when --url is given")
    pt.add_argument("--url", default=None, metavar="URL",
                    help="fetch the trace of job SOURCE from this serve "
                         "endpoint instead of reading a file")
    pt.add_argument("--trace-id", default=None,
                    help="show only one trace id")
    pt.add_argument("--json", action="store_true",
                    help="print the raw span dicts instead of the tree")
    pt.add_argument("--top", type=int, default=0, metavar="N",
                    help="also list the N slowest spans by self-time "
                         "below the tree")
    pt.set_defaults(func=_cmd_trace)

    pd = sub.add_parser(
        "doctor",
        help="run stack self-checks and print a pass/warn/fail report",
        description="Probe each layer like an operator would: DC-solve "
                    "the bias sanity circuit, read-verify a result "
                    "store, hit a running service's /healthz, re-run "
                    "the bench drift watchdog and triage the event "
                    "log.  Exit 0 healthy, 1 warnings, 2 failures.",
    )
    pd.add_argument("--store", default=None, metavar="DIR",
                    help="result-store root to read-verify")
    pd.add_argument("--url", default=None, metavar="URL",
                    help="running service base URL (checks /healthz)")
    pd.add_argument("--bench", default=None, metavar="FILE",
                    help="BENCH_perf.json for the drift watchdog")
    pd.add_argument("--events", default=None, metavar="FILE",
                    help="event-log JSONL export to triage")
    pd.set_defaults(func=_cmd_doctor)

    pi = sub.add_parser(
        "ingest",
        help="compile an external SPICE deck (parse / op / ac)",
        description="Parse a SPICE netlist through repro.ingest, flatten "
                    "its subcircuit hierarchy and optionally bind ports "
                    "(supplies, stimulus, outputs) to run DC and AC "
                    "analyses on the compiled circuit.",
    )
    pi.add_argument("deck", help="SPICE netlist file")
    pi.add_argument("--top", default=None,
                    help="subcircuit to elaborate as the top cell "
                         "(default: top-level cards, or the only .subckt)")
    pi.add_argument("--binding", default=None, metavar="FILE",
                    help="port-binding JSON (ports/outputs/supply/loads)")
    pi.add_argument("--validate", action="store_true",
                    help="parse and elaborate only, no output on success")
    pi.add_argument("--op", action="store_true",
                    help="solve and print the DC operating point "
                         "(requires --binding)")
    pi.add_argument("--ac", action="store_true",
                    help="print the small-signal gain sweep "
                         "(requires --binding with an 'ac' port)")
    pi.add_argument("--canonical", action="store_true",
                    help="print the canonical flattened deck (the store-key "
                         "form) and exit")
    pi.set_defaults(func=_cmd_ingest)

    pe = sub.add_parser("export", help="write a block's SPICE deck")
    pe.add_argument("block", choices=_BLOCKS)
    pe.add_argument("output", help="output file, or - for stdout")
    pe.set_defaults(func=_cmd_export)

    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Let "--temps -20,25,85"-style negative comma lists through argparse,
    # which would otherwise read the value as an option string.
    fixed: list[str] = []
    skip = False
    for i, arg in enumerate(argv):
        if skip:
            skip = False
            continue
        nxt = argv[i + 1] if i + 1 < len(argv) else ""
        if arg in ("--temps", "--supplies", "--seeds") and \
                nxt.startswith("-") and nxt[1:2].isdigit():
            fixed.append(f"{arg}={nxt}")
            skip = True
        else:
            fixed.append(arg)
    args = build_parser().parse_args(fixed)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
