"""Digital gain programming (the paper's Fig. 5).

"The programmability is achieved by using two matched arrays of resistors
and switches that are controlled by digital signals.  The gain can be
varied from 10 dB to 40 dB in 6 dB steps."

The network is a tapped resistor string: the closed-loop gain of the
non-inverting DDA stage is ``A_cl = R_total / R_a(tap)`` with
``R_a + R_f = R_total`` fixed, so gain programming moves the tap without
changing the output load or the string's total noise resistance budget —
only the *split* between R_a and R_f changes, which is exactly the
gain-dependent noise mechanism of the paper's Eq. 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import undb

#: The paper's gain settings: 10 dB to 40 dB in 6 dB steps.
GAIN_STEPS_DB: tuple[float, ...] = (10.0, 16.0, 22.0, 28.0, 34.0, 40.0)


@dataclass(frozen=True)
class GainControl:
    """Maps a digital gain word to resistor-string taps.

    ``r_total`` is the full string resistance (R_a + R_f); the default of
    25 kohm puts R_a at 250 ohm for the 40 dB setting.  Eq. 4 pulls R_a
    down ("a low value of R_a means a lower thermal noise contribution of
    the resistive network") while the string's loading of the output
    stage pulls it up (closed-loop gain accuracy needs loop gain) — the
    default sits where both Table 1 limits are met.
    """

    r_total: float = 25e3
    steps_db: tuple[float, ...] = GAIN_STEPS_DB

    def __post_init__(self) -> None:
        if self.r_total <= 0.0:
            raise ValueError("r_total must be positive")
        if len(self.steps_db) < 2:
            raise ValueError("need at least two gain settings")
        if any(b <= a for a, b in zip(self.steps_db, self.steps_db[1:])):
            raise ValueError("gain steps must be strictly increasing")

    @property
    def num_codes(self) -> int:
        return len(self.steps_db)

    def validate_code(self, code: int) -> int:
        if not 0 <= code < self.num_codes:
            raise ValueError(
                f"gain code {code} out of range 0..{self.num_codes - 1}"
            )
        return code

    def gain_db(self, code: int) -> float:
        """Nominal gain for a code [dB]."""
        return self.steps_db[self.validate_code(code)]

    def gain_linear(self, code: int) -> float:
        """Nominal closed-loop voltage gain (linear)."""
        return undb(self.gain_db(code))

    def code_for_db(self, target_db: float) -> int:
        """Closest gain code for a requested dB value."""
        return int(np.argmin([abs(s - target_db) for s in self.steps_db]))

    def r_bottom(self, code: int) -> float:
        """R_a for a code: the string below the selected tap [ohm]."""
        return self.r_total / self.gain_linear(code)

    def r_top(self, code: int) -> float:
        """R_f for a code: the string above the selected tap [ohm]."""
        return self.r_total - self.r_bottom(code)

    def tap_resistances(self) -> list[float]:
        """R_a of every code, highest gain last (smallest R_a)."""
        return [self.r_bottom(code) for code in range(self.num_codes)]

    def segment_resistances(self) -> list[float]:
        """The series string segments from ground tap to the output end.

        Segment 0 is the bottom piece (R_a of the highest-gain code);
        subsequent segments add up so that the tap below segment ``k``
        realises code ``num_codes - k``; the final segment reaches
        R_total.  All values are positive by construction.
        """
        taps = sorted(self.tap_resistances())  # ascending R_a = descending gain
        segments = [taps[0]]
        for lo, hi in zip(taps, taps[1:]):
            segments.append(hi - lo)
        segments.append(self.r_total - taps[-1])
        return segments

    def switch_states(self, code: int) -> list[bool]:
        """Which tap switch is closed for a code (one-hot, highest gain
        first, matching :meth:`segment_resistances` tap order)."""
        self.validate_code(code)
        # tap order in the string: ascending R_a == descending gain code
        order = list(range(self.num_codes - 1, -1, -1))
        return [c == code for c in order]

    def noise_source_resistance(self, code: int) -> float:
        """R_a || R_f seen by the feedback input at a code [ohm]."""
        ra = self.r_bottom(code)
        rf = self.r_top(code)
        return ra * rf / (ra + rf)

    def step_errors_db(self, measured_db: list[float]) -> list[float]:
        """Deviation of measured consecutive steps from the nominal steps."""
        if len(measured_db) != self.num_codes:
            raise ValueError(
                f"expected {self.num_codes} measurements, got {len(measured_db)}"
            )
        nominal = np.diff(self.steps_db)
        actual = np.diff(measured_db)
        return list(actual - nominal)
