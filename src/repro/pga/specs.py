"""Spec tables (the paper's Table 1 and Table 2) and compliance checking.

Every characterisation bench produces a ``{metric: value}`` dict; a
:class:`Spec` turns it into a pass/fail report with the paper's measured
values as the reference column, which is how EXPERIMENTS.md is generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class SpecError(Exception):
    """Raised by strict spec checks: carries every failing row (and any
    metric missing from the measurements), not just the first one, so a
    CI log or an optimizer trace shows the whole compliance picture."""

    def __init__(self, name: str, failures: list["SpecRow"],
                 missing: list[str]) -> None:
        self.name = name
        self.failures = failures
        self.missing = missing
        lines = [f"spec {name!r} not met:"]
        lines += [f"  {row.format()}" for row in failures]
        lines += [f"  {metric:<28s} (metric missing from measurements)"
                  for metric in missing]
        super().__init__("\n".join(lines))


class Bound(Enum):
    """Direction of a spec limit."""

    MIN = "min"      # measured must be >= limit
    MAX = "max"      # measured must be <= limit
    ABS_MAX = "abs_max"  # |measured| must be <= limit
    RANGE = "range"  # limit is (lo, hi)
    INFO = "info"    # report only, never fails


@dataclass(frozen=True)
class SpecLimit:
    """One row of a spec table."""

    metric: str
    bound: Bound
    limit: float | tuple[float, float]
    unit: str
    description: str = ""

    def check(self, value: float) -> bool:
        if self.bound is Bound.MIN:
            return value >= self.limit
        if self.bound is Bound.MAX:
            return value <= self.limit
        if self.bound is Bound.ABS_MAX:
            return abs(value) <= self.limit
        if self.bound is Bound.RANGE:
            lo, hi = self.limit
            return lo <= value <= hi
        return True  # INFO


@dataclass
class SpecRow:
    """A checked row: limit plus the measured value."""

    limit: SpecLimit
    value: float
    passed: bool

    def format(self) -> str:
        mark = "PASS" if self.passed else ("  --" if self.limit.bound is Bound.INFO else "FAIL")
        if self.limit.bound is Bound.RANGE:
            lim = f"{self.limit.limit[0]:g}..{self.limit.limit[1]:g}"
        else:
            prefix = {Bound.MIN: ">=", Bound.MAX: "<=", Bound.ABS_MAX: "|x|<=",
                      Bound.INFO: ""}[self.limit.bound]
            lim = f"{prefix}{self.limit.limit:g}"
        return (
            f"{self.limit.metric:<28s} {self.value:>12.4g} {self.limit.unit:<10s}"
            f" paper: {lim:<14s} [{mark}]"
        )


@dataclass
class SpecReport:
    """All checked rows of one spec table."""

    name: str
    rows: list[SpecRow] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.rows if r.limit.bound is not Bound.INFO)

    @property
    def failures(self) -> list[SpecRow]:
        return [r for r in self.rows if not r.passed and r.limit.bound is not Bound.INFO]

    def format(self) -> str:
        lines = [f"== {self.name} ==", *(r.format() for r in self.rows)]
        lines.append(f"overall: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Spec:
    """A named collection of spec limits."""

    name: str
    limits: tuple[SpecLimit, ...]

    def check(self, measured: dict[str, float], strict: bool = False) -> SpecReport:
        """Check measured values against every limit.

        Missing metrics are skipped by default (a quick bench measures a
        subset).  ``strict=True`` instead raises a :class:`SpecError`
        listing *every* failing :class:`SpecRow` and every missing
        non-INFO metric — one exception, the complete verdict.
        """
        report = SpecReport(self.name)
        missing: list[str] = []
        for limit in self.limits:
            if limit.metric not in measured:
                if limit.bound is not Bound.INFO:
                    missing.append(limit.metric)
                continue
            value = measured[limit.metric]
            report.rows.append(SpecRow(limit, value, limit.check(value)))
        if strict and (report.failures or missing):
            raise SpecError(self.name, report.failures, missing)
        return report


#: Table 1 — characteristics of the microphone amplifier.
MIC_AMP_SPEC = Spec(
    name="Table 1: microphone amplifier",
    limits=(
        SpecLimit("supply_min_v", Bound.MAX, 2.6, "V",
                  "minimum operating supply"),
        SpecLimit("snr_40db_db", Bound.MIN, 87.0, "dB",
                  "S/N at 40 dB gain, 0.6 Vrms modulator full scale"),
        SpecLimit("vnin_300hz_nv", Bound.MAX, 7.0, "nV/rtHz",
                  "input-referred noise density at 300 Hz"),
        SpecLimit("vnin_1khz_nv", Bound.MAX, 6.0, "nV/rtHz",
                  "input-referred noise density at 1 kHz"),
        SpecLimit("vnin_avg_nv", Bound.MAX, 5.1 * 1.30, "nV/rtHz",
                  "band-average 0.3-3.4 kHz (paper: 5.1; +/-30% band)"),
        SpecLimit("hd_0v2_db", Bound.MAX, -52.0, "dB",
                  "harmonic distortion at 0.2 Vp input"),
        SpecLimit("gain_error_db", Bound.ABS_MAX, 0.05, "dB",
                  "closed-loop gain accuracy"),
        SpecLimit("psrr_1khz_db", Bound.MIN, 75.0, "dB",
                  "PSRR at 1 kHz"),
        SpecLimit("iq_ma", Bound.MAX, 2.6, "mA",
                  "quiescent supply current"),
        SpecLimit("area_mm2", Bound.RANGE, (0.5, 2.0), "mm^2",
                  "paper layout: 1.1 mm^2"),
    ),
)

#: Table 2 — characteristics of the power buffer amplifier.
POWER_BUFFER_SPEC = Spec(
    name="Table 2: power buffer amplifier",
    limits=(
        SpecLimit("input_range_frac", Bound.MIN, 0.85, "x rail",
                  "rail-to-rail input (fraction of supply with the "
                  "input stage alive; slope criterion)"),
        SpecLimit("vomax_margin_hd06_mv", Bound.MAX, 350.0, "mV",
                  "output-to-rail margin at 0.6 % HD (paper: 100 mV)"),
        SpecLimit("vomax_margin_hd03_mv", Bound.MAX, 600.0, "mV",
                  "output-to-rail margin at 0.3 % HD (paper: 300 mV)"),
        SpecLimit("iq_ma", Bound.RANGE, (3.25 - 1.0, 3.25 + 1.0), "mA",
                  "quiescent supply current (paper: 3.25 +/- 0.5)"),
        SpecLimit("psrr_1khz_db", Bound.MIN, 70.0, "dB",
                  "PSRR at 1 kHz (paper: 78 dB)"),
        SpecLimit("slew_v_per_us", Bound.MIN, 1.0, "V/us",
                  "slew rate (paper: 2.5 V/us at 1 V step)"),
        SpecLimit("hd_4vpp_50ohm_pct", Bound.MAX, 0.6, "%",
                  "distortion at 4 Vpp diff into 50 ohm, 3 V supply"),
    ),
)
