"""Public programmable-gain front-end API (the paper's contribution)."""

from repro.pga.gain_control import GainControl, GAIN_STEPS_DB
from repro.pga.specs import (
    MIC_AMP_SPEC,
    POWER_BUFFER_SPEC,
    Spec,
    SpecLimit,
    SpecReport,
)

__all__ = [
    "GAIN_STEPS_DB",
    "GainControl",
    "MIC_AMP_SPEC",
    "POWER_BUFFER_SPEC",
    "Spec",
    "SpecLimit",
    "SpecReport",
]
