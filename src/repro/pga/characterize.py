"""Full characterisation drivers: one call produces a Table 1/Table 2 row set.

These are the workhorses behind the benchmarks and EXPERIMENTS.md: they
run every measurement the paper reports for each block and return plain
``{metric: value}`` dicts that the :mod:`repro.pga.specs` tables check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.distortion import (
    amplitude_at_thd,
    measure_static_transfer,
    static_thd,
)
from repro.analysis.dynamic_range import snr_from_spectrum
from repro.analysis.gain import measure_gain_codes
from repro.analysis.psophometric import psophometric_rms
from repro.analysis.slew import measure_slew_rate
from repro.campaign import CampaignSpec, mc_seeds, run_campaign
from repro.circuits.micamp import build_mic_amp
from repro.circuits.powerbuffer import build_power_buffer
from repro.faults import NUMERIC_FAILURES
from repro.layout.area import estimate_mic_amp_area_mm2
from repro.process.corners import CONSUMER_TEMPS_C
from repro.process.technology import Technology
from repro.spice.analysis import log_freqs
from repro.spice.dc import dc_operating_point
from repro.spice.noise import noise_analysis
from repro.spice.sweeps import binary_search_threshold


@dataclass
class CharacterizationOptions:
    """Effort knobs shared by the drivers."""

    quick: bool = False            # fewer MC trials / sweep points
    psrr_trials: int = 5
    noise_points_per_decade: int = 12
    seed: int = 2026


def gain_holds_at_supply(tech: Technology, total_supply: float,
                         nominal_gain_db: float,
                         tol_db: float = 0.5) -> bool:
    """One probe of the minimum-supply search: does the 1 kHz gain at
    ``total_supply`` hold within ``tol_db`` of nominal?

    Below some supply the circuit cannot even be built (switch overdrive
    collapses) or has no operating point: both count as "does not
    operate" — but only the *numeric* failure modes do
    (:data:`repro.faults.NUMERIC_FAILURES`).  Anything else — a
    ``MemoryError``, a broken pool, a typo-level ``TypeError`` — says
    nothing about the supply under test and propagates, so an
    infrastructure fault can never masquerade as a threshold.
    """
    try:
        d_sup = build_mic_amp(tech, gain_code=5,
                              vdd=total_supply / 2, vss=-total_supply / 2)
        op_s = dc_operating_point(d_sup.circuit)
        h = op_s.small_signal().transfer(np.array([1e3]), d_sup.outp, d_sup.outn)
        g_db = 20 * math.log10(abs(h[0]))
    except NUMERIC_FAILURES:
        return False
    return abs(g_db - nominal_gain_db) < tol_db


def characterize_mic_amp(
    tech: Technology,
    options: CharacterizationOptions | None = None,
) -> dict[str, float]:
    """Measure every Table 1 metric of the microphone amplifier."""
    opt = options or CharacterizationOptions()
    design = build_mic_amp(tech, gain_code=5)
    op = dc_operating_point(design.circuit)

    measured: dict[str, float] = {}
    measured["iq_ma"] = abs(op.i("vdd_src")) * 1e3

    # --- noise at 40 dB ---
    freqs = log_freqs(10.0, 100e3, opt.noise_points_per_decade)
    nr = noise_analysis(op, freqs, design.outp, design.outn)
    measured["vnin_300hz_nv"] = nr.input_nv_at(300.0)
    measured["vnin_1khz_nv"] = nr.input_nv_at(1e3)
    measured["vnin_avg_nv"] = nr.average_input_density(300.0, 3400.0) * 1e9

    # Table 1's "S/N (at 40 dB)" is the psophometrically weighted ratio
    # (the requirement derives from Eq. 2's 86.5 dB weighted budget);
    # the unweighted flat-band ratio is reported alongside.
    weighted_noise_out = psophometric_rms(freqs, nr.output_psd)
    measured["snr_40db_db"] = 20.0 * math.log10(0.6 / weighted_noise_out)
    measured["snr_unweighted_db"] = snr_from_spectrum(freqs, nr.input_psd)

    # --- gain accuracy across codes ---
    gm = measure_gain_codes(design)
    measured["gain_error_db"] = gm.worst_error_db
    measured["gain_step_error_db"] = gm.worst_step_error_db

    # --- distortion at 0.2 Vp input (lowest gain keeps output in range) ---
    design.set_gain_code(0)
    thd = static_thd(
        design.circuit, "vin_p", "vin_n", design.outp, design.outn,
        amplitude=0.2, points=25 if opt.quick else 41,
    )
    measured["hd_0v2_db"] = 20.0 * math.log10(max(thd, 1e-12))
    design.set_gain_code(5)

    # --- PSRR over mismatch (matching-limited; see analysis.psrr) ---
    # A one-axis campaign replaces the old hand-rolled rebuild loop;
    # mc_seeds reproduces the legacy derivation (master rng -> child
    # seeds), so the Monte-Carlo population is numerically unchanged.
    trials = 2 if opt.quick else opt.psrr_trials
    psrr_spec = CampaignSpec(
        builder="micamp", corners=("tt",), temps_c=(25.0,),
        seeds=mc_seeds(trials, opt.seed), gain_codes=(5,),
        measurements=("psrr_1khz_db",), tech=tech,
    )
    psrr_values = run_campaign(psrr_spec).metric("psrr_1khz_db")
    measured["psrr_1khz_db"] = float(min(psrr_values))
    measured["psrr_1khz_median_db"] = float(np.median(psrr_values))

    # --- minimum supply: gain must hold within 0.5 dB of nominal ---
    nominal_gain = gm.measured_db[-1]

    measured["supply_min_v"] = binary_search_threshold(
        lambda s: gain_holds_at_supply(tech, s, nominal_gain),
        1.8, 3.0, tol=0.05 if opt.quick else 0.02
    )

    # --- layout area model ---
    measured["area_mm2"] = estimate_mic_amp_area_mm2(design)
    return measured


def characterize_power_buffer(
    tech: Technology,
    options: CharacterizationOptions | None = None,
    supply_total: float = 2.6,
) -> dict[str, float]:
    """Measure every Table 2 metric of the class-AB driver."""
    opt = options or CharacterizationOptions()
    vdd, vss = supply_total / 2.0, -supply_total / 2.0

    design = build_power_buffer(tech, feedback="inverting", load="resistive",
                                vdd=vdd, vss=vss)
    op = dc_operating_point(design.circuit)
    measured: dict[str, float] = {}
    measured["iq_ma"] = abs(op.i("vdd_src")) * 1e3

    # --- static transfer for the V_omax(HD) rows (differential drive) ---
    transfer = measure_static_transfer(
        design.circuit, "vsrc_p", "vsrc_n", design.outp, design.outn,
        amplitude=1.25 * supply_total, points=31 if opt.quick else 61,
    )
    # differential amplitudes where THD crosses the Table 2 levels
    a06 = amplitude_at_thd(transfer, 0.006, supply_total * 0.1, supply_total * 1.2)
    a03 = amplitude_at_thd(transfer, 0.003, supply_total * 0.1, supply_total * 1.2)
    # per-side peak = A_diff/2; margin to the rail in mV
    measured["vomax_hd06_vpp_diff"] = 2.0 * a06
    measured["vomax_hd03_vpp_diff"] = 2.0 * a03
    measured["vomax_margin_hd06_mv"] = (vdd - a06 / 2.0) * 1e3
    measured["vomax_margin_hd03_mv"] = (vdd - a03 / 2.0) * 1e3

    # --- THD at the Fig. 11 operating point: 4 Vpp diff, 50 ohm, 3 V ---
    d3 = build_power_buffer(tech, feedback="inverting", load="resistive",
                            vdd=1.5, vss=-1.5)
    t3 = measure_static_transfer(
        d3.circuit, "vsrc_p", "vsrc_n", d3.outp, d3.outn,
        amplitude=2.2, points=31 if opt.quick else 61,
    )
    measured["hd_4vpp_50ohm_pct"] = t3.thd(2.0) * 100.0

    # --- input range: where the unity follower's incremental gain holds.
    # "Rail-to-rail input" means the input *stage* keeps working, so the
    # criterion is the local slope d(out)/d(in) staying above half its
    # mid-range value — tracking-error thresholds would instead measure
    # the loop gain, which legitimately sags in single-pair operation.
    d_unity = build_power_buffer(tech, feedback="unity", load="none",
                                 vdd=vdd, vss=vss)
    levels = np.linspace(vss, vdd, 16 if opt.quick else 27)
    from repro.spice.sweeps import source_value_sweep

    ops = source_value_sweep(d_unity.circuit, "vsrc_p", levels, anchor=0.0)
    outs = np.array([op_u.v(d_unity.outp) for op_u in ops])
    slope = np.gradient(outs, levels)
    mid = float(np.median(slope[np.abs(levels) < 0.3 * supply_total]))
    # 0.5x threshold: the single-pair handoff region droops but works
    alive = slope >= 0.5 * mid
    usable = levels[alive]
    if usable.size >= 2:
        measured["input_range_frac"] = (usable.max() - usable.min()) / supply_total
    else:
        measured["input_range_frac"] = 0.0

    # --- slew rate (Fig. 9 configuration, 1 V step) ---
    d_sr = build_power_buffer(tech, feedback="inverting", load="resistive",
                              vdd=vdd, vss=vss)
    sr = measure_slew_rate(
        d_sr.circuit, "vsrc_p", "vsrc_n", d_sr.outp, d_sr.outn,
        step=1.0, duration=20e-6, dt=25e-9,
    )
    measured["slew_v_per_us"] = sr.slew_v_per_s / 1e6

    # --- PSRR over mismatch (campaign-driven, same seeds as before) ---
    trials = 2 if opt.quick else opt.psrr_trials
    psrr_spec = CampaignSpec(
        builder="powerbuffer", corners=("tt",), temps_c=(25.0,),
        supplies=(supply_total,), seeds=mc_seeds(trials, opt.seed),
        measurements=("psrr_1khz_db",), tech=tech,
    )
    psrr_values = run_campaign(psrr_spec).metric("psrr_1khz_db")
    measured["psrr_1khz_db"] = float(min(psrr_values))
    return measured


def iq_spread_over_conditions(
    tech: Technology,
    supplies: tuple[float, ...] = (2.8, 3.0, 4.0, 5.0),
    temps: tuple[float, ...] = CONSUMER_TEMPS_C,
    corners: tuple[str, ...] = ("tt", "ff", "ss"),
) -> dict[str, float]:
    """The paper's quiescent-current claim: "total supply current
    variations with temperature, process and supply ... is 15 % over a
    wide supply voltage range (2.8 V to 5 V)".  Returns min/max/nominal
    IQ of the buffer over the cross-product.

    This is the poster-child campaign: three declarative axes, one
    metric.  The engine walks the same corner -> supply -> temperature
    nesting the old triple loop used (one built circuit per
    corner/supply, one cold DC solve per temperature), so the values —
    and their order — are unchanged.
    """
    spec = CampaignSpec(
        builder="powerbuffer", corners=tuple(corners), temps_c=tuple(temps),
        supplies=tuple(supplies), measurements=("iq_ma",), tech=tech,
    )
    values = run_campaign(spec).metric("iq_ma")
    return {
        "iq_min_ma": float(min(values)),
        "iq_max_ma": float(max(values)),
        "iq_nominal_ma": float(np.median(values)),
        "spread_frac": float((max(values) - min(values)) / (2.0 * np.median(values))),
    }
