"""The sizing methodology of Secs. 2/3.2 as an executable procedure.

The paper argues its devices are sized *from the noise target backwards*:
Eq. 2 fixes the allowed input density, the budget is split between the
mechanisms of Eqs. 3-5, and each split term dictates a device quantity
(gm -> W/L and current; flicker -> gate area; network -> R_a; switch ->
Ron -> W/L).  This module performs that walk so tests can verify the
shipped :class:`~repro.circuits.micamp.MicAmpSizes` defaults actually
follow from the spec, and so users can re-derive sizes for other specs
(e.g. a 12-bit variant).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.dynamic_range import VoiceBandBudget
from repro.constants import BOLTZMANN, kelvin
from repro.pga.gain_control import GainControl
from repro.process.technology import Technology


@dataclass(frozen=True)
class BudgetSplit:
    """Fractions of the total input-referred noise *power* allocated to
    each mechanism.  Must sum to <= 1; headroom is design margin."""

    input_thermal: float = 0.40
    load_thermal: float = 0.12
    network: float = 0.27
    switches: float = 0.035
    flicker_band_avg: float = 0.17

    def total(self) -> float:
        return (self.input_thermal + self.load_thermal + self.network
                + self.switches + self.flicker_band_avg)


@dataclass
class MicAmpSizing:
    """Result of the sizing walk, with the intermediate quantities kept
    for inspection (they appear in DESIGN.md's methodology table)."""

    target_density: float              # [V/sqrt(Hz)] from Eq. 2
    gm_input: float                    # per input device [S]
    i_input: float                     # per input device [A]
    w_over_l_input: float
    w_input: float
    l_input: float
    gate_area_input_um2: float
    gm_load: float
    w_over_l_load: float
    w_load: float
    l_load: float
    r_a_max: float                     # bottom tap at max gain [ohm]
    r_total: float
    r_switch_on: float
    predicted_avg_nv: float
    notes: list[str] = field(default_factory=list)


def derive_mic_amp_sizing(
    tech: Technology,
    budget: VoiceBandBudget | None = None,
    split: BudgetSplit | None = None,
    i_pair: float = 0.8e-3,
    veff_input: float = 0.20,
    veff_load: float = 0.50,
    l_input: float = 8e-6,
    l_load: float = 25e-6,
    temp_c: float = 25.0,
) -> MicAmpSizing:
    """Walk Sec. 3.2: noise spec -> device sizes.

    ``i_pair`` is the current budget granted to each input pair (set by
    the Table 1 I_Q row); ``veff_*`` are the inversion-level choices the
    paper discusses qualitatively ("the actual sizes ... are the
    function of input voltage range, amplifier bandwidth, stability and
    noise requirements"); ``l_input`` is set by the loop-gain (gain
    accuracy) requirement, ``l_load`` by the N-flicker penalty.
    """
    bud = budget or VoiceBandBudget()
    spl = split or BudgetSplit()
    if spl.total() > 1.0 + 1e-9:
        raise ValueError(f"budget split sums to {spl.total():.3f} > 1")

    target = bud.required_noise_density()
    total_psd = target**2
    kt = BOLTZMANN * kelvin(temp_c)
    notes: list[str] = []

    # --- input pair: 4 devices, Eq. 3 thermal ---
    psd_inputs = spl.input_thermal * total_psd
    gm_input = 4.0 * (8.0 / 3.0) * kt / psd_inputs
    i_input = i_pair / 2.0
    # gm = 2*I/Veff in strong inversion (the paper's operating region
    # target); W/L then follows from the square law with the slope factor.
    veff_needed = 2.0 * i_input / gm_input
    if veff_needed < veff_input:
        notes.append(
            f"gm target needs V_eff={veff_needed:.3f} < chosen {veff_input:.2f}; "
            "W/L set by the gm requirement"
        )
    w_over_l_input = gm_input**2 * tech.pmos.n_slope / (2.0 * tech.pmos.kp * i_input)
    w_input = w_over_l_input * l_input
    area_um2 = (w_input * 1e6) * (l_input * 1e6)

    # --- flicker check: does the area meet the flicker share? ---
    psd_flicker_budget = spl.flicker_band_avg * total_psd
    # band-average of A/f over [f1,f2] is A*ln(f2/f1)/(f2-f1)
    f1, f2 = 300.0, 3400.0
    band_factor = math.log(f2 / f1) / (f2 - f1)
    a_allowed = psd_flicker_budget / band_factor
    a_inputs = 4.0 * tech.pmos.kf / (tech.pmos.cox * w_input * l_input)
    if a_inputs > a_allowed:
        scale = a_inputs / a_allowed
        notes.append(
            f"flicker requires {scale:.2f}x more gate area than the thermal "
            f"W/L provides; widen L and W together"
        )

    # --- loads: 2 devices at (gm_load/gm_input)^2 weighting ---
    psd_loads = spl.load_thermal * total_psd
    gm_load = psd_loads * gm_input**2 / (2.0 * (8.0 / 3.0) * kt)
    i_load = i_pair  # each load carries both pairs' half-currents
    w_over_l_load = gm_load**2 * tech.nmos.n_slope / (2.0 * tech.nmos.kp * i_load)
    _ = veff_load  # recorded in the signature for the methodology text
    w_load = w_over_l_load * l_load

    # --- network: Eq. 4 term, two strings ---
    psd_network = spl.network * total_psd
    r_par_max = psd_network / (2.0 * 4.0 * kt)
    gain_max = 100.0
    # at max gain R_a || R_f ~ R_a, and R_total = gain * R_a
    r_a_max = r_par_max
    r_total = gain_max * r_a_max

    # --- switches: Eq. 5, two on ---
    psd_switch = spl.switches * total_psd
    r_on = psd_switch / (2.0 * 4.0 * kt)

    # --- predicted achieved average ---
    psd_pred = (
        4.0 * (8.0 / 3.0) * kt / gm_input
        + 2.0 * (8.0 / 3.0) * kt * gm_load / gm_input**2
        + 2.0 * 4.0 * kt * r_a_max
        + 2.0 * 4.0 * kt * r_on
        + a_inputs * band_factor
    )
    predicted = math.sqrt(psd_pred)

    return MicAmpSizing(
        target_density=target,
        gm_input=gm_input,
        i_input=i_input,
        w_over_l_input=w_over_l_input,
        w_input=w_input,
        l_input=l_input,
        gate_area_input_um2=area_um2,
        gm_load=gm_load,
        w_over_l_load=w_over_l_load,
        w_load=w_load,
        l_load=l_load,
        r_a_max=r_a_max,
        r_total=r_total,
        r_switch_on=r_on,
        predicted_avg_nv=predicted * 1e9,
        notes=notes,
    )


def sizing_to_mic_amp_sizes(sizing: MicAmpSizing, base=None):
    """Convert a sizing walk into a :class:`MicAmpSizes` (keeping the
    non-noise-critical fields of ``base`` or the defaults)."""
    from dataclasses import replace

    from repro.circuits.micamp import MicAmpSizes

    base = base or MicAmpSizes()
    return replace(
        base,
        w_input=sizing.w_input,
        l_input=sizing.l_input,
        w_load=sizing.w_load,
        l_load=sizing.l_load,
        r_switch_on=sizing.r_switch_on,
    )


def gain_control_for_sizing(sizing: MicAmpSizing) -> GainControl:
    """The gain network matching a sizing walk."""
    return GainControl(r_total=sizing.r_total)


#: The flattened sizing-walk inputs (paper defaults) that
#: :func:`mic_amp_parts_from_params` accepts.  The optimizer's mic-amp
#: design space and the ``micamp_sized`` campaign builder both speak
#: this vocabulary, so a candidate design travels as a plain
#: ``{name: float}`` dict (picklable through ``CampaignSpec.builder_kwargs``).
MIC_AMP_PARAM_DEFAULTS: dict[str, float] = {
    "split_input_thermal": BudgetSplit.input_thermal,
    "split_load_thermal": BudgetSplit.load_thermal,
    "split_network": BudgetSplit.network,
    "split_switches": BudgetSplit.switches,
    "split_flicker": BudgetSplit.flicker_band_avg,
    "i_pair": 0.8e-3,
    "l_input": 8e-6,
    "l_load": 25e-6,
    "r_total": 25e3,
}


def mic_amp_parts_from_params(
    tech: Technology,
    params: dict[str, float],
    budget: VoiceBandBudget | None = None,
):
    """Flattened sizing-walk inputs -> (:class:`MicAmpSizes`, :class:`GainControl`).

    ``params`` may supply any subset of :data:`MIC_AMP_PARAM_DEFAULTS`;
    the five ``split_*`` fractions form the :class:`BudgetSplit` of the
    Eqs. 3-5 walk, ``i_pair``/``l_input``/``l_load`` are the free device
    choices of :func:`derive_mic_amp_sizing`, and ``r_total`` sets the
    Fig. 5 string directly (overriding the walk's Eq. 4 derivation, so
    the network can be traded against loop gain independently of the
    split).  Raises ``ValueError`` for unknown names or a split > 1 —
    the optimizer treats both as infeasible candidates.
    """
    unknown = sorted(set(params) - set(MIC_AMP_PARAM_DEFAULTS))
    if unknown:
        raise ValueError(
            f"unknown sizing parameters {unknown}; "
            f"available: {sorted(MIC_AMP_PARAM_DEFAULTS)}"
        )
    p = {**MIC_AMP_PARAM_DEFAULTS, **{k: float(v) for k, v in params.items()}}
    split = BudgetSplit(
        input_thermal=p["split_input_thermal"],
        load_thermal=p["split_load_thermal"],
        network=p["split_network"],
        switches=p["split_switches"],
        flicker_band_avg=p["split_flicker"],
    )
    sizing = derive_mic_amp_sizing(
        tech, budget=budget, split=split,
        i_pair=p["i_pair"], l_input=p["l_input"], l_load=p["l_load"],
    )
    from dataclasses import replace

    sizes = replace(sizing_to_mic_amp_sizes(sizing), i_pair=p["i_pair"])
    return sizes, GainControl(r_total=p["r_total"])
