"""repro: reproduction of Pletersek/Strle/Trontelj (1995).

"Low supply voltage, low noise fully differential programmable gain
amplifiers" — the low-voltage analogue front-end for digital voice
terminals (2.6 V, 1.2 um CMOS), rebuilt as a Python library:

* :mod:`repro.spice`      — a from-scratch MNA circuit simulator
  (DC/AC/transient/adjoint-noise) standing in for the authors' SPICE
  decks and measurement bench;
* :mod:`repro.process`    — the reconstructed 1.2 um CMOS technology
  (corners, temperature, Pelgrom mismatch);
* :mod:`repro.circuits`   — the paper's circuits: bias (Fig. 2), fully
  differential bandgap (Fig. 3), DDA microphone amplifier with
  programmable gain (Figs. 4/5) and the class-AB differential power
  buffer (Figs. 8/9);
* :mod:`repro.analysis`   — noise budget (Eqs. 2-5), psophometric S/N,
  distortion, PSRR/CMRR, gain accuracy;
* :mod:`repro.pga`        — the public programmable-gain front-end API,
  sizing methodology and full characterisation (Tables 1 and 2);
* :mod:`repro.frontend`   — behavioural sigma-delta voice chain (Fig. 1);
* :mod:`repro.layout`     — area and matching models (Figs. 6/10).
"""

from repro.process.technology import CMOS12, Technology
from repro.pga.gain_control import GainControl
from repro.pga.specs import MIC_AMP_SPEC, POWER_BUFFER_SPEC

__version__ = "1.0.0"

__all__ = [
    "CMOS12",
    "GainControl",
    "MIC_AMP_SPEC",
    "POWER_BUFFER_SPEC",
    "Technology",
    "__version__",
]
