"""Mismatch as a function of placement: Pelgrom + gradients.

Combines the area-law random component with the deterministic gradient
component a placement fails to cancel.  This closes the paper's layout
argument quantitatively: the offset of the microphone amplifier at 40 dB
eats modulator dynamic range, so the input quad must be common-centroid
(gradient term -> 0) *and* large (Pelgrom term small).
"""

from __future__ import annotations

import numpy as np

from repro.layout.common_centroid import Placement, worst_gradient_imbalance
from repro.process.mismatch import PelgromModel
from repro.process.technology import Technology


def placement_sigma_vt(
    tech: Technology,
    placement: Placement,
    w_total: float,
    l_total: float,
    polarity: str = "pmos",
    unit_pitch_um: float = 50.0,
) -> dict[str, float]:
    """Standard deviation and gradient bound of a matched pair's dVT.

    Returns the random (Pelgrom) sigma, the worst-direction deterministic
    gradient error for the placement, and their RSS combination, all in
    volts for the *pair difference*.
    """
    matching = tech.matching
    avt = matching.avt_pmos_mv_um if polarity == "pmos" else matching.avt_nmos_mv_um
    model = PelgromModel(avt, matching.abeta_pct_um)
    sigma_pair = model.sigma_vt(w_total, l_total) * np.sqrt(2.0)

    imbalance_pitches = worst_gradient_imbalance(placement)
    gradient = (
        imbalance_pitches * unit_pitch_um * matching.gradient_vt_uv_per_um * 1e-6
    )
    return {
        "sigma_random_v": float(sigma_pair),
        "gradient_worst_v": float(gradient),
        "combined_v": float(np.sqrt(sigma_pair**2 + gradient**2)),
    }


def worst_case_offset(
    sigma_vt_pair: float,
    gain_db: float = 40.0,
    confidence_sigmas: float = 3.0,
) -> float:
    """Output-referred worst-case offset [V] at a gain setting.

    The introduction's warning: "the offset voltage of the microphone
    amplifier amplified by 40 dB maximum gain reduces the useful dynamic
    range of the A/D converter".
    """
    gain = 10.0 ** (gain_db / 20.0)
    return confidence_sigmas * sigma_vt_pair * gain


def dynamic_range_loss_db(
    offset_out: float,
    full_scale_rms: float = 0.6,
) -> float:
    """Dynamic-range loss [dB] caused by an output offset.

    The usable swing shrinks from FS to FS - |offset| (the modulator
    clips earlier on one side).
    """
    fs_peak = full_scale_rms * np.sqrt(2.0)
    usable = max(fs_peak - abs(offset_out), 1e-12)
    return float(20.0 * np.log10(fs_peak / usable))
