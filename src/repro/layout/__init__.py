"""Layout models: area estimation (Figs. 6/10), common-centroid
placement and the matching consequences of placement."""

from repro.layout.area import (
    AreaBreakdown,
    estimate_area_mm2,
    estimate_mic_amp_area_mm2,
    estimate_power_buffer_area_mm2,
)
from repro.layout.common_centroid import (
    Placement,
    common_centroid_pattern,
    gradient_imbalance,
    interdigitated_pattern,
)
from repro.layout.matching import placement_sigma_vt, worst_case_offset

__all__ = [
    "AreaBreakdown",
    "Placement",
    "common_centroid_pattern",
    "estimate_area_mm2",
    "estimate_mic_amp_area_mm2",
    "estimate_power_buffer_area_mm2",
    "gradient_imbalance",
    "interdigitated_pattern",
    "placement_sigma_vt",
    "worst_case_offset",
]
