"""Common-centroid placement (the paper's "electrically symmetrical
layout" / "common centroid geometry with gates connected from both sides
by metal wire").

A placement assigns unit devices of ``n`` matched transistors to a 2-D
grid.  Quality is judged by how well a linear process gradient cancels:
for a perfect common centroid the weighted centroids of every device
coincide, so first-order gradients contribute zero mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Placement:
    """A grid of unit-device assignments.

    ``grid[r][c]`` is the index of the matched device owning that unit
    (or -1 for a dummy).
    """

    grid: np.ndarray
    n_devices: int

    def __post_init__(self) -> None:
        self.grid = np.asarray(self.grid, dtype=int)
        present = set(self.grid.ravel().tolist()) - {-1}
        if present != set(range(self.n_devices)):
            raise ValueError(
                f"grid uses devices {sorted(present)}, expected 0..{self.n_devices - 1}"
            )

    @property
    def shape(self) -> tuple[int, int]:
        return self.grid.shape

    def units_of(self, device: int) -> np.ndarray:
        """(row, col) coordinates of a device's unit cells."""
        rows, cols = np.nonzero(self.grid == device)
        return np.stack([rows, cols], axis=1)

    def centroid(self, device: int) -> np.ndarray:
        """Centroid of a device's units in grid coordinates."""
        units = self.units_of(device)
        if len(units) == 0:
            raise ValueError(f"device {device} has no units")
        return units.mean(axis=0)


def interdigitated_pattern(n_devices: int, units_each: int) -> Placement:
    """1-D A-B-B-A...-style interdigitation (two devices) or round-robin
    with mirrored second half (n devices), the common 1-D string layout
    for the Fig. 5 resistor arrays."""
    total = n_devices * units_each
    half = []
    for k in range(total // 2):
        half.append(k % n_devices)
    row = half + half[::-1]
    if len(row) < total:
        row.append((total // 2) % n_devices)
    return Placement(np.asarray([row]), n_devices)


def common_centroid_pattern(n_devices: int = 2, units_each: int = 4) -> Placement:
    """2-D common-centroid for matched pairs/quads.

    For two devices with 4 units each this is the classic cross-coupled
    quad; for more devices the pattern tiles diagonally mirrored blocks.
    """
    if units_each % 2 != 0:
        raise ValueError("units_each must be even for a common centroid")
    if n_devices == 2 and units_each == 2:
        grid = [[0, 1], [1, 0]]
    elif n_devices == 2 and units_each == 4:
        grid = [[0, 1, 1, 0], [1, 0, 0, 1]]
    else:
        # General construction: a row-cycled block mirrored about both axes.
        cols = n_devices
        rows = units_each
        block = np.empty((rows // 2, cols), dtype=int)
        for r in range(rows // 2):
            for c in range(cols):
                block[r, c] = (c + r) % n_devices
        mirrored = block[::-1, ::-1]
        grid = np.vstack([block, mirrored])
    return Placement(np.asarray(grid), n_devices)


def gradient_imbalance(placement: Placement, direction: tuple[float, float] = (1.0, 0.0)) -> float:
    """Worst pairwise centroid separation projected on a gradient
    direction [unit-cell pitches].  Zero means first-order gradient
    immunity — the property the paper's layout sections insist on."""
    direction_arr = np.asarray(direction, dtype=float)
    norm = np.linalg.norm(direction_arr)
    if norm == 0.0:
        raise ValueError("gradient direction must be non-zero")
    direction_arr = direction_arr / norm
    centroids = [placement.centroid(d) for d in range(placement.n_devices)]
    projections = [float(np.dot(c, direction_arr)) for c in centroids]
    return max(projections) - min(projections)


def worst_gradient_imbalance(placement: Placement, n_angles: int = 36) -> float:
    """Gradient imbalance maximised over direction."""
    worst = 0.0
    for theta in np.linspace(0.0, np.pi, n_angles, endpoint=False):
        worst = max(
            worst,
            gradient_imbalance(placement, (np.cos(theta), np.sin(theta))),
        )
    return worst
