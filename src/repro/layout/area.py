"""Layout-area estimation (the Fig. 6 / Fig. 10 experiments).

The paper reports the microphone amplifier at 1.1 mm^2 and attributes it
to the noise requirements ("a relatively large area ... and supply
current are needed to achieve the noise requirements").  The model here
walks the netlist: gate area for transistors, squares for poly
resistors, plate area for capacitors, and an empirically calibrated
overhead multiplier for wells, guard rings, contacts and routing —
1.2 um two-metal layouts of analogue cells typically land at 1.5-2x
their raw device area, and the paper's own numbers back-solve to ~1.7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.process.technology import Technology
from repro.spice.elements import Capacitor, Mosfet, Resistor
from repro.spice.netlist import Circuit

#: Calibrated routing/well/guard-ring multiplier for analogue cells.
ANALOG_OVERHEAD = 1.7


@dataclass
class AreaBreakdown:
    """Per-category silicon area [um^2]."""

    mosfets: float = 0.0
    resistors: float = 0.0
    capacitors: float = 0.0
    overhead_factor: float = ANALOG_OVERHEAD
    per_device: dict[str, float] = field(default_factory=dict)

    @property
    def raw_um2(self) -> float:
        return self.mosfets + self.resistors + self.capacitors

    @property
    def total_um2(self) -> float:
        return self.raw_um2 * self.overhead_factor

    @property
    def total_mm2(self) -> float:
        return self.total_um2 * 1e-12 * 1e6  # um^2 -> mm^2

    def format(self) -> str:
        return (
            f"MOS {self.mosfets / 1e3:.0f}k um2, R {self.resistors / 1e3:.0f}k um2, "
            f"C {self.capacitors / 1e3:.0f}k um2, x{self.overhead_factor:.2f} "
            f"-> {self.total_mm2:.2f} mm^2"
        )


def estimate_area_mm2(
    circuit: Circuit,
    tech: Technology,
    resistor_width_um: float = 4.0,
    overhead: float = ANALOG_OVERHEAD,
) -> AreaBreakdown:
    """Estimate the silicon area of a circuit from its elements.

    MOSFET area includes source/drain diffusions (W * 2*ldiff beyond the
    gate); resistors are drawn at ``resistor_width_um``; capacitors use
    the poly-poly density.  Supply/stimulus sources are ignored — they
    are off-chip.
    """
    bd = AreaBreakdown(overhead_factor=overhead)
    for el in circuit:
        if isinstance(el, Mosfet):
            gate = el.w * el.l * el.m
            diff = el.w * 2.0 * el.model.ldiff * el.m
            area = (gate + diff) * 1e12  # m^2 -> um^2
            bd.mosfets += area
            bd.per_device[el.name] = area
        elif isinstance(el, Resistor):
            if el.value >= 1e6 or el.value <= 10.0:
                continue  # start-up legs / net ties, not drawn as poly
            area = tech.poly.area_um2(el.value, resistor_width_um)
            bd.resistors += area
            bd.per_device[el.name] = area
        elif isinstance(el, Capacitor):
            if el.value > 1e-9:
                continue  # external load caps
            area = el.value / tech.cap_per_area * 1e12
            bd.capacitors += area
            bd.per_device[el.name] = area
    return bd


def estimate_mic_amp_area_mm2(design) -> float:
    """Area of a built microphone amplifier [mm^2] (paper: 1.1 mm^2)."""
    return estimate_area_mm2(design.circuit, design.tech).total_mm2


def estimate_power_buffer_area_mm2(design) -> float:
    """Area of a built power buffer [mm^2] (Fig. 10)."""
    return estimate_area_mm2(design.circuit, design.tech).total_mm2
