"""Deterministic fault injection + the stack's shared failure taxonomy.

The store/campaign/serve stack makes hard promises (byte-identical
results, exactly-once execution, restart-safe journals); this package
is how those promises get *attacked* on purpose.  See
:mod:`repro.faults.harness` for the injection machinery and
``tests/faults/`` for the chaos suite that drives it through the
public APIs.

Two shared exception tuples classify failures consistently across
layers:

* :data:`NUMERIC_FAILURES` — a *design* failed numerically (no
  operating point, collapsed overdrive, singular matrix, domain
  error).  Legitimate "does not operate" verdicts: characterization
  sweeps and the optimizer treat these as infeasible points.
* :data:`TRANSIENT_INFRA_ERRORS` — the *infrastructure* failed
  (broken pool, exhausted memory, I/O).  Says nothing about the
  design; must never be cached as its verdict, and must propagate (or
  be retried) rather than be swallowed.
"""

from numpy.linalg import LinAlgError

from concurrent.futures import BrokenExecutor

from repro.faults.harness import (
    FAULTS_ENV,
    FaultCrash,
    FaultError,
    FaultPlan,
    FaultRule,
    activate,
    active_plan,
    arm_from_env,
    deactivate,
    fault_point,
    plan_from_env,
)
from repro.spice.dc import ConvergenceError

#: A design failed numerically — expected, feasibility-relevant.
NUMERIC_FAILURES = (ConvergenceError, ValueError, ArithmeticError,
                    LinAlgError)

#: The infrastructure failed — transient, never a design verdict.
TRANSIENT_INFRA_ERRORS = (BrokenExecutor, MemoryError, OSError)

__all__ = [
    "FAULTS_ENV",
    "FaultCrash",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "NUMERIC_FAILURES",
    "TRANSIENT_INFRA_ERRORS",
    "activate",
    "active_plan",
    "arm_from_env",
    "deactivate",
    "fault_point",
    "plan_from_env",
]
