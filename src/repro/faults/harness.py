"""Deterministic fault injection: named points, seeded triggers, zero
overhead when disarmed.

The production code is instrumented with **fault points** — bare calls
like ``fault_point("store.payload_read", key=key)`` at the places where
the real world fails: payload reads, sqlite transactions, pool chunk
dispatch, journal writes, job execution.  Disarmed (the default), a
fault point is a single module-global ``None`` check; the chaos suite
and ``bench_serve.py --chaos`` confirm the instrumented hot paths keep
their benchmark floors.

Armed, an active :class:`FaultPlan` matches each firing point against
its :class:`FaultRule`\\ s.  A rule triggers an *action* — raise an
exception, sleep (hang simulation), kill the process, or run a caller
callable — gated by deterministic knobs:

``times``
    trigger at most N times (the workhorse for "fail once, then work");
``after``
    skip the first N matching hits;
``when``
    a predicate over the fault point's keyword payload (e.g. trigger
    only on ``attempt == 0`` — how the pool-kill tests stay
    deterministic across retries);
``probability``
    a Bernoulli draw from the **plan's seeded RNG** — the same seed
    replays the same fault schedule, which is what lets the chaos
    benchmark quote a reproducible 5 % fault rate.

Arming is scoped three ways: the :meth:`FaultPlan.activate` context
manager (tests), :func:`activate`/:func:`deactivate` (long-lived
services), or the ``REPRO_FAULTS`` environment variable parsed at
import time (subprocess / CLI chaos runs) — see :func:`plan_from_env`
for the compact spec grammar.

Every trigger is recorded on ``plan.log`` so tests can assert not just
that the system survived, but that the fault actually fired.
"""

from __future__ import annotations

import fnmatch
import os
import random
import threading
import time

#: Environment variable holding a compact fault spec (see plan_from_env).
FAULTS_ENV = "REPRO_FAULTS"


class FaultError(RuntimeError):
    """Default exception a triggered rule raises."""


class FaultCrash(BaseException):
    """An *untrappable* injected crash (``BaseException``, like
    ``SystemExit``): sails through ``except Exception`` job isolation,
    killing the worker thread the way a real interpreter-level failure
    would.  The serve watchdog tests inject this to prove dead workers
    are detected and replaced."""


class FaultRule:
    """One trigger: which point, when, and what happens.

    ``raises`` may be an exception class or instance; ``sleep`` delays
    (before raising, if both are set); ``kill`` hard-exits the process
    via ``os._exit`` — only meaningful inside pool worker processes;
    ``action`` is an arbitrary ``callable(ctx)`` escape hatch.
    """

    def __init__(self, point: str, *, raises=None, message: str | None = None,
                 probability: float = 1.0, times: int | None = None,
                 after: int = 0, when=None, sleep: float = 0.0,
                 kill: bool = False, action=None) -> None:
        if not (0.0 <= probability <= 1.0):
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if times is not None and times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        if raises is None and not sleep and not kill and action is None:
            raises = FaultError
        self.point = point
        self.raises = raises
        self.message = message
        self.probability = probability
        self.times = times
        self.after = after
        self.when = when
        self.sleep = sleep
        self.kill = kill
        self.action = action
        #: Matching fault-point firings seen (triggered or not).
        self.hits = 0
        #: Times the rule actually triggered its action.
        self.triggered = 0

    def matches(self, point: str) -> bool:
        return point == self.point or fnmatch.fnmatchcase(point, self.point)

    def _exception(self, point: str) -> BaseException | None:
        if self.raises is None:
            return None
        if isinstance(self.raises, BaseException):
            return self.raises
        return self.raises(self.message
                           or f"injected fault at {point!r}")

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (f"FaultRule({self.point!r}, triggered={self.triggered}"
                f"/{self.hits} hits)")


class FaultPlan:
    """A seeded set of rules plus the trigger log.

    Thread-safe: eligibility bookkeeping (hit counts, probability draws)
    happens under one lock, so concurrent serve workers see a coherent
    ``times`` budget.  Forked pool workers inherit the plan *by copy* —
    their counters diverge from the parent's, which is why child-side
    rules key off the deterministic ``when`` payload (attempt numbers)
    rather than shared counts.
    """

    def __init__(self, rules, seed: int = 0) -> None:
        self.rules = list(rules)
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        #: Trigger records: ``(point, rule_index, ctx)`` in firing order.
        self.log: list[tuple[str, int, dict]] = []

    def triggered(self, point: str | None = None) -> int:
        """Total triggers, optionally only for one point (glob)."""
        with self._lock:
            if point is None:
                return len(self.log)
            return sum(1 for p, _i, _c in self.log
                       if p == point or fnmatch.fnmatchcase(p, point))

    def fire(self, point: str, ctx: dict) -> None:
        """Evaluate every rule against one fault-point firing."""
        for index, rule in enumerate(self.rules):
            if not rule.matches(point):
                continue
            with self._lock:
                rule.hits += 1
                if rule.hits <= rule.after:
                    continue
                if rule.times is not None and rule.triggered >= rule.times:
                    continue
                if rule.when is not None and not rule.when(ctx):
                    continue
                if rule.probability < 1.0 and \
                        self._rng.random() >= rule.probability:
                    continue
                rule.triggered += 1
                self.log.append((point, index, dict(ctx)))
            # Actions run outside the lock: sleeps must not serialize
            # other points, and raises must not poison the plan.
            if rule.sleep:
                time.sleep(rule.sleep)
            if rule.action is not None:
                rule.action(ctx)
            if rule.kill:
                os._exit(86)            # simulated hard worker death
            exc = rule._exception(point)
            if exc is not None:
                raise exc

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def activate(self) -> "_ActivePlan":
        """Context manager arming this plan (restores the previous one
        on exit)."""
        return _ActivePlan(self)


class _ActivePlan:
    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._previous: FaultPlan | None = None

    def __enter__(self) -> FaultPlan:
        self._previous = activate(self.plan)
        return self.plan

    def __exit__(self, *exc) -> None:
        _set_active(self._previous)


#: The single armed plan; ``None`` keeps every fault point inert.
_ACTIVE: FaultPlan | None = None


def _set_active(plan: FaultPlan | None) -> None:
    global _ACTIVE
    _ACTIVE = plan


def activate(plan: FaultPlan) -> FaultPlan | None:
    """Arm ``plan`` globally; returns the previously armed plan."""
    previous = _ACTIVE
    _set_active(plan)
    return previous


def deactivate() -> None:
    """Disarm fault injection entirely."""
    _set_active(None)


def active_plan() -> FaultPlan | None:
    return _ACTIVE


def fault_point(name: str, **ctx) -> None:
    """Declare a named fault point.  Disarmed this is one global load
    and a falsy check — cheap enough for per-payload store reads."""
    plan = _ACTIVE
    if plan is None:
        return
    plan.fire(name, ctx)


# ----------------------------------------------------------------------
# Environment arming
# ----------------------------------------------------------------------
#: Exception names resolvable from an env spec.
_ENV_EXCEPTIONS = {
    "FaultError": FaultError,
    "FaultCrash": FaultCrash,
    "OSError": OSError,
    "IOError": OSError,
    "MemoryError": MemoryError,
    "TimeoutError": TimeoutError,
    "ValueError": ValueError,
    "RuntimeError": RuntimeError,
}


def _env_exception(name: str):
    if name in _ENV_EXCEPTIONS:
        return _ENV_EXCEPTIONS[name]
    if name == "sqlite3.OperationalError":
        import sqlite3

        return sqlite3.OperationalError
    raise ValueError(
        f"unknown exception {name!r} in {FAULTS_ENV}; one of "
        f"{sorted(_ENV_EXCEPTIONS) + ['sqlite3.OperationalError']}")


def plan_from_env(spec: str) -> FaultPlan:
    """Parse a compact ``REPRO_FAULTS`` spec into a plan.

    Grammar (semicolon-separated rules, colon-separated options)::

        [seed=N;]point[:raise=ExcName][:p=0.05][:times=N][:after=N]
                      [:sleep=S][:kill]

    Example — 5 % locked-index faults plus one journal-write crash::

        REPRO_FAULTS="seed=7;store.index:raise=sqlite3.OperationalError:p=0.05;jobs.journal_write:times=1"
    """
    seed = 0
    rules = []
    parts = [p.strip() for p in spec.split(";") if p.strip()]
    for part in parts:
        if part.startswith("seed="):
            seed = int(part[5:])
            continue
        fields = part.split(":")
        kwargs: dict = {"point": fields[0]}
        for opt in fields[1:]:
            if opt == "kill":
                kwargs["kill"] = True
            elif opt.startswith("raise="):
                kwargs["raises"] = _env_exception(opt[6:])
            elif opt.startswith("p="):
                kwargs["probability"] = float(opt[2:])
            elif opt.startswith("times="):
                kwargs["times"] = int(opt[6:])
            elif opt.startswith("after="):
                kwargs["after"] = int(opt[6:])
            elif opt.startswith("sleep="):
                kwargs["sleep"] = float(opt[6:])
            else:
                raise ValueError(
                    f"unknown option {opt!r} in {FAULTS_ENV} rule {part!r}")
        rules.append(FaultRule(**kwargs))
    return FaultPlan(rules, seed=seed)


def arm_from_env(environ=None) -> FaultPlan | None:
    """Arm from ``$REPRO_FAULTS`` if set; returns the armed plan."""
    spec = (os.environ if environ is None else environ).get(FAULTS_ENV)
    if not spec:
        return None
    plan = plan_from_env(spec)
    activate(plan)
    return plan


# Subprocess / CLI chaos runs arm from the environment the moment any
# instrumented module imports this one; with REPRO_FAULTS unset this is
# a no-op and every fault point stays inert.
arm_from_env()
