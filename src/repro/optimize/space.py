"""Design spaces: named, bounded, quantized parameter vectors.

A :class:`DesignSpace` is the optimizer's coordinate system.  Each
:class:`Parameter` carries physical bounds, an optional log scale (for
quantities like currents and resistances that span decades) and an
optional quantization step; the optimizers work in the unit cube
``[0, 1]^d`` and the space maps whole *populations* between unit and
physical coordinates with vectorised NumPy transforms.

Quantization serves two masters: it models real design grids (currents
in 25 uA steps, lengths on the litho grid) and it makes the evaluation
cache effective — :meth:`DesignSpace.key` of a quantized vector is the
cache key of :class:`~repro.optimize.evaluate.CandidateEvaluator`, so
two optimizer moves that land in the same grid cell pay for one
simulation.

:func:`mic_amp_design_space` is the shipped instance: the Sec. 3.2
sizing-walk inputs of :func:`repro.pga.design.mic_amp_parts_from_params`
(Eqs. 3-5 budget fractions, input-pair current, channel lengths, the
Fig. 5 string) with the paper's values as defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Parameter:
    """One named axis of a design space.

    ``step`` quantizes in physical units for linear parameters and in
    *decades* for log parameters (a step of 0.05 is ~12 % resolution —
    about what a layout re-spin can actually hit).  ``default`` is the
    warm-start value (the paper's design point for the mic-amp space).
    """

    name: str
    lower: float
    upper: float
    default: float | None = None
    log: bool = False
    step: float | None = None

    def __post_init__(self) -> None:
        if not self.lower < self.upper:
            raise ValueError(
                f"{self.name}: bounds must satisfy lower < upper, "
                f"got [{self.lower}, {self.upper}]"
            )
        if self.log and self.lower <= 0.0:
            raise ValueError(f"{self.name}: log-scale bounds must be positive")
        if self.step is not None and self.step <= 0.0:
            raise ValueError(f"{self.name}: step must be positive")
        if self.default is not None and not (
            self.lower <= self.default <= self.upper
        ):
            raise ValueError(
                f"{self.name}: default {self.default} outside "
                f"[{self.lower}, {self.upper}]"
            )


class DesignSpace:
    """An ordered set of parameters with vectorised coordinate maps.

    All array methods accept ``(d,)`` vectors or ``(n, d)`` populations
    and preserve the shape; physical vectors are always returned
    **quantized and clipped**, so every vector the optimizers hand to an
    evaluator lies on the design grid.
    """

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        if not parameters:
            raise ValueError("a design space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names in {names}")
        self.parameters = tuple(parameters)
        self.names = tuple(names)
        self._log = np.array([p.log for p in self.parameters])
        lo = np.array([p.lower for p in self.parameters], dtype=float)
        hi = np.array([p.upper for p in self.parameters], dtype=float)
        # Internal coordinates: log10 for log axes, identity otherwise
        # (the inner where keeps log10 off linear axes' possibly <= 0 bounds).
        self._tlo = np.where(self._log, np.log10(np.where(self._log, lo, 1.0)), lo)
        self._thi = np.where(self._log, np.log10(np.where(self._log, hi, 1.0)), hi)
        self._step = np.array([np.nan if p.step is None else p.step
                               for p in self.parameters], dtype=float)
        self.lower = lo
        self.upper = hi

    @property
    def dim(self) -> int:
        return len(self.parameters)

    # ------------------------------------------------------------------
    # Coordinate maps (vectorised over leading axes)
    # ------------------------------------------------------------------
    def _to_internal(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return np.where(self._log, np.log10(np.maximum(x, 1e-300)), x)

    def _from_internal(self, t: np.ndarray) -> np.ndarray:
        return np.where(self._log, 10.0 ** t, t)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Snap physical vectors to the design grid and clip to bounds."""
        t = self._to_internal(x)
        t = np.clip(t, self._tlo, self._thi)
        has_step = np.isfinite(self._step)
        step = np.where(has_step, self._step, 1.0)
        snapped = self._tlo + np.round((t - self._tlo) / step) * step
        t = np.where(has_step, np.minimum(snapped, self._thi), t)
        return self._from_internal(t)

    def from_unit(self, u: np.ndarray) -> np.ndarray:
        """Unit-cube coordinates -> quantized physical vectors."""
        u = np.clip(np.asarray(u, dtype=float), 0.0, 1.0)
        return self.quantize(self._from_internal(self._tlo + u * (self._thi - self._tlo)))

    def to_unit(self, x: np.ndarray) -> np.ndarray:
        """Physical vectors -> unit-cube coordinates."""
        t = np.clip(self._to_internal(x), self._tlo, self._thi)
        return (t - self._tlo) / (self._thi - self._tlo)

    def unit_step(self) -> np.ndarray:
        """One quantization step per axis, in unit-cube units (axes
        without a step get 1/64 — the coordinate-descent probe size)."""
        span = self._thi - self._tlo
        return np.where(np.isfinite(self._step), self._step, span / 64.0) / span

    # ------------------------------------------------------------------
    # Named access
    # ------------------------------------------------------------------
    def default(self) -> np.ndarray:
        """The warm-start vector (quantized); parameters without a
        default sit at the geometric/arithmetic centre of their range."""
        centre = self._from_internal(0.5 * (self._tlo + self._thi))
        x = np.array([c if p.default is None else p.default
                      for p, c in zip(self.parameters, centre)])
        return self.quantize(x)

    def as_dict(self, x: np.ndarray) -> dict[str, float]:
        x = np.asarray(x, dtype=float)
        if x.shape != (self.dim,):
            raise ValueError(f"expected a ({self.dim},) vector, got {x.shape}")
        return {name: float(v) for name, v in zip(self.names, x)}

    def from_dict(self, values: dict[str, float]) -> np.ndarray:
        """A (possibly partial) ``{name: value}`` dict -> quantized vector,
        missing names filled from :meth:`default`."""
        unknown = sorted(set(values) - set(self.names))
        if unknown:
            raise KeyError(f"unknown parameters {unknown}; have {list(self.names)}")
        base = self.default()
        for i, name in enumerate(self.names):
            if name in values:
                base[i] = float(values[name])
        return self.quantize(base)

    def key(self, x: np.ndarray) -> tuple:
        """Hashable cache key of a design vector (quantized, rounded to
        12 significant digits so float noise cannot split cache lines)."""
        q = self.quantize(x)
        return tuple(float(f"{v:.12g}") for v in np.atleast_1d(q))


def mic_amp_design_space() -> DesignSpace:
    """The Sec. 3.2 sizing walk as a searchable space.

    Axes are the flattened inputs of
    :func:`repro.pga.design.mic_amp_parts_from_params`: the five Eq. 3-5
    budget fractions (their sum <= 1 is a *constraint*, enforced by the
    evaluator, not the box), the per-pair tail current, the two channel
    lengths and the Fig. 5 string total.  Defaults are the paper's
    point; log axes get a 0.02-decade grid (~5 % steps), fractions a
    0.005 grid.
    """
    frac = dict(step=0.005)
    geom = dict(log=True, step=0.02)
    return DesignSpace([
        Parameter("split_input_thermal", 0.10, 0.70, default=0.40, **frac),
        Parameter("split_load_thermal", 0.02, 0.30, default=0.12, **frac),
        Parameter("split_network", 0.05, 0.50, default=0.27, **frac),
        Parameter("split_switches", 0.01, 0.10, default=0.035, **frac),
        Parameter("split_flicker", 0.03, 0.40, default=0.17, **frac),
        Parameter("i_pair", 0.2e-3, 1.6e-3, default=0.8e-3, **geom),
        Parameter("l_input", 3e-6, 20e-6, default=8e-6, **geom),
        Parameter("l_load", 8e-6, 60e-6, default=25e-6, **geom),
        Parameter("r_total", 8e3, 80e3, default=25e3, **geom),
    ])
