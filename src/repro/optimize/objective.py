"""Objectives and constraints, derived from the paper's spec tables.

The optimizer minimises a weighted cost (quiescent current, silicon
area) subject to the rows of a :class:`repro.pga.specs.Spec` — the same
tables the characterisation drivers are checked against, so "meets the
spec" means exactly the same thing in both places.

Two constraint modes:

* **penalty** — score = cost + weight * sum(normalised violations);
  the classic soft-constraint scalarisation, useful when the feasible
  region may be empty and "least infeasible" is still informative;
* **feasibility** — feasible candidates are compared by cost alone and
  *always* beat infeasible ones, which are ranked by total violation
  (a lexicographic ordering, Deb's rule).  This is the default: the
  paper's Table 1 is a hard datasheet, not a preference.

Violations are normalised by the limit magnitude so "0.3 nV over a
6 nV noise limit" and "0.1 mA over a 2.6 mA current limit" are
commensurable.  ``INFO`` rows never constrain; metrics the evaluator
did not emit are skipped, mirroring :meth:`Spec.check`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.pga.specs import Bound, Spec, SpecLimit

#: Score offset separating every infeasible candidate from every
#: feasible one in feasibility mode.  Large but finite, so infeasible
#: candidates still rank among themselves by violation.
INFEASIBLE_OFFSET = 1e9


def _violation(limit: SpecLimit, value: float) -> float:
    """Normalised constraint violation (0 when the row passes)."""
    if limit.bound is Bound.INFO:
        return 0.0
    if limit.bound is Bound.RANGE:
        lo, hi = limit.limit
        scale = max(abs(lo), abs(hi), 1e-30)
        if value < lo:
            return (lo - value) / scale
        if value > hi:
            return (value - hi) / scale
        return 0.0
    lim = float(limit.limit)
    scale = max(abs(lim), 1e-30)
    if limit.bound is Bound.MIN:
        return max(0.0, lim - value) / scale
    if limit.bound is Bound.MAX:
        return max(0.0, value - lim) / scale
    return max(0.0, abs(value) - lim) / scale  # ABS_MAX


def worst_sense(bound: Bound) -> str:
    """Which tail of a PVT/mismatch population a bound cares about:
    the worst case of a floor spec is the minimum, of a ceiling the
    maximum, of a symmetric error the absolute maximum."""
    if bound is Bound.MIN:
        return "min"
    if bound is Bound.ABS_MAX:
        return "absmax"
    return "max"


@dataclass(frozen=True)
class Objective:
    """Scalar score of a measured candidate: cost + spec compliance.

    ``minimize`` weights are applied to raw metric values; the default
    (supply current in mA plus silicon area in mm^2, roughly equal
    magnitudes for this design) is the paper's own trade-off — Sec. 3.1
    blames the noise spec for both.
    """

    spec: Spec | None = None
    minimize: tuple[tuple[str, float], ...] = (("iq_ma", 1.0), ("area_mm2", 1.0))
    mode: str = "feasibility"
    penalty_weight: float = 100.0

    def __post_init__(self) -> None:
        if self.mode not in ("feasibility", "penalty"):
            raise ValueError(
                f"mode must be 'feasibility' or 'penalty', got {self.mode!r}"
            )
        object.__setattr__(self, "minimize",
                           tuple((str(m), float(w)) for m, w in self.minimize))

    # ------------------------------------------------------------------
    def cost(self, measured: dict[str, float]) -> float:
        """The weighted minimisation target (no constraints)."""
        total = 0.0
        for metric, weight in self.minimize:
            value = measured.get(metric)
            if value is None or not math.isfinite(value):
                return math.inf
            total += weight * value
        return total

    def violations(self, measured: dict[str, float]) -> dict[str, float]:
        """Normalised violation per constrained metric (only rows whose
        metric was measured; non-finite measurements count as violated
        by 1.0 — a failed simulation is not a feasible design)."""
        if self.spec is None:
            return {}
        out: dict[str, float] = {}
        for limit in self.spec.limits:
            if limit.bound is Bound.INFO or limit.metric not in measured:
                continue
            value = measured[limit.metric]
            out[limit.metric] = (1.0 if not math.isfinite(value)
                                 else _violation(limit, value))
        return out

    def feasible(self, measured: dict[str, float]) -> bool:
        return all(v == 0.0 for v in self.violations(measured).values())

    def score(self, measured: dict[str, float]) -> float:
        """Scalar fitness (lower is better)."""
        cost = self.cost(measured)
        total_violation = sum(self.violations(measured).values())
        if not math.isfinite(cost):
            return INFEASIBLE_OFFSET * 2.0 + total_violation
        if self.mode == "penalty":
            return cost + self.penalty_weight * total_violation
        if total_violation > 0.0:
            return INFEASIBLE_OFFSET + total_violation
        return cost

    def _limit(self, metric: str) -> SpecLimit | None:
        if self.spec is not None:
            for limit in self.spec.limits:
                if limit.metric == metric and limit.bound is not Bound.INFO:
                    return limit
        return None

    def worst_sense(self, metric: str) -> str:
        """Aggregation direction for robust (multi-unit) scoring."""
        limit = self._limit(metric)
        return worst_sense(limit.bound) if limit is not None else "max"

    def worst_case(self, metric: str, values) -> float:
        """Collapse a population of measurements to the spec-relevant
        worst case.  RANGE bounds are two-sided, so neither extreme alone
        represents them: the returned value is whichever population
        extreme violates the range more (the maximum when both comply —
        a conservative ceiling for cost metrics)."""
        values = np.asarray(values, dtype=float)
        limit = self._limit(metric)
        if limit is not None and limit.bound is Bound.RANGE:
            lo, hi = float(np.min(values)), float(np.max(values))
            return lo if _violation(limit, lo) > _violation(limit, hi) else hi
        sense = self.worst_sense(metric)
        if sense == "min":
            return float(np.min(values))
        if sense == "absmax":
            # keep the sign of the worst excursion, |worst| largest
            return float(values[np.argmax(np.abs(values))])
        return float(np.max(values))
