"""The shipped workload: size the Table 1 microphone amplifier.

One call wires the pieces together the way the paper's Sec. 3 does by
hand: the Table 1 rows the evaluator can measure become constraints,
supply current and silicon area become the cost, and the Sec. 3.2
sizing walk becomes the search space (warm-started from the paper's
own design point unless told otherwise).
"""

from __future__ import annotations

from typing import Callable

from repro.optimize.evaluate import CandidateEvaluator, RobustSettings
from repro.optimize.objective import Objective
from repro.optimize.optimizers import OptimizationResult, optimize
from repro.optimize.space import DesignSpace, mic_amp_design_space
from repro.pga.specs import MIC_AMP_SPEC, Spec
from repro.process.technology import CMOS12, Technology


def mic_amp_objective(spec: Spec = MIC_AMP_SPEC,
                      mode: str = "feasibility") -> Objective:
    """Minimise I_Q + area subject to the Table 1 rows (Sec. 3.1's
    trade, stated as an optimization problem)."""
    return Objective(spec=spec,
                     minimize=(("iq_ma", 1.0), ("area_mm2", 1.0)),
                     mode=mode)


def optimize_mic_amp(
    tech: Technology = CMOS12,
    *,
    budget: int = 150,
    seed: int = 2026,
    spec: Spec = MIC_AMP_SPEC,
    mode: str = "feasibility",
    robust: RobustSettings | None = None,
    executor=None,
    space: DesignSpace | None = None,
    warm_start: bool = True,
    log: Callable[[str], None] | None = None,
    store=None,
    progress: Callable[[int, int], None] | None = None,
) -> OptimizationResult:
    """Search the Sec. 3.2 sizing space for a spec-compliant minimum
    current/area design.  ``robust`` switches the evaluation from the
    typical point to worst-case over a PVT x mismatch campaign grid;
    ``executor`` is any campaign executor (results are identical);
    ``store`` (a :class:`repro.store.ResultStore`) persists every
    measured candidate so repeated or extended searches resume across
    processes; ``progress`` receives ``(evaluations_done, budget)``
    per evaluation (the serve layer's job-status hook)."""
    space = space or mic_amp_design_space()
    evaluator = CandidateEvaluator(space, mic_amp_objective(spec, mode),
                                   tech, robust=robust, executor=executor,
                                   store=store)
    seeds = (space.default(),) if warm_start else ()
    return optimize(space, evaluator, budget=budget, seed=seed,
                    seed_points=seeds, log=log, progress=progress)
