"""Candidate evaluation: one campaign per design, one cache above it.

A :class:`CandidateEvaluator` turns a quantized design vector into
``{metric: value}`` measurements by running the PR 2 campaign engine
over the ``micamp_sized`` builder:

* **typical mode** (``robust=None``) — a single-unit campaign (tt
  corner, 25 degC, nominal devices): build the circuit once, solve one
  DC operating point, and read every metric off the unit's shared
  :class:`~repro.spice.linsolve.SmallSignalContext` factorization;
* **robust mode** — the same candidate swept across a PVT x mismatch
  :class:`RobustSettings` grid through any campaign executor (serial or
  process pool — results are byte-identical by the campaign contract),
  then collapsed to the spec-relevant worst case per metric
  (:meth:`Objective.worst_sense`: floors take the minimum, ceilings the
  maximum, symmetric errors the absolute maximum).

Results are memoised in an **evaluation cache keyed on the quantized
design vector** (:meth:`DesignSpace.key`), so optimizer moves that
revisit a grid cell — population clustering near convergence, the
coordinate-descent probes — cost a dict lookup instead of a Newton
solve.  ``benchmarks/bench_optimize.py`` measures the combined effect
against a naive per-candidate rebuild loop.

Passing ``store=`` (a :class:`repro.store.ResultStore`) adds a
**persistent backend** beneath the in-memory memo: every measured
candidate is written to disk under a content-addressed key (quantized
vector + full space definition + evaluator context, see
:func:`repro.store.keys.design_key`), and misses consult the store
before simulating — so a repeated or extended search resumes across
processes.  Only measured metrics and the error string are persisted;
score and feasibility are recomputed from the *current* objective on
load, so re-weighting a cost function never invalidates stored
simulations.  (In robust mode the stored metrics are worst-case
aggregates whose direction follows the spec's bound structure, so that
structure joins the key — see :meth:`CandidateEvaluator._aggregation_fingerprint`.)
:meth:`CandidateEvaluator.stats` reports both cache levels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.campaign import CampaignSpec, run_campaign
from repro.obs.profile import prof_count
from repro.optimize.objective import Objective
from repro.optimize.space import DesignSpace
from repro.process.technology import CMOS12, Technology

#: Measurements taken per work unit: the optimizer's cost metrics
#: (current, area) plus every Table 1 row the shared factorization can
#: serve cheaply (all three noise spots, gain error, PSRR).  The rows
#: left unmeasured — hd_0v2_db, snr_40db_db, supply_min_v — each need
#: their own sweep (distortion staircase, psophometric integral, supply
#: search) and are checked by `repro table1`, not per candidate; the CLI
#: lists them as unsearched so a "PASS" verdict is read in context.
DEFAULT_MEASUREMENTS: tuple[str, ...] = (
    "iq_ma", "noise_voice", "gain_1khz_db", "psrr_1khz_db", "area_mm2",
)


@dataclass(frozen=True)
class RobustSettings:
    """The PVT x mismatch grid one candidate is scored across."""

    corners: tuple[str, ...] = ("tt", "ss", "ff")
    temps_c: tuple[float, ...] = (25.0,)
    supplies: tuple[float | None, ...] = (None,)
    seeds: tuple[int | None, ...] = (None,)

    def __post_init__(self) -> None:
        from repro.process.corners import CORNERS

        object.__setattr__(self, "corners",
                           tuple(str(c).lower() for c in self.corners))
        unknown = [c for c in self.corners if c not in CORNERS]
        if unknown:
            raise KeyError(
                f"unknown corners {unknown}; available: {sorted(CORNERS)}"
            )
        # Same numeric canonicalisation as CampaignSpec: the grid's
        # content hash (serve-layer fingerprints, design-eval store
        # keys) must not depend on whether a temperature arrived as
        # JSON 25 or CLI-parsed 25.0.
        object.__setattr__(self, "temps_c",
                           tuple(float(t) for t in self.temps_c))
        object.__setattr__(self, "supplies",
                           tuple(None if s is None else float(s)
                                 for s in self.supplies))
        object.__setattr__(self, "seeds",
                           tuple(None if s is None else int(s)
                                 for s in self.seeds))

    @property
    def n_units(self) -> int:
        return (len(self.corners) * len(self.temps_c)
                * len(self.supplies) * len(self.seeds))


@dataclass
class Evaluation:
    """One scored candidate (the evaluator's cache line)."""

    x: np.ndarray                    # quantized design vector
    metrics: dict[str, float]        # worst-case over the grid in robust mode
    score: float
    feasible: bool
    error: str | None = None         # build/solve failure, if any
    #: True when ``error`` came from infrastructure (a broken worker
    #: pool, OS failure), not from the candidate itself — such a result
    #: must never be persisted as the design's permanent verdict.
    transient: bool = False


class CandidateEvaluator:
    """Evaluate design vectors through the campaign engine, with a memo
    cache keyed on the quantized vector.

    ``executor`` is any campaign executor (``None`` = serial); in robust
    mode a process pool parallelises the per-candidate grid without
    changing a single bit of the result.
    """

    def __init__(
        self,
        space: DesignSpace,
        objective: Objective,
        tech: Technology = CMOS12,
        *,
        builder: str = "micamp_sized",
        measurements: Sequence[str] = DEFAULT_MEASUREMENTS,
        gain_code: int = 5,
        robust: RobustSettings | None = None,
        executor=None,
        store=None,
    ) -> None:
        self.space = space
        self.objective = objective
        self.tech = tech
        self.builder = builder
        self.measurements = tuple(measurements)
        self.gain_code = gain_code
        self.robust = robust
        self.executor = executor
        self.store = store
        self.cache: dict[tuple, Evaluation] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.store_hits = 0
        self.store_misses = 0
        self._store_context: str | None = None

    # ------------------------------------------------------------------
    @property
    def n_evaluations(self) -> int:
        """Evaluations requested (hits + misses)."""
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        n = self.n_evaluations
        return self.cache_hits / n if n else 0.0

    def stats(self) -> dict:
        """Both cache levels in one dict: in-memory memo hits/misses and
        hit rate, plus persistent-backend (store) hits/misses and the
        number of candidates that actually reached a simulation."""
        return {
            "evaluations": self.n_evaluations,
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "hit_rate": self.cache_hit_rate,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "simulated": self.cache_misses - self.store_hits,
        }

    def units_per_candidate(self) -> int:
        return self.robust.n_units if self.robust is not None else 1

    # ------------------------------------------------------------------
    def _campaign_spec(self, params: dict[str, float]) -> CampaignSpec:
        rb = self.robust or RobustSettings(corners=("tt",))
        return CampaignSpec(
            builder=self.builder,
            corners=rb.corners,
            temps_c=rb.temps_c,
            supplies=rb.supplies,
            seeds=rb.seeds,
            gain_codes=(self.gain_code,),
            measurements=self.measurements,
            tech=self.tech,
            builder_kwargs=params,
        )

    def _aggregate(self, result) -> dict[str, float]:
        """Collapse a campaign table to the spec-relevant worst case
        (bound-direction-aware, two-sided for RANGE limits)."""
        return {metric: self.objective.worst_case(metric, result.metric(metric))
                for metric in result.metrics}

    def _measure(self, x: np.ndarray) -> Evaluation:
        from repro.faults import TRANSIENT_INFRA_ERRORS

        params = self.space.as_dict(x)
        transient = False
        try:
            result = run_campaign(self._campaign_spec(params),
                                  executor=self.executor)
            metrics = self._aggregate(result)
            error = None
        except Exception as exc:  # infeasible region: no operating point,
            # switch overdrive collapse, budget split > 1, ...
            metrics = {}
            error = f"{type(exc).__name__}: {exc}"
            # ... unless the *infrastructure* failed, which says nothing
            # about the design and must not become its cached verdict
            # (the shared taxonomy in repro.faults).
            transient = isinstance(exc, TRANSIENT_INFRA_ERRORS)
        score = self.objective.score(metrics) if metrics else math.inf
        feasible = bool(metrics) and self.objective.feasible(metrics)
        return Evaluation(x=x, metrics=metrics, score=score,
                          feasible=feasible, error=error,
                          transient=transient)

    # ------------------------------------------------------------------
    # Persistent backend (repro.store)
    # ------------------------------------------------------------------
    def _aggregation_fingerprint(self):
        """What the stored metrics' *aggregation* depends on.

        In typical mode (one unit) the campaign table collapses to the
        single row for every bound sense, so stored metrics are truly
        objective-independent and this is ``None``.  In robust mode the
        stored values are :meth:`Objective.worst_case` aggregates, whose
        direction (and, for RANGE rows, the lo/hi limits) comes from the
        objective's spec — so that bound structure must be part of the
        key, or a re-sensed spec would revive wrongly-aggregated
        metrics.  Cost weights and penalty mode stay excluded: they
        never shape the stored values.
        """
        from repro.pga.specs import Bound

        if self.robust is None or self.robust.n_units <= 1:
            return None
        spec = self.objective.spec
        if spec is None:
            return ()
        return sorted(
            (limit.metric, limit.bound.name,
             list(limit.limit) if isinstance(limit.limit, tuple)
             else float(limit.limit))
            for limit in spec.limits if limit.bound is not Bound.INFO
        )

    def _design_key(self, key: tuple) -> str:
        from repro.store import canonical_hash, design_key, evaluator_fingerprint

        if self._store_context is None:
            fingerprint = evaluator_fingerprint(
                space=self.space, tech=self.tech, builder=self.builder,
                measurements=self.measurements, gain_code=self.gain_code,
                robust=self.robust,
            )
            fingerprint["aggregation"] = self._aggregation_fingerprint()
            self._store_context = canonical_hash(fingerprint)
        return design_key(self._store_context, key)

    def _revive(self, q: np.ndarray, payload: dict) -> Evaluation:
        """Rebuild an :class:`Evaluation` from stored metrics, scoring
        against the *current* objective (mirrors :meth:`_measure`)."""
        metrics = {str(k): float(v) for k, v in payload["metrics"].items()}
        error = payload.get("error")
        score = self.objective.score(metrics) if metrics else math.inf
        feasible = bool(metrics) and self.objective.feasible(metrics)
        return Evaluation(x=q, metrics=metrics, score=score,
                          feasible=feasible, error=error)

    def _persist(self, key: tuple, ev: Evaluation) -> None:
        self.store.put(self._design_key(key), {
            "x": [float(v) for v in key],
            "metrics": {k: float(v) for k, v in ev.metrics.items()},
            "error": ev.error,
        }, kind="design-eval", meta={
            "builder": self.builder,
            "gain_code": self.gain_code,
            "n_units": self.units_per_candidate(),
            "feasible_under_current_objective": ev.feasible,
        })

    # ------------------------------------------------------------------
    def evaluate(self, x: np.ndarray) -> Evaluation:
        """Score one design vector: quantize, then consult the in-memory
        memo, then the persistent store (if any), then simulate."""
        q = self.space.quantize(np.asarray(x, dtype=float))
        key = self.space.key(q)
        hit = self.cache.get(key)
        if hit is not None:
            self.cache_hits += 1
            prof_count("optimize.memo_hits")
            return hit
        self.cache_misses += 1
        prof_count("optimize.memo_misses")
        if self.store is not None:
            payload = self.store.get(self._design_key(key))
            if payload is not None:
                self.store_hits += 1
                prof_count("optimize.store_hits")
                ev = self._revive(q, payload)
                self.cache[key] = ev
                return ev
            self.store_misses += 1
            prof_count("optimize.store_misses")
        prof_count("optimize.simulated")
        ev = self._measure(q)
        if not ev.transient:
            # An infrastructure failure is no verdict on the design:
            # keep it out of both cache levels so a revisit retries.
            self.cache[key] = ev
            if self.store is not None:
                self._persist(key, ev)
        return ev

    def evaluate_population(self, xs: np.ndarray) -> list[Evaluation]:
        """Score a ``(n, d)`` population (row order preserved)."""
        xs = np.atleast_2d(np.asarray(xs, dtype=float))
        return [self.evaluate(row) for row in xs]

    def scores(self, xs: np.ndarray) -> np.ndarray:
        return np.array([ev.score for ev in self.evaluate_population(xs)])
