"""Candidate evaluation: one campaign per design, one cache above it.

A :class:`CandidateEvaluator` turns a quantized design vector into
``{metric: value}`` measurements by running the PR 2 campaign engine
over the ``micamp_sized`` builder:

* **typical mode** (``robust=None``) — a single-unit campaign (tt
  corner, 25 degC, nominal devices): build the circuit once, solve one
  DC operating point, and read every metric off the unit's shared
  :class:`~repro.spice.linsolve.SmallSignalContext` factorization;
* **robust mode** — the same candidate swept across a PVT x mismatch
  :class:`RobustSettings` grid through any campaign executor (serial or
  process pool — results are byte-identical by the campaign contract),
  then collapsed to the spec-relevant worst case per metric
  (:meth:`Objective.worst_sense`: floors take the minimum, ceilings the
  maximum, symmetric errors the absolute maximum).

Results are memoised in an **evaluation cache keyed on the quantized
design vector** (:meth:`DesignSpace.key`), so optimizer moves that
revisit a grid cell — population clustering near convergence, the
coordinate-descent probes — cost a dict lookup instead of a Newton
solve.  ``benchmarks/bench_optimize.py`` measures the combined effect
against a naive per-candidate rebuild loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.campaign import CampaignSpec, run_campaign
from repro.optimize.objective import Objective
from repro.optimize.space import DesignSpace
from repro.process.technology import CMOS12, Technology

#: Measurements taken per work unit: the optimizer's cost metrics
#: (current, area) plus every Table 1 row the shared factorization can
#: serve cheaply (all three noise spots, gain error, PSRR).  The rows
#: left unmeasured — hd_0v2_db, snr_40db_db, supply_min_v — each need
#: their own sweep (distortion staircase, psophometric integral, supply
#: search) and are checked by `repro table1`, not per candidate; the CLI
#: lists them as unsearched so a "PASS" verdict is read in context.
DEFAULT_MEASUREMENTS: tuple[str, ...] = (
    "iq_ma", "noise_voice", "gain_1khz_db", "psrr_1khz_db", "area_mm2",
)


@dataclass(frozen=True)
class RobustSettings:
    """The PVT x mismatch grid one candidate is scored across."""

    corners: tuple[str, ...] = ("tt", "ss", "ff")
    temps_c: tuple[float, ...] = (25.0,)
    supplies: tuple[float | None, ...] = (None,)
    seeds: tuple[int | None, ...] = (None,)

    def __post_init__(self) -> None:
        from repro.process.corners import CORNERS

        object.__setattr__(self, "corners",
                           tuple(str(c).lower() for c in self.corners))
        unknown = [c for c in self.corners if c not in CORNERS]
        if unknown:
            raise KeyError(
                f"unknown corners {unknown}; available: {sorted(CORNERS)}"
            )

    @property
    def n_units(self) -> int:
        return (len(self.corners) * len(self.temps_c)
                * len(self.supplies) * len(self.seeds))


@dataclass
class Evaluation:
    """One scored candidate (the evaluator's cache line)."""

    x: np.ndarray                    # quantized design vector
    metrics: dict[str, float]        # worst-case over the grid in robust mode
    score: float
    feasible: bool
    error: str | None = None         # build/solve failure, if any


class CandidateEvaluator:
    """Evaluate design vectors through the campaign engine, with a memo
    cache keyed on the quantized vector.

    ``executor`` is any campaign executor (``None`` = serial); in robust
    mode a process pool parallelises the per-candidate grid without
    changing a single bit of the result.
    """

    def __init__(
        self,
        space: DesignSpace,
        objective: Objective,
        tech: Technology = CMOS12,
        *,
        builder: str = "micamp_sized",
        measurements: Sequence[str] = DEFAULT_MEASUREMENTS,
        gain_code: int = 5,
        robust: RobustSettings | None = None,
        executor=None,
    ) -> None:
        self.space = space
        self.objective = objective
        self.tech = tech
        self.builder = builder
        self.measurements = tuple(measurements)
        self.gain_code = gain_code
        self.robust = robust
        self.executor = executor
        self.cache: dict[tuple, Evaluation] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    @property
    def n_evaluations(self) -> int:
        """Evaluations requested (hits + misses)."""
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        n = self.n_evaluations
        return self.cache_hits / n if n else 0.0

    def units_per_candidate(self) -> int:
        return self.robust.n_units if self.robust is not None else 1

    # ------------------------------------------------------------------
    def _campaign_spec(self, params: dict[str, float]) -> CampaignSpec:
        rb = self.robust or RobustSettings(corners=("tt",))
        return CampaignSpec(
            builder=self.builder,
            corners=rb.corners,
            temps_c=rb.temps_c,
            supplies=rb.supplies,
            seeds=rb.seeds,
            gain_codes=(self.gain_code,),
            measurements=self.measurements,
            tech=self.tech,
            builder_kwargs=params,
        )

    def _aggregate(self, result) -> dict[str, float]:
        """Collapse a campaign table to the spec-relevant worst case
        (bound-direction-aware, two-sided for RANGE limits)."""
        return {metric: self.objective.worst_case(metric, result.metric(metric))
                for metric in result.metrics}

    def _measure(self, x: np.ndarray) -> Evaluation:
        params = self.space.as_dict(x)
        try:
            result = run_campaign(self._campaign_spec(params),
                                  executor=self.executor)
            metrics = self._aggregate(result)
            error = None
        except Exception as exc:  # infeasible region: no operating point,
            # switch overdrive collapse, budget split > 1, ...
            metrics = {}
            error = f"{type(exc).__name__}: {exc}"
        score = self.objective.score(metrics) if metrics else math.inf
        feasible = bool(metrics) and self.objective.feasible(metrics)
        return Evaluation(x=x, metrics=metrics, score=score,
                          feasible=feasible, error=error)

    # ------------------------------------------------------------------
    def evaluate(self, x: np.ndarray) -> Evaluation:
        """Score one design vector (quantizes, then consults the cache)."""
        q = self.space.quantize(np.asarray(x, dtype=float))
        key = self.space.key(q)
        hit = self.cache.get(key)
        if hit is not None:
            self.cache_hits += 1
            return hit
        self.cache_misses += 1
        ev = self._measure(q)
        self.cache[key] = ev
        return ev

    def evaluate_population(self, xs: np.ndarray) -> list[Evaluation]:
        """Score a ``(n, d)`` population (row order preserved)."""
        xs = np.atleast_2d(np.asarray(xs, dtype=float))
        return [self.evaluate(row) for row in xs]

    def scores(self, xs: np.ndarray) -> np.ndarray:
        return np.array([ev.score for ev in self.evaluate_population(xs)])
