"""Pareto-front collection over the noise / current / area trade.

The paper's Sec. 3.1 point — "a relatively large area ... and supply
current are needed to achieve the noise requirements" — is a statement
about a Pareto surface.  :class:`ParetoFront` materialises it: every
evaluated candidate is offered to the collector, dominated points are
pruned with a vectorised comparison, and the surviving front exports to
CSV/JSON for plotting.

All objectives are *minimised*; metrics where better is larger (none of
the default three) should be negated by the caller before collection.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

#: The default axes: Eq. 2's noise target vs the two costs it drives.
DEFAULT_OBJECTIVES: tuple[str, ...] = ("vnin_avg_nv", "iq_ma", "area_mm2")


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated candidate: objective values plus its design."""

    values: tuple[float, ...]
    params: dict[str, float]
    metrics: dict[str, float]
    feasible: bool


class ParetoFront:
    """Incrementally maintained set of mutually non-dominated points."""

    def __init__(self, objectives: Sequence[str] = DEFAULT_OBJECTIVES) -> None:
        if not objectives:
            raise ValueError("need at least one objective")
        self.objectives = tuple(objectives)
        self.points: list[ParetoPoint] = []
        self.n_offered = 0

    def __len__(self) -> int:
        return len(self.points)

    def _values(self, metrics: dict[str, float]) -> tuple[float, ...] | None:
        vals = []
        for name in self.objectives:
            v = metrics.get(name)
            if v is None or not math.isfinite(v):
                return None
            vals.append(float(v))
        return tuple(vals)

    def add(self, metrics: dict[str, float], params: dict[str, float],
            feasible: bool = True) -> bool:
        """Offer a candidate; returns True iff it joins the front.

        A point is rejected if an existing point dominates it (<= in
        every objective, < in at least one, ties rejected as duplicates);
        on acceptance every point it dominates is pruned.
        """
        self.n_offered += 1
        values = self._values(metrics)
        if values is None:
            return False
        cand = np.array(values)
        if self.points:
            existing = np.array([p.values for p in self.points])
            leq = existing <= cand
            dominated_by = np.all(leq, axis=1) & (
                np.any(existing < cand, axis=1) | np.all(existing == cand, axis=1)
            )
            if np.any(dominated_by):
                return False
            geq = existing >= cand
            dominates = np.all(geq, axis=1) & np.any(existing > cand, axis=1)
            if np.any(dominates):
                self.points = [p for p, d in zip(self.points, dominates) if not d]
        self.points.append(ParetoPoint(values=values, params=dict(params),
                                       metrics=dict(metrics), feasible=feasible))
        return True

    # ------------------------------------------------------------------
    def sorted_points(self) -> list[ParetoPoint]:
        """Points ordered by the first objective (stable for export)."""
        return sorted(self.points, key=lambda p: p.values)

    def best_by(self, objective: str) -> ParetoPoint:
        """The front's extreme point along one objective."""
        if objective not in self.objectives:
            raise KeyError(f"unknown objective {objective!r}; have {self.objectives}")
        if not self.points:
            raise ValueError("empty Pareto front")
        k = self.objectives.index(objective)
        return min(self.points, key=lambda p: p.values[k])

    def format(self, max_rows: int = 12) -> str:
        header = "  ".join(f"{o:>14}" for o in self.objectives) + "  feasible"
        lines = [f"Pareto front: {len(self)} points "
                 f"(of {self.n_offered} offered)", header]
        for p in self.sorted_points()[:max_rows]:
            row = "  ".join(f"{v:>14.5g}" for v in p.values)
            lines.append(f"{row}  {'yes' if p.feasible else 'no'}")
        if len(self) > max_rows:
            lines.append(f"  ... ({len(self) - max_rows} more points)")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_csv(self, path) -> None:
        """One row per front point: objectives, feasibility, parameters."""
        points = self.sorted_points()
        param_names = sorted({k for p in points for k in p.params})
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(list(self.objectives) + ["feasible"] + param_names)
            for p in points:
                writer.writerow(list(p.values) + [int(p.feasible)]
                                + [p.params.get(k, "") for k in param_names])

    def to_json(self, path=None) -> str:
        payload = {
            "objectives": list(self.objectives),
            "n_offered": self.n_offered,
            "points": [
                {"values": list(p.values), "feasible": p.feasible,
                 "params": p.params, "metrics": p.metrics}
                for p in self.sorted_points()
            ],
        }
        text = json.dumps(payload, indent=2)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text + "\n")
        return text

    @classmethod
    def from_json(cls, text_or_path) -> "ParetoFront":
        """Inverse of :meth:`to_json` (accepts JSON text or a file path)."""
        text = str(text_or_path)
        if not text.lstrip().startswith("{"):
            with open(text_or_path) as fh:
                text = fh.read()
        payload = json.loads(text)
        front = cls(tuple(payload["objectives"]))
        front.n_offered = int(payload.get("n_offered", 0))
        front.points = [
            ParetoPoint(values=tuple(pt["values"]), params=dict(pt["params"]),
                        metrics=dict(pt.get("metrics", {})),
                        feasible=bool(pt["feasible"]))
            for pt in payload["points"]
        ]
        return front
