"""Spec-driven design-space optimization (Sec. 3's methodology, searched).

The paper sizes its amplifier *backwards* from a noise spec; this
package turns that walk into a search problem: a
:class:`~repro.optimize.space.DesignSpace` over the sizing-walk inputs,
an :class:`~repro.optimize.objective.Objective` derived from a
:class:`~repro.pga.specs.Spec` table, a cached
:class:`~repro.optimize.evaluate.CandidateEvaluator` that scores
candidates through the campaign engine (typical or worst-case-PVT), the
population search of :func:`~repro.optimize.optimizers.optimize`, and a
:class:`~repro.optimize.pareto.ParetoFront` of the noise/current/area
trade.  Front door: ``python -m repro optimize`` or
:func:`~repro.optimize.micamp.optimize_mic_amp`.
"""

from repro.optimize.evaluate import (
    CandidateEvaluator,
    Evaluation,
    RobustSettings,
)
from repro.optimize.micamp import mic_amp_objective, optimize_mic_amp
from repro.optimize.objective import Objective
from repro.optimize.optimizers import (
    OptimizationResult,
    latin_hypercube,
    optimize,
)
from repro.optimize.pareto import ParetoFront, ParetoPoint
from repro.optimize.space import DesignSpace, Parameter, mic_amp_design_space

__all__ = [
    "CandidateEvaluator",
    "DesignSpace",
    "Evaluation",
    "Objective",
    "OptimizationResult",
    "Parameter",
    "ParetoFront",
    "ParetoPoint",
    "RobustSettings",
    "latin_hypercube",
    "mic_amp_design_space",
    "mic_amp_objective",
    "optimize",
    "optimize_mic_amp",
]
