"""Population search: Latin-hypercube seeding, differential evolution,
coordinate-descent refinement.

The search runs in the unit cube of a :class:`~repro.optimize.space.DesignSpace`
and is NumPy-vectorised over the population: stratified seeding, DE
mutation/crossover and selection all operate on ``(n, d)`` arrays —
only the circuit simulations themselves walk candidate by candidate,
and those are deduplicated by the evaluator's quantized-vector cache.

Determinism is a hard contract, matching the campaign engine's: every
random draw comes from one ``np.random.default_rng(seed)``, candidates
are proposed and evaluated in a fixed order, and candidate measurements
are executor-independent — so a fixed seed reproduces the identical
search whether the evaluator runs its campaigns serially or on a
process pool (``tests/optimize`` pins this).

The three stages earn their keep differently: LHS covers the box so DE
starts informed; DE (current-to-best/1/bin) handles the coupled,
cliff-ridden feasible region (a budget split summing past 1 is a hard
wall, not a slope); the closing pattern search — coordinate descent
with a halving step, from 16 quantization steps down to one — polishes
the winner onto the design grid, which a converged population is slow
to do on its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.obs.profile import active_profiler
from repro.optimize.evaluate import CandidateEvaluator, Evaluation
from repro.optimize.pareto import DEFAULT_OBJECTIVES, ParetoFront
from repro.optimize.space import DesignSpace


def latin_hypercube(n: int, dim: int, rng: np.random.Generator) -> np.ndarray:
    """``(n, dim)`` stratified samples in ``[0, 1)``: each axis gets one
    point per stratum, independently shuffled — the classic space-filling
    seed for a population optimizer."""
    if n < 1:
        raise ValueError(f"need at least one sample, got {n}")
    strata = np.tile(np.arange(n, dtype=float)[:, None], (1, dim))
    for j in range(dim):
        rng.shuffle(strata[:, j])
    return (strata + rng.random((n, dim))) / n


@dataclass
class OptimizationResult:
    """Everything a run produced: the winner, the trade surface, the trace."""

    best: Evaluation
    space: DesignSpace
    pareto: ParetoFront
    history: list[tuple[int, float]]       # (evaluations used, best score)
    n_evaluations: int                     # evaluations requested by this run
    cache_hits: int
    cache_misses: int
    feasible_found: bool
    #: Cumulative evaluator.stats() snapshot at the end of the run —
    #: includes persistent-store hit counts when a store is attached.
    evaluator_stats: dict | None = None

    @property
    def best_params(self) -> dict[str, float]:
        return self.space.as_dict(self.best.x)

    @property
    def cache_hit_rate(self) -> float:
        n = self.cache_hits + self.cache_misses
        return self.cache_hits / n if n else 0.0

    def summary(self) -> str:
        lines = [
            f"{self.n_evaluations} evaluations "
            f"({self.cache_misses} simulated, {self.cache_hits} cache hits, "
            f"hit rate {self.cache_hit_rate:.0%})",
            f"best score {self.best.score:.6g} "
            f"({'feasible' if self.best.feasible else 'INFEASIBLE'})",
        ]
        for name, value in self.best_params.items():
            lines.append(f"  {name:<22s} {value:.6g}")
        for metric, value in sorted(self.best.metrics.items()):
            lines.append(f"  -> {metric:<19s} {value:.6g}")
        return "\n".join(lines)


@dataclass
class _SearchState:
    """Budget accounting and best-so-far tracking shared by the stages."""

    evaluator: CandidateEvaluator
    space: DesignSpace
    budget: int
    front: ParetoFront
    calls: int = 0
    best: Evaluation | None = None
    history: list[tuple[int, float]] = field(default_factory=list)
    log: Callable[[str], None] | None = None
    progress: Callable[[int, int], None] | None = None

    def exhausted(self) -> bool:
        return self.calls >= self.budget

    def evaluate(self, u: np.ndarray) -> Evaluation:
        """One budgeted evaluation of a unit-cube candidate."""
        ev = self.evaluator.evaluate(self.space.from_unit(u))
        self.calls += 1
        if self.progress is not None:
            self.progress(self.calls, self.budget)
        self.front.add(ev.metrics, self.space.as_dict(ev.x), ev.feasible)
        if self.best is None or ev.score < self.best.score:
            self.best = ev
            self.history.append((self.calls, ev.score))
            if self.log is not None:
                self.log(f"eval {self.calls}: best score {ev.score:.6g} "
                         f"({'feasible' if ev.feasible else 'infeasible'})")
        return ev


def _distinct_triples(n: int, rng: np.random.Generator) -> np.ndarray:
    """``(n, 2)`` donor indices, each row distinct from its own position —
    the r1/r2 difference pair of DE current-to-best/1."""
    out = np.empty((n, 2), dtype=int)
    for i in range(n):
        choices = rng.permutation(n - 1)[:2]
        out[i] = np.where(choices >= i, choices + 1, choices)
    return out


def optimize(
    space: DesignSpace,
    evaluator: CandidateEvaluator,
    *,
    budget: int = 150,
    seed: int = 2026,
    pop_size: int | None = None,
    de_f: float = 0.6,
    de_cr: float = 0.8,
    refine: bool = True,
    refine_scale: float = 8.0,
    seed_points: Sequence[np.ndarray] = (),
    pareto_objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    log: Callable[[str], None] | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> OptimizationResult:
    """Search a design space for the best-scoring candidate.

    ``budget`` caps *requested* evaluations (cache hits included, so the
    run time is bounded even when the search has converged onto a few
    grid cells).  ``seed_points`` are physical vectors injected into the
    initial population — pass ``space.default()`` to warm-start from the
    paper's design point.

    ``log`` receives a line per best-score improvement; ``progress``
    receives ``(evaluations_done, budget)`` after *every* budgeted
    evaluation (cache hits included) — the hook job-wrapped runs (the
    serve layer) use to report live search progress.  Neither affects
    the search trajectory.
    """
    if budget < 2:
        raise ValueError(f"budget must be >= 2, got {budget}")
    if pop_size is not None and pop_size < 4:
        raise ValueError(  # DE needs self + two distinct donors
            f"pop_size must be >= 4, got {pop_size}")
    rng = np.random.default_rng(seed)
    d = space.dim
    n = pop_size or int(np.clip(4 * d, 8, max(8, budget // 4)))

    hits0, misses0 = evaluator.cache_hits, evaluator.cache_misses
    state = _SearchState(evaluator=evaluator, space=space, budget=budget,
                         front=ParetoFront(pareto_objectives), log=log,
                         progress=progress)

    # --- stage 1: Latin-hypercube population (+ warm starts) ---
    pop_u = latin_hypercube(n, d, rng)
    for i, x in enumerate(seed_points):
        if i >= n:
            break
        pop_u[i] = space.to_unit(np.asarray(x, dtype=float))
    scores = np.full(n, np.inf)
    for i in range(n):
        if state.exhausted():
            break
        scores[i] = state.evaluate(pop_u[i]).score

    # --- stage 2: differential evolution (current-to-best/1/bin) ---
    # The best member steers every mutant: the feasible region of a spec
    # table is a needle (most of the box violates something), so pure
    # rand/1 diffusion wastes evaluations that best-guided moves don't.
    refine_reserve = min(budget // 3, 12 * d) if refine else 0
    while state.calls < budget - refine_reserve:
        best_u = space.to_unit(state.best.x)
        donors = _distinct_triples(n, rng)
        mutant = (pop_u
                  + de_f * (best_u[None, :] - pop_u)
                  + de_f * (pop_u[donors[:, 0]] - pop_u[donors[:, 1]]))
        mutant = np.clip(mutant, 0.0, 1.0)
        cross = rng.random((n, d)) < de_cr
        cross[np.arange(n), rng.integers(d, size=n)] = True  # j_rand
        trial_u = np.where(cross, mutant, pop_u)
        for i in range(n):
            if state.calls >= budget - refine_reserve:
                break
            trial_score = state.evaluate(trial_u[i]).score
            if trial_score <= scores[i]:
                pop_u[i] = trial_u[i]
                scores[i] = trial_score

    # --- stage 3: pattern search on the winner, down to the grid ---
    # Start at ``refine_scale`` quantization steps and halve on stalled
    # sweeps: the coarse probes escape constraint cliffs the population
    # hasn't resolved, the final unit-step sweeps polish onto the grid.
    if refine and state.best is not None:
        u_best = space.to_unit(state.best.x)
        quantum = space.unit_step()
        scale = max(1.0, refine_scale)
        while scale >= 1.0 and not state.exhausted():
            improved = False
            best_key = space.key(space.from_unit(u_best))
            for j in range(d):
                for sign in (1.0, -1.0):
                    if state.exhausted():
                        break
                    cand = u_best.copy()
                    cand[j] = float(np.clip(cand[j] + sign * scale * quantum[j],
                                            0.0, 1.0))
                    if space.key(space.from_unit(cand)) == best_key:
                        continue  # clipped/quantized back onto the incumbent
                    prev = state.best
                    state.evaluate(cand)
                    if state.best is not prev:  # strict improvement promoted it
                        u_best = cand
                        improved = True
                        best_key = space.key(space.from_unit(u_best))
            if not improved:
                scale /= 2.0

    if state.best is None:
        raise RuntimeError("budget exhausted before any evaluation completed")
    evaluator_stats = (evaluator.stats() if hasattr(evaluator, "stats")
                       else None)
    profiler = active_profiler()
    if evaluator_stats is not None and profiler is not None:
        evaluator_stats["profile"] = profiler.snapshot()
    return OptimizationResult(
        best=state.best,
        space=space,
        pareto=state.front,
        history=state.history,
        n_evaluations=state.calls,
        cache_hits=evaluator.cache_hits - hits0,
        cache_misses=evaluator.cache_misses - misses0,
        feasible_found=state.best.feasible,
        evaluator_stats=evaluator_stats,
    )
