"""The job subsystem: states, a coalescing queue, an optional journal.

A :class:`Job` is one accepted characterization request.  The
:class:`JobQueue` holds every job the service has ever seen (a table for
status lookups), a FIFO of pending work for the worker pool, and the
**coalescing index**: while a job with a given content fingerprint
(:func:`repro.store.keys.campaign_key` for campaigns, a canonical hash
of the request for optimize runs) is queued or running, submitting the
same fingerprint *attaches* to the existing job instead of enqueuing a
duplicate — identical in-flight requests execute exactly once, and
every submitter waits on the same :class:`threading.Event`.

Persistence is optional but real: with a ``journal_dir``, every state
transition snapshots the job's metadata (not its result) to
``<id>.json`` via the same atomic write-then-replace discipline as the
result store.  A restarted queue re-admits journalled jobs: finished
ones come back as status records (campaign results are re-served from
the shared :class:`~repro.store.ResultStore` warm path), and jobs that
were queued or running when the process died are **re-enqueued** — the
work itself is idempotent because every executed unit lands in the
store under a content-addressed key.
"""

from __future__ import annotations

import collections
import itertools
import json
import os
import pathlib
import threading
import time
import uuid
from dataclasses import dataclass, field

from repro.faults.harness import fault_point
from repro.obs.events import event

#: Job lifecycle states, in order.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

STATES = (QUEUED, RUNNING, DONE, FAILED)

_tmp_counter = itertools.count()


def new_job_id() -> str:
    """A short, URL-safe, collision-resistant job id."""
    return uuid.uuid4().hex[:12]


@dataclass
class Job:
    """One accepted request and everything a status poll may ask about.

    ``result`` holds the in-memory product (a ``CampaignResult`` or an
    ``OptimizationResult``) and is deliberately *not* journalled — after
    a restart, campaign results are reconstructed from the result store
    (a pure warm merge), which is cheaper and safer than persisting a
    second copy of the data.
    """

    id: str
    kind: str                       # "campaign" | "optimize"
    payload: dict                   # the validated request body
    fingerprint: str                # coalescing identity
    state: str = QUEUED
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    progress: dict = field(default_factory=dict)
    #: Submissions answered by this job beyond the first (coalesced).
    attached: int = 0
    #: True when the job was answered from the store without enqueuing.
    warm: bool = False
    #: Times the job went back to the FIFO after losing its worker.
    requeues: int = 0
    #: Trace id of the job's execution span when tracing was armed
    #: (``REPRO_OBS=trace``); ``None`` otherwise.  Telemetry only.
    trace_id: str | None = None
    result: object = None
    _done_event: threading.Event = field(default_factory=threading.Event,
                                         repr=False)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done_event.wait(timeout)

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, FAILED)

    def view(self) -> dict:
        """The JSON-safe status view served by ``GET /v1/jobs/<id>``."""
        return {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "fingerprint": self.fingerprint,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "progress": dict(self.progress),
            "attached": self.attached,
            "warm": self.warm,
            "requeues": self.requeues,
            "trace_id": self.trace_id,
        }


class JobQueue:
    """Thread-safe job table + pending FIFO + coalescing index.

    All mutation happens under one lock; workers block on the condition
    variable in :meth:`next_job`.  :meth:`close` wakes every worker with
    ``None`` so a service can drain and join its pool.
    """

    def __init__(self, journal_dir=None, max_jobs: int = 1024,
                 max_requeues: int = 2) -> None:
        if max_jobs < 1:
            raise ValueError(f"max_jobs must be >= 1, got {max_jobs}")
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: collections.deque[Job] = collections.deque()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}   # fingerprint -> queued/running
        self._closed = False
        #: In-process requeue budget per job (dead-worker recovery).
        self.max_requeues = max_requeues
        #: Journal-replay accounting (constructor-time, exposed by the
        #: service in ``/v1/metrics``): jobs re-admitted from disk, and
        #: journal files that could not be parsed (torn/truncated).
        self.journal_recovered = 0
        self.journal_corrupt = 0
        #: Retention cap: admitting a job beyond this evicts the oldest
        #: *terminal* jobs (and their journal files) — a long-lived
        #: server must not accumulate every result it ever produced in
        #: memory.  Evicted campaign results stay recoverable: the
        #: client re-submits and gets a store-level warm hit.
        self.max_jobs = max_jobs
        self.journal_dir = (None if journal_dir is None
                            else pathlib.Path(journal_dir))
        if self.journal_dir is not None:
            self.journal_dir.mkdir(parents=True, exist_ok=True)
            self._restore_journal()
            self._evict_locked()

    # ------------------------------------------------------------------
    # Submission / coalescing
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> tuple[Job, bool]:
        """Admit ``job``, or attach to an in-flight twin.

        Returns ``(job, coalesced)``: when a job with the same
        fingerprint is already queued or running, the *existing* job is
        returned with its ``attached`` count bumped and the new one is
        discarded — this is the exactly-once guarantee for concurrent
        duplicate submissions.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("job queue is closed")
            twin = self._inflight.get(job.fingerprint)
            if twin is not None:
                twin.attached += 1
                self._journal(twin)
                return twin, True
            self._jobs[job.id] = job
            self._inflight[job.fingerprint] = job
            self._pending.append(job)
            self._journal(job)
            self._evict_locked()
            self._cond.notify()
            return job, False

    def register(self, job: Job) -> None:
        """Record a job that never queues (warm store hits): it enters
        the table already terminal, visible to status polls, and never
        touches the pending FIFO or the coalescing index."""
        if not job.terminal:
            raise ValueError("register() is for terminal jobs; use submit()")
        with self._lock:
            self._jobs[job.id] = job
            self._journal(job)
            self._evict_locked()
        job._done_event.set()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def next_job(self, timeout: float | None = None) -> Job | None:
        """Block for the next pending job; ``None`` once closed (or on
        timeout)."""
        with self._cond:
            while not self._pending and not self._closed:
                if not self._cond.wait(timeout):
                    return None
            if self._pending:
                job = self._pending.popleft()
                job.state = RUNNING
                job.started_at = time.time()
                self._journal(job)
                return job
            return None

    def requeue(self, job: Job) -> bool:
        """Put a running job back at the head of the line after its
        worker died mid-execution (injected crash, interpreter-level
        failure).  Execution is idempotent — store-backed units already
        computed are reused — so a bounded number of requeues loses no
        work.  Past ``max_requeues`` the job fails instead (returns
        ``False``): a job that kills every worker that touches it must
        not ping-pong forever.
        """
        with self._cond:
            if job.terminal:
                return True
            if job.requeues >= self.max_requeues:
                return False
            job.requeues += 1
            job.state = QUEUED
            job.started_at = None
            job.progress = {}
            self._inflight.setdefault(job.fingerprint, job)
            self._pending.appendleft(job)
            self._journal(job)
            self._cond.notify()
            return True

    def finish(self, job: Job, state: str, error: str | None = None) -> None:
        """Move ``job`` to a terminal state and release its fingerprint
        (later identical submissions start a fresh execution — or, for
        campaigns, hit the store warm path)."""
        if state not in (DONE, FAILED):
            raise ValueError(f"terminal state must be done/failed, got {state}")
        with self._cond:
            job.state = state
            job.error = error
            job.finished_at = time.time()
            if self._inflight.get(job.fingerprint) is job:
                del self._inflight[job.fingerprint]
            self._journal(job)
        job._done_event.set()

    def close(self) -> None:
        """Stop admitting work and wake every blocked worker."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def _evict_locked(self) -> None:
        """Drop the oldest terminal jobs past ``max_jobs`` (caller holds
        the lock).  Queued/running jobs are never evicted — the cap
        bounds *retention*, not admission."""
        if len(self._jobs) <= self.max_jobs:
            return
        terminal = sorted(
            (j for j in self._jobs.values() if j.terminal),
            key=lambda j: j.finished_at or j.created_at,
        )
        for job in terminal:
            if len(self._jobs) <= self.max_jobs:
                break
            del self._jobs[job.id]
            if self.journal_dir is not None:
                (self.journal_dir / f"{job.id}.json").unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every known job, newest submission first."""
        with self._lock:
            return sorted(self._jobs.values(),
                          key=lambda j: j.created_at, reverse=True)

    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------
    def _journal(self, job: Job) -> None:
        """Atomically snapshot one job's metadata (caller holds the
        lock).  Results are never journalled — see the class docstring."""
        if self.journal_dir is None:
            return
        # Torture hooks: the chaos suite crashes at either stage — before
        # anything hits disk, or with the tmp staged but not yet visible —
        # and asserts a restart loses no job either way.
        fault_point("jobs.journal_write", job=job.id, state=job.state,
                    stage="write")
        path = self.journal_dir / f"{job.id}.json"
        tmp = path.parent / f".{job.id}.{os.getpid()}.{next(_tmp_counter)}.tmp"
        tmp.write_text(json.dumps(job.view() | {"payload": job.payload},
                                  sort_keys=True))
        fault_point("jobs.journal_write", job=job.id, state=job.state,
                    stage="replace")
        os.replace(tmp, path)

    def _restore_journal(self) -> None:
        """Re-admit journalled jobs on startup (constructor-only, before
        any worker exists, so no locking is needed).  Unparseable
        journal files (torn by a crash or filesystem truncation) are
        counted, moved aside as ``<id>.json.corrupt`` for inspection,
        and never silently shadow a future job."""
        for path in sorted(self.journal_dir.glob("*.json")):
            try:
                snap = json.loads(path.read_text())
            except (json.JSONDecodeError, OSError, UnicodeDecodeError) as exc:
                self.journal_corrupt += 1
                event("serve.journal_corrupt", "error", file=path.name,
                      error=f"{type(exc).__name__}: {exc}")
                try:
                    os.replace(path, path.with_suffix(".json.corrupt"))
                except OSError:
                    pass
                continue
            job = Job(id=snap["id"], kind=snap["kind"],
                      payload=snap.get("payload") or {},
                      fingerprint=snap["fingerprint"],
                      state=snap["state"],
                      created_at=snap.get("created_at") or time.time(),
                      started_at=snap.get("started_at"),
                      finished_at=snap.get("finished_at"),
                      error=snap.get("error"),
                      progress=snap.get("progress") or {},
                      attached=snap.get("attached", 0),
                      warm=snap.get("warm", False),
                      requeues=snap.get("requeues", 0),
                      trace_id=snap.get("trace_id"))
            if job.terminal:
                job._done_event.set()
            else:
                # Interrupted mid-flight: requeue from scratch.  Any unit
                # the dead process finished is already in the store, so
                # the rerun only pays for what was actually lost.
                job.state = QUEUED
                job.started_at = None
                job.progress = {}
                job.requeues = 0       # a fresh process, a fresh budget
                self._inflight[job.fingerprint] = job
                self._pending.append(job)
            self._jobs[job.id] = job
            self.journal_recovered += 1
