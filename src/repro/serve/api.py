"""The HTTP/JSON front door: stdlib ``ThreadingHTTPServer``, no deps.

Routes (all JSON in, JSON out)::

    POST /v1/campaigns          submit a campaign request       -> 202/200
    POST /v1/optimize           submit an optimize request      -> 202
    GET  /v1/jobs               list jobs, newest first         -> 200
    GET  /v1/jobs/<id>          one job's status view           -> 200
    GET  /v1/jobs/<id>/result   the result document             -> 200
         ?offset=N&limit=M      one page of campaign rows       -> 200
    GET  /v1/jobs/<id>/trace    the job's collected spans       -> 200/404
    GET  /v1/events             recent structured events        -> 200/404
         ?limit=N&severity=S    newest N, optionally filtered   -> 200
    GET  /v1/metrics            counters + gauges + latencies   -> 200
    GET  /metrics               Prometheus text exposition      -> 200
    GET  /healthz               liveness                        -> 200

Every request's wall time lands in the service's latency histograms
(``http.request_s`` overall plus one per route class), so ``/metrics``
serves request p50/p99 without any external middleware.  The trace
route answers 404 while tracing is disarmed (``REPRO_OBS=trace`` arms
it) — observability is opt-in and absent by default.

Submissions answer ``202 Accepted`` while the job is queued/running and
``200`` when it is already terminal at submit time (a warm store hit —
coalescing only ever matches *in-flight* jobs).  A result poll
on an unfinished job answers ``202`` with the status view, a failed job
``500`` with its error, schema violations ``400`` with a one-line
message, unknown jobs and routes ``404`` — a client can drive the whole
lifecycle on status codes alone.

The unpaginated campaign result body is the exact
``CampaignResult.to_json()`` text (plus trailing newline): byte for
byte what ``repro campaign --json`` writes for the same spec.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.serve import jobs as J
from repro.serve.service import CharacterizationService
from repro.serve.validate import SpecValidationError

#: Request bodies above this size are rejected with 413.
MAX_BODY_BYTES = 8 * 1024 * 1024


class ServeHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @property
    def service(self) -> CharacterizationService:
        return self.server.service

    def log_message(self, fmt, *args):  # noqa: D102 — quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    def _send(self, code: int, body: bytes,
              content_type: str = "application/json") -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload) -> None:
        self._send(code, (json.dumps(payload) + "\n").encode("utf-8"))

    def _error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _body_length(self) -> int:
        """Content-Length as an int; a garbage header is a 400, not a
        traceback, and poisons the (HTTP/1.1 persistent) connection so
        the undrainable body cannot desync the stream."""
        try:
            return int(self.headers.get("Content-Length") or 0)
        except ValueError as exc:
            self.close_connection = True
            raise SpecValidationError(
                f"invalid Content-Length header: "
                f"{self.headers.get('Content-Length')!r}") from exc

    def _discard_body(self) -> None:
        """Drain an unwanted request body before an error response —
        on a keep-alive connection, unread body bytes would be parsed
        as the next request line.  Undrainable bodies (oversize, bad
        length) close the connection instead."""
        try:
            length = self._body_length()
        except SpecValidationError:
            return                      # close_connection already set
        if 0 < length <= MAX_BODY_BYTES:
            self.rfile.read(length)
        elif length > MAX_BODY_BYTES:
            self.close_connection = True

    def _read_json(self):
        length = self._body_length()
        if length > MAX_BODY_BYTES:
            self.close_connection = True    # not draining this
            raise SpecValidationError(
                f"request body too large ({length} bytes; "
                f"limit {MAX_BODY_BYTES})")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise SpecValidationError("request body must be a JSON object")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SpecValidationError(f"invalid JSON body: {exc}") from exc

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route_class(self) -> str:
        """A low-cardinality label for latency histograms — one series
        per route shape, never per job id."""
        path = urlsplit(self.path).path.rstrip("/")
        if path in ("/healthz",):
            return "healthz"
        if path in ("/metrics", "/v1/metrics"):
            return "metrics"
        if path == "/v1/campaigns":
            return "submit_campaign"
        if path == "/v1/optimize":
            return "submit_optimize"
        if path == "/v1/events":
            return "events"
        if path.startswith("/v1/jobs"):
            if path.endswith("/result"):
                return "result"
            if path.endswith("/trace"):
                return "trace"
            return "jobs"
        return "other"

    def _guarded(self, handler) -> None:
        """Last-resort isolation: an unexpected exception in a route
        answers a JSON 500 (when the response has not started) instead
        of tearing down the connection with a half-written stream.
        Every request — including the failing ones — lands its wall time
        in the service latency histograms."""
        t0 = time.perf_counter()
        try:
            handler()
        except Exception as exc:
            self.service.metrics.incr("http_errors")
            self.close_connection = True
            try:
                self._error(500, f"internal error: {type(exc).__name__}: {exc}")
            except OSError:
                pass                    # response already underway / socket gone
        finally:
            dur = time.perf_counter() - t0
            metrics = self.service.metrics
            metrics.observe("http.request_s", dur)
            metrics.observe(f"http.{self._route_class()}_s", dur)

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        self._guarded(self._do_post)

    def do_GET(self) -> None:  # noqa: N802
        self._guarded(self._do_get)

    def _do_post(self) -> None:
        self.service.metrics.incr("http_requests")
        path = urlsplit(self.path).path.rstrip("/")
        kind = {"/v1/campaigns": "campaign", "/v1/optimize": "optimize"}.get(path)
        if kind is None:
            self.service.metrics.incr("http_errors")
            self._discard_body()
            return self._error(404, f"no such route: POST {path}")
        try:
            payload = self._read_json()
            job = self.service.submit(kind, payload)
        except SpecValidationError as exc:
            self.service.metrics.incr("http_errors")
            return self._error(400, str(exc))
        view = job.view()
        self._send_json(200 if job.terminal else 202, view)

    def _do_get(self) -> None:
        self.service.metrics.incr("http_requests")
        split = urlsplit(self.path)
        path = split.path.rstrip("/")
        if path == "/healthz":
            return self._send_json(200, self.service.health())
        if path == "/v1/metrics":
            return self._send_json(200, self.service.metrics_snapshot())
        if path == "/metrics":
            return self._send(
                200, self.service.prometheus_text().encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8")
        if path == "/v1/jobs":
            return self._send_json(
                200, {"jobs": [j.view() for j in self.service.queue.jobs()]})
        if path == "/v1/events":
            query = parse_qs(split.query)
            try:
                limit = int(query.get("limit", ["100"])[0])
            except ValueError:
                self.service.metrics.incr("http_errors")
                return self._error(400, "limit must be an integer")
            severity = query.get("severity", [None])[0]
            view = self.service.recent_events(limit, severity=severity)
            if view is None:
                self.service.metrics.incr("http_errors")
                return self._error(
                    404, "event log disarmed (REPRO_OBS=events arms it)")
            return self._send_json(200, view)
        parts = path.split("/")
        if len(parts) >= 4 and parts[1] == "v1" and parts[2] == "jobs":
            job = self.service.queue.get(parts[3])
            if job is None:
                self.service.metrics.incr("http_errors")
                return self._error(404, f"no such job: {parts[3]}")
            if len(parts) == 4:
                return self._send_json(200, job.view())
            if len(parts) == 5 and parts[4] == "result":
                return self._result(job, parse_qs(split.query))
            if len(parts) == 5 and parts[4] == "trace":
                trace = self.service.job_trace(job)
                if trace is None:
                    self.service.metrics.incr("http_errors")
                    return self._error(
                        404, f"no trace for job {job.id} (tracing disarmed "
                             "or the job never executed in this process)")
                return self._send_json(200, trace)
        self.service.metrics.incr("http_errors")
        self._error(404, f"no such route: GET {path}")

    def _result(self, job: J.Job, query: dict) -> None:
        if job.state == J.FAILED:
            self.service.metrics.incr("http_errors")
            return self._error(500, job.error or "job failed")
        if not job.terminal:
            return self._send_json(202, job.view())
        try:
            if "offset" in query or "limit" in query:
                offset = int(query.get("offset", ["0"])[0])
                limit = int(query.get("limit", ["100"])[0])
                return self._send_json(
                    200, self.service.result_page(job, offset, limit))
            text = self.service.result_text(job)
        except (SpecValidationError, ValueError) as exc:
            self.service.metrics.incr("http_errors")
            return self._error(400, str(exc))
        except LookupError as exc:
            self.service.metrics.incr("http_errors")
            return self._error(410, str(exc))
        self._send(200, text.encode("utf-8"))


class ServeServer(ThreadingHTTPServer):
    """One HTTP server bound to one service (thread-per-connection —
    polling is I/O-bound; the heavy lifting stays on the service's own
    worker pool)."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int],
                 service: CharacterizationService,
                 verbose: bool = False) -> None:
        super().__init__(address, ServeHandler)
        self.service = service
        self.verbose = verbose


def make_server(host: str = "127.0.0.1", port: int = 0,
                service: CharacterizationService | None = None,
                verbose: bool = False) -> ServeServer:
    """Bind (``port=0`` picks a free port) and start the service's
    workers; the caller owns ``serve_forever`` — inline for a CLI
    process, on a thread for tests and benchmarks."""
    service = service or CharacterizationService()
    service.start()
    return ServeServer((host, port), service, verbose=verbose)


def serve_background(service: CharacterizationService,
                     host: str = "127.0.0.1",
                     port: int = 0) -> tuple[ServeServer, threading.Thread]:
    """Spin the server on a daemon thread; returns ``(server, thread)``.
    ``server.server_address`` carries the bound port."""
    server = make_server(host, port, service)
    thread = threading.Thread(target=server.serve_forever,
                              name="serve-http", daemon=True)
    thread.start()
    return server, thread
