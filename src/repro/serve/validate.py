"""Shared request validation: one schema, every front door.

The serve layer's ``POST /v1/campaigns`` / ``POST /v1/optimize`` bodies
and the CLI's ``--spec FILE`` option describe the same two things — a
:class:`~repro.campaign.spec.CampaignSpec` and an
:func:`~repro.optimize.micamp.optimize_mic_amp` call — so they share
one validator.  Every failure is reported as a
:class:`SpecValidationError` whose message is a *single line* fit for
an HTTP 400 body or a ``error: ...`` CLI line; no traceback ever
reaches a client.

Campaign request schema (JSON object; every key optional)::

    {"builder": "micamp",
     "corners": ["tt", "ss"],          // or "all"
     "temps_c": [-20.0, 25.0, 85.0],
     "supplies": [null, 3.0],          // null = technology nominal
     "seeds": [null, 0, 1],            // null = nominal devices
     "gain_codes": [null, 5],          // null = builder default
     "measurements": ["offset_v", "iq_ma"],
     "builder_kwargs": {"i_in_ua": 320.0}}

Instead of naming a registered builder, a campaign request may carry a
``netlist`` circuit source — an external SPICE deck compiled through
:mod:`repro.ingest` (selects the ``ingested`` builder)::

    {"netlist": {"deck": "<SPICE deck text>",
                 "binding": {"ports": {"vdd": {"dc": 2.5}},
                             "outputs": ["vout"], "supply": "vdd"},
                 "top": "ota_5t"},               // optional
     "measurements": ["offset_v", "iq_ma", "gain_1khz_db"]}

The deck is canonicalised (parsed, flattened, re-exported) at
validation time, so store keys are content-addressed on the circuit,
not on the submitted text.

Optimize request schema (JSON object; every key optional)::

    {"budget": 60, "seed": 2026, "mode": "feasibility",
     "robust": {"corners": ["tt", "ss"], "temps_c": [25.0],
                "supplies": [null], "seeds": [null, 0]}}   // or null
"""

from __future__ import annotations

import json
import re

from repro.campaign.spec import CampaignSpec


class SpecValidationError(ValueError):
    """A malformed request payload, with a one-line human message."""


def _one_line(message: str) -> str:
    return re.sub(r"\s+", " ", str(message)).strip()


def _fail(message: str) -> "SpecValidationError":
    return SpecValidationError(_one_line(message))


def _require_object(payload, what: str) -> dict:
    if not isinstance(payload, dict):
        raise _fail(f"{what} must be a JSON object, "
                    f"got {type(payload).__name__}")
    return payload


def _check_keys(payload: dict, allowed: tuple[str, ...], what: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise _fail(f"unknown {what} key(s) {unknown}; "
                    f"allowed: {sorted(allowed)}")


def _axis_list(payload: dict, key: str):
    """An axis value must arrive as a JSON array (never a bare scalar or
    string — silent scalar-to-axis promotion hides typos)."""
    value = payload[key]
    if not isinstance(value, list):
        raise _fail(f"campaign key {key!r} must be an array, "
                    f"got {type(value).__name__}")
    return value


_CAMPAIGN_KEYS = ("builder", "corners", "temps_c", "supplies", "seeds",
                  "gain_codes", "measurements", "builder_kwargs", "netlist")
_NETLIST_KEYS = ("deck", "binding", "top")


def _netlist_builder_kwargs(src: dict) -> dict:
    """Canonicalise a ``netlist`` circuit source into ``ingested``
    builder kwargs.

    ``{"deck": "<SPICE text>", "binding": {...}, "top": "name"}``
    compiles (and flattens) right here so a malformed deck is a 400/exit-2
    one-liner at submission time, and so the builder_kwargs — and hence
    the store keys — carry the *canonical flattened* deck: two textual
    variants of the same circuit coalesce to the same cache entry.
    """
    from repro.ingest import IngestError, canonical_binding, canonicalize_deck

    src = _require_object(src, "campaign key 'netlist'")
    _check_keys(src, _NETLIST_KEYS, "netlist")
    if not isinstance(src.get("deck"), str) or not src["deck"].strip():
        raise _fail("netlist key 'deck' must be the SPICE deck text")
    top = src.get("top")
    if top is not None and not isinstance(top, str):
        raise _fail("netlist key 'top' must be a subcircuit name")
    try:
        deck = canonicalize_deck(src["deck"], name="netlist", top=top)
        binding = canonical_binding(src.get("binding", {}))
    except IngestError as exc:
        raise _fail(str(exc)) from exc
    return {"netlist": deck, "binding": binding}


def campaign_spec_from_dict(payload) -> CampaignSpec:
    """Validate a campaign request object into a :class:`CampaignSpec`.

    ``"all"`` is accepted for ``corners`` (every registered corner, in
    registry order), matching the CLI flag.  A ``netlist`` circuit
    source selects the ``ingested`` builder and is incompatible with an
    explicit ``builder``/``builder_kwargs``.  Anything the spec's own
    constructor rejects — unknown corners, builders, measurements, empty
    axes, non-numeric entries — surfaces as a one-line
    :class:`SpecValidationError`, never a traceback.
    """
    payload = _require_object(payload, "campaign request")
    _check_keys(payload, _CAMPAIGN_KEYS, "campaign request")
    kwargs: dict = {}
    if "netlist" in payload:
        for key in ("builder", "builder_kwargs"):
            if key in payload:
                raise _fail(f"campaign key 'netlist' is a circuit source of "
                            f"its own; drop the explicit {key!r} key")
        kwargs["builder"] = "ingested"
        kwargs["builder_kwargs"] = _netlist_builder_kwargs(payload["netlist"])
    if "builder" in payload:
        if not isinstance(payload["builder"], str):
            raise _fail("campaign key 'builder' must be a string")
        kwargs["builder"] = payload["builder"]
    if "corners" in payload:
        if payload["corners"] == "all":
            from repro.process.corners import CORNERS

            kwargs["corners"] = tuple(CORNERS)
        else:
            kwargs["corners"] = _axis_list(payload, "corners")
    for key in ("temps_c", "supplies", "seeds", "gain_codes", "measurements"):
        if key in payload:
            kwargs[key] = _axis_list(payload, key)
    if "builder_kwargs" in payload:
        bk = payload["builder_kwargs"]
        if not isinstance(bk, dict):
            raise _fail("campaign key 'builder_kwargs' must be an object")
        kwargs["builder_kwargs"] = bk
    try:
        return CampaignSpec(**kwargs)
    except (KeyError, ValueError, TypeError) as exc:
        raise _fail(str(exc)) from exc


_OPTIMIZE_KEYS = ("budget", "seed", "mode", "robust")
_ROBUST_KEYS = ("corners", "temps_c", "supplies", "seeds")


def optimize_request_from_dict(payload) -> dict:
    """Validate an optimize request into ``optimize_mic_amp`` kwargs:
    ``{"budget", "seed", "mode", "robust"}`` with ``robust`` already a
    :class:`~repro.optimize.evaluate.RobustSettings` (or ``None``)."""
    payload = _require_object(payload, "optimize request")
    _check_keys(payload, _OPTIMIZE_KEYS, "optimize request")
    out = {"budget": 150, "seed": 2026, "mode": "feasibility", "robust": None}
    for key in ("budget", "seed"):
        if key in payload:
            value = payload[key]
            if isinstance(value, bool) or not isinstance(value, int):
                raise _fail(f"optimize key {key!r} must be an integer")
            out[key] = value
    if out["budget"] < 2:
        raise _fail(f"optimize budget must be >= 2, got {out['budget']}")
    if "mode" in payload:
        mode = payload["mode"]
        if mode not in ("feasibility", "penalty"):
            raise _fail(f"optimize mode must be 'feasibility' or 'penalty', "
                        f"got {mode!r}")
        out["mode"] = mode
    if payload.get("robust") is not None:
        robust = _require_object(payload["robust"], "optimize key 'robust'")
        _check_keys(robust, _ROBUST_KEYS, "robust")
        from repro.optimize.evaluate import RobustSettings

        rkwargs = {}
        for key in _ROBUST_KEYS:
            if key in robust:
                if not isinstance(robust[key], list):
                    raise _fail(f"robust key {key!r} must be an array")
                rkwargs[key] = tuple(robust[key])
        try:
            out["robust"] = RobustSettings(**rkwargs)
        except (KeyError, ValueError, TypeError) as exc:
            raise _fail(str(exc)) from exc
    return out


#: Request kinds the serve layer accepts, mapped to their validators.
VALIDATORS = {
    "campaign": campaign_spec_from_dict,
    "optimize": optimize_request_from_dict,
}


def parse_request(kind: str, payload):
    """Dispatch ``payload`` to the validator for ``kind``."""
    try:
        validator = VALIDATORS[kind]
    except KeyError:
        raise _fail(f"unknown request kind {kind!r}; "
                    f"one of {sorted(VALIDATORS)}") from None
    return validator(payload)


def load_request_file(path, kind: str):
    """Read and validate a ``--spec`` JSON file for the CLI front doors.

    Malformed JSON, a missing file and a schema violation all raise the
    same one-line :class:`SpecValidationError` — the CLI prints it as a
    single ``error:`` line and exits 2, never a traceback.
    """
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise _fail(f"cannot read spec file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise _fail(f"spec file {path} is not valid JSON: {exc}") from exc
    return parse_request(kind, payload)
