"""The characterization service: queue + workers + store, one object.

:class:`CharacterizationService` is the engine behind the HTTP API (and
directly usable in-process, which is how the tests pin its semantics):

* **submit** — a validated request becomes a :class:`~repro.serve.jobs.Job`.
  Campaign requests are fingerprinted with
  :func:`repro.store.keys.campaign_key`; optimize requests with a
  canonical hash of their normalised parameters.
* **warm hits** — before a campaign job ever queues, the store is probed
  with one batched :meth:`~repro.store.ResultStore.contains_many` call;
  if *every* unit of the expansion is cached, the result is merged
  inline from the store (``run_campaign`` with zero missing units — the
  engine, the executor and the worker pool are never touched) and the
  job is born ``done``.
* **coalescing** — identical in-flight requests attach to one execution
  (see :class:`~repro.serve.jobs.JobQueue.submit`); with a store
  attached, the shared units of *sequential* duplicates are never
  re-executed either, so across any interleaving each unit is executed
  exactly once.
* **workers** — a small thread pool drains the queue; each campaign job
  runs through :func:`repro.campaign.run_campaign` (optionally on a
  :class:`~repro.campaign.executors.ProcessPoolCampaignExecutor` for
  multi-core hosts) with a per-unit progress callback feeding the job's
  status view, and each optimize job wraps
  :func:`repro.optimize.optimize_mic_amp` the same way.

Served campaign results are **byte-identical** to a direct
``run_campaign`` of the same spec: the store merge preserves bytes
(PR 4's contract) and the result document is the plain
``CampaignResult.to_json()`` text.

Failure policy (the robustness contract, attacked by ``tests/faults``):

* **per-job timeouts** — with ``job_timeout`` set, every job carries a
  wall-clock deadline enforced *cooperatively* at each progress step
  (chunk boundaries for campaigns, evaluations for optimize); an
  overrun fails the job with a one-line timeout error, never wedges a
  worker forever.
* **watchdog** — a background thread replaces dead worker threads
  (an escaped ``BaseException``) and retires-and-replaces hung ones
  (running past the cooperative deadline); a dying worker's job is
  requeued (bounded by :attr:`JobQueue.max_requeues`) rather than lost.
* **store degradation** — if the store is unavailable (after the
  backend's own bounded retries), the service falls back to engine-only
  execution: jobs still complete, ``/healthz`` reports ``degraded``,
  ``/v1/metrics`` counts the events, and a periodic probe restores the
  warm path once the store answers again.
"""

from __future__ import annotations

import itertools
import math
import sqlite3
import threading
import time
import traceback

from repro.faults.harness import fault_point
from repro.obs.events import SEVERITIES as EVENT_SEVERITIES
from repro.obs.events import active_event_log, event
from repro.obs.metrics import Histogram, render_prometheus
from repro.obs.trace import active_tracer, span
from repro.serve import jobs as J
from repro.serve.validate import (
    SpecValidationError,
    campaign_spec_from_dict,
    optimize_request_from_dict,
)

#: What "the store is unavailable" looks like after backend retries.
STORE_ERRORS = (sqlite3.OperationalError, OSError)


class JobTimeout(Exception):
    """A job exceeded the service's per-job wall-clock budget."""


class ServiceMetrics:
    """Counters, gauges and latency histograms behind one registry.

    Counters are monotone integers under one lock (unchanged from the
    original ``/v1/metrics`` surface).  :meth:`observe` feeds a named
    fixed-bucket :class:`~repro.obs.metrics.Histogram` (created on first
    use; each histogram carries its own lock, so observation contention
    is per-series, not global), and gauges are last-write-wins floats —
    together they are everything :func:`~repro.obs.metrics.
    render_prometheus` needs for ``GET /metrics``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, Histogram] = {}
        self._gauges: dict[str, float] = {}

    def incr(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(sorted(self._counters.items()))

    def observe(self, name: str, value: float) -> None:
        """Record one sample (seconds, typically) into the named
        histogram, creating it with the default latency buckets on first
        use."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
        hist.observe(value)

    def histogram(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def gauges_snapshot(self) -> dict[str, float]:
        with self._lock:
            return dict(sorted(self._gauges.items()))

    def latency_snapshot(self) -> dict[str, dict]:
        """Per-histogram ``{"count", "sum", "p50", "p95", "p99"}`` —
        the JSON-friendly quantile view ``/v1/metrics`` serves."""
        with self._lock:
            hists = dict(self._histograms)
        out: dict[str, dict] = {}
        for name in sorted(hists):
            hist = hists[name]
            snap = hist.snapshot()
            qs = hist.quantiles()
            out[name] = {
                "count": snap["count"],
                "sum": snap["sum"],
                **{k: (None if math.isnan(v) else v) for k, v in qs.items()},
            }
        return out

    def histograms_snapshot(self) -> dict[str, dict]:
        """Full Prometheus-shaped snapshots, name -> snapshot dict."""
        with self._lock:
            hists = dict(self._histograms)
        return {name: hists[name].snapshot() for name in sorted(hists)}


class CharacterizationService:
    """Long-lived front end over campaign + optimize + store.

    ``store`` (a :class:`repro.store.ResultStore` or ``None``) enables
    warm hits and cross-restart result recovery; ``workers`` sizes the
    in-process worker *thread* pool (each runs one job at a time);
    ``pool_workers > 1`` gives every campaign job a
    :class:`ProcessPoolCampaignExecutor` of that size, otherwise jobs
    run on the serial executor (results are byte-identical either way —
    the campaign contract).  ``journal_dir`` persists job metadata
    across restarts.  ``max_jobs`` caps *retention*: past it, the
    oldest terminal jobs (and their in-memory results) are evicted —
    an evicted campaign answers a fresh submission as a store warm hit,
    so nothing is lost but the job id.

    ``job_timeout`` (seconds, ``None`` = unlimited) bounds each job's
    wall clock; ``watchdog_interval`` paces the dead/hung-worker scan
    (``0`` disables the watchdog); ``store_retry_interval`` paces the
    recovery probe while the store is degraded.
    """

    def __init__(self, store=None, workers: int = 2, pool_workers: int = 1,
                 journal_dir=None, max_jobs: int = 1024,
                 job_timeout: float | None = None,
                 watchdog_interval: float = 1.0,
                 store_retry_interval: float = 5.0) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError(f"job_timeout must be > 0, got {job_timeout}")
        self.store = store
        self.pool_workers = pool_workers
        self.job_timeout = job_timeout
        self.watchdog_interval = watchdog_interval
        self.store_retry_interval = store_retry_interval
        self.queue = J.JobQueue(journal_dir=journal_dir, max_jobs=max_jobs)
        self.metrics = ServiceMetrics()
        self._n_workers = workers
        self._started = False
        # Worker-pool state (all guarded by _worker_lock).
        self._worker_lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._hung_threads: list[threading.Thread] = []
        self._retired: set[str] = set()
        self._active: dict[str, tuple[str, float]] = {}  # name -> (job, t0)
        self._worker_seq = itertools.count()
        self._stragglers: list[str] = []
        self._stop_event = threading.Event()
        self._watchdog: threading.Thread | None = None
        # Store-degradation state.
        self._store_lock = threading.Lock()
        self._store_degraded = False
        self._store_checked_at = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> threading.Thread:
        t = threading.Thread(target=self._worker_loop,
                             name=f"serve-worker-{next(self._worker_seq)}",
                             daemon=True)
        t.start()
        return t

    def start(self) -> "CharacterizationService":
        if self._started:
            return self
        self._started = True
        self._stop_event.clear()
        self._stragglers = []
        with self._worker_lock:
            self._threads = [self._spawn_worker()
                             for _ in range(self._n_workers)]
        if self.watchdog_interval > 0:
            self._watchdog = threading.Thread(target=self._watchdog_loop,
                                              name="serve-watchdog",
                                              daemon=True)
            self._watchdog.start()
        return self

    def stop(self, timeout: float = 10.0) -> list[str]:
        """Drain and join the pool within ``timeout`` seconds **total**.

        Always returns — a worker hung in a job cannot hold shutdown
        hostage.  The names of workers that failed to exit come back as
        *stragglers* (also counted in metrics and reflected in
        :meth:`health`, which keeps ``/healthz`` honest about the
        leftover thread instead of pretending a clean stop).
        """
        self._stop_event.set()
        self.queue.close()
        if self._watchdog is not None:
            self._watchdog.join(timeout)
            self._watchdog = None
        deadline = time.monotonic() + timeout
        stragglers: list[str] = []
        with self._worker_lock:
            threads = self._threads + self._hung_threads
            self._threads = []
            self._hung_threads = []
        for t in threads:
            t.join(max(0.0, deadline - time.monotonic()))
            if t.is_alive():
                stragglers.append(t.name)
        self._stragglers = stragglers
        if stragglers:
            self.metrics.incr("stop_stragglers", len(stragglers))
        self._started = False
        return stragglers

    def __enter__(self) -> "CharacterizationService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------
    def _watchdog_loop(self) -> None:
        while not self._stop_event.wait(self.watchdog_interval):
            try:
                self.watchdog_scan()
            except Exception:       # the watchdog itself must not die
                traceback.print_exc()

    def watchdog_scan(self) -> None:
        """One dead/hung sweep (public so tests can drive it without
        waiting out the interval).

        Dead threads (an escaped ``BaseException``; their job was
        already requeued by the dying worker) are replaced in place.  A
        thread still running one job past the cooperative deadline plus
        two scan intervals is *hung* — it cannot be killed, so it is
        retired (it exits when/if it wakes) and a replacement keeps the
        pool at strength; it remains joined-and-reported at stop time.
        """
        now = time.monotonic()
        hang_after = (None if self.job_timeout is None
                      else self.job_timeout + 2 * self.watchdog_interval)
        with self._worker_lock:
            if self._stop_event.is_set():
                return
            for i, t in enumerate(self._threads):
                if not t.is_alive():
                    self._active.pop(t.name, None)
                    self._threads[i] = self._spawn_worker()
                    self.metrics.incr("workers_replaced")
                    continue
                active = self._active.get(t.name)
                if (hang_after is not None and active is not None
                        and now - active[1] > hang_after):
                    self._retired.add(t.name)
                    self._hung_threads.append(t)
                    self._threads[i] = self._spawn_worker()
                    self.metrics.incr("workers_hung")
                    self.metrics.incr("workers_replaced")
                    event("serve.worker_hung", "error", worker=t.name,
                          job=active[0],
                          busy_s=round(now - active[1], 3))

    # ------------------------------------------------------------------
    # Store degradation
    # ------------------------------------------------------------------
    def _degrade_store(self) -> None:
        with self._store_lock:
            first = not self._store_degraded
            self._store_degraded = True
            self._store_checked_at = time.monotonic()
        self.metrics.incr("store_errors")
        if first:
            self.metrics.incr("store_degraded_events")
            event("serve.store_degraded", "error",
                  retry_interval_s=self.store_retry_interval)

    def _active_store(self):
        """The store if it is believed healthy, else ``None`` (engine-only
        degradation).  While degraded, at most one cheap index probe per
        ``store_retry_interval`` tests for recovery."""
        if self.store is None:
            return None
        with self._store_lock:
            if not self._store_degraded:
                return self.store
            if (time.monotonic() - self._store_checked_at
                    < self.store_retry_interval):
                return None
            self._store_checked_at = time.monotonic()
        try:
            self.store.contains("-recovery-probe-")
        except STORE_ERRORS:
            self.metrics.incr("store_errors")
            return None
        with self._store_lock:
            self._store_degraded = False
        self.metrics.incr("store_recovered")
        event("serve.store_recovered", "info")
        return self.store

    @property
    def store_degraded(self) -> bool:
        with self._store_lock:
            return self._store_degraded

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, kind: str, payload) -> J.Job:
        """Validate and admit one request; returns its (possibly shared,
        possibly already-done) job.  Raises :class:`SpecValidationError`
        on a malformed payload."""
        if kind == "campaign":
            return self.submit_campaign(payload)
        if kind == "optimize":
            return self.submit_optimize(payload)
        raise SpecValidationError(f"unknown request kind {kind!r}; "
                                  "one of ['campaign', 'optimize']")

    def submit_campaign(self, payload) -> J.Job:
        from repro.store.keys import campaign_key

        spec = campaign_spec_from_dict(payload)
        fingerprint = campaign_key(spec)
        self.metrics.incr("submitted_campaign")

        warm_job = self._try_warm(spec, payload, fingerprint)
        if warm_job is not None:
            return warm_job

        job = J.Job(id=J.new_job_id(), kind="campaign",
                    payload=payload if isinstance(payload, dict) else {},
                    fingerprint=fingerprint)
        job, coalesced = self.queue.submit(job)
        if coalesced:
            self.metrics.incr("coalesced")
        return job

    def submit_optimize(self, payload) -> J.Job:
        from repro.store.keys import canonical_hash, canonical_payload

        kwargs = optimize_request_from_dict(payload)
        fingerprint = canonical_hash({
            "kind": "optimize",
            "budget": kwargs["budget"],
            "seed": kwargs["seed"],
            "mode": kwargs["mode"],
            "robust": canonical_payload(kwargs["robust"])
            if kwargs["robust"] is not None else None,
        })
        self.metrics.incr("submitted_optimize")
        job = J.Job(id=J.new_job_id(), kind="optimize",
                    payload=payload if isinstance(payload, dict) else {},
                    fingerprint=fingerprint)
        job, coalesced = self.queue.submit(job)
        if coalesced:
            self.metrics.incr("coalesced")
        return job

    def _try_warm(self, spec, payload, fingerprint) -> J.Job | None:
        """Answer a fully-cached campaign inline, skipping the queue.

        The probe is one batched index query (no payload reads); only a
        complete hit takes the warm path.  The subsequent merge re-reads
        through ``get_many`` — if a file vanished between probe and
        merge (a racing gc), ``run_campaign`` transparently re-executes
        just those units inline, which is still correct, merely less
        warm than advertised.  An unavailable store degrades to the
        cold path instead of failing the submission.
        """
        store = self._active_store()
        if store is None:
            return None
        from repro.campaign import run_campaign
        from repro.store import UnitKeyer

        units = spec.expand()
        keyer = UnitKeyer(spec)
        keys = [keyer.key(unit) for unit in units]
        try:
            present = store.contains_many(keys)
            if len(present) < len(keys):
                return None
            result = run_campaign(spec, store=store)
        except STORE_ERRORS:
            self._degrade_store()
            return None
        job = J.Job(id=J.new_job_id(), kind="campaign",
                    payload=payload if isinstance(payload, dict) else {},
                    fingerprint=fingerprint, state=J.DONE, warm=True,
                    result=result)
        job.finished_at = job.created_at
        job.progress = {"units_done": len(units), "units_total": len(units)}
        self.queue.register(job)
        self.metrics.incr("warm_hits")
        self.metrics.incr("units_reused",
                          result.store_stats["reused_units"])
        self.metrics.incr("units_executed",
                          result.store_stats["executed_units"])
        self.metrics.incr("jobs_done")
        return job

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _campaign_executor(self):
        if self.pool_workers > 1:
            from repro.campaign import ProcessPoolCampaignExecutor

            return ProcessPoolCampaignExecutor(max_workers=self.pool_workers)
        from repro.campaign import SerialExecutor

        return SerialExecutor()

    def _worker_loop(self) -> None:
        name = threading.current_thread().name
        while True:
            with self._worker_lock:
                if name in self._retired:
                    self._retired.discard(name)
                    return
            job = self.queue.next_job()
            if job is None:
                return
            if job.started_at is not None:
                self.metrics.observe("job.queue_wait_s",
                                     max(0.0, job.started_at - job.created_at))
            with self._worker_lock:
                self._active[name] = (job.id, time.monotonic())
            try:
                self._run_job(job)
            except JobTimeout as exc:
                self.metrics.incr("jobs_timeout")
                self.metrics.incr("jobs_failed")
                event("serve.job_timeout", "error", job=job.id,
                      kind=job.kind, error=str(exc))
                self.queue.finish(job, J.FAILED, error=str(exc))
            except SpecValidationError as exc:
                self.metrics.incr("jobs_failed")
                self.queue.finish(job, J.FAILED, error=str(exc))
            except Exception as exc:  # job isolation: one bad request
                self.metrics.incr("jobs_failed")  # must not kill a worker
                traceback.print_exc()
                self.queue.finish(job, J.FAILED,
                                  error=f"{type(exc).__name__}: {exc}")
            except BaseException as exc:
                # The worker itself is dying (injected crash, interpreter
                # teardown).  The job is innocent until it exhausts its
                # requeue budget: execution is idempotent, so putting it
                # back loses nothing — then let the thread die and the
                # watchdog replace it.
                self.metrics.incr("workers_died")
                event("serve.worker_died", "error", worker=name,
                      job=job.id, error=f"{type(exc).__name__}: {exc}")
                if self.queue.requeue(job):
                    self.metrics.incr("jobs_requeued")
                    event("serve.job_requeued", "warn", job=job.id,
                          requeues=job.requeues)
                else:
                    self.metrics.incr("jobs_failed")
                    self.queue.finish(
                        job, J.FAILED,
                        error=f"worker died: {type(exc).__name__}: {exc}")
                raise
            finally:
                with self._worker_lock:
                    self._active.pop(name, None)

    def _deadline_progress(self, job: J.Job, update) -> "callable":
        """Wrap a job's progress updater with the cooperative deadline
        check: every progress step (chunk / evaluation) both reports and
        gives the timeout a chance to fire."""
        start = job.started_at or time.time()   # anchored at dequeue
        deadline = (None if self.job_timeout is None
                    else start + self.job_timeout)

        def progress(*args) -> None:
            update(*args)
            if deadline is not None and time.time() > deadline:
                raise JobTimeout(
                    f"job {job.id} exceeded the {self.job_timeout}s "
                    f"wall-clock budget at {job.progress}")
        return progress

    def _run_job(self, job: J.Job) -> None:
        fault_point("serve.job", job=job.id, kind=job.kind)
        t0 = time.perf_counter()
        with span("serve.job", job=job.id, kind=job.kind) as sp:
            job.trace_id = getattr(sp, "trace_id", None)
            if job.kind == "campaign":
                self._run_campaign_job(job)
            elif job.kind == "optimize":
                self._run_optimize_job(job)
            else:
                raise SpecValidationError(f"unknown job kind {job.kind!r}")
        self.metrics.observe(f"job.{job.kind}_s", time.perf_counter() - t0)
        self.metrics.incr("jobs_done")
        self.queue.finish(job, J.DONE)

    def _cancellable_chunk_size(self, spec) -> int | None:
        """With a deadline armed, bound serial chunks so the cooperative
        check runs every few units instead of once per campaign (the
        serial executor's default is one whole-campaign chunk).  Without
        a deadline keep the executor's heuristic — and its cache
        behaviour — untouched."""
        if self.job_timeout is None or self.pool_workers > 1:
            return None
        return max(1, math.ceil(spec.n_units / 8))

    def _run_campaign_job(self, job: J.Job) -> None:
        from repro.campaign import run_campaign

        spec = campaign_spec_from_dict(job.payload)

        def update(done: int, total: int) -> None:
            job.progress = {"units_done": done, "units_total": total}

        store = self._active_store()
        result = run_campaign(spec, executor=self._campaign_executor(),
                              chunk_size=self._cancellable_chunk_size(spec),
                              store=store,
                              progress=self._deadline_progress(job, update))
        job.result = result
        if result.store_stats is not None:
            if result.store_stats.get("store_errors"):
                self._degrade_store()   # ran engine-only; flag the store
            self.metrics.incr("units_executed",
                              result.store_stats["executed_units"])
            self.metrics.incr("units_reused",
                              result.store_stats["reused_units"])
        else:
            self.metrics.incr("units_executed", len(result))

    def _run_optimize_job(self, job: J.Job) -> None:
        from repro.optimize import optimize_mic_amp

        kwargs = optimize_request_from_dict(job.payload)

        def update(done: int, budget: int) -> None:
            job.progress = {"evaluations_done": done, "budget": budget}

        result = optimize_mic_amp(
            budget=kwargs["budget"], seed=kwargs["seed"],
            mode=kwargs["mode"], robust=kwargs["robust"],
            executor=(self._campaign_executor()
                      if self.pool_workers > 1 else None),
            store=self._active_store(),
            progress=self._deadline_progress(job, update),
        )
        job.result = result
        self.metrics.incr("optimize_evaluations", result.n_evaluations)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def campaign_result(self, job: J.Job):
        """The job's ``CampaignResult``, reconstructed from the store if
        this process never ran it (journal-restored jobs)."""
        if job.result is None:
            store = self._active_store()
            if store is None:
                raise LookupError(
                    f"job {job.id}: result not in memory and no healthy "
                    "store attached to recover it from")
            from repro.campaign import run_campaign

            spec = campaign_spec_from_dict(job.payload)
            job.result = run_campaign(spec, store=store)
        return job.result

    def result_text(self, job: J.Job) -> str:
        """The full result document: for campaigns, the byte-identical
        ``CampaignResult.to_json()`` text (plus trailing newline — the
        exact bytes ``repro campaign --json`` writes)."""
        import json as _json

        if job.kind == "campaign":
            return self.campaign_result(job).to_json() + "\n"
        return _json.dumps(self._optimize_payload(job), indent=2) + "\n"

    def result_page(self, job: J.Job, offset: int, limit: int) -> dict:
        """One page of a campaign result's rows (``offset``/``limit``
        half-open slice in unit order), with the page window echoed."""
        if job.kind != "campaign":
            raise SpecValidationError(
                "pagination applies to campaign results only")
        if offset < 0 or limit < 1:
            raise SpecValidationError(
                f"need offset >= 0 and limit >= 1, got {offset}/{limit}")
        result = self.campaign_result(job)
        sl = slice(offset, offset + limit)
        return {
            "total": len(result),
            "offset": offset,
            "limit": limit,
            "metrics": list(result.metrics),
            "columns": {
                name: [result._json_value(v)
                       for v in result.data[name][sl].tolist()]
                for name in result.columns
            },
        }

    def _optimize_payload(self, job: J.Job) -> dict:
        import json as _json

        result = job.result
        if result is None:
            raise LookupError(
                f"job {job.id}: optimize results are not recoverable "
                "after a restart; re-submit (the evaluation store makes "
                "the rerun warm)")
        return {
            "summary": result.summary(),
            "best_params": result.best_params,
            "best_metrics": dict(result.best.metrics),
            "best_score": result.best.score,
            "feasible": result.best.feasible,
            "n_evaluations": result.n_evaluations,
            "pareto": _json.loads(result.pareto.to_json()),
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> dict:
        with self._worker_lock:
            workers_alive = sum(t.is_alive() for t in self._threads)
            hung = sum(t.is_alive() for t in self._hung_threads)
        degraded = bool(self.store_degraded or hung or self._stragglers)
        return {
            "status": "degraded" if degraded else "ok",
            "workers": self._n_workers,
            "workers_alive": workers_alive,
            "hung_workers": hung,
            "stragglers": list(self._stragglers),
            "queue_depth": self.queue.depth(),
            "jobs": len(self.queue),
            "store": None if self.store is None else str(self.store.root),
            "store_degraded": self.store_degraded,
        }

    def _update_gauges(self) -> None:
        """Refresh the pull-style gauges (queue depth, busy workers,
        store size) — called on every metrics read so scrapes see the
        current state without a background sampler thread."""
        self.metrics.set_gauge("queue_depth", self.queue.depth())
        self.metrics.set_gauge("jobs", len(self.queue))
        with self._worker_lock:
            busy = len(self._active)
        self.metrics.set_gauge("workers_busy", busy)
        if self.store is not None and not self.store_degraded:
            try:
                self.metrics.set_gauge("store_entries", len(self.store))
            except STORE_ERRORS:
                pass                    # a scrape must never fail on the store

    def _store_section(self) -> dict:
        """``store.*``-namespaced store health for ``/v1/metrics``:
        the backend's defect counters (quarantined payloads, read
        errors, absorbed index retries) plus degradation state."""
        section: dict = {"store.attached": self.store is not None,
                         "store.degraded": self.store_degraded}
        if self.store is not None:
            try:
                for name, value in self.store.fault_stats().items():
                    section[f"store.{name}"] = value
                section["store.entries"] = len(self.store)
            except STORE_ERRORS:
                pass
        return section

    def _journal_section(self) -> dict:
        return {
            "journal.enabled": self.queue.journal_dir is not None,
            "journal.recovered": self.queue.journal_recovered,
            "journal.corrupt": self.queue.journal_corrupt,
        }

    def _events_section(self) -> dict:
        """``events.*``-namespaced event-log health: armed state,
        monotone totals, and the per-severity tallies.  All zeros while
        disarmed, so the schema is stable either way."""
        log = active_event_log()
        section: dict = {"events.armed": log is not None}
        counts = (log.severity_counts() if log is not None
                  else {s: 0 for s in EVENT_SEVERITIES})
        for severity in EVENT_SEVERITIES:
            section[f"events.{severity}"] = counts.get(severity, 0)
        section["events.recorded"] = 0 if log is None else log.recorded
        section["events.dropped"] = 0 if log is None else log.dropped
        return section

    def metrics_snapshot(self) -> dict:
        self._update_gauges()
        snap = {
            "counters": self.metrics.snapshot(),
            "queue_depth": self.queue.depth(),
            "jobs": len(self.queue),
            "journal_recovered": self.queue.journal_recovered,
            "journal_corrupt": self.queue.journal_corrupt,
            "store_degraded": self.store_degraded,
            "gauges": self.metrics.gauges_snapshot(),
            "latency": self.metrics.latency_snapshot(),
        }
        snap.update(self._store_section())
        snap.update(self._journal_section())
        snap.update(self._events_section())
        return snap

    def prometheus_text(self) -> str:
        """The ``GET /metrics`` document (Prometheus text exposition)."""
        self._update_gauges()
        counters = self.metrics.snapshot()
        for name, value in self._store_section().items():
            if isinstance(value, bool):
                self.metrics.set_gauge(name, 1.0 if value else 0.0)
            elif isinstance(value, (int, float)):
                self.metrics.set_gauge(name, value)
        for name, value in self._journal_section().items():
            self.metrics.set_gauge(name,
                                   float(value) if not isinstance(value, bool)
                                   else (1.0 if value else 0.0))
        for name, value in self._events_section().items():
            self.metrics.set_gauge(name,
                                   float(value) if not isinstance(value, bool)
                                   else (1.0 if value else 0.0))
        return render_prometheus(
            counters=counters,
            gauges=self.metrics.gauges_snapshot(),
            histograms=self.metrics.histograms_snapshot(),
        )

    def job_trace(self, job: J.Job) -> dict | None:
        """The spans collected for one job's execution, or ``None`` when
        tracing is disarmed or the job never ran under a span (warm
        hits, journal-restored records)."""
        trace_id = getattr(job, "trace_id", None)
        tracer = active_tracer()
        if trace_id is None or tracer is None:
            return None
        return {"trace_id": trace_id, "spans": tracer.spans(trace_id)}

    def recent_events(self, limit: int = 100,
                      severity: str | None = None) -> dict | None:
        """The newest ``limit`` structured events (optionally filtered by
        severity), or ``None`` while the event log is disarmed — the
        ``/v1/events`` route turns that into a 404, mirroring the trace
        route's disarmed behaviour."""
        log = active_event_log()
        if log is None:
            return None
        events = log.events(severity=severity)
        return {
            "recorded": log.recorded,
            "dropped": log.dropped,
            "by_severity": log.severity_counts(),
            "events": events[-max(0, int(limit)):],
        }
