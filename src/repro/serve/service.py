"""The characterization service: queue + workers + store, one object.

:class:`CharacterizationService` is the engine behind the HTTP API (and
directly usable in-process, which is how the tests pin its semantics):

* **submit** — a validated request becomes a :class:`~repro.serve.jobs.Job`.
  Campaign requests are fingerprinted with
  :func:`repro.store.keys.campaign_key`; optimize requests with a
  canonical hash of their normalised parameters.
* **warm hits** — before a campaign job ever queues, the store is probed
  with one batched :meth:`~repro.store.ResultStore.contains_many` call;
  if *every* unit of the expansion is cached, the result is merged
  inline from the store (``run_campaign`` with zero missing units — the
  engine, the executor and the worker pool are never touched) and the
  job is born ``done``.
* **coalescing** — identical in-flight requests attach to one execution
  (see :class:`~repro.serve.jobs.JobQueue.submit`); with a store
  attached, the shared units of *sequential* duplicates are never
  re-executed either, so across any interleaving each unit is executed
  exactly once.
* **workers** — a small thread pool drains the queue; each campaign job
  runs through :func:`repro.campaign.run_campaign` (optionally on a
  :class:`~repro.campaign.executors.ProcessPoolCampaignExecutor` for
  multi-core hosts) with a per-unit progress callback feeding the job's
  status view, and each optimize job wraps
  :func:`repro.optimize.optimize_mic_amp` the same way.

Served campaign results are **byte-identical** to a direct
``run_campaign`` of the same spec: the store merge preserves bytes
(PR 4's contract) and the result document is the plain
``CampaignResult.to_json()`` text.
"""

from __future__ import annotations

import threading
import traceback

from repro.serve import jobs as J
from repro.serve.validate import (
    SpecValidationError,
    campaign_spec_from_dict,
    optimize_request_from_dict,
)


class ServiceMetrics:
    """Monotonic named counters behind one lock (`GET /v1/metrics`)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}

    def incr(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(sorted(self._counters.items()))


class CharacterizationService:
    """Long-lived front end over campaign + optimize + store.

    ``store`` (a :class:`repro.store.ResultStore` or ``None``) enables
    warm hits and cross-restart result recovery; ``workers`` sizes the
    in-process worker *thread* pool (each runs one job at a time);
    ``pool_workers > 1`` gives every campaign job a
    :class:`ProcessPoolCampaignExecutor` of that size, otherwise jobs
    run on the serial executor (results are byte-identical either way —
    the campaign contract).  ``journal_dir`` persists job metadata
    across restarts.  ``max_jobs`` caps *retention*: past it, the
    oldest terminal jobs (and their in-memory results) are evicted —
    an evicted campaign answers a fresh submission as a store warm hit,
    so nothing is lost but the job id.
    """

    def __init__(self, store=None, workers: int = 2, pool_workers: int = 1,
                 journal_dir=None, max_jobs: int = 1024) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store = store
        self.pool_workers = pool_workers
        self.queue = J.JobQueue(journal_dir=journal_dir, max_jobs=max_jobs)
        self.metrics = ServiceMetrics()
        self._threads: list[threading.Thread] = []
        self._n_workers = workers
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "CharacterizationService":
        if self._started:
            return self
        self._started = True
        for i in range(self._n_workers):
            t = threading.Thread(target=self._worker_loop,
                                 name=f"serve-worker-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self.queue.close()
        for t in self._threads:
            t.join(timeout)
        self._threads = []
        self._started = False

    def __enter__(self) -> "CharacterizationService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, kind: str, payload) -> J.Job:
        """Validate and admit one request; returns its (possibly shared,
        possibly already-done) job.  Raises :class:`SpecValidationError`
        on a malformed payload."""
        if kind == "campaign":
            return self.submit_campaign(payload)
        if kind == "optimize":
            return self.submit_optimize(payload)
        raise SpecValidationError(f"unknown request kind {kind!r}; "
                                  "one of ['campaign', 'optimize']")

    def submit_campaign(self, payload) -> J.Job:
        from repro.store.keys import campaign_key

        spec = campaign_spec_from_dict(payload)
        fingerprint = campaign_key(spec)
        self.metrics.incr("submitted_campaign")

        warm_job = self._try_warm(spec, payload, fingerprint)
        if warm_job is not None:
            return warm_job

        job = J.Job(id=J.new_job_id(), kind="campaign",
                    payload=payload if isinstance(payload, dict) else {},
                    fingerprint=fingerprint)
        job, coalesced = self.queue.submit(job)
        if coalesced:
            self.metrics.incr("coalesced")
        return job

    def submit_optimize(self, payload) -> J.Job:
        from repro.store.keys import canonical_hash, canonical_payload

        kwargs = optimize_request_from_dict(payload)
        fingerprint = canonical_hash({
            "kind": "optimize",
            "budget": kwargs["budget"],
            "seed": kwargs["seed"],
            "mode": kwargs["mode"],
            "robust": canonical_payload(kwargs["robust"])
            if kwargs["robust"] is not None else None,
        })
        self.metrics.incr("submitted_optimize")
        job = J.Job(id=J.new_job_id(), kind="optimize",
                    payload=payload if isinstance(payload, dict) else {},
                    fingerprint=fingerprint)
        job, coalesced = self.queue.submit(job)
        if coalesced:
            self.metrics.incr("coalesced")
        return job

    def _try_warm(self, spec, payload, fingerprint) -> J.Job | None:
        """Answer a fully-cached campaign inline, skipping the queue.

        The probe is one batched index query (no payload reads); only a
        complete hit takes the warm path.  The subsequent merge re-reads
        through ``get_many`` — if a file vanished between probe and
        merge (a racing gc), ``run_campaign`` transparently re-executes
        just those units inline, which is still correct, merely less
        warm than advertised.
        """
        if self.store is None:
            return None
        from repro.campaign import run_campaign
        from repro.store import UnitKeyer

        units = spec.expand()
        keyer = UnitKeyer(spec)
        keys = [keyer.key(unit) for unit in units]
        present = self.store.contains_many(keys)
        if len(present) < len(keys):
            return None
        result = run_campaign(spec, store=self.store)
        job = J.Job(id=J.new_job_id(), kind="campaign",
                    payload=payload if isinstance(payload, dict) else {},
                    fingerprint=fingerprint, state=J.DONE, warm=True,
                    result=result)
        job.finished_at = job.created_at
        job.progress = {"units_done": len(units), "units_total": len(units)}
        self.queue.register(job)
        self.metrics.incr("warm_hits")
        self.metrics.incr("units_reused",
                          result.store_stats["reused_units"])
        self.metrics.incr("units_executed",
                          result.store_stats["executed_units"])
        self.metrics.incr("jobs_done")
        return job

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _campaign_executor(self):
        if self.pool_workers > 1:
            from repro.campaign import ProcessPoolCampaignExecutor

            return ProcessPoolCampaignExecutor(max_workers=self.pool_workers)
        from repro.campaign import SerialExecutor

        return SerialExecutor()

    def _worker_loop(self) -> None:
        while True:
            job = self.queue.next_job()
            if job is None:
                return
            try:
                self._run_job(job)
            except SpecValidationError as exc:
                self.metrics.incr("jobs_failed")
                self.queue.finish(job, J.FAILED, error=str(exc))
            except Exception as exc:  # job isolation: one bad request
                self.metrics.incr("jobs_failed")  # must not kill a worker
                traceback.print_exc()
                self.queue.finish(job, J.FAILED,
                                  error=f"{type(exc).__name__}: {exc}")

    def _run_job(self, job: J.Job) -> None:
        if job.kind == "campaign":
            self._run_campaign_job(job)
        elif job.kind == "optimize":
            self._run_optimize_job(job)
        else:
            raise SpecValidationError(f"unknown job kind {job.kind!r}")
        self.metrics.incr("jobs_done")
        self.queue.finish(job, J.DONE)

    def _run_campaign_job(self, job: J.Job) -> None:
        from repro.campaign import run_campaign

        spec = campaign_spec_from_dict(job.payload)

        def progress(done: int, total: int) -> None:
            job.progress = {"units_done": done, "units_total": total}

        result = run_campaign(spec, executor=self._campaign_executor(),
                              store=self.store, progress=progress)
        job.result = result
        if result.store_stats is not None:
            self.metrics.incr("units_executed",
                              result.store_stats["executed_units"])
            self.metrics.incr("units_reused",
                              result.store_stats["reused_units"])
        else:
            self.metrics.incr("units_executed", len(result))

    def _run_optimize_job(self, job: J.Job) -> None:
        from repro.optimize import optimize_mic_amp

        kwargs = optimize_request_from_dict(job.payload)

        def progress(done: int, budget: int) -> None:
            job.progress = {"evaluations_done": done, "budget": budget}

        result = optimize_mic_amp(
            budget=kwargs["budget"], seed=kwargs["seed"],
            mode=kwargs["mode"], robust=kwargs["robust"],
            executor=(self._campaign_executor()
                      if self.pool_workers > 1 else None),
            store=self.store, progress=progress,
        )
        job.result = result
        self.metrics.incr("optimize_evaluations", result.n_evaluations)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def campaign_result(self, job: J.Job):
        """The job's ``CampaignResult``, reconstructed from the store if
        this process never ran it (journal-restored jobs)."""
        if job.result is None:
            if self.store is None:
                raise LookupError(
                    f"job {job.id}: result not in memory and no store "
                    "attached to recover it from")
            from repro.campaign import run_campaign

            spec = campaign_spec_from_dict(job.payload)
            job.result = run_campaign(spec, store=self.store)
        return job.result

    def result_text(self, job: J.Job) -> str:
        """The full result document: for campaigns, the byte-identical
        ``CampaignResult.to_json()`` text (plus trailing newline — the
        exact bytes ``repro campaign --json`` writes)."""
        import json as _json

        if job.kind == "campaign":
            return self.campaign_result(job).to_json() + "\n"
        return _json.dumps(self._optimize_payload(job), indent=2) + "\n"

    def result_page(self, job: J.Job, offset: int, limit: int) -> dict:
        """One page of a campaign result's rows (``offset``/``limit``
        half-open slice in unit order), with the page window echoed."""
        if job.kind != "campaign":
            raise SpecValidationError(
                "pagination applies to campaign results only")
        if offset < 0 or limit < 1:
            raise SpecValidationError(
                f"need offset >= 0 and limit >= 1, got {offset}/{limit}")
        result = self.campaign_result(job)
        sl = slice(offset, offset + limit)
        return {
            "total": len(result),
            "offset": offset,
            "limit": limit,
            "metrics": list(result.metrics),
            "columns": {
                name: [result._json_value(v)
                       for v in result.data[name][sl].tolist()]
                for name in result.columns
            },
        }

    def _optimize_payload(self, job: J.Job) -> dict:
        import json as _json

        result = job.result
        if result is None:
            raise LookupError(
                f"job {job.id}: optimize results are not recoverable "
                "after a restart; re-submit (the evaluation store makes "
                "the rerun warm)")
        return {
            "summary": result.summary(),
            "best_params": result.best_params,
            "best_metrics": dict(result.best.metrics),
            "best_score": result.best.score,
            "feasible": result.best.feasible,
            "n_evaluations": result.n_evaluations,
            "pareto": _json.loads(result.pareto.to_json()),
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return {
            "status": "ok",
            "workers": self._n_workers,
            "queue_depth": self.queue.depth(),
            "jobs": len(self.queue),
            "store": None if self.store is None else str(self.store.root),
        }

    def metrics_snapshot(self) -> dict:
        return {
            "counters": self.metrics.snapshot(),
            "queue_depth": self.queue.depth(),
            "jobs": len(self.queue),
        }
