"""A tiny stdlib client for the serve API (``urllib``, no deps).

:class:`ServeClient` speaks the whole job lifecycle — submit, poll,
fetch — and is what ``repro client`` and ``benchmarks/bench_serve.py``
drive.  Errors come back as :class:`ServeError` carrying the HTTP
status and the server's one-line message.

Transient transport failures (connection refused/reset mid-restart — a
:class:`ServeError` with ``status == 0``) are retried with capped
exponential backoff, but **only for GETs**: status polls and result
fetches are idempotent, so a poll that dies while the server restarts
rides through instead of failing a long ``wait``.  POSTs are never
retried — a resubmitted campaign is coalesced or answered warm, but
that is the caller's decision, not the transport's.  Tune with the
``retries=`` / ``backoff=`` constructor knobs (``retries=0`` disables).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request


class ServeError(RuntimeError):
    """An HTTP-level failure, with the server's one-line explanation."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """One service endpoint, addressed by base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0,
                 retries: int = 4, backoff: float = 0.05) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, payload=None) -> tuple[int, bytes]:
        """One HTTP exchange; idempotent GETs retry transport failures
        (``status == 0`` — the server was unreachable, nothing executed)
        up to ``retries`` times with doubling, 1 s-capped backoff."""
        attempts = 1 + (self.retries if method == "GET" else 0)
        delay = self.backoff
        for attempt in range(attempts):
            try:
                return self._request_once(method, path, payload)
            except ServeError as exc:
                if exc.status != 0 or attempt == attempts - 1:
                    raise
            time.sleep(delay)
            delay = min(delay * 2, 1.0)
        raise AssertionError("unreachable")

    def _request_once(self, method: str, path: str,
                      payload=None) -> tuple[int, bytes]:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=data, headers=headers,
                                     method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                message = json.loads(body).get("error", body.decode())
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = body.decode(errors="replace")
            raise ServeError(exc.code, message) from exc
        except urllib.error.URLError as exc:
            raise ServeError(0, f"cannot reach {url}: {exc.reason}") from exc
        except OSError as exc:
            # urllib only wraps errors raised while *sending*; a
            # connection torn down while reading the response (server
            # killed mid-restart) surfaces raw — same transport verdict.
            raise ServeError(0, f"connection to {url} failed: {exc}") from exc

    def _get_json(self, path: str) -> dict:
        _status, body = self._request("GET", path)
        return json.loads(body)

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._get_json("/healthz")

    def metrics(self) -> dict:
        return self._get_json("/v1/metrics")

    def metrics_text(self) -> str:
        """The Prometheus text exposition from ``GET /metrics``."""
        _status, body = self._request("GET", "/metrics")
        return body.decode("utf-8")

    def job_trace(self, job_id: str) -> dict:
        """The job's collected spans (``{"trace_id", "spans"}``); raises
        :class:`ServeError` 404 while tracing is disarmed server-side."""
        return self._get_json(f"/v1/jobs/{job_id}/trace")

    def jobs(self) -> list[dict]:
        return self._get_json("/v1/jobs")["jobs"]

    def submit(self, kind: str, payload: dict) -> dict:
        """Submit one request; returns the job's status view (already
        terminal for warm hits)."""
        route = {"campaign": "/v1/campaigns", "optimize": "/v1/optimize"}
        if kind not in route:
            raise ValueError(f"kind must be campaign or optimize, got {kind!r}")
        _status, body = self._request("POST", route[kind], payload)
        return json.loads(body)

    def job(self, job_id: str) -> dict:
        return self._get_json(f"/v1/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 600.0,
             interval: float = 0.05) -> dict:
        """Poll until the job is terminal; returns the final view.

        The poll interval backs off geometrically to ~1 s so long jobs
        do not hammer the server while short ones finish in one or two
        round trips.
        """
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["state"] in ("done", "failed"):
                return view
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {view['state']} after {timeout}s")
            time.sleep(interval)
            interval = min(interval * 1.5, 1.0)

    def result_bytes(self, job_id: str) -> bytes:
        """The full result document, verbatim (for campaigns: the exact
        ``repro campaign --json`` bytes).

        A 202 (job still queued/running) is an error here, not a
        result — otherwise a premature fetch would silently hand back
        the status view as if it were the document.  Wait first.
        """
        status, body = self._request("GET", f"/v1/jobs/{job_id}/result")
        if status != 200:
            state = "unknown"
            try:
                state = json.loads(body).get("state", state)
            except (json.JSONDecodeError, UnicodeDecodeError):
                pass
            raise ServeError(status,
                             f"job {job_id} has no result yet "
                             f"(state {state}); wait for it first")
        return body

    def result_page(self, job_id: str, offset: int = 0,
                    limit: int = 100) -> dict:
        return self._get_json(
            f"/v1/jobs/{job_id}/result?offset={offset}&limit={limit}")

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def run(self, kind: str, payload: dict, timeout: float = 600.0) -> dict:
        """Submit + wait in one call; returns the terminal job view."""
        view = self.submit(kind, payload)
        if view["state"] in ("done", "failed"):
            return view
        return self.wait(view["id"], timeout=timeout)

    def wait_until_up(self, timeout: float = 10.0,
                      interval: float = 0.1) -> dict:
        """Block until ``/healthz`` answers (server start-up races)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServeError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(interval)
