"""Characterization-as-a-service: the layer that turns batches into a system.

PRs 1–4 built four batch layers — a batched small-signal engine, a
campaign executor, a sizing optimizer and a persistent result store —
each consumed by a one-shot process.  This package puts a long-lived
service in front of all of them, the way bench measurements are
actually consumed: many clients, repeated requests, one shared cache.

* :mod:`repro.serve.validate` — one request schema for the HTTP API and
  the CLI ``--spec`` front doors; every violation is a one-line
  :class:`~repro.serve.validate.SpecValidationError`.
* :mod:`repro.serve.jobs` — :class:`~repro.serve.jobs.Job` /
  :class:`~repro.serve.jobs.JobQueue`: a coalescing, journal-capable
  queue in which identical in-flight requests attach to one execution.
* :mod:`repro.serve.service` —
  :class:`~repro.serve.service.CharacterizationService`: a worker pool
  over ``run_campaign`` / ``optimize_mic_amp``, store-backed **warm
  hits** (a fully-cached campaign never touches the engine) and
  exactly-once unit execution across any interleaving of duplicates.
* :mod:`repro.serve.api` — the stdlib ``ThreadingHTTPServer`` JSON API
  (``POST /v1/campaigns``, ``POST /v1/optimize``, ``GET /v1/jobs/<id>``
  [+ ``/result`` with pagination], ``GET /v1/metrics``, ``/healthz``).
* :mod:`repro.serve.client` — a ``urllib`` client driving the lifecycle
  (``repro client``, ``benchmarks/bench_serve.py``).

Quickstart::

    repro serve --port 8765 --store results/store      # terminal 1

    curl -s http://127.0.0.1:8765/v1/campaigns \\
         -d '{"builder": "micamp", "corners": ["tt", "ss"],
              "temps_c": [25.0], "seeds": [0, 1],
              "measurements": ["offset_v", "iq_ma"]}'   # terminal 2
    curl -s http://127.0.0.1:8765/v1/jobs/<id>/result

Served campaign results are byte-identical to a direct
``repro campaign --json`` of the same spec; a warm request (every unit
cached) is answered from the store without touching the engine —
``benchmarks/bench_serve.py`` enforces the >= 10x warm-over-cold floor.
"""

from repro.serve.api import ServeServer, make_server, serve_background
from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import DONE, FAILED, QUEUED, RUNNING, Job, JobQueue
from repro.serve.service import (
    CharacterizationService,
    JobTimeout,
    ServiceMetrics,
)
from repro.serve.validate import (
    SpecValidationError,
    campaign_spec_from_dict,
    load_request_file,
    optimize_request_from_dict,
    parse_request,
)

__all__ = [
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "CharacterizationService",
    "Job",
    "JobQueue",
    "JobTimeout",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "ServiceMetrics",
    "SpecValidationError",
    "campaign_spec_from_dict",
    "load_request_file",
    "make_server",
    "optimize_request_from_dict",
    "parse_request",
    "serve_background",
]
