"""Pluggable campaign executors: serial and chunked process pool.

Both executors consume the same contiguous chunks of the spec's
deterministic expansion order and return chunk results *in order*, so
the collected records are identical regardless of executor (the
determinism tests pin this).  The pool executor exists for multi-core
hosts: campaign units are independent processes-friendly work (a spec
chunk pickles to a small message, records are plain floats), and chunked
dispatch keeps the per-chunk circuit cache effective while amortising
IPC overhead over many units per message.

The pool executor also survives its workers: a ``BrokenProcessPool``
(OOM-killed or SIGKILLed worker, crashed interpreter) loses only the
chunks that had not completed — the pool is rebuilt and exactly those
chunks re-execute, up to ``max_attempts`` per chunk, after which a
structured :class:`CampaignExecutionError` names every unit that could
not be computed.  Because chunks are independent and results are merged
back in chunk order, a recovered run is byte-identical to an
uninterrupted (or serial) one — ``tests/faults/test_pool_faults.py``
kills workers mid-campaign to pin this.

On a single-CPU container the pool cannot beat serial (there is nothing
to run on); ``benchmarks/bench_campaign.py`` records the host CPU count
next to its serial/parallel throughput numbers for exactly that reason.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from typing import Iterator

from repro.campaign.runner import ChunkCache, run_chunk, worker_chunk_cache
from repro.campaign.spec import CampaignSpec, WorkUnit
from repro.faults.harness import fault_point
from repro.obs import events as _events
from repro.obs import profile as _prof
from repro.obs import trace as _trace
from repro.obs.events import event
from repro.obs.trace import span


class CampaignExecutionError(RuntimeError):
    """A campaign could not compute some units even after retries.

    ``units`` lists the :class:`WorkUnit`\\ s that were lost, so the
    caller (or its operator) knows exactly which corner/seed/code
    combinations have no records instead of guessing from a bare
    ``BrokenProcessPool`` traceback.
    """

    def __init__(self, message: str, units: list[WorkUnit]) -> None:
        super().__init__(message)
        self.units = list(units)


class SerialExecutor:
    """Run every chunk in-process, in order."""

    name = "serial"

    def default_chunk_size(self, spec: CampaignSpec) -> int:
        # One chunk: the shared cache then spans the whole campaign.
        return max(1, spec.n_units)

    def map_chunks(self, spec: CampaignSpec,
                   chunks: list[list[WorkUnit]]) -> Iterator[list[dict]]:
        for chunk in chunks:
            with span("campaign.chunk", executor=self.name,
                      n_units=len(chunk)):
                records = run_chunk(spec, chunk)
            yield records


class BatchedCampaignExecutor:
    """Run chunks in-process through the tensor engine.

    Identical records to :class:`SerialExecutor` (byte-for-byte — the
    equivalence suite pins it), roughly an order of magnitude faster on
    mismatch campaigns: structure-sharing units are stamped into one
    ``(N, dim, dim)`` tensor, DC-solved by a lockstep Newton iteration
    and measured through unit-batched factorizations.  ``stats``
    accumulates ``batched_units``/``fallback_units`` across chunks so
    callers (and the chaos tests) can see how much work actually rode
    the tensor path.
    """

    name = "batched"

    def __init__(self, batch_size: int | None = None) -> None:
        from repro.campaign.batchrun import DEFAULT_BATCH_SIZE

        self.batch_size = batch_size or DEFAULT_BATCH_SIZE
        self.stats: dict[str, int] = {}

    def default_chunk_size(self, spec: CampaignSpec) -> int:
        # One chunk, like serial: grouping happens inside the chunk.
        return max(1, spec.n_units)

    def map_chunks(self, spec: CampaignSpec,
                   chunks: list[list[WorkUnit]]) -> Iterator[list[dict]]:
        from repro.campaign.batchrun import run_chunk_batched

        cache = ChunkCache(spec)
        for chunk in chunks:
            with span("campaign.chunk", executor=self.name,
                      n_units=len(chunk)):
                records = run_chunk_batched(spec, chunk, cache=cache,
                                            batch_size=self.batch_size,
                                            stats=self.stats)
            yield records


def _warm_worker(spec: CampaignSpec) -> None:
    """Pool-worker initializer: build the per-process chunk cache and
    every corner technology once, before the first chunk message lands.
    Workers then start warm — the skew arithmetic and cache setup are
    paid per *worker*, not per chunk."""
    cache = worker_chunk_cache(spec)
    for corner in spec.corners:
        cache.tech(corner)


def _run_chunk_task(spec: CampaignSpec, chunk: list[WorkUnit],
                    attempt: int, trace_ctx=None) -> tuple:
    """The picklable message the pool ships to workers.  ``attempt``
    exists for the fault harness: child-side kill rules key off it
    (``when=lambda ctx: ctx["attempt"] == 0``) so a chaos run dies
    deterministically on the first dispatch and recovers on the
    retry.

    Returns ``(records, spans, prof_snapshot, events)``.  When
    observability is armed in the worker (the harness env is inherited
    across fork), the chunk runs under *fresh local* collectors — never
    the fork-copied parent tracer/event log, whose export file handles
    must not be written from a child — and the collected span dicts /
    profile snapshot / event dicts travel home with the records for the
    parent to absorb/merge.  ``trace_ctx`` is the parent's
    ``(trace_id, span_id)`` so worker spans *and events* nest under the
    dispatching campaign span.  Disarmed, the extra slots are ``None``
    and the records are untouched either way.
    """
    fault_point("campaign.pool_chunk", attempt=attempt, n_units=len(chunk))
    want_trace = _trace.active_tracer() is not None
    want_prof = _prof.active_profiler() is not None
    want_events = _events.active_event_log() is not None
    if not want_trace and not want_prof and not want_events:
        return (run_chunk(spec, chunk, cache=worker_chunk_cache(spec)),
                None, None, None)

    collector = _trace.Tracer() if want_trace else None
    local_prof = _prof.Profiler() if want_prof else None
    local_events = _events.EventLog() if want_events else None
    prev_tracer = _trace.activate(collector) if want_trace else None
    prev_prof = _prof.activate(local_prof) if want_prof else None
    prev_events = _events.activate(local_events) if want_events else None
    try:
        if want_trace and trace_ctx is not None:
            with _trace.seed_context(*trace_ctx):
                with span("campaign.pool_chunk", attempt=attempt,
                          n_units=len(chunk)):
                    records = run_chunk(spec, chunk,
                                        cache=worker_chunk_cache(spec))
        else:
            with span("campaign.pool_chunk", attempt=attempt,
                      n_units=len(chunk)):
                records = run_chunk(spec, chunk,
                                    cache=worker_chunk_cache(spec))
    finally:
        if want_trace:
            _trace._set_active(prev_tracer)
        if want_prof:
            _prof._set_active(prev_prof)
        if want_events:
            _events._set_active(prev_events)
    spans = collector.spans() if want_trace else None
    prof_snap = local_prof.snapshot() if want_prof else None
    child_events = local_events.events() if want_events else None
    return records, spans, prof_snap, child_events


class ProcessPoolCampaignExecutor:
    """Dispatch chunks to a :class:`concurrent.futures.ProcessPoolExecutor`.

    ``max_workers`` defaults to the host CPU count.  The default chunk
    size aims at ~4 chunks per worker: small enough to load-balance,
    large enough that each worker's circuit cache and the one-time
    import/fork cost amortise over real work.  ``max_attempts`` bounds
    how many times one chunk may be re-dispatched after pool breakage
    before the run fails with :class:`CampaignExecutionError`.
    """

    name = "process-pool"

    def __init__(self, max_workers: int | None = None,
                 max_attempts: int = 3) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self.max_attempts = max_attempts
        #: Pool rebuilds performed on the last map_chunks call.
        self.restarts = 0
        self._pool: ProcessPoolExecutor | None = None
        self._pool_spec: CampaignSpec | None = None

    def default_chunk_size(self, spec: CampaignSpec) -> int:
        return max(1, math.ceil(spec.n_units / (4 * self.max_workers)))

    def _get_pool(self, spec: CampaignSpec) -> ProcessPoolExecutor:
        """The persistent, pre-warmed pool for ``spec``.

        The pool survives across ``map_chunks`` calls (fork + import +
        cache warm-up are paid once per worker, not once per campaign)
        and is rebuilt only when the spec changes — worker caches are
        keyed to the spec their initializer warmed — or after breakage.
        """
        if self._pool is not None and self._pool_spec != spec:
            self._shutdown_pool()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_warm_worker, initargs=(spec,))
            self._pool_spec = spec
        return self._pool

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._pool_spec = None

    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        self._shutdown_pool()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self._shutdown_pool()
        except Exception:
            pass

    def map_chunks(self, spec: CampaignSpec,
                   chunks: list[list[WorkUnit]]) -> Iterator[list[dict]]:
        """Yield chunk results in chunk order, surviving worker death.

        Results are collected per chunk index and yielded contiguously
        as soon as the next-in-order chunk completes, so streaming
        progress is preserved.  When the pool breaks, only chunks
        without a collected result re-dispatch (fresh pool, bumped
        attempt number); a measurement exception inside a healthy
        worker still propagates unchanged — retrying is for lost
        workers, not buggy code.
        """
        results: dict[int, list[dict]] = {}
        attempts = {i: 0 for i in range(len(chunks))}
        pending = set(attempts)
        self.restarts = 0
        next_to_yield = 0
        trace_ctx = _trace.current_context()
        while pending:
            pool = self._get_pool(spec)
            futures = {}
            try:
                futures = {
                    pool.submit(_run_chunk_task, spec, chunks[i],
                                attempts[i], trace_ctx): i
                    for i in sorted(pending)
                }
                for future in as_completed(futures):
                    i = futures[future]
                    records, child_spans, child_prof, child_events = \
                        future.result()
                    tracer = _trace.active_tracer()
                    if child_spans and tracer is not None:
                        tracer.absorb(child_spans)
                    profiler = _prof.active_profiler()
                    if child_prof and profiler is not None:
                        profiler.merge(child_prof)
                    log = _events.active_event_log()
                    if child_events and log is not None:
                        log.absorb(child_events)
                    results[i] = records
                    pending.discard(i)
                    while next_to_yield in results:
                        yield results[next_to_yield]
                        next_to_yield += 1
            except BrokenExecutor as exc:
                self._shutdown_pool()
                self.restarts += 1
                event("campaign.pool_restart", "error",
                      restarts=self.restarts, pending_chunks=len(pending),
                      error=f"{type(exc).__name__}: {exc}")
                for i in pending:
                    attempts[i] += 1
                exhausted = sorted(i for i in pending
                                   if attempts[i] >= self.max_attempts)
                if exhausted:
                    units = [u for i in exhausted for u in chunks[i]]
                    event("campaign.pool_exhausted", "error",
                          n_chunks=len(exhausted), n_units=len(units),
                          max_attempts=self.max_attempts)
                    raise CampaignExecutionError(
                        f"pool broke {attempts[exhausted[0]]} times on "
                        f"{len(exhausted)} chunk(s) ({len(units)} units) "
                        f"after {self.max_attempts} attempts each; first "
                        f"lost unit: {units[0]} [{exc}]", units) from exc
            except BaseException:
                # A measurement error (or generator teardown) must not
                # leave orphaned chunk tasks running in live workers.
                for future in futures:
                    future.cancel()
                raise
