"""Pluggable campaign executors: serial and chunked process pool.

Both executors consume the same contiguous chunks of the spec's
deterministic expansion order and return chunk results *in order*, so
the collected records are identical regardless of executor (the
determinism tests pin this).  The pool executor exists for multi-core
hosts: campaign units are independent processes-friendly work (a spec
chunk pickles to a small message, records are plain floats), and chunked
dispatch keeps the per-chunk circuit cache effective while amortising
IPC overhead over many units per message.

On a single-CPU container the pool cannot beat serial (there is nothing
to run on); ``benchmarks/bench_campaign.py`` records the host CPU count
next to its serial/parallel throughput numbers for exactly that reason.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Iterator

from repro.campaign.runner import run_chunk
from repro.campaign.spec import CampaignSpec, WorkUnit


class SerialExecutor:
    """Run every chunk in-process, in order."""

    name = "serial"

    def default_chunk_size(self, spec: CampaignSpec) -> int:
        # One chunk: the shared cache then spans the whole campaign.
        return max(1, spec.n_units)

    def map_chunks(self, spec: CampaignSpec,
                   chunks: list[list[WorkUnit]]) -> Iterator[list[dict]]:
        for chunk in chunks:
            yield run_chunk(spec, chunk)


class ProcessPoolCampaignExecutor:
    """Dispatch chunks to a :class:`concurrent.futures.ProcessPoolExecutor`.

    ``max_workers`` defaults to the host CPU count.  The default chunk
    size aims at ~4 chunks per worker: small enough to load-balance,
    large enough that each worker's circuit cache and the one-time
    import/fork cost amortise over real work.
    """

    name = "process-pool"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or (os.cpu_count() or 1)

    def default_chunk_size(self, spec: CampaignSpec) -> int:
        return max(1, math.ceil(spec.n_units / (4 * self.max_workers)))

    def map_chunks(self, spec: CampaignSpec,
                   chunks: list[list[WorkUnit]]) -> Iterator[list[dict]]:
        # partial() of the module-level run_chunk keeps the task picklable;
        # pool.map preserves chunk order, which from_units relies on.
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            yield from pool.map(partial(run_chunk, spec), chunks)
