"""Circuit-builder registry: names a campaign spec can sweep over.

Each builder adapts one of the paper's blocks to the campaign protocol:
given a (corner-skewed) technology, a mismatch sampler, an optional
total supply voltage and an optional gain code, return a
:class:`BuiltUnit` — the circuit plus the port names every measurement
needs (differential output, input sources, supply source) and optional
builder-specific probes (e.g. the bias generator's load resistance).

Builders are addressed by *name* so a :class:`~repro.campaign.spec.CampaignSpec`
stays picklable; register new ones with :func:`register_builder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.process.mismatch import MismatchSampler
from repro.process.technology import Technology
from repro.spice.netlist import Circuit


@dataclass
class BuiltUnit:
    """A built circuit plus the ports the measurement registry reads."""

    circuit: Circuit
    out_p: str
    out_n: str
    input_sources: tuple[str, ...] = ()
    supply_source: str = "vdd_src"
    nominal_gain_db: float | None = None
    probes: dict[str, float | str] = field(default_factory=dict)
    design: object | None = None


BuilderFn = Callable[[Technology, MismatchSampler, float | None, int | None], BuiltUnit]

BUILDERS: dict[str, BuilderFn] = {}


def register_builder(name: str, *,
                     batchable: bool = True) -> Callable[[BuilderFn], BuilderFn]:
    """Decorator: expose a builder function to campaign specs as ``name``.

    ``batchable=False`` marks builders whose circuits the tensor-batched
    executor must not stack (arbitrary ingested structure, potentially
    above the sparse threshold where dense ``(N, dim, dim)`` tensors are
    prohibitive); the batched executor routes their units through its
    per-unit serial fallback instead.
    """

    def deco(fn: BuilderFn) -> BuilderFn:
        if name in BUILDERS:
            raise ValueError(f"builder {name!r} already registered")
        fn.batchable = batchable
        BUILDERS[name] = fn
        return fn

    return deco


def build_unit_circuit(
    name: str,
    tech: Technology,
    sampler: MismatchSampler,
    supply: float | None,
    gain_code: int | None,
    builder_kwargs: tuple[tuple[str, float], ...] = (),
) -> BuiltUnit:
    """Instantiate builder ``name`` for one work unit.

    ``builder_kwargs`` are the spec-wide extra keyword arguments (see
    :class:`~repro.campaign.spec.CampaignSpec.builder_kwargs`); builders
    that take none reject them with a normal ``TypeError``.
    """
    try:
        fn = BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown builder {name!r}; available: {sorted(BUILDERS)}") from None
    return fn(tech, sampler, supply, gain_code, **dict(builder_kwargs))


def _split_rails(supply: float | None) -> tuple[float | None, float | None]:
    """Total supply -> symmetric (vdd, vss); None keeps builder defaults."""
    if supply is None:
        return None, None
    return supply / 2.0, -supply / 2.0


@register_builder("micamp")
def _build_micamp(tech: Technology, sampler: MismatchSampler,
                  supply: float | None, gain_code: int | None) -> BuiltUnit:
    """The Figs. 4/5 microphone amplifier; gain codes 0..5 (default 5)."""
    from repro.circuits.micamp import build_mic_amp

    code = 5 if gain_code is None else gain_code
    vdd, vss = _split_rails(supply)
    design = build_mic_amp(tech, gain_code=code, mismatch=sampler, vdd=vdd, vss=vss)
    return BuiltUnit(
        circuit=design.circuit,
        out_p=design.outp,
        out_n=design.outn,
        input_sources=("vin_p", "vin_n"),
        supply_source="vdd_src",
        nominal_gain_db=design.gain.gain_db(code),
        design=design,
    )


@register_builder("micamp_sized")
def _build_micamp_sized(tech: Technology, sampler: MismatchSampler,
                        supply: float | None, gain_code: int | None,
                        **params: float) -> BuiltUnit:
    """The microphone amplifier re-sized from flattened sizing-walk inputs.

    ``params`` is the :data:`repro.pga.design.MIC_AMP_PARAM_DEFAULTS`
    vocabulary (``split_*`` budget fractions, ``i_pair``, ``l_input``,
    ``l_load``, ``r_total``) shipped through the spec's
    ``builder_kwargs`` — this is how ``repro.optimize`` scores one
    candidate design across a whole PVT x mismatch campaign.
    """
    from repro.circuits.micamp import build_mic_amp
    from repro.pga.design import mic_amp_parts_from_params

    sizes, gain = mic_amp_parts_from_params(tech, params)
    code = 5 if gain_code is None else gain_code
    vdd, vss = _split_rails(supply)
    design = build_mic_amp(tech, gain_code=code, sizes=sizes, gain=gain,
                           mismatch=sampler, vdd=vdd, vss=vss)
    return BuiltUnit(
        circuit=design.circuit,
        out_p=design.outp,
        out_n=design.outn,
        input_sources=("vin_p", "vin_n"),
        supply_source="vdd_src",
        nominal_gain_db=design.gain.gain_db(code),
        design=design,
    )


@register_builder("powerbuffer")
def _build_powerbuffer(tech: Technology, sampler: MismatchSampler,
                       supply: float | None, gain_code: int | None) -> BuiltUnit:
    """The Fig. 8 class-AB line driver (inverting feedback, 50 ohm load)."""
    from repro.circuits.powerbuffer import build_power_buffer

    if gain_code is not None:
        raise ValueError("powerbuffer has no gain codes; use gain_codes=(None,)")
    vdd, vss = _split_rails(supply)
    design = build_power_buffer(tech, feedback="inverting", load="resistive",
                                vdd=vdd, vss=vss, mismatch=sampler)
    return BuiltUnit(
        circuit=design.circuit,
        out_p=design.outp,
        out_n=design.outn,
        input_sources=("vsrc_p", "vsrc_n"),
        supply_source="vdd_src",
        nominal_gain_db=0.0,
        design=design,
    )


@register_builder("bias")
def _build_bias(tech: Technology, sampler: MismatchSampler,
                supply: float | None, gain_code: int | None) -> BuiltUnit:
    """The Fig. 2 PTAT bias generator; probes carry the load resistance."""
    from repro.circuits.bias import build_bias_circuit

    if gain_code is not None:
        raise ValueError("bias has no gain codes; use gain_codes=(None,)")
    design = build_bias_circuit(tech, supply=supply, mismatch=sampler)
    return BuiltUnit(
        circuit=design.circuit,
        out_p=design.out_node,
        out_n="gnd",
        input_sources=(),
        supply_source="vsup",
        probes={"iout_node": design.out_node, "r_load": 10e3},
        design=design,
    )


@register_builder("ingested", batchable=False)
def _build_ingested(tech: Technology, sampler: MismatchSampler,
                    supply: float | None, gain_code: int | None, *,
                    netlist: str = "", binding: str = "{}",
                    top: str = "") -> BuiltUnit:
    """An external SPICE deck compiled by :mod:`repro.ingest`.

    ``netlist`` is the deck text (the front doors pass the *canonical
    flattened* form so store keys are content-addressed), ``binding``
    the port-binding JSON (see :mod:`repro.ingest.binding`) and ``top``
    an optional subcircuit name to elaborate as the top cell.  The
    supply axis overrides the binding's supply-port DC; mismatch seeds
    and gain codes have no meaning for a foreign deck and are rejected
    so every store key maps to a distinct simulation.
    """
    from repro.ingest import apply_binding, compile_deck

    if not netlist:
        raise ValueError("ingested builder needs builder_kwargs['netlist'] "
                         "(SPICE deck text)")
    if gain_code is not None:
        raise ValueError("ingested netlists have no gain codes; "
                         "use gain_codes=(None,)")
    if sampler is not None and getattr(sampler, "enabled", False):
        raise ValueError("mismatch seeds are not supported for ingested "
                         "netlists; use seeds=(None,)")
    compiled = compile_deck(netlist, name="ingested", top=top or None)
    bound = apply_binding(compiled.circuit, binding, supply=supply)
    return BuiltUnit(
        circuit=compiled.circuit,
        out_p=bound.out_p,
        out_n=bound.out_n,
        input_sources=bound.input_sources,
        supply_source=bound.supply_source or "vdd_src",
        design=None,
    )


@register_builder("bandgap")
def _build_bandgap(tech: Technology, sampler: MismatchSampler,
                   supply: float | None, gain_code: int | None) -> BuiltUnit:
    """The Fig. 3 fully differential bandgap reference."""
    from repro.circuits.bandgap import build_bandgap

    if gain_code is not None:
        raise ValueError("bandgap has no gain codes; use gain_codes=(None,)")
    design = build_bandgap(tech, supply=supply, mismatch=sampler)
    return BuiltUnit(
        circuit=design.circuit,
        out_p=design.vrefp,
        out_n=design.vrefn,
        input_sources=(),
        supply_source="vdd_src",
        design=design,
    )
