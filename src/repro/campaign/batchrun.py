"""Batched campaign chunk execution.

Turns a chunk of :class:`~repro.campaign.spec.WorkUnit`\\ s into records
through the tensor engine of :mod:`repro.spice.batch`: consecutive units
whose built circuits share one MNA structure (mismatch-seed and
gain-code siblings across the temperature axis) form a *group*, the
group is stamped into one ``(N, dim, dim)`` tensor, DC-solved by one
lockstep Newton iteration and measured through one unit-batched
factorization per probe frequency.

Every path is anchored to the serial reference:

* circuits are built through the same :class:`~repro.campaign.runner.
  ChunkCache` walk as :func:`~repro.campaign.runner.run_chunk`, so
  sampler draws and build order are untouched;
* batched measurements replay the serial scalar math per unit (same
  ``math.log10``/``np.log10`` split, same guards, same record key
  order); measurements without a batched implementation — and units the
  batch cannot carry (structure surprises, plain-Newton non-convergence,
  residual-check rejections, precondition errors) — run the *serial*
  implementation on a per-unit operating point wrapped around the
  batch's bit-identical solution (or a from-scratch serial solve when
  the batch has no solution to offer);
* any exception while batch-processing a group (including faults
  injected at ``campaign.batch_group``) falls back to plain
  :func:`~repro.campaign.runner.run_unit` semantics for the whole
  group, so injected chaos degrades speed, never results.

The result: records byte-identical to ``SerialExecutor``'s, an order of
magnitude faster on mismatch campaigns.
"""

from __future__ import annotations

import math

import numpy as np

from repro.campaign.builders import BUILDERS
from repro.campaign.measurements import MEASUREMENTS
from repro.campaign.runner import ChunkCache, UnitRuntime, emit_unit_health
from repro.campaign.spec import CampaignSpec, WorkUnit
from repro.faults.harness import fault_point
from repro.obs.events import active_event_log, event
from repro.obs.profile import prof_count
from repro.obs.trace import span
from repro.spice.batch import BatchedSystem, circuit_signature, newton_batch
from repro.spice.dc import OperatingPoint, dc_operating_point
from repro.spice.elements import VoltageSource
from repro.spice.linsolve import BatchedSmallSignalContext
from repro.spice.netlist import is_ground

#: Units per tensor group.  Large enough to amortise the Python-side
#: stamping, small enough that the (N, dim, dim) tensors of the paper's
#: circuits stay comfortably in cache.
DEFAULT_BATCH_SIZE = 64


class _GroupRun:
    """Shared state for one batched group during measurement."""

    def __init__(self, spec: CampaignSpec, units: list[WorkUnit], builts: list,
                 techs: list, pattern, bs: BatchedSystem, converged: np.ndarray,
                 x: np.ndarray, iterations: np.ndarray) -> None:
        self.spec = spec
        self.units = units
        self.builts = builts
        self.techs = techs
        self.pattern = pattern
        self.bs = bs
        self.converged = converged
        self.x = x
        self.iterations = iterations
        self.n_units = len(units)
        self._ctx: BatchedSmallSignalContext | None = None
        self._rts: dict[int, UnitRuntime] = {}

    def ctx(self) -> BatchedSmallSignalContext:
        if self._ctx is None:
            n = self.pattern.size
            g = np.ascontiguousarray(self.bs.linearize(self.x)[:, :n, :n])
            c = np.ascontiguousarray(self.bs.c_t[:, :n, :n])
            self._ctx = BatchedSmallSignalContext(g, c)
        return self._ctx

    def rt(self, u: int) -> UnitRuntime:
        """Serial per-unit runtime around the batch's (bit-identical) DC
        solution — the escape hatch for non-batched measurements."""
        rt = self._rts.get(u)
        if rt is None:
            system = self.builts[u].circuit.compile(temp_c=self.units[u].temp_c)
            op = OperatingPoint(system, self.x[u].copy(),
                                int(self.iterations[u]), "newton")
            rt = UnitRuntime(spec=self.spec, unit=self.units[u],
                             tech=self.techs[u], built=self.builts[u], op=op)
            self._rts[u] = rt
        return rt

    # ---- serial-faithful scalar reads -------------------------------
    def v(self, u: int, node: str) -> float:
        if is_ground(node):
            return 0.0
        return float(self.x[u, self.pattern.node(node)])

    def vdiff(self, u: int, node_p: str, node_n: str) -> float:
        return self.v(u, node_p) - self.v(u, node_n)

    def i(self, u: int, element_name: str) -> float:
        return float(self.x[u, self.pattern.branch(element_name)])

    def unit_rhs_ac(self, u: int, overrides: dict) -> np.ndarray:
        """Replay ``MnaSystem.rhs_ac()[:n]`` for unit ``u``.

        ``overrides`` maps source names to ``(ac, phase)`` the way the
        PSRR/CMRR drivers temporarily mutate sources; ``phase=None``
        keeps the source's configured phase (the drivers only zero the
        amplitude in that case).
        """
        p = self.pattern
        b = np.zeros(p.size + 1, dtype=complex)
        for src, j in zip(self.bs._unit_vsources[u], p._vs_branch_idx):
            ac, ph = overrides.get(src.name, (src.ac, src.ac_phase))
            if ph is None:
                ph = src.ac_phase
            if ac != 0.0:
                b[j] += ac * np.exp(1j * ph)
        for src, a, c in zip(self.bs._unit_isources[u], p._is_np_idx,
                             p._is_nn_idx):
            ac, ph = overrides.get(src.name, (src.ac, src.ac_phase))
            if ph is None:
                ph = src.ac_phase
            if ac != 0.0:
                phasor = ac * np.exp(1j * ph)
                b[a] -= phasor
                b[c] += phasor
        b[p.ground_index] = 0.0
        return b[: p.size]

    def probe_cols(self, fwd: np.ndarray, u: int, out_p: str,
                   out_n: str | None) -> np.ndarray:
        """``SmallSignalContext.probe`` for one unit's solution columns."""
        zero = np.zeros(fwd.shape[2], dtype=complex)
        vp = zero if is_ground(out_p) else fwd[u, self.pattern.node(out_p)]
        if out_n is None or is_ground(out_n):
            return vp
        return vp - fwd[u, self.pattern.node(out_n)]

    def ac_sources_valid(self, u: int, names) -> bool:
        """True when every named element resolves to a VoltageSource;
        invalid units run the serial measurement, which raises the
        reference error."""
        try:
            for name in names:
                if not isinstance(self.builts[u].circuit.element(name),
                                  VoltageSource):
                    return False
        except Exception:
            return False
        return True


# ----------------------------------------------------------------------
# Batched measurement implementations (serial scalar math, verbatim)
# ----------------------------------------------------------------------
_BATCHED: dict = {}


def _batched(name: str):
    def deco(fn):
        _BATCHED[name] = fn
        return fn

    return deco


def _serial_measure(gr: _GroupRun, name: str, u: int, records: list) -> None:
    records[u].update(MEASUREMENTS[name](gr.rt(u)))


@_batched("offset_v")
def _b_offset(gr: _GroupRun, live: list[int], records: list) -> None:
    for u in live:
        built = gr.builts[u]
        records[u]["offset_v"] = gr.vdiff(u, built.out_p, built.out_n)


@_batched("iq_ma")
def _b_iq(gr: _GroupRun, live: list[int], records: list) -> None:
    for u in live:
        records[u]["iq_ma"] = abs(gr.i(u, gr.builts[u].supply_source)) * 1e3


@_batched("vref_mv")
def _b_vref(gr: _GroupRun, live: list[int], records: list) -> None:
    for u in live:
        built = gr.builts[u]
        records[u]["vref_mv"] = gr.vdiff(u, built.out_p, built.out_n) * 1e3


@_batched("bias_current_ua")
def _b_bias_current(gr: _GroupRun, live: list[int], records: list) -> None:
    for u in live:
        built = gr.builts[u]
        node = built.probes.get("iout_node")
        r_load = built.probes.get("r_load")
        if node is None or r_load is None:
            _serial_measure(gr, "bias_current_ua", u, records)
            continue
        records[u]["bias_current_ua"] = gr.v(u, str(node)) / float(r_load) * 1e6


@_batched("area_mm2")
def _b_area(gr: _GroupRun, live: list[int], records: list) -> None:
    from repro.layout.area import estimate_area_mm2

    for u in live:
        records[u]["area_mm2"] = estimate_area_mm2(
            gr.builts[u].circuit, gr.techs[u]
        ).total_mm2


@_batched("gain_1khz_db")
def _b_gain(gr: _GroupRun, live: list[int], records: list) -> None:
    ctx = gr.ctx()
    rhs = np.zeros((gr.n_units, ctx.n, 1), dtype=complex)
    for u in live:
        rhs[u, :, 0] = gr.unit_rhs_ac(u, {})
    fwd, ok = ctx.solve_checked(1e3, rhs)
    for u in live:
        if not ok[u]:
            event("campaign.unit_fallback", "warn",
                  corner=gr.units[u].corner, temp_c=gr.units[u].temp_c,
                  seed=gr.units[u].seed, measurement="gain_1khz_db",
                  reason="batched small-signal residual rejection")
            _serial_measure(gr, "gain_1khz_db", u, records)
            continue
        built = gr.builts[u]
        h = abs(gr.probe_cols(fwd, u, built.out_p, built.out_n)[0])
        gain_db = 20.0 * math.log10(max(h, 1e-30))
        records[u]["gain_1khz_db"] = gain_db
        if built.nominal_gain_db is not None:
            records[u]["gain_error_db"] = gain_db - built.nominal_gain_db


def _b_rejection(gr: _GroupRun, name: str, live: list[int], records: list,
                 column_overrides) -> None:
    """Shared PSRR/CMRR core: two RHS columns per unit, one factorization.

    ``column_overrides(built)`` returns the two override dicts (or None
    to route the unit through the serial measurement, which reproduces
    the reference error or handles the odd configuration).
    """
    ctx = gr.ctx()
    rhs = np.zeros((gr.n_units, ctx.n, 2), dtype=complex)
    solved: list[int] = []
    for u in live:
        overrides = column_overrides(gr, u)
        if overrides is None:
            _serial_measure(gr, name, u, records)
            continue
        rhs[u, :, 0] = gr.unit_rhs_ac(u, overrides[0])
        rhs[u, :, 1] = gr.unit_rhs_ac(u, overrides[1])
        solved.append(u)
    if not solved:
        return
    fwd, ok = ctx.solve_checked(1e3, rhs)
    for u in solved:
        if not ok[u]:
            event("campaign.unit_fallback", "warn",
                  corner=gr.units[u].corner, temp_c=gr.units[u].temp_c,
                  seed=gr.units[u].seed, measurement=name,
                  reason="batched small-signal residual rejection")
            _serial_measure(gr, name, u, records)
            continue
        built = gr.builts[u]
        h = np.abs(gr.probe_cols(fwd, u, built.out_p, built.out_n))
        h_sig, h_dist = float(h[0]), float(h[1])
        ratio = h_sig / max(h_dist, 1e-30)
        records[u][name] = 20.0 * float(np.log10(ratio))


def _psrr_overrides(gr: _GroupRun, u: int):
    built = gr.builts[u]
    ins = tuple(built.input_sources)
    sup = built.supply_source
    if not ins or not gr.ac_sources_valid(u, (*ins, sup)):
        return None
    # Column 0: configured stimulus, supply quiet (amplitude only —
    # measure_psrr leaves the supply's phase untouched).
    col0 = {sup: (0.0, None)}
    # Column 1: unit ripple on the supply, inputs quiet.
    col1 = {name: (0.0, None) for name in ins}
    col1[sup] = (1.0, 0.0)
    return col0, col1


def _cmrr_overrides(gr: _GroupRun, u: int):
    built = gr.builts[u]
    ins = tuple(built.input_sources)
    if len(ins) != 2 or not gr.ac_sources_valid(u, ins):
        return None
    # Column 0: configured (differential) stimulus; column 1: both
    # inputs in phase at unit amplitude.
    return {}, {name: (1.0, 0.0) for name in ins}


@_batched("psrr_1khz_db")
def _b_psrr(gr: _GroupRun, live: list[int], records: list) -> None:
    _b_rejection(gr, "psrr_1khz_db", live, records, _psrr_overrides)


@_batched("cmrr_1khz_db")
def _b_cmrr(gr: _GroupRun, live: list[int], records: list) -> None:
    _b_rejection(gr, "cmrr_1khz_db", live, records, _cmrr_overrides)


# ----------------------------------------------------------------------
# Group execution
# ----------------------------------------------------------------------
def _run_group(spec: CampaignSpec, units: list[WorkUnit], builts: list,
               techs: list, stats: dict | None) -> list[dict]:
    circuits = [b.circuit for b in builts]
    temps = [u.temp_c for u in units]
    pattern = circuits[0].compile(temp_c=temps[0])
    # Structure was already grouped by signature in run_chunk_batched;
    # the unit-0 replay guard inside BatchedSystem still applies.
    bs = BatchedSystem(pattern, circuits, temps, check_structure=False)
    converged, x, iterations = newton_batch(bs, bs.initial_guess(), bs.rhs_dc())
    gr = _GroupRun(spec, units, builts, techs, pattern, bs, converged, x,
                   iterations)

    records: list[dict] = [{} for _ in units]
    live = [u for u in range(len(units)) if converged[u]]
    if stats is not None:
        stats["batched_units"] = stats.get("batched_units", 0) + len(live)
        stats["fallback_units"] = (stats.get("fallback_units", 0)
                                   + len(units) - len(live))

    # Units the lockstep plain-Newton pass could not converge re-enter
    # the full serial strategy ladder from scratch (the serial path would
    # fail its identical plain-Newton stage the same way first).
    fallback_ops: dict[int, OperatingPoint] = {}
    for u in range(len(units)):
        if converged[u]:
            continue
        event("campaign.unit_fallback", "warn", corner=units[u].corner,
              temp_c=units[u].temp_c, seed=units[u].seed,
              gain_code=units[u].gain_code,
              reason="lockstep newton non-convergence; serial strategy ladder")
        op = dc_operating_point(builts[u].circuit, temp_c=units[u].temp_c)
        rt = UnitRuntime(spec=spec, unit=units[u], tech=techs[u],
                         built=builts[u], op=op)
        for name in spec.measurements:
            records[u].update(MEASUREMENTS[name](rt))
        fallback_ops[u] = op

    for name in spec.measurements:
        impl = _BATCHED.get(name)
        if impl is None:
            for u in live:
                _serial_measure(gr, name, u, records)
        else:
            impl(gr, live, records)

    # Health events only after the whole group succeeded — a later
    # measurement exception downgrades the group to run_unit, which
    # emits its own health, and the sidecar must not double-count.
    if active_event_log() is not None:
        for u in range(len(units)):
            if converged[u]:
                emit_unit_health(units[u],
                                 {"iterations": int(iterations[u]),
                                  "strategy": "newton",
                                  "worst_resid": None, "batched": True})
            else:
                emit_unit_health(units[u], fallback_ops[u].health())
    return records


def run_chunk_batched(spec: CampaignSpec, units: list[WorkUnit],
                      cache: ChunkCache | None = None,
                      batch_size: int = DEFAULT_BATCH_SIZE,
                      stats: dict | None = None) -> list[dict]:
    """Batched drop-in for :func:`repro.campaign.runner.run_chunk`.

    Builds circuits through the same cache walk as the serial runner,
    groups consecutive structure-sharing units up to ``batch_size`` and
    executes each group through the tensor engine; any group-level
    exception (structure mismatch, injected fault) downgrades that group
    to plain per-unit serial execution.  ``stats`` (optional dict)
    accumulates ``batched_units``/``fallback_units`` counters.
    """
    from repro.campaign.runner import run_unit

    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if cache is None:
        cache = ChunkCache(spec)
    records: list = [None] * len(units)

    def flush(idxs: list[int], members: list) -> None:
        if not idxs:
            return
        g_units = [m[0] for m in members]
        g_builts = [m[1] for m in members]
        g_techs = [m[2] for m in members]
        with span("campaign.batch_group", n_units=len(idxs)) as sp:
            try:
                fault_point("campaign.batch_group", n_units=len(idxs))
                builder_fn = BUILDERS.get(spec.builder)
                if builder_fn is not None and \
                        not getattr(builder_fn, "batchable", True):
                    # Ingested/foreign structure: the tensor engine must
                    # not stack it (see register_builder); take the same
                    # byte-identical per-unit fallback as any group
                    # surprise.
                    raise RuntimeError(
                        f"builder {spec.builder!r} is not batchable")
                recs = _run_group(spec, g_units, g_builts, g_techs, stats)
                prof_count("campaign.batch_groups")
            except Exception as exc:
                if stats is not None:
                    stats["fallback_units"] = (stats.get("fallback_units", 0)
                                               + len(idxs))
                prof_count("campaign.batch_group_fallbacks")
                event("campaign.batch_group_fallback", "warn",
                      builder=spec.builder, n_units=len(idxs),
                      error=f"{type(exc).__name__}: {exc}")
                sp.annotate(fallback=True)
                recs = [run_unit(spec, unit, cache) for unit in g_units]
        for i, rec in zip(idxs, recs):
            records[i] = rec

    group_idx: list[int] = []
    group_members: list = []
    group_sig = None
    last_built = None
    last_sig = None
    for i, unit in enumerate(units):
        built = cache.built(unit)
        tech = cache.tech(unit.corner)
        if built is not last_built:
            last_sig = circuit_signature(built.circuit)
            last_built = built
        if group_idx and (last_sig != group_sig or len(group_idx) >= batch_size):
            flush(group_idx, group_members)
            group_idx, group_members = [], []
        if not group_idx:
            group_sig = last_sig
        group_idx.append(i)
        group_members.append((unit, built, tech))
    flush(group_idx, group_members)
    return records
