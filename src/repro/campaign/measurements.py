"""Measurement registry: what to record at each work unit.

A measurement is a function ``fn(rt: UnitRuntime) -> dict[str, float]``
registered under a name a :class:`~repro.campaign.spec.CampaignSpec`
can reference.  All measurements of one unit share the unit's single DC
operating point and its cached
:class:`~repro.spice.linsolve.SmallSignalContext` (``rt.ctx()``): the
gain probe, PSRR/CMRR injections and noise adjoint solves all ride one
linearisation/factorization per (corner, temperature, supply, seed,
code) point instead of each re-solving DC and re-linearising — that
sharing is where the campaign engine's serial throughput win over the
legacy hand-rolled loops comes from (see ``benchmarks/bench_campaign.py``).

A measurement may emit several columns (the noise measurement emits the
1 kHz spot density and the voice-band average); the union of emitted
keys defines the metric columns of the campaign's
:class:`~repro.campaign.result.CampaignResult`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.campaign.runner import UnitRuntime

MeasurementFn = Callable[["UnitRuntime"], dict[str, float]]

MEASUREMENTS: dict[str, MeasurementFn] = {}


def register_measurement(name: str) -> Callable[[MeasurementFn], MeasurementFn]:
    """Decorator: expose a measurement to campaign specs as ``name``."""

    def deco(fn: MeasurementFn) -> MeasurementFn:
        if name in MEASUREMENTS:
            raise ValueError(f"measurement {name!r} already registered")
        MEASUREMENTS[name] = fn
        return fn

    return deco


@register_measurement("offset_v")
def _offset(rt: "UnitRuntime") -> dict[str, float]:
    """DC differential output offset [V] — the mismatch story of Sec. 1."""
    return {"offset_v": rt.op.vdiff(rt.built.out_p, rt.built.out_n)}


@register_measurement("iq_ma")
def _iq(rt: "UnitRuntime") -> dict[str, float]:
    """Quiescent supply current [mA] (Table 1/2 "I(Q)" rows)."""
    return {"iq_ma": abs(rt.op.i(rt.built.supply_source)) * 1e3}


@register_measurement("gain_1khz_db")
def _gain(rt: "UnitRuntime") -> dict[str, float]:
    """Closed-loop gain at 1 kHz [dB] plus the error vs the nominal code
    table when the builder publishes one (Table 1 gain accuracy)."""
    ctx = rt.ctx()
    h = abs(ctx.transfer(np.array([1e3]), rt.built.out_p, rt.built.out_n)[0])
    gain_db = 20.0 * math.log10(max(h, 1e-30))
    out = {"gain_1khz_db": gain_db}
    if rt.built.nominal_gain_db is not None:
        out["gain_error_db"] = gain_db - rt.built.nominal_gain_db
    return out


@register_measurement("psrr_1khz_db")
def _psrr(rt: "UnitRuntime") -> dict[str, float]:
    """PSRR at 1 kHz [dB], on the unit's shared factorization."""
    from repro.analysis.psrr import measure_psrr

    if not rt.built.input_sources:
        raise ValueError(
            f"psrr needs a signal input; builder {rt.spec.builder!r} "
            "exposes no input sources"
        )
    res = measure_psrr(
        rt.built.circuit, rt.built.supply_source, rt.built.input_sources,
        rt.built.out_p, rt.built.out_n, op=rt.op,
    )
    return {"psrr_1khz_db": res.ratio_db}


@register_measurement("cmrr_1khz_db")
def _cmrr(rt: "UnitRuntime") -> dict[str, float]:
    """CMRR at 1 kHz [dB], on the unit's shared factorization."""
    from repro.analysis.psrr import measure_cmrr

    if len(rt.built.input_sources) != 2:
        raise ValueError(
            f"cmrr needs two input sources, builder exposes {rt.built.input_sources}"
        )
    res = measure_cmrr(
        rt.built.circuit, tuple(rt.built.input_sources),
        rt.built.out_p, rt.built.out_n, op=rt.op,
    )
    return {"cmrr_1khz_db": res.ratio_db}


@register_measurement("noise_voice")
def _noise(rt: "UnitRuntime") -> dict[str, float]:
    """Input-referred noise: 300 Hz / 1 kHz spot densities and the
    300..3400 Hz band average [nV/sqrt(Hz)] (Table 1 rows 3-5)."""
    from repro.spice.analysis import log_freqs
    from repro.spice.noise import noise_analysis

    freqs = log_freqs(10.0, 100e3, 12)
    nr = noise_analysis(rt.op, freqs, rt.built.out_p, rt.built.out_n)
    return {
        "vnin_300hz_nv": nr.input_nv_at(300.0),
        "vnin_1khz_nv": nr.input_nv_at(1e3),
        "vnin_avg_nv": nr.average_input_density(300.0, 3400.0) * 1e9,
    }


@register_measurement("area_mm2")
def _area(rt: "UnitRuntime") -> dict[str, float]:
    """Estimated silicon area [mm^2] from the layout model — the third
    axis of the optimizer's noise/current/area Pareto front."""
    from repro.layout.area import estimate_area_mm2

    return {"area_mm2": estimate_area_mm2(rt.built.circuit, rt.tech).total_mm2}


@register_measurement("bias_current_ua")
def _bias_current(rt: "UnitRuntime") -> dict[str, float]:
    """PTAT output current [uA] read across the bias builder's load."""
    node = rt.built.probes.get("iout_node")
    r_load = rt.built.probes.get("r_load")
    if node is None or r_load is None:
        raise ValueError(
            f"builder {rt.spec.builder!r} publishes no iout_node/r_load probes"
        )
    return {"bias_current_ua": rt.op.v(str(node)) / float(r_load) * 1e6}


@register_measurement("vref_mv")
def _vref(rt: "UnitRuntime") -> dict[str, float]:
    """Differential reference voltage [mV] (bandgap builder)."""
    return {"vref_mv": rt.op.vdiff(rt.built.out_p, rt.built.out_n) * 1e3}
