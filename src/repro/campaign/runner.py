"""Campaign execution: chunk caches, unit runtimes, the `run_campaign` door.

The runner turns expanded :class:`~repro.campaign.spec.WorkUnit`\\ s into
metric records.  Two levels of sharing keep it fast without ever making
the numbers depend on how work was chunked or scheduled:

* **Within a unit** — one DC operating point is solved per unit and its
  cached :class:`~repro.spice.linsolve.SmallSignalContext` serves every
  measurement (gain probe, PSRR/CMRR injections, noise adjoints): one
  linearisation + factorization per (corner, temp, supply, seed, code).
* **Within a chunk** — skewed technologies are cached per corner and
  built circuits per :meth:`WorkUnit.circuit_key` (which excludes
  temperature), so the spec's temperature-innermost expansion order
  means each physical circuit is built once and re-solved per
  temperature.

Determinism: every unit is a cold, self-contained computation (fresh
mismatch generator seeded from the unit's own seed, cold Newton solve),
so chunk boundaries and executor choice cannot change any value — the
serial and process-pool executors produce identical
:class:`~repro.campaign.result.CampaignResult` arrays, which
``tests/campaign`` asserts at ``rtol=1e-12`` (they are in fact
byte-identical).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.campaign.builders import BuiltUnit, build_unit_circuit
from repro.campaign.measurements import MEASUREMENTS
from repro.campaign.spec import CampaignSpec, WorkUnit
from repro.obs.events import active_event_log, event
from repro.obs.profile import active_profiler, prof_count
from repro.obs.trace import span
from repro.process.corners import apply_corner
from repro.process.mismatch import MismatchSampler
from repro.process.technology import Technology
from repro.spice.dc import OperatingPoint, dc_operating_point


@dataclass
class UnitRuntime:
    """Everything a measurement may touch for one work unit."""

    spec: CampaignSpec
    unit: WorkUnit
    tech: Technology
    built: BuiltUnit
    op: OperatingPoint

    def ctx(self):
        """The unit's shared small-signal context (cached on the op)."""
        return self.op.small_signal()


@dataclass
class ChunkCache:
    """Per-chunk (per-worker-message) reuse of techs and built circuits.

    The circuit cache holds a *single* entry: the expansion order is
    temperature-innermost, so once the circuit key changes the previous
    circuit is never needed again — a one-slot cache gives the same hit
    rate as an unbounded one while keeping memory at O(1) circuits even
    for thousand-seed campaigns.
    """

    spec: CampaignSpec
    techs: dict[str, Technology] = field(default_factory=dict)
    _circuit_key: tuple | None = None
    _circuit: BuiltUnit | None = None

    def tech(self, corner: str) -> Technology:
        t = self.techs.get(corner)
        if t is None:
            t = self.techs[corner] = apply_corner(self.spec.tech, corner)
        return t

    def built(self, unit: WorkUnit) -> BuiltUnit:
        key = unit.circuit_key()
        if key != self._circuit_key:
            tech = self.tech(unit.corner)
            if unit.seed is None:
                sampler = MismatchSampler.nominal(tech)
            else:
                sampler = MismatchSampler(tech, np.random.default_rng(unit.seed))
            self._circuit = build_unit_circuit(self.spec.builder, tech, sampler,
                                               unit.supply, unit.gain_code,
                                               self.spec.builder_kwargs)
            self._circuit_key = key
        return self._circuit


def emit_unit_health(unit: WorkUnit, health: dict) -> None:
    """Emit one ``unit.solver_health`` event for an executed unit.

    These info-severity events are the raw material of the campaign's
    solver-health sidecar (``result.stats["solver_health"]``): they ship
    home from pool workers over the same channel as every other event,
    so the sidecar covers all executors.  Only called while an event log
    is armed.
    """
    event("unit.solver_health", "info", corner=unit.corner,
          temp_c=unit.temp_c, supply=unit.supply, seed=unit.seed,
          gain_code=unit.gain_code, **health)


def run_unit(spec: CampaignSpec, unit: WorkUnit, cache: ChunkCache) -> dict[str, float]:
    """Execute one work unit: build (or reuse), solve DC once, measure."""
    prof_count("campaign.units_run")
    built = cache.built(unit)
    op = dc_operating_point(built.circuit, temp_c=unit.temp_c)
    rt = UnitRuntime(spec=spec, unit=unit, tech=cache.tech(unit.corner),
                     built=built, op=op)
    record: dict[str, float] = {}
    for name in spec.measurements:
        record.update(MEASUREMENTS[name](rt))
    if active_event_log() is not None:
        emit_unit_health(unit, op.health())
    return record


def run_chunk(spec: CampaignSpec, units: list[WorkUnit],
              cache: ChunkCache | None = None) -> list[dict[str, float]]:
    """Execute a chunk of units with a shared cache.

    This is the function the process-pool executor ships to workers: one
    picklable ``(spec, units)`` message in, one list of plain-float
    records out.  Pre-warmed workers pass their long-lived
    :func:`worker_chunk_cache` so corner technologies survive across
    chunk messages; with ``cache=None`` a fresh one is used (the cold
    path — still correct, every unit is a self-contained computation).
    """
    if cache is None:
        cache = ChunkCache(spec)
    return [run_unit(spec, unit, cache) for unit in units]


#: One-slot per-process cache for pool workers: ``[spec, ChunkCache]``.
#: Keyed by spec *value* equality (CampaignSpec is a frozen dataclass),
#: so a worker reused across campaigns rebuilds only when the spec
#: actually changes.
_WORKER_CACHE: list = [None, None]


def worker_chunk_cache(spec: CampaignSpec) -> ChunkCache:
    """The calling process's persistent :class:`ChunkCache` for ``spec``."""
    if _WORKER_CACHE[0] != spec:
        _WORKER_CACHE[0] = spec
        _WORKER_CACHE[1] = ChunkCache(spec)
    return _WORKER_CACHE[1]


def _execute_units(spec: CampaignSpec, units: list[WorkUnit], executor,
                   chunk_size: int | None,
                   progress=None) -> list[dict[str, float]]:
    """Run ``units`` through ``executor`` in contiguous chunks.

    Handles the edge cases uniformly for every executor: an empty unit
    list produces zero chunks (no pool is spun up, no worker message
    sent) and a ``chunk_size`` larger than the unit count degenerates to
    a single chunk.

    ``progress`` is an optional ``(units_done, units_total)`` callback
    invoked after each collected chunk — the hook long-lived front ends
    (the serve layer's job status endpoint) use to report per-unit
    progress without touching any record.
    """
    size = executor.default_chunk_size(spec) if chunk_size is None else chunk_size
    if size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {size}")
    if not units:
        return []
    chunks = [units[i:i + size] for i in range(0, len(units), size)]
    records: list[dict[str, float]] = []
    for chunk_records in executor.map_chunks(spec, chunks):
        records.extend(chunk_records)
        if progress is not None:
            progress(len(records), len(units))
    return records


def run_campaign(spec: CampaignSpec, executor=None, chunk_size: int | None = None,
                 store=None, units: list[WorkUnit] | None = None,
                 progress=None):
    """Expand, execute and collect a campaign into a ``CampaignResult``.

    ``executor`` defaults to :class:`~repro.campaign.executors.SerialExecutor`;
    pass a :class:`~repro.campaign.executors.ProcessPoolCampaignExecutor`
    for multi-core hosts.  ``chunk_size`` defaults to the executor's
    heuristic (all-in-one-chunk for serial; a few chunks per worker for
    the pool, so the per-chunk circuit cache still amortises builds).

    ``store`` (a :class:`repro.store.ResultStore`) makes the run
    **incremental**: units whose content-addressed key is already stored
    are read back instead of executed, freshly executed records are
    written back, and the merged result is byte-identical to a
    store-less run — the executor only ever sees the missing units, and
    record floats round-trip the store exactly.  The partition is
    reported on ``result.store_stats``.

    ``units`` restricts execution to an explicit subset of the
    expansion (the result then covers exactly those units, in the given
    order).  An empty subset is legal and yields a well-formed
    zero-row result.

    ``progress`` is an optional ``(units_done, units_total)`` callback.
    Store-backed runs count reused units as done up front (the first
    call reports the warm coverage), then advance chunk by chunk over
    the missing units; plain runs advance chunk by chunk from zero.
    The callback observes execution only — results are identical with
    or without it.

    An **unavailable store degrades, never fails, the run**: if the
    store cannot be read (after its own internal retries) every unit
    executes through the engine, and if it cannot be written the
    computed records are still returned — persistence is best-effort.
    Either event is surfaced on ``result.store_stats["store_errors"]``;
    the records themselves are identical either way.
    """
    import sqlite3

    from repro.campaign.executors import SerialExecutor
    from repro.campaign.result import CampaignResult

    if executor is None:
        executor = SerialExecutor()
    units = spec.expand() if units is None else list(units)

    with span("campaign.run", builder=spec.builder, n_units=len(units),
              executor=getattr(executor, "name",
                               type(executor).__name__)) as run_span:
        if store is None:
            records = _execute_units(spec, units, executor, chunk_size,
                                     progress)
            result = CampaignResult.from_units(spec, units, records)
        else:
            from repro.store import UnitKeyer

            keyer = UnitKeyer(spec)
            keys = [keyer.key(unit) for unit in units]
            store_errors = 0
            try:
                cached = store.get_many(keys)
            except (sqlite3.OperationalError, OSError):
                cached = {}
                store_errors += 1
            missing = [(u, k) for u, k in zip(units, keys) if k not in cached]
            reused = len(units) - len(missing)
            prof_count("campaign.store_reused", reused)
            inner = None
            if progress is not None:
                progress(reused, len(units))
                inner = lambda done, _total: progress(reused + done, len(units))
            fresh = _execute_units(spec, [u for u, _ in missing], executor,
                                   chunk_size, inner)
            fresh_by_key = {}
            entries = []
            for (unit, key), record in zip(missing, fresh):
                entries.append((key, record, "campaign-unit", {
                    "builder": spec.builder,
                    "corner": unit.corner,
                    "temp_c": unit.temp_c,
                    "supply": unit.supply,
                    "seed": unit.seed,
                    "gain_code": unit.gain_code,
                    "measurements": list(spec.measurements),
                }))
                fresh_by_key[key] = record
            try:
                store.put_many(entries)
            except (sqlite3.OperationalError, OSError):
                store_errors += 1  # computed records outlive the write-back
            records = [cached[k] if k in cached else fresh_by_key[k]
                       for k in keys]
            result = CampaignResult.from_units(spec, units, records)
            result.store_stats = {
                "reused_units": reused,
                "executed_units": len(missing),
                "store_root": str(store.root),
                "store_errors": store_errors,
            }

    stats: dict = {}
    profiler = active_profiler()
    if profiler is not None:
        stats["profile"] = profiler.snapshot()
    log = active_event_log()
    if log is not None:
        stats["solver_health"] = solver_health_sidecar(
            log, trace_id=getattr(run_span, "trace_id", None))
        stats["events"] = {"recorded": log.recorded,
                           "dropped": log.dropped,
                           "by_severity": log.severity_counts()}
    if stats:
        result.stats = stats
    return result


def solver_health_sidecar(log, trace_id: str | None = None) -> dict:
    """Aggregate buffered ``unit.solver_health`` events into the
    per-campaign sidecar dict.

    ``trace_id`` scopes the aggregation to one campaign's trace when
    tracing is armed alongside events (a long-lived serve process logs
    many campaigns into one ring); without tracing every buffered
    health event is folded in.  Telemetry only — the dict lives on
    ``CampaignResult.stats`` and is never serialised.
    """
    health_events = log.events(name="unit.solver_health")
    if trace_id is not None:
        health_events = [e for e in health_events
                         if e.get("trace_id") == trace_id]
    units = [dict(e.get("fields") or {}) for e in health_events]
    resids = [u["worst_resid"] for u in units
              if isinstance(u.get("worst_resid"), (int, float))]
    strategies: dict[str, int] = {}
    fallback_units = 0
    for u in units:
        s = str(u.get("strategy"))
        strategies[s] = strategies.get(s, 0) + 1
        if u.get("latch_reason") or u.get("small_signal_latches") \
                or u.get("strategy") not in (None, "newton"):
            fallback_units += 1
    return {
        "n_units": len(units),
        "units": units,
        "strategies": strategies,
        "fallback_units": fallback_units,
        "worst_resid": max(resids) if resids else None,
    }
