"""Campaign engine: declarative PVT x mismatch x gain-code sweeps.

The paper's headline numbers are statistical, multi-scenario claims —
0.05 dB gain accuracy across codes, noise and PSRR guaranteed over five
process corners and -20..85 degC.  This package turns such studies from
hand-rolled loops into data:

* :class:`~repro.campaign.spec.CampaignSpec` declares the axes (corner,
  temperature, supply, mismatch seed, gain code), a registered circuit
  builder and a set of registered measurements;
* :func:`~repro.campaign.runner.run_campaign` expands the cross-product
  into work units and executes them through a pluggable executor
  (:class:`~repro.campaign.executors.SerialExecutor` or the chunked
  :class:`~repro.campaign.executors.ProcessPoolCampaignExecutor`), one
  shared operating-point factorization per unit;
* :class:`~repro.campaign.result.CampaignResult` collects the records
  columnar (structured NumPy arrays) with percentile/sigma/worst-case/
  yield reducers and CSV/JSON export.

Quickstart::

    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(builder="micamp", corners=("tt", "ff", "ss"),
                        temps_c=(-20.0, 25.0, 85.0), seeds=tuple(range(8)),
                        measurements=("offset_v", "psrr_1khz_db"))
    result = run_campaign(spec)
    print(result.summary())
    print(result.worst_by("psrr_1khz_db", by=("corner",), sense="min"))

``python -m repro campaign --help`` exposes the same engine on the
command line; ``benchmarks/bench_campaign.py`` tracks its throughput.
"""

from repro.campaign.batchrun import run_chunk_batched
from repro.campaign.builders import BUILDERS, BuiltUnit, register_builder
from repro.campaign.executors import (
    BatchedCampaignExecutor,
    CampaignExecutionError,
    ProcessPoolCampaignExecutor,
    SerialExecutor,
)
from repro.campaign.measurements import MEASUREMENTS, register_measurement
from repro.campaign.result import AXIS_COLUMNS, CampaignResult
from repro.campaign.runner import UnitRuntime, run_campaign
from repro.campaign.spec import CampaignSpec, WorkUnit, mc_seeds

__all__ = [
    "AXIS_COLUMNS",
    "BUILDERS",
    "BatchedCampaignExecutor",
    "BuiltUnit",
    "CampaignExecutionError",
    "CampaignResult",
    "CampaignSpec",
    "MEASUREMENTS",
    "ProcessPoolCampaignExecutor",
    "SerialExecutor",
    "UnitRuntime",
    "WorkUnit",
    "mc_seeds",
    "register_builder",
    "register_measurement",
    "run_campaign",
    "run_chunk_batched",
]
