"""Columnar campaign results: NumPy record arrays, reducers, export.

A :class:`CampaignResult` stores one row per executed work unit: five
axis columns (``corner``, ``temp_c``, ``supply``, ``seed``,
``gain_code``) followed by one float64 column per emitted metric, in a
single structured NumPy array.  ``None`` axis values are encoded as
``nan`` (supply) or ``-1`` (seed / gain_code) so the array stays purely
numeric apart from the corner name.

Reducers answer the paper's statistical claims directly:

* ``sigma_by("gain_error_db", by=("gain_code",))`` — sigma of the gain
  error per code (the 0.05 dB accuracy claim);
* ``worst_by("psrr_1khz_db", by=("corner",), sense="min")`` — worst-case
  PSRR per corner (Table 1/2 quote guaranteed minima);
* ``yield_fraction("psrr_1khz_db", lo=75.0)`` — fraction of units
  meeting a spec limit.

``to_csv`` / ``to_json`` (and ``from_json``) round-trip the full table
for external tooling.
"""

from __future__ import annotations

import csv
import json
import math
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.campaign.spec import CampaignSpec, WorkUnit

#: Axis columns present in every result, in storage order.
AXIS_COLUMNS: tuple[str, ...] = ("corner", "temp_c", "supply", "seed", "gain_code")

_AXIS_DTYPES = [("corner", "U8"), ("temp_c", "f8"), ("supply", "f8"),
                ("seed", "i8"), ("gain_code", "i8")]


def _axis_values(unit: WorkUnit) -> tuple:
    return (
        unit.corner,
        unit.temp_c,
        np.nan if unit.supply is None else unit.supply,
        -1 if unit.seed is None else unit.seed,
        -1 if unit.gain_code is None else unit.gain_code,
    )


class CampaignResult:
    """One structured array of axis + metric columns, plus reducers."""

    #: Set by store-backed ``run_campaign`` runs: ``{"reused_units",
    #: "executed_units", "store_root"}``; ``None`` for plain runs.
    store_stats: dict | None = None

    #: Observability sidecar (``{"profile": {...}}``) attached by
    #: ``run_campaign`` when a :mod:`repro.obs.profile` profiler is
    #: armed; ``None`` otherwise.  Telemetry only — never serialised by
    #: :meth:`to_json`, so armed and disarmed runs export identical
    #: bytes.
    stats: dict | None = None

    def __init__(self, data: np.ndarray, metrics: tuple[str, ...],
                 spec: CampaignSpec | None = None) -> None:
        self.data = data
        self.metrics = metrics
        self.spec = spec

    # ------------------------------------------------------------------
    # Construction / export
    # ------------------------------------------------------------------
    @classmethod
    def from_units(cls, spec: CampaignSpec, units: Sequence[WorkUnit],
                   records: Sequence[dict[str, float]]) -> "CampaignResult":
        """Assemble the columnar table from per-unit metric dicts."""
        if len(units) != len(records):
            raise ValueError(
                f"{len(units)} units but {len(records)} records — an executor "
                "dropped or duplicated work"
            )
        metrics: list[str] = []
        for rec in records:
            for key in rec:
                if key not in metrics:
                    metrics.append(key)
        dtype = np.dtype(_AXIS_DTYPES + [(m, "f8") for m in metrics])
        data = np.empty(len(units), dtype=dtype)
        for i, (unit, rec) in enumerate(zip(units, records)):
            data[i] = _axis_values(unit) + tuple(
                float(rec.get(m, np.nan)) for m in metrics
            )
        return cls(data, tuple(metrics), spec)

    @property
    def columns(self) -> tuple[str, ...]:
        return AXIS_COLUMNS + self.metrics

    def __len__(self) -> int:
        return self.data.shape[0]

    def metric(self, name: str) -> np.ndarray:
        """One metric column as a float64 array (row order = unit order)."""
        if name not in self.metrics:
            raise KeyError(f"unknown metric {name!r}; have {self.metrics}")
        return np.asarray(self.data[name], dtype=float)

    def column(self, name: str) -> np.ndarray:
        """Any axis or metric column."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}; have {self.columns}")
        return np.asarray(self.data[name])

    def to_csv(self, path) -> None:
        """Write the full table as CSV (one row per unit)."""
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.columns)
            for row in self.data:
                writer.writerow([row[c] for c in self.columns])

    @staticmethod
    def _json_value(v):
        """Strict-JSON encoding of one cell: NaN -> null, +/-inf ->
        ``"Infinity"`` / ``"-Infinity"`` string tokens (failed units
        produce such values, and bare ``Infinity`` literals are not
        valid JSON)."""
        if isinstance(v, float):
            if math.isnan(v):
                return None
            if math.isinf(v):
                return "Infinity" if v > 0 else "-Infinity"
        return v

    @staticmethod
    def _from_json_value(v):
        if v is None:
            return math.nan
        if v == "Infinity":
            return math.inf
        if v == "-Infinity":
            return -math.inf
        return v

    def to_json(self, path=None) -> str:
        """Serialise as JSON ``{"metrics": [...], "columns": {name: [...]}}``;
        returns the JSON text and optionally writes it to ``path``.

        The output is *strict* JSON even for non-finite metric values
        (see :meth:`_json_value`), and re-serialising
        ``from_json(to_json(r))`` reproduces the text byte-for-byte —
        floats are rendered in their shortest round-trip form.
        """
        payload = {
            "metrics": list(self.metrics),
            "columns": {
                name: [self._json_value(v) for v in self.data[name].tolist()]
                for name in self.columns
            },
        }
        text = json.dumps(payload, indent=2, allow_nan=False)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text + "\n")
        return text

    @classmethod
    def from_json(cls, text_or_path) -> "CampaignResult":
        """Inverse of :meth:`to_json` (accepts JSON text or a file path)."""
        text = str(text_or_path)
        if not text.lstrip().startswith("{"):
            with open(text_or_path) as fh:
                text = fh.read()
        payload = json.loads(text)
        metrics = tuple(payload["metrics"])
        cols = payload["columns"]
        n = len(cols["corner"])
        dtype = np.dtype(_AXIS_DTYPES + [(m, "f8") for m in metrics])
        data = np.empty(n, dtype=dtype)
        for name in data.dtype.names:
            if name == "corner":
                data[name] = cols[name]
            else:
                data[name] = [cls._from_json_value(v) for v in cols[name]]
        return cls(data, metrics)

    # ------------------------------------------------------------------
    # Reducers
    # ------------------------------------------------------------------
    def group_reduce(
        self,
        metric: str,
        by: Iterable[str] = ("corner",),
        fn: Callable[[np.ndarray], float] = np.mean,
    ) -> dict[tuple, float]:
        """Apply ``fn`` to ``metric`` within each group of distinct ``by``
        axis values.  Keys are tuples in first-appearance (unit) order."""
        by = tuple(by)
        for b in by:
            if b not in self.columns:
                raise KeyError(f"unknown group column {b!r}")
        values = self.metric(metric)
        groups: dict[tuple, list[int]] = {}
        for i, row in enumerate(self.data):
            key = tuple(row[b] for b in by)
            groups.setdefault(key, []).append(i)
        return {key: float(fn(values[idx])) for key, idx in groups.items()}

    def sigma_by(self, metric: str, by: Iterable[str] = ("gain_code",)) -> dict[tuple, float]:
        """Per-group standard deviation, e.g. sigma of gain error per code."""
        return self.group_reduce(metric, by, np.std)

    def worst_by(self, metric: str, by: Iterable[str] = ("corner",),
                 sense: str = "max") -> dict[tuple, float]:
        """Per-group worst case; ``sense="min"`` for floor specs (PSRR),
        ``"max"`` for ceilings, ``"absmax"`` for symmetric errors."""
        fns = {"max": np.max, "min": np.min,
               "absmax": lambda v: np.max(np.abs(v))}
        try:
            fn = fns[sense]
        except KeyError:
            raise ValueError(f"sense must be one of {sorted(fns)}, got {sense!r}") from None
        return self.group_reduce(metric, by, fn)

    def percentile(self, metric: str, q: float | Sequence[float]):
        """Percentile(s) of a metric over all units."""
        return np.percentile(self.metric(metric), q)

    def yield_fraction(self, metric: str, lo: float | None = None,
                       hi: float | None = None) -> float:
        """Fraction of units with ``lo <= metric <= hi`` (one-sided when
        a bound is omitted) — the campaign-level yield against a spec."""
        if lo is None and hi is None:
            raise ValueError("need at least one of lo / hi")
        values = self.metric(metric)
        ok = np.ones(values.shape, dtype=bool)
        if lo is not None:
            ok &= values >= lo
        if hi is not None:
            ok &= values <= hi
        return float(np.mean(ok))

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Per-metric min/median/max over the whole campaign."""
        lines = [f"{len(self)} units x {len(self.metrics)} metrics"]
        for m in self.metrics:
            v = self.metric(m)
            finite = v[np.isfinite(v)]
            if finite.size == 0:
                lines.append(f"  {m:<18} (no finite values)")
                continue
            lines.append(
                f"  {m:<18} min {np.min(finite):11.4g}   "
                f"median {np.median(finite):11.4g}   max {np.max(finite):11.4g}"
            )
        return "\n".join(lines)

    def format_table(self, max_rows: int = 20) -> str:
        """A plain-text view of the first ``max_rows`` rows."""
        header = "  ".join(f"{c:>12}" for c in self.columns)
        lines = [header]
        for row in self.data[:max_rows]:
            cells = []
            for c in self.columns:
                v = row[c]
                cells.append(f"{v:>12}" if isinstance(v, str)
                             else f"{float(v):>12.5g}")
            lines.append("  ".join(cells))
        if len(self) > max_rows:
            lines.append(f"  ... ({len(self) - max_rows} more rows)")
        return "\n".join(lines)
