"""Declarative sweep specifications: axes in, work units out.

A :class:`CampaignSpec` names the five characterization axes of the
paper's robustness story — process corner, temperature, total supply
voltage, Pelgrom mismatch seed and PGA gain code — plus a registered
circuit builder and a set of registered measurements.  :meth:`expand`
turns the cross-product into an ordered list of :class:`WorkUnit`\\ s
that the runner executes (serially or through a process pool) and the
columnar :class:`~repro.campaign.result.CampaignResult` indexes.

The expansion order is part of the contract: units are yielded
``corner -> supply -> seed -> gain_code -> temp`` (temperature
innermost), so all temperatures of one physical circuit are adjacent and
the runner's per-chunk build cache gets maximal reuse, and so results
are byte-for-byte reproducible across executors.

Everything in a spec is picklable (axes are plain tuples, builders and
measurements are registry *names*), which is what lets the process-pool
executor ship whole chunks of work to worker processes in one message.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterable, Sequence

from repro.process.corners import CONSUMER_TEMPS_C, CORNERS
from repro.process.technology import CMOS12, Technology


@dataclass(frozen=True)
class WorkUnit:
    """One point of the campaign cross-product.

    ``supply`` is the *total* supply voltage in volts (split evenly into
    +/- rails by the builders) or ``None`` for the technology nominal;
    ``seed`` is ``None`` for nominal (mismatch-free) devices; ``gain_code``
    is ``None`` for the builder's default configuration.
    """

    index: int
    corner: str
    temp_c: float
    supply: float | None
    seed: int | None
    gain_code: int | None

    def circuit_key(self) -> tuple:
        """Cache key of the physical circuit this unit measures.

        Temperature is deliberately absent: the same built circuit serves
        every temperature, only the DC solve differs.
        """
        return (self.corner, self.supply, self.seed, self.gain_code)


def _as_axis(values, name: str) -> tuple:
    if values is None:
        raise TypeError(f"axis {name!r} must be a non-empty sequence, got None")
    if isinstance(values, (str, bytes)):
        raise TypeError(f"axis {name!r} must be a sequence, not a bare string")
    out = tuple(values)
    if not out:
        raise ValueError(f"axis {name!r} must not be empty")
    return out


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of one characterization campaign.

    Axes default to the paper's qualification space: all five corners,
    the -20/25/85 degC consumer grid, nominal supply, nominal devices and
    the builder's default gain code.  ``builder`` and ``measurements``
    are names in :data:`repro.campaign.builders.BUILDERS` and
    :data:`repro.campaign.measurements.MEASUREMENTS`.
    """

    builder: str = "micamp"
    corners: Sequence[str] = tuple(CORNERS)
    temps_c: Sequence[float] = CONSUMER_TEMPS_C
    supplies: Sequence[float | None] = (None,)
    seeds: Sequence[int | None] = (None,)
    gain_codes: Sequence[int | None] = (None,)
    measurements: Sequence[str] = ("offset_v", "iq_ma")
    tech: Technology = field(default=CMOS12)
    #: Extra keyword arguments handed to the builder for *every* unit
    #: (e.g. a candidate sizing for ``micamp_sized``).  Accepts a mapping
    #: or ``(name, value)`` pairs; canonicalised to a name-sorted tuple of
    #: ``(str, float)`` pairs so the spec stays hashable and picklable.
    builder_kwargs: Sequence[tuple[str, float]] = ()

    def __post_init__(self) -> None:
        # Canonicalise every axis to a tuple so specs hash/pickle cleanly
        # and accidental generator arguments fail loudly here, not in a
        # worker process.
        object.__setattr__(self, "corners",
                           tuple(str(c).lower() for c in _as_axis(self.corners, "corners")))
        object.__setattr__(self, "temps_c",
                           tuple(float(t) for t in _as_axis(self.temps_c, "temps_c")))
        object.__setattr__(self, "supplies",
                           tuple(None if s is None else float(s)
                                 for s in _as_axis(self.supplies, "supplies")))
        object.__setattr__(self, "seeds",
                           tuple(None if s is None else int(s)
                                 for s in _as_axis(self.seeds, "seeds")))
        object.__setattr__(self, "gain_codes",
                           tuple(None if g is None else int(g)
                                 for g in _as_axis(self.gain_codes, "gain_codes")))
        object.__setattr__(self, "measurements",
                           tuple(_as_axis(self.measurements, "measurements")))
        kwargs = self.builder_kwargs
        pairs = sorted(kwargs.items()) if hasattr(kwargs, "items") else list(kwargs)
        # Numeric values normalise to float (so 2 and 2.0 hash alike in
        # store keys); strings pass through untouched — the ingested
        # builder rides its canonical deck and binding text here.
        object.__setattr__(self, "builder_kwargs",
                           tuple(sorted((str(k), v if isinstance(v, str) else float(v))
                                        for k, v in pairs)))

        unknown = [c for c in self.corners if c not in CORNERS]
        if unknown:
            raise KeyError(f"unknown corners {unknown}; available: {sorted(CORNERS)}")
        # Builder/measurement names are validated against the registries
        # lazily (import cycle: builders import circuits which import
        # process), but early enough to beat any worker dispatch.
        from repro.campaign.builders import BUILDERS
        from repro.campaign.measurements import MEASUREMENTS

        if self.builder not in BUILDERS:
            raise KeyError(
                f"unknown builder {self.builder!r}; available: {sorted(BUILDERS)}"
            )
        bad = [m for m in self.measurements if m not in MEASUREMENTS]
        if bad:
            raise KeyError(
                f"unknown measurements {bad}; available: {sorted(MEASUREMENTS)}"
            )

    @property
    def n_units(self) -> int:
        """Size of the expanded cross-product."""
        return (len(self.corners) * len(self.temps_c) * len(self.supplies)
                * len(self.seeds) * len(self.gain_codes))

    def expand(self) -> list[WorkUnit]:
        """The ordered cross-product (see the module docstring for order)."""
        units: list[WorkUnit] = []
        index = 0
        for corner in self.corners:
            for supply in self.supplies:
                for seed in self.seeds:
                    for code in self.gain_codes:
                        for temp in self.temps_c:
                            units.append(WorkUnit(
                                index=index, corner=corner, temp_c=temp,
                                supply=supply, seed=seed, gain_code=code,
                            ))
                            index += 1
        return units

    def chunked(self, chunk_size: int) -> list[list[WorkUnit]]:
        """Contiguous chunks of the expansion, preserving unit order."""
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        units = self.expand()
        return [units[i:i + chunk_size] for i in range(0, len(units), chunk_size)]


def mc_seeds(n_trials: int, base_seed: int = 2026) -> tuple[int, ...]:
    """Derive ``n_trials`` mismatch seeds the way the characterization
    drivers always have: one master generator seeded with ``base_seed``
    handing out 63-bit child seeds.  Keeping the derivation here means a
    campaign reproduces the exact Monte-Carlo population of the legacy
    hand-rolled loops (same master seed, same draw order)."""
    import numpy as np

    rng = np.random.default_rng(base_seed)
    return tuple(int(rng.integers(2 ** 63)) for _ in range(n_trials))
