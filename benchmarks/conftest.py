"""Benchmark fixtures.

Every bench regenerates one of the paper's tables or figures; the rows
are printed to the terminal *and* written to ``benchmarks/out/`` so the
EXPERIMENTS.md paper-vs-measured record can be assembled from artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.process import CMOS12

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def tech():
    return CMOS12


@pytest.fixture(scope="session")
def report_dir():
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def save_report(report_dir, request):
    """Write a named text artifact and echo it to the terminal."""

    def _save(name: str, text: str) -> None:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n")

    return _save
