"""Figs. 4/5 — gain programming: 10..40 dB in 6 dB steps.

Regenerates the per-code gain table (absolute accuracy and step
accuracy) and the Monte Carlo gain-accuracy distribution over resistor
mismatch — the two "most critical design parameters" of Sec. 3.1.
"""

import numpy as np
import pytest

from repro.analysis.gain import measure_gain_codes
from repro.circuits.micamp import build_mic_amp
from repro.process.mismatch import MismatchSampler


@pytest.fixture(scope="module")
def gain_measurement(tech):
    design = build_mic_amp(tech, gain_code=5)
    return measure_gain_codes(design)


def test_fig5_gain_table(gain_measurement, save_report, benchmark):
    gm = gain_measurement
    benchmark.pedantic(lambda: gm.step_errors_db, rounds=1, iterations=1)
    lines = ["Fig. 5: programmed gain per code (paper: 10..40 dB, 6 dB steps,",
             "        dA_cl <= 0.05 dB)", "", gm.format(), "",
             f"worst absolute error: {gm.worst_error_db:.4f} dB",
             f"worst step error:     {gm.worst_step_error_db:.4f} dB"]
    save_report("fig5_gain_steps", "\n".join(lines))
    assert gm.worst_error_db <= 0.05
    assert gm.worst_step_error_db <= 0.05
    assert all(s > 0 for s in np.diff(gm.measured_db))


def test_fig5_gain_accuracy_monte_carlo(tech, save_report, benchmark):
    """Matched-string mismatch: the statistical part of dA_cl."""
    def run_mc():
        out = []
        for seed in range(8):
            sampler = MismatchSampler(tech, np.random.default_rng(100 + seed))
            design = build_mic_amp(tech, gain_code=5, mismatch=sampler)
            gm = measure_gain_codes(design, with_bandwidth=False)
            out.append(gm.worst_step_error_db)
        return out

    errors = benchmark.pedantic(run_mc, rounds=1, iterations=1)
    lines = ["Fig. 5: Monte Carlo step-accuracy over poly matching",
             "", "trial   worst step error [dB]"]
    for k, e in enumerate(errors):
        lines.append(f"  {k}      {e:.4f}")
    lines.append("")
    lines.append(f"max over trials: {max(errors):.4f} dB")
    save_report("fig5_gain_mc", "\n".join(lines))
    assert max(errors) < 0.2


def test_gain_codes_benchmark(tech, benchmark):
    design = build_mic_amp(tech, gain_code=5)
    gm = benchmark(lambda: measure_gain_codes(design))
    assert len(gm.codes) == 6
