"""Fig. 7 — measured input-referred noise voltage of the microphone
amplifier at 25 degC.

Regenerates the spectrum from 10 Hz to 100 kHz, overlays the analytic
Eq. 3-5 budget, breaks the 1 kHz point into per-device contributions and
sweeps the gain code for the Eq. 4 dependence.
"""

import numpy as np
import pytest

from repro.analysis.noise_budget import MicAmpNoiseBudget
from repro.circuits.micamp import build_mic_amp
from repro.spice.analysis import log_freqs
from repro.spice.dc import dc_operating_point
from repro.spice.noise import noise_analysis


@pytest.fixture(scope="module")
def design(tech):
    return build_mic_amp(tech, gain_code=5)


@pytest.fixture(scope="module")
def op(design):
    return dc_operating_point(design.circuit)


@pytest.fixture(scope="module")
def spectrum(design, op):
    freqs = log_freqs(10.0, 100e3, 16)
    return noise_analysis(op, freqs, design.outp, design.outn)


def test_fig7_spectrum(design, op, spectrum, save_report, benchmark):
    budget = benchmark.pedantic(
        lambda: MicAmpNoiseBudget.from_design(design, op), rounds=1, iterations=1)
    lines = ["Fig. 7: input-referred noise at 40 dB gain, 25 degC", "",
             "f [Hz]      simulated [nV/rtHz]   Eq.3-5 budget [nV/rtHz]"]
    for f in (10, 30, 100, 300, 1e3, 3.4e3, 10e3, 30e3, 100e3):
        lines.append(f"{f:8.0f}      {spectrum.input_nv_at(f):8.2f}"
                     f"             {budget.input_nv(f):8.2f}")
    avg = spectrum.average_input_density(300, 3400) * 1e9
    lines += ["",
              f"voice-band average: {avg:.2f} nV/rtHz (paper: 5.1)",
              f"flicker corner (budget): {budget.flicker_corner_hz():.0f} Hz"]
    save_report("fig7_noise_spectrum", "\n".join(lines))

    # Shape criteria from DESIGN.md:
    assert spectrum.input_nv_at(300) <= 7.0
    assert spectrum.input_nv_at(1e3) <= 6.0
    assert avg == pytest.approx(5.1, rel=0.30)
    assert spectrum.input_nv_at(10) > spectrum.input_nv_at(1e3)


def test_fig7_contribution_budget(design, op, spectrum, save_report, benchmark):
    benchmark.pedantic(lambda: spectrum.top_contributors(1e3, 12),
                       rounds=1, iterations=1)
    g1k = float(np.interp(1e3, spectrum.freqs, spectrum.gain))
    lines = ["Fig. 7 companion: per-device noise budget at 1 kHz",
             "", "device      mechanism   input-referred [nV/rtHz]"]
    for dev, mech, val in spectrum.top_contributors(1e3, 12):
        lines.append(f"  {dev:10s} {mech:9s} {np.sqrt(val) * 1e9 / g1k:8.3f}")
    save_report("fig7_contributions", "\n".join(lines))
    ranked = spectrum.top_contributors(1e3, 12)
    names = [d for d, _, _ in ranked[:8]]
    # Sec. 3.1/3.2 structure: strings, inputs and loads fill the top slots
    assert any(n.startswith("rs") for n in names)
    assert any(n in ("t1", "t2", "t3", "t4") for n in names)


def test_fig7_noise_vs_gain_code(tech, save_report, benchmark):
    """Eq. 4: 'the close-loop gain setting ... contributes nonconstant
    noise power to the amplifier input'."""
    design = build_mic_amp(tech, gain_code=0)
    freqs = np.array([10e3])

    def sweep_codes():
        out = []
        for code in range(6):
            design.set_gain_code(code)
            op = dc_operating_point(design.circuit)
            nr = noise_analysis(op, freqs, design.outp, design.outn)
            out.append((design.gain.gain_db(code),
                        design.gain.noise_source_resistance(code),
                        nr.input_nv()[0]))
        return out

    rows = benchmark.pedantic(sweep_codes, rounds=1, iterations=1)
    lines = ["Eq. 4: input noise vs gain setting (10 kHz, thermal floor)",
             "", "gain [dB]   Ra||Rf [ohm]   input noise [nV/rtHz]"]
    for g, r, nv in rows:
        lines.append(f"  {g:5.0f}      {r:8.0f}        {nv:8.2f}")
    save_report("fig7_noise_vs_gain", "\n".join(lines))
    noise = [r[2] for r in rows]
    assert noise[0] == max(noise)  # low gain = big Ra||Rf = worst noise
    assert all(a >= b * 0.999 for a, b in zip(noise, noise[1:]))


def test_noise_analysis_benchmark(design, op, benchmark):
    freqs = log_freqs(10.0, 100e3, 16)
    nr = benchmark(lambda: noise_analysis(op, freqs, design.outp, design.outn))
    assert nr.output_psd.shape == freqs.shape
