"""Fig. 3 — the fully differential bandgap reference.

Regenerates: the +/-0.6 V symmetric outputs, the tempco curve over
-20..85 degC after the production-style R2 trim, the voice-band noise
(< 200 nV/rtHz claim) and operation at the 2.6 V minimum supply.
"""

import numpy as np
import pytest

from repro.circuits.bandgap import build_bandgap, find_r2_trim
from repro.spice import dc_operating_point
from repro.spice.analysis import log_freqs
from repro.spice.noise import noise_analysis
from repro.spice.sweeps import temperature_sweep


@pytest.fixture(scope="module")
def trim(tech):
    return find_r2_trim(tech, iterations=3)


@pytest.fixture(scope="module")
def design(tech, trim):
    return build_bandgap(tech, r2_trim=trim)


def test_fig3_tempco_curve(design, trim, save_report, benchmark):
    temps = np.linspace(-20, 85, 22)
    ops = benchmark.pedantic(
        lambda: temperature_sweep(design.circuit, temps), rounds=1, iterations=1)
    vref = np.array([op.v(design.vrefp) - op.v(design.vrefn) for op in ops])
    box_tc = (vref.max() - vref.min()) / vref.mean() / (temps[-1] - temps[0]) * 1e6
    lines = [f"Fig. 3: bandgap vs temperature (R2 trim = {trim:.3f})", "",
             "T [degC]    vrefp-vrefn [mV]"]
    for t, v in zip(temps, vref):
        lines.append(f"{t:7.1f}     {v * 1e3:9.3f}")
    lines.append("")
    lines.append(f"box tempco: {box_tc:.1f} ppm/degC (paper: < +/-40)")
    save_report("fig3_bandgap_tempco", "\n".join(lines))
    assert box_tc < 40.0


def test_fig3_symmetry_and_level(design, save_report, benchmark):
    op = benchmark.pedantic(
        lambda: dc_operating_point(design.circuit), rounds=1, iterations=1)
    vrefp, vrefn = op.v(design.vrefp), op.v(design.vrefn)
    save_report(
        "fig3_bandgap_levels",
        f"vrefp = {vrefp * 1e3:.1f} mV   vrefn = {vrefn * 1e3:.1f} mV   "
        f"(paper: +/-0.6 V symmetric about analogue ground)",
    )
    assert vrefp == pytest.approx(0.6, abs=0.06)
    assert vrefn == pytest.approx(-0.6, abs=0.06)


def test_fig3_noise(design, save_report, benchmark):
    design.circuit.element("vdd_src").ac = 1.0
    try:
        op = dc_operating_point(design.circuit)
        freqs = log_freqs(100, 10e3, 10)
        nr = benchmark.pedantic(
            lambda: noise_analysis(op, freqs, design.vrefp, design.vrefn),
            rounds=1, iterations=1)
        avg_nv = np.sqrt(
            np.trapezoid(nr.output_psd, freqs) / (freqs[-1] - freqs[0])
        ) * 1e9
        top = nr.top_contributors(1e3, 5)
        lines = [f"Fig. 3: bandgap output noise, voice-band average = "
                 f"{avg_nv:.1f} nV/rtHz (paper: < 200)", "",
                 "dominant contributors at 1 kHz:"]
        for dev, mech, val in top:
            lines.append(f"  {dev:12s} {mech:8s} {np.sqrt(val) * 1e9:8.2f} nV/rtHz")
        save_report("fig3_bandgap_noise", "\n".join(lines))
        assert avg_nv < 200.0
    finally:
        design.circuit.element("vdd_src").ac = 0.0


def test_fig3_min_supply(tech, trim, save_report, benchmark):
    def sweep():
        out = []
        for supply in (2.4, 2.6, 3.0):
            d = build_bandgap(tech, r2_trim=trim, supply=supply)
            op = dc_operating_point(d.circuit)
            out.append((supply, op.v(d.vrefp) - op.v(d.vrefn)))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Fig. 3: bandgap vs supply (paper: operates down to 2.6 V)", ""]
    for supply, vref in rows:
        lines.append(f"  V_sup = {supply:.1f} V   vref = {vref * 1e3:7.2f} mV")
    save_report("fig3_bandgap_supply", "\n".join(lines))
    # at 2.6 V the reference is fully alive
    assert rows[1][1] == pytest.approx(1.2, abs=0.1)


def test_bandgap_sweep_benchmark(design, benchmark):
    temps = np.array([-20.0, 25.0, 85.0])
    result = benchmark(lambda: temperature_sweep(design.circuit, temps))
    assert len(result) == 3
