"""Shared provenance header for every ``bench_*.py`` merge.

Every benchmark that merges an entry into ``BENCH_perf.json`` stamps
the same machine-identity block — ``platform``, ``cpu_count``,
``single_cpu``, ``numpy``, ``scipy`` — so trajectory deltas can be
attributed: a 10.1x -> 8.7x "regression" that coincides with a
cpu_count change or a numpy upgrade is a hardware/software move, not a
code one.  ``tools/bench_report.py`` reads the trajectories back and
prints exactly those deltas.

Import idiom (the benches run as scripts, so this directory is already
``sys.path[0]``)::

    from provenance import provenance_block
"""

from __future__ import annotations

import os
import platform


def provenance_block() -> dict:
    """The normalized provenance header merged by every benchmark
    entry.  Version lookups are gated, never imports-or-dies: a bench
    that itself needs numpy will fail on its own terms, not here."""
    cpus = os.cpu_count() or 1
    block: dict = {
        "platform": platform.platform(),
        "cpu_count": cpus,
        "single_cpu": cpus == 1,
    }
    try:
        import numpy
        block["numpy"] = numpy.__version__
    except ImportError:
        block["numpy"] = None
    try:
        import scipy
        block["scipy"] = scipy.__version__
    except ImportError:
        block["scipy"] = None
    return block
