"""Eq. 2 + Fig. 1 — the system-level dynamic-range budget.

Regenerates: the Eq. 2 arithmetic (5.1 nV/rtHz from the 86.5 dB
psophometric requirement), the amplifier-only S/N at 40 dB, and the full
behavioural chain (PGA noise -> sigma-delta -> decimator) across gain
codes — the "hands free operation ... under software control" scenario.
"""

import numpy as np
import pytest

from repro.analysis.dynamic_range import eq2_required_noise, snr_from_noise
from repro.circuits.micamp import build_mic_amp
from repro.frontend.voice_chain import VoiceChain
from repro.spice.analysis import log_freqs
from repro.spice.dc import dc_operating_point
from repro.spice.noise import noise_analysis


@pytest.fixture(scope="module")
def amp_noise(tech):
    design = build_mic_amp(tech, gain_code=5)
    op = dc_operating_point(design.circuit)
    return noise_analysis(op, log_freqs(10, 100e3, 12), design.outp, design.outn)


def test_eq2_arithmetic(save_report, benchmark):
    noise = benchmark.pedantic(eq2_required_noise, rounds=1, iterations=1)
    lines = ["Eq. 2: required input noise for 86.5 dB psophometric S/N",
             "",
             "V_noise <= V_modmax / (G_mic sqrt(BW) 10^(S/N/20))",
             f"        = 0.6 / (100 * sqrt(3100) * 10^(86.5/20))",
             f"        = {noise * 1e9:.2f} nV/rtHz   (paper: 5.1)"]
    save_report("eq2_arithmetic", "\n".join(lines))
    assert noise * 1e9 == pytest.approx(5.1, abs=0.05)


def test_eq2_amplifier_margin(amp_noise, save_report, benchmark):
    measured = benchmark.pedantic(
        lambda: amp_noise.average_input_density(300, 3400),
        rounds=1, iterations=1)
    snr = snr_from_noise(measured)
    save_report(
        "eq2_amplifier_margin",
        f"measured average input noise: {measured * 1e9:.2f} nV/rtHz\n"
        f"flat-band S/N at 0.6 Vrms, 40 dB: {snr:.1f} dB "
        f"(requirement: 86.5 dB psophometric; weighting adds ~+2 dB)",
    )
    assert snr > 84.0


def test_fig1_chain_across_gain_codes(amp_noise, save_report, benchmark):
    """One acoustic level per row; software picks the code (hands-free)."""
    chain = VoiceChain()
    lines = ["Fig. 1: voice chain S/N vs gain code (2 mVrms microphone)",
             "", "code  gain[dB]  at-modulator[Vrms]  S/N[dB]  psoph[dB]  clip"]
    results = benchmark.pedantic(
        lambda: chain.sweep_codes(2e-3, amp_noise.freqs, amp_noise.input_psd),
        rounds=1, iterations=1)
    for code, res in enumerate(results):
        lines.append(
            f"  {code}     {res.gain_db:4.0f}      {res.signal_at_modulator_rms:8.4f}"
            f"        {res.snr_db:6.1f}   {res.snr_psophometric_db:6.1f}"
            f"    {'YES' if res.clipped else 'no'}"
        )
    save_report("fig1_voice_chain", "\n".join(lines))
    snrs = [r.snr_psophometric_db for r in results]
    # a quiet microphone wants the top gain codes
    assert int(np.argmax(snrs)) >= 4
    assert max(snrs) > 70.0


def test_chain_benchmark(amp_noise, benchmark):
    chain = VoiceChain()
    res = benchmark(lambda: chain.run(5, 2e-3, amp_noise.freqs,
                                      amp_noise.input_psd))
    assert res.gain_db == 40.0
