"""Fig. 2 + Eq. 1 — the simple bias circuit's minimum supply voltage.

Sweeps the supply down at three temperatures and compares the simulated
collapse point with the Eq. 1 analytic bound; also regenerates the
temperature behaviour of the bias current ("constant or slightly
increasing").
"""

import numpy as np
import pytest

from repro.circuits.bias import build_bias_circuit, eq1_min_supply
from repro.spice.dc import dc_sweep
from repro.spice.sweeps import temperature_sweep


@pytest.fixture(scope="module")
def design(tech):
    return build_bias_circuit(tech)


def _min_supply(design, temp_c: float) -> float:
    volts = np.linspace(3.0, 1.4, 33)
    data = dc_sweep(design.circuit, "vsup", volts, ["iout"], temp_c=temp_c)
    current = data["iout"] / 10e3
    ok = current >= 0.9 * current[0]
    bad = np.where(~ok)[0]
    return float(volts[bad[0] - 1]) if bad.size else float(volts[-1])


def test_fig2_min_supply_vs_eq1(design, tech, save_report, benchmark):
    lines = ["Fig. 2 / Eq. 1: bias minimum supply vs temperature", "",
             "T [degC]   Eq.1 bound [V]   simulated V_smin [V]"]

    def sweep_all():
        from repro.process import CONSUMER_TEMPS_C

        out = []
        for temp in CONSUMER_TEMPS_C:
            bound = eq1_min_supply(tech, design.i_nominal,
                                   design.w_nmos / design.l_nmos, temp)
            out.append((temp, bound, _min_supply(design, temp)))
        return out

    rows = benchmark.pedantic(sweep_all, rounds=1, iterations=1)
    for temp, bound, sim in rows:
        lines.append(f"{temp:7.0f}    {bound:10.3f}      {sim:10.3f}")
    lines.append("")
    lines.append("Eq. 1 is the necessary bound; the simulated circuit needs")
    lines.append("one extra VGS (branch 2), hence the ~0.3-0.5 V gap.")
    save_report("fig2_bias_min_supply", "\n".join(lines))

    for temp, bound, sim in rows:
        assert sim >= bound                 # bound never violated
        assert sim - bound < 0.8            # and not wildly loose
    # the paper's "most critical parameter" claim: cold is worst
    assert rows[0][2] >= rows[2][2] - 0.05


def test_fig2_current_vs_temperature(design, save_report, benchmark):
    temps = np.linspace(-20, 85, 8)
    ops = benchmark.pedantic(
        lambda: temperature_sweep(design.circuit, temps), rounds=1, iterations=1)
    currents = np.array([op.v("iout") / 10e3 for op in ops])
    lines = ["Fig. 2: bias current vs temperature (target: flat-to-rising)",
             ""]
    for t, i in zip(temps, currents):
        lines.append(f"  T={t:6.1f} C   I={i * 1e6:7.3f} uA")
    save_report("fig2_bias_current_vs_temp", "\n".join(lines))
    assert currents[-1] > currents[0]
    assert currents[-1] / currents[0] < 1.35


def test_bias_solve_benchmark(design, benchmark):
    from repro.spice.dc import dc_operating_point

    op = benchmark(lambda: dc_operating_point(design.circuit))
    assert op.v("iout") > 0.1
