"""Corner x temperature robustness of the microphone amplifier.

The paper's Sec. 2: "process variations have a large influence on the
system behaviour if the design approach is chosen incorrectly".  This
bench runs the Table 1 quick characterisation at the skew corners and
temperature extremes and checks the design approach held: noise, gain
accuracy and IQ stay within their bands everywhere.
"""

import numpy as np
import pytest

from repro.circuits.micamp import build_mic_amp
from repro.process import iter_pvt
from repro.spice.ac import ac_analysis
from repro.spice.analysis import log_freqs
from repro.spice.dc import dc_operating_point
from repro.spice.noise import noise_analysis


def _measure(tech, temp_c):
    design = build_mic_amp(tech, gain_code=5)
    op = dc_operating_point(design.circuit, temp_c=temp_c)
    ac = ac_analysis(op, np.array([1e3]))
    gain_db = 20 * np.log10(abs(ac.vdiff("outp", "outn")[0]))
    nr = noise_analysis(op, log_freqs(100, 50e3, 6), "outp", "outn")
    # distinguish hard triode (broken) from grazing the soft EKV vdsat
    # boundary (margin erosion at skewed corners, but functional)
    hard = [
        name for name, dev in op.all_mos_op().items()
        if abs(dev.ids) > 1e-9 and dev.vds < dev.vdsat - 0.06
    ]
    return {
        "iq_ma": abs(op.i("vdd_src")) * 1e3,
        "gain_db": gain_db,
        "avg_nv": nr.average_input_density(300, 3400) * 1e9,
        "marginal": len(op.saturation_report()),
        "hard_triode": len(hard),
    }


def test_corners_and_temperature(tech, save_report, benchmark):
    points = list(iter_pvt(tech))

    def run_all():
        return [(p.corner.name, p.temp_c, _measure(p.tech, p.temp_c))
                for p in points]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = ["Table 1 over corners x temperature", "",
             "corner  T[degC]   IQ[mA]   gain[dB]   avg noise [nV/rtHz] "
             " marginal  hard"]
    for corner, temp, m in rows:
        lines.append(f"  {corner}    {temp:6.0f}    {m['iq_ma']:5.2f}"
                     f"    {m['gain_db']:7.3f}     {m['avg_nv']:6.2f}"
                     f"            {m['marginal']}        {m['hard_triode']}")
    save_report("corners_table1", "\n".join(lines))

    for corner, temp, m in rows:
        # the closed-loop gain is resistor-ratio set: corners barely move it
        assert abs(m["gain_db"] - 40.0) < 0.25, (corner, temp)
        # noise band widens at the hot/slow extreme but stays in spec band
        assert m["avg_nv"] < 5.1 * 1.5, (corner, temp)
        # no device falls into hard triode at any corner (a few devices
        # may graze the soft vdsat boundary at skew extremes)
        assert m["hard_triode"] == 0, (corner, temp)
        assert m["marginal"] <= 3, (corner, temp)
        assert m["iq_ma"] < 3.4, (corner, temp)

    # who-wins structure: ff is the fastest/most current, ss the least
    by_corner = {c: m for c, t, m in rows if t == 25.0}
    assert by_corner["ff"]["iq_ma"] > by_corner["ss"]["iq_ma"]
