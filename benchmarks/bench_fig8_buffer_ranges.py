"""Figs. 8/9 + Eqs. 6-8 — buffer input range, output swing, gain droop.

Regenerates: the rail-to-rail input-range sweep of the unity follower
(Eqs. 6/7 govern where each complementary pair drops out), the output
swing against the Eq. 8 bound, and the "signal dependent gain (5 % over
the full range)" the paper lists as the main drawback.
"""

import math

import numpy as np
import pytest

from repro.analysis.distortion import measure_static_transfer
from repro.circuits.powerbuffer import build_power_buffer
from repro.spice.sweeps import source_value_sweep


def eq6_eq7_pair_limits(tech, i_tail, w_over_l_n, w_over_l_p):
    """Analytic Eqs. 6/7: where the N (bottom) and P (top) pairs die."""
    vdd, vss = tech.vdd_nominal, tech.vss_nominal
    veff_p = math.sqrt(2 * (i_tail / 2) / (tech.pmos.kp * w_over_l_p))
    veff_n = math.sqrt(2 * (i_tail / 2) / (tech.nmos.kp * w_over_l_n))
    # Eq. 6: P pair (with its tail headroom) stops above V_a
    v_a = vdd - veff_p - tech.pmos.vth0 - 0.2
    # Eq. 7: N pair stops below V_b
    v_b = vss + veff_n + tech.nmos.vth0 + 0.2
    return v_a, v_b


def test_fig8_input_range(tech, save_report, benchmark):
    design = build_power_buffer(tech, feedback="unity", load="none")
    levels = np.linspace(tech.vss_nominal, tech.vdd_nominal, 27)
    ops = benchmark.pedantic(
        lambda: source_value_sweep(design.circuit, "vsrc_p", levels, anchor=0.0),
        rounds=1, iterations=1)
    outs = np.array([op.v("outp") for op in ops])
    slope = np.gradient(outs, levels)
    sz = design.sizes
    v_a, v_b = eq6_eq7_pair_limits(tech, sz.i_ntail,
                                   sz.w_nin / sz.l_nin, sz.w_pin / sz.l_pin)
    lines = ["Fig. 8 / Eqs. 6-7: unity-follower tracking across the rails",
             "", f"Eq. 6 (P pair alive below) V_a = {v_a:+.2f} V",
             f"Eq. 7 (N pair alive above) V_b = {v_b:+.2f} V",
             "overlap => rail-to-rail", "",
             "vin [V]   out [V]    local slope"]
    for v, o, s in zip(levels, outs, slope):
        lines.append(f"{v:+7.2f}  {o:+8.4f}   {s:7.3f}")
    save_report("fig8_input_range", "\n".join(lines))

    # complementary coverage: both pair-limits overlap around ground
    assert v_a > v_b
    # stage alive over >= 85 % of the supply (the single-pair handoff
    # region dips in slope but keeps working)
    mid = float(np.median(slope[np.abs(levels) < 0.4]))
    alive = levels[slope >= 0.5 * mid]
    assert (alive.max() - alive.min()) / tech.supply_total >= 0.85


def test_fig8_output_swing_vs_eq8(tech, save_report, benchmark):
    design = build_power_buffer(tech, feedback="inverting", load="resistive")
    sz = design.sizes
    beta_p = tech.pmos.kp * sz.w_pout / sz.l_pout
    beta_n = tech.nmos.kp * sz.w_nout / sz.l_nout
    # Eq. 8 at the measured load current ~ 2Vp/50ohm
    i_pk = 2.0 / 50.0
    margin_hi = math.sqrt(i_pk / beta_p)
    margin_lo = math.sqrt(i_pk / beta_n)

    levels = np.linspace(-2.2, 2.2, 23)
    ops = benchmark.pedantic(
        lambda: source_value_sweep(design.circuit, "vsrc_p", levels, anchor=0.0),
        rounds=1, iterations=1)
    outs = np.array([op.v("outp") - op.v("outn") for op in ops])
    lines = ["Eq. 8: output swing bound",
             f"  sqrt(I_P/beta_P) = {margin_hi * 1e3:.0f} mV from vdd",
             f"  sqrt(I_N/beta_N) = {margin_lo * 1e3:.0f} mV from vss",
             f"  measured max diff swing: {outs.max():+.3f} / {outs.min():+.3f} V"]
    save_report("fig8_output_swing", "\n".join(lines))
    # Eq. 8's sqrt(I/beta) is the *saturation* boundary; the driven gate
    # pushes the output device into triode beyond it, so the measured
    # rail margin lands between the triode (Ron) limit and ~450 mV --
    # exactly the paper's 100..300 mV V_omax regime.
    per_side_max = outs.max() / 2.0
    rail_margin = tech.vdd_nominal - per_side_max
    assert 0.1 < rail_margin < 0.45


def test_fig9_signal_dependent_gain(tech, save_report, benchmark):
    """Sec. 4: 'the signal dependent gain (5 % over the full range)'."""
    design = build_power_buffer(tech, feedback="inverting", load="resistive")
    transfer = benchmark.pedantic(
        lambda: measure_static_transfer(
            design.circuit, "vsrc_p", "vsrc_n", "outp", "outn",
            amplitude=1.8, points=37,
        ),
        rounds=1, iterations=1)
    gains = [transfer.gain_at(v) for v in (-0.8, -0.4, 0.0, 0.4, 0.8)]
    droop = (max(gains) - min(gains)) / max(gains)
    lines = ["Fig. 9: incremental gain across the swing (inverting, 50 ohm)",
             ""] + [f"  vin={v:+.1f} V   gain={g:.4f}"
                    for v, g in zip((-0.8, -0.4, 0.0, 0.4, 0.8), gains)]
    lines.append("")
    lines.append(f"gain variation over range: {droop * 100:.2f} % (paper: ~5 %)")
    save_report("fig9_gain_droop", "\n".join(lines))
    assert droop < 0.10


def test_input_sweep_benchmark(tech, benchmark):
    design = build_power_buffer(tech, feedback="unity", load="none")
    levels = np.linspace(-1.0, 1.0, 9)

    def run():
        return source_value_sweep(design.circuit, "vsrc_p", levels, anchor=0.0)

    ops = benchmark(run)
    assert len(ops) == 9
