"""Ablation — the Sec. 2 "no cascodes at 2.6 V" argument.

Compares the simple and cascode NMOS mirrors on compliance voltage (both
definitions) and output resistance, quantifying the trade the paper had
to make and the long-channel substitute it used instead.
"""

import numpy as np
import pytest

from repro.circuits.library import (
    build_cascode_mirror_cell,
    build_simple_mirror_cell,
    mirror_compliance_voltage,
    mirror_saturation_compliance,
)
from repro.spice.dc import dc_sweep


def output_resistance(cell, v_lo=2.0, v_hi=2.4):
    data = dc_sweep(cell.circuit, "vo", np.array([v_lo, v_hi]), ["i(vo)"])
    di = abs(data["i(vo)"][1] - data["i(vo)"][0])
    return (v_hi - v_lo) / max(di, 1e-15)


def test_cascode_ablation(tech, save_report, benchmark):
    simple = build_simple_mirror_cell(tech)
    cascode = build_cascode_mirror_cell(tech)

    def measure_all():
        out = []
        for name, cell in (("simple", simple), ("cascode", cascode)):
            out.append((
                name,
                mirror_saturation_compliance(cell),
                mirror_compliance_voltage(cell),
                output_resistance(cell),
            ))
        return out

    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    lines = ["Sec. 2 ablation: simple vs cascode NMOS mirror (50 uA, L=5 um)",
             "",
             "mirror    sat-compliance [V]   95%-current [V]   R_out [Mohm]"]
    for name, sat, cur, ro in rows:
        lines.append(f"{name:<9s} {sat:10.2f}          {cur:10.2f}       "
                     f"{ro / 1e6:8.1f}")
    lines += [
        "",
        "The cascode buys two orders of magnitude of R_out but its",
        f"saturation compliance ({rows[1][1]:.2f} V) exceeds half the "
        f"+/-1.3 V rail —",
        "the quantitative reason the paper's gain stages use long-channel",
        "devices instead of cascodes.",
    ]
    save_report("ablation_cascode", "\n".join(lines))

    assert rows[1][1] > rows[0][1] + 0.5       # headroom cost
    assert rows[1][3] > 10.0 * rows[0][3]      # what it would have bought
    assert rows[1][1] > 0.5 * tech.vdd_nominal


def test_long_channel_substitute(tech, save_report, benchmark):
    """The paper's alternative: long-L devices recover output resistance
    without the compliance penalty."""
    def measure_all():
        out = []
        for length in (1.2e-6, 5e-6, 20e-6):
            cell = build_simple_mirror_cell(tech, w=12e-6 * length / 1.2e-6,
                                            l=length)
            out.append((length, mirror_saturation_compliance(cell),
                        output_resistance(cell)))
        return out

    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    lines = ["Long-channel substitute: simple mirror R_out vs L (same W/L)",
             "", "L [um]    compliance [V]    R_out [Mohm]"]
    for length, comp, ro in rows:
        lines.append(f"{length * 1e6:5.1f}     {comp:8.2f}        {ro / 1e6:9.2f}")
    save_report("ablation_long_channel", "\n".join(lines))
    # R_out rises ~linearly with L at constant compliance
    assert rows[2][2] > 5.0 * rows[0][2]
    assert abs(rows[2][1] - rows[0][1]) < 0.25


def test_compliance_benchmark(tech, benchmark):
    cell = build_simple_mirror_cell(tech)
    v = benchmark(lambda: mirror_saturation_compliance(cell, points=21))
    assert 0.05 < v < 0.6
