#!/usr/bin/env python
"""Overhead benchmark for the observability layer (``repro.obs``).

The obs contract is that **disarmed** hooks — ``span()`` /
``trace_point()`` / ``prof_count()`` with no tracer or profiler
active — cost one module-global load and a falsy check, so production
runs pay (near) nothing for the instrumentation.  This bench turns that
contract into a number and gates it:

* ``micro``    — tight-loop cost of each disarmed hook in ns/call
  (loop overhead included, so the figures are conservative upper
  bounds);
* ``campaign`` — the bench_campaign batched workload: disarmed
  best-of CPU time, one armed run (tracer + profiler) to *count* how
  many hooks the workload actually fires, and the analytic disarmed
  overhead fraction ``firings x ns_per_hook / disarmed_cpu_s``;
* ``serve``    — the bench_serve warm regime: a live server answering
  fully-cached campaign requests, warm req/s disarmed vs armed, plus
  the same analytic disarmed fraction.

The analytic fraction is the gated quantity (full mode: <= 2 % on both
workloads).  The armed-vs-disarmed macro ratios are reported for
context but not gated — a 2 % budget sits below run-to-run noise on
shared hosts, while the analytic bound is stable: hook firings are
deterministic for a fixed workload and the per-hook cost is measured
over millions of calls.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py [--smoke] [--out PATH]

Full mode merges an ``obs`` entry (with ``overhead``) into
``BENCH_perf.json`` and enforces the 2 % budget via exit code;
``--smoke`` shrinks the workloads for CI and asserts nothing.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import tempfile
import time

from provenance import provenance_block

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"

#: Disarmed hooks must cost no more than this fraction of either
#: workload's runtime (the ISSUE acceptance budget).
OVERHEAD_BUDGET = 0.02


# ----------------------------------------------------------------------
# Micro: ns per disarmed hook
# ----------------------------------------------------------------------
def _ns_per_call(fn, n: int) -> float:
    t0 = time.perf_counter()
    for _ in range(n):
        fn()
    return 1e9 * (time.perf_counter() - t0) / n


def micro_bench(smoke: bool) -> dict:
    from repro.obs.events import active_event_log, event
    from repro.obs.profile import active_profiler, prof_count
    from repro.obs.trace import active_tracer, span, trace_point

    assert (active_tracer() is None and active_profiler() is None
            and active_event_log() is None), \
        "micro bench needs the hooks disarmed (unset REPRO_OBS)"
    n = 200_000 if smoke else 2_000_000

    def span_hook():
        with span("bench.noop"):
            pass

    out = {
        "n_calls": n,
        "span_ns": _ns_per_call(span_hook, n),
        "trace_point_ns": _ns_per_call(lambda: trace_point("bench.noop"), n),
        "prof_count_ns": _ns_per_call(lambda: prof_count("bench.noop"), n),
        "event_ns": _ns_per_call(lambda: event("bench.noop"), n),
    }
    out["worst_ns"] = max(out["span_ns"], out["trace_point_ns"],
                          out["prof_count_ns"], out["event_ns"])
    return out


def _firings(tracer, profiler, log) -> int:
    """Hook firings observed by an armed run: spans recorded plus
    profile counter bumps plus structured events.  Counters accumulated
    with ``n > 1`` count their full ``n`` — an overestimate, which only
    makes the analytic overhead bound more conservative."""
    snap = profiler.snapshot()
    return (tracer.recorded
            + sum(snap["counts"].values())
            + len(snap["times_s"])
            + log.recorded)


# ----------------------------------------------------------------------
# Campaign leg
# ----------------------------------------------------------------------
def _campaign_spec(smoke: bool):
    from repro.campaign import CampaignSpec

    if smoke:
        return CampaignSpec(
            builder="micamp", corners=("tt", "ss"), temps_c=(25.0,),
            seeds=(0, 1), gain_codes=(5,),
            measurements=("offset_v", "iq_ma", "gain_1khz_db"),
        )
    return CampaignSpec(
        builder="micamp", corners=("tt", "ff", "ss", "fs", "sf"),
        temps_c=(-20.0, 25.0, 85.0), seeds=(0, 1, 2, 3), gain_codes=(5,),
        measurements=("offset_v", "iq_ma", "gain_1khz_db",
                      "psrr_1khz_db", "cmrr_1khz_db"),
    )


def campaign_bench(smoke: bool, worst_ns: float) -> dict:
    from repro.campaign import BatchedCampaignExecutor, run_campaign
    from repro.obs.events import EventLog
    from repro.obs.profile import Profiler
    from repro.obs.trace import Tracer

    spec = _campaign_spec(smoke)
    executor = BatchedCampaignExecutor()
    repeats = 1 if smoke else 3

    best_cpu = float("inf")
    disarmed_json = None
    for _ in range(repeats):
        c0 = time.process_time()
        disarmed_json = run_campaign(spec, executor=executor).to_json()
        best_cpu = min(best_cpu, time.process_time() - c0)

    tracer, profiler, log = Tracer(), Profiler(), EventLog()
    with tracer.activate(), profiler.activate(), log.activate():
        c0 = time.process_time()
        armed_json = run_campaign(spec, executor=executor).to_json()
        armed_cpu = time.process_time() - c0
    assert armed_json == disarmed_json, \
        "tracing/profiling/events armed changed the campaign export bytes"

    firings = _firings(tracer, profiler, log)
    frac = firings * worst_ns * 1e-9 / best_cpu
    return {
        "n_units": spec.n_units,
        "disarmed_cpu_s": best_cpu,
        "armed_cpu_s": armed_cpu,
        "armed_slowdown": armed_cpu / best_cpu,
        "hook_firings": firings,
        "disarmed_overhead_frac": frac,
        "byte_identical_armed": True,
    }


# ----------------------------------------------------------------------
# Serve leg
# ----------------------------------------------------------------------
def _serve_payloads(smoke: bool) -> list[dict]:
    if smoke:
        return [{"builder": "bias", "corners": ["tt"],
                 "temps_c": [25.0, 85.0],
                 "measurements": ["bias_current_ua"],
                 "seeds": [seed]} for seed in range(3)]
    return [{"builder": "micamp", "corners": ["tt"],
             "temps_c": [25.0, 85.0],
             "seeds": [2 * i, 2 * i + 1],
             "measurements": ["offset_v", "iq_ma", "gain_1khz_db"]}
            for i in range(6)]


def serve_bench(smoke: bool, worst_ns: float) -> dict:
    from repro.obs.events import EventLog
    from repro.obs.profile import Profiler
    from repro.obs.trace import Tracer
    from repro.serve import CharacterizationService, ServeClient, serve_background
    from repro.store import ResultStore

    payloads = _serve_payloads(smoke)
    passes = 2 if smoke else 5

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench_obs_"))
    service = server = None
    try:
        store = ResultStore(workdir / "store")
        service = CharacterizationService(store=store, workers=2).start()
        server, _thread = serve_background(service)
        host, port = server.server_address[:2]
        client = ServeClient(f"http://{host}:{port}")
        client.wait_until_up()

        def warm_pass() -> None:
            for payload in payloads:
                view = client.run("campaign", payload, timeout=600)
                assert view["state"] == "done", view
                client.result_bytes(view["id"])

        warm_pass()                      # cold fill (untimed)
        warm_baseline = client.result_bytes(client.jobs()[0]["id"])

        t0 = time.perf_counter()
        for _ in range(passes):
            warm_pass()
        t_disarmed = time.perf_counter() - t0

        tracer, profiler, log = Tracer(), Profiler(), EventLog()
        with tracer.activate(), profiler.activate(), log.activate():
            t0 = time.perf_counter()
            for _ in range(passes):
                warm_pass()
            t_armed = time.perf_counter() - t0
        assert client.result_bytes(client.jobs()[0]["id"]) == warm_baseline, \
            "tracing/profiling/events armed changed the served bytes"

        n_requests = passes * len(payloads)
        firings = _firings(tracer, profiler, log)
        frac = firings * worst_ns * 1e-9 / t_disarmed
        return {
            "n_requests": n_requests,
            "warm_rps_disarmed": n_requests / t_disarmed,
            "warm_rps_armed": n_requests / t_armed,
            "armed_slowdown": t_armed / t_disarmed,
            "hook_firings": firings,
            "disarmed_overhead_frac": frac,
            "byte_identical_armed": True,
        }
    finally:
        if server is not None:
            server.shutdown()
        if service is not None:
            service.stop()
        shutil.rmtree(workdir, ignore_errors=True)


# ----------------------------------------------------------------------
def run_bench(smoke: bool) -> dict:
    micro = micro_bench(smoke)
    print(f"[bench_obs] disarmed hook cost over {micro['n_calls']} calls: "
          f"span {micro['span_ns']:.0f} ns, "
          f"trace_point {micro['trace_point_ns']:.0f} ns, "
          f"prof_count {micro['prof_count_ns']:.0f} ns, "
          f"event {micro['event_ns']:.0f} ns")

    campaign = campaign_bench(smoke, micro["worst_ns"])
    print(f"  campaign (batched, {campaign['n_units']} units): "
          f"{campaign['hook_firings']} hook firings over "
          f"{campaign['disarmed_cpu_s']:.2f}s cpu -> disarmed overhead "
          f"{100 * campaign['disarmed_overhead_frac']:.4f}% "
          f"(armed run {campaign['armed_slowdown']:.2f}x, bytes identical)")

    serve = serve_bench(smoke, micro["worst_ns"])
    print(f"  serve (warm, {serve['n_requests']} requests): "
          f"{serve['warm_rps_disarmed']:.1f} req/s disarmed, "
          f"{serve['warm_rps_armed']:.1f} req/s armed -> disarmed overhead "
          f"{100 * serve['disarmed_overhead_frac']:.4f}% (bytes identical)")

    return {
        "budget_frac": OVERHEAD_BUDGET,
        "micro": micro,
        "campaign": campaign,
        "serve": serve,
    }


def _merge_out(out: pathlib.Path, overhead: dict, smoke: bool) -> None:
    """Merge into the trajectory file without clobbering other benches."""
    payload: dict = {}
    if out.exists():
        try:
            payload = json.loads(out.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload["obs"] = {
        "smoke": smoke,
        **provenance_block(),
        "overhead": overhead,
    }
    payload.setdefault("obs_trajectory", []).append({
        "worst_hook_ns": overhead["micro"]["worst_ns"],
        "campaign_disarmed_overhead_frac":
            overhead["campaign"]["disarmed_overhead_frac"],
        "serve_disarmed_overhead_frac":
            overhead["serve"]["disarmed_overhead_frac"],
        "smoke": smoke,
    })
    out.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workloads for CI; no overhead budget")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help=f"output JSON (default: {DEFAULT_OUT} in full "
                             "mode, bench_obs_smoke.json in smoke mode)")
    args = parser.parse_args(argv)

    results = run_bench(args.smoke)

    out = args.out or (pathlib.Path("bench_obs_smoke.json") if args.smoke
                       else DEFAULT_OUT)
    _merge_out(out, results, args.smoke)
    print(f"[bench_obs] wrote {out}")

    if args.smoke:
        return 0
    failed = False
    for leg in ("campaign", "serve"):
        frac = results[leg]["disarmed_overhead_frac"]
        if frac > OVERHEAD_BUDGET:
            print(f"FAIL: disarmed obs overhead on the {leg} workload above "
                  f"the {OVERHEAD_BUDGET:.0%} budget ({100 * frac:.3f}%)")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
