#!/usr/bin/env python
"""Throughput benchmark for the campaign engine (units/s).

Runs a Table-1-style qualification campaign of the microphone amplifier
— 5 corners x 3 temperatures x 4 mismatch seeds = 60 work units, five
metrics each (offset, IQ, gain, PSRR, CMRR) — four ways and records
units/second for each:

* ``naive``     — the pre-campaign idiom this PR retires: a hand-rolled
  loop that rebuilds the circuit and re-solves the DC operating point
  *per measurement family* (offset/IQ, gain, PSRR, CMRR each pay their
  own build + Newton solve + linearisation), exactly like the old
  ``examples/process_variation_study.py`` / ``characterize`` loops.
* ``serial``    — :class:`repro.campaign.executors.SerialExecutor`: one
  operating point and one shared ``SmallSignalContext`` factorization
  per unit, circuits cached across the temperature axis.
* ``parallel``  — :class:`ProcessPoolCampaignExecutor` with chunked
  dispatch.  Its speedup over ``serial`` is bounded by the host CPU
  count (recorded in the JSON): on a multi-core host the pool must
  clear 3x; on a single-CPU container there is physically nothing to
  parallelise over, so the floor that applies instead is the engine's
  own >= 3x over the naive reference — the same work-sharing that makes
  each pool worker fast.

The same-run cross-check asserts the engine reproduces the naive loop's
numbers to ``rtol=1e-12`` — and the batched and pool executors the
serial executor's *bytes* — before any timing is trusted.

Timing basis: single-process legs (naive/serial/batched) are timed in
both wall-clock and process-CPU seconds, and the speedup floors gate on
the CPU ratios — on shared hosts with hypervisor steal, short wall
measurements are off by integer factors run-to-run while CPU time only
accrues when the code actually executes.  The pool leg keeps wall-clock
(its work runs in child processes, invisible to the parent's CPU
clock).

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py [--smoke] [--out PATH]

Full mode merges a ``campaign`` entry (and appends to
``campaign_trajectory``) into ``BENCH_perf.json`` without disturbing the
other benchmarks' keys, and enforces the speedup floors via exit code;
``--smoke`` shrinks the campaign for CI and asserts nothing.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

import numpy as np

from provenance import provenance_block

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"

MEASUREMENTS = ("offset_v", "iq_ma", "gain_1khz_db", "psrr_1khz_db", "cmrr_1khz_db")


def _make_spec(smoke: bool):
    from repro.campaign import CampaignSpec

    if smoke:
        return CampaignSpec(
            builder="micamp", corners=("tt", "ss"), temps_c=(25.0,),
            seeds=(0, 1), gain_codes=(5,),
            measurements=("offset_v", "iq_ma", "gain_1khz_db"),
        )
    return CampaignSpec(
        builder="micamp", corners=("tt", "ff", "ss", "fs", "sf"),
        temps_c=(-20.0, 25.0, 85.0), seeds=(0, 1, 2, 3), gain_codes=(5,),
        measurements=MEASUREMENTS,
    )


def _naive_records(spec) -> list[dict]:
    """The retired idiom: one rebuild + DC solve per measurement family."""
    from repro.analysis.psrr import measure_cmrr, measure_psrr
    from repro.circuits.micamp import build_mic_amp
    from repro.process import MismatchSampler, apply_corner
    from repro.spice.dc import dc_operating_point

    def build(tech, unit):
        sampler = (MismatchSampler.nominal(tech) if unit.seed is None
                   else MismatchSampler(tech, np.random.default_rng(unit.seed)))
        code = 5 if unit.gain_code is None else unit.gain_code
        return build_mic_amp(tech, gain_code=code, mismatch=sampler)

    records = []
    for unit in spec.expand():
        tech = apply_corner(spec.tech, unit.corner)
        rec: dict[str, float] = {}
        # offset + IQ study
        d = build(tech, unit)
        op = dc_operating_point(d.circuit, temp_c=unit.temp_c)
        rec["offset_v"] = op.vdiff(d.outp, d.outn)
        rec["iq_ma"] = abs(op.i("vdd_src")) * 1e3
        # gain study
        d = build(tech, unit)
        op = dc_operating_point(d.circuit, temp_c=unit.temp_c)
        h = abs(op.small_signal().transfer(np.array([1e3]), d.outp, d.outn)[0])
        rec["gain_1khz_db"] = 20.0 * np.log10(h)
        code = 5 if unit.gain_code is None else unit.gain_code
        rec["gain_error_db"] = rec["gain_1khz_db"] - d.gain.gain_db(code)
        if "psrr_1khz_db" in spec.measurements:
            d = build(tech, unit)
            rec["psrr_1khz_db"] = measure_psrr(
                d.circuit, "vdd_src", ("vin_p", "vin_n"), d.outp, d.outn,
                temp_c=unit.temp_c,
            ).ratio_db
        if "cmrr_1khz_db" in spec.measurements:
            d = build(tech, unit)
            rec["cmrr_1khz_db"] = measure_cmrr(
                d.circuit, ("vin_p", "vin_n"), d.outp, d.outn, temp_c=unit.temp_c,
            ).ratio_db
        records.append(rec)
    return records


def _best_of(fn, repeats: int):
    """Best wall-clock and best process-CPU time over ``repeats`` runs.

    Wall time is what a user experiences; CPU time is what the code
    costs.  On shared hosts with hypervisor steal the wall numbers can
    be off by integer factors run-to-run, so the speedup *floors* gate
    on CPU time for single-process legs (the pool spends its time in
    child processes, invisible to the parent's clock, and keeps wall).
    """
    best_wall, best_cpu, result = float("inf"), float("inf"), None
    for _ in range(repeats):
        w0 = time.perf_counter()
        c0 = time.process_time()
        result = fn()
        best_cpu = min(best_cpu, time.process_time() - c0)
        best_wall = min(best_wall, time.perf_counter() - w0)
    return best_wall, best_cpu, result


def run_bench(smoke: bool) -> dict:
    from repro.campaign import (
        BatchedCampaignExecutor,
        ProcessPoolCampaignExecutor,
        SerialExecutor,
        run_campaign,
    )

    spec = _make_spec(smoke)
    n = spec.n_units
    repeats = 1 if smoke else 3
    cpus = os.cpu_count() or 1
    single_cpu = cpus == 1

    print(f"[bench_campaign] {n} units "
          f"({len(spec.corners)} corners x {len(spec.temps_c)} temps x "
          f"{len(spec.seeds)} seeds), {len(spec.measurements)} measurements, "
          f"{cpus} CPU(s)")

    t_naive, cpu_naive, naive = _best_of(lambda: _naive_records(spec), repeats)
    print(f"  naive per-measurement loop: {t_naive:.2f}s wall / {cpu_naive:.2f}s cpu "
          f"({n / cpu_naive:.1f} units/cpu-s)")

    t_serial, cpu_serial, serial_result = _best_of(
        lambda: run_campaign(spec, executor=SerialExecutor()), repeats)
    print(f"  serial executor:            {t_serial:.2f}s wall / {cpu_serial:.2f}s cpu "
          f"({n / cpu_serial:.1f} units/cpu-s)")

    batched = BatchedCampaignExecutor()
    t_batched, cpu_batched, batched_result = _best_of(
        lambda: run_campaign(spec, executor=batched), repeats)
    print(f"  batched executor:           {t_batched:.2f}s wall / {cpu_batched:.2f}s cpu "
          f"({n / cpu_batched:.1f} units/cpu-s)")

    workers = min(4, cpus)
    pool = ProcessPoolCampaignExecutor(max_workers=workers)
    try:
        t_pool, _, pool_result = _best_of(
            lambda: run_campaign(spec, executor=pool), repeats)
    finally:
        pool.close()
    print(f"  pool executor ({workers} workers): {t_pool:.2f}s wall "
          f"({n / t_pool:.1f} units/s)")

    # Same-run equivalence: the engine must reproduce the naive loop's
    # numbers — and the batched and pool executors the serial executor's
    # *bytes* — before any timing is trusted.
    serial_json = serial_result.to_json()
    assert batched_result.to_json() == serial_json, \
        "batched executor export differs from serial"
    assert pool_result.to_json() == serial_json, \
        "pool executor export differs from serial"
    for metric in serial_result.metrics:
        ref = np.array([r[metric] for r in naive])
        np.testing.assert_allclose(serial_result.metric(metric), ref, rtol=1e-12)
        np.testing.assert_allclose(pool_result.metric(metric),
                                   serial_result.metric(metric), rtol=0, atol=0)

    return {
        "n_units": n,
        "n_measurements": len(spec.measurements),
        "cpu_count": cpus,
        # On a 1-CPU host the pool has nothing to parallelise over;
        # this flag marks parallel_speedup_vs_serial as physically
        # meaningless so downstream readers stop comparing it to 1.0.
        "single_cpu": single_cpu,
        "pool_workers": workers,
        # The single-process speedups are CPU-time ratios: hypervisor
        # steal on shared hosts distorts short wall measurements by
        # integer factors, while process CPU time only accrues when
        # the code actually runs.  The pool leg necessarily stays
        # wall-clock (its work happens in child processes).
        "timing_basis": "process_cpu_time for single-process speedups; "
                        "wall for the pool",
        "naive_s": t_naive,
        "serial_s": t_serial,
        "batched_s": t_batched,
        "parallel_s": t_pool,
        "naive_cpu_s": cpu_naive,
        "serial_cpu_s": cpu_serial,
        "batched_cpu_s": cpu_batched,
        "naive_units_per_s": n / cpu_naive,
        "serial_units_per_s": n / cpu_serial,
        "batched_units_per_s": n / cpu_batched,
        "parallel_units_per_s": n / t_pool,
        "engine_speedup_vs_naive": cpu_naive / cpu_serial,
        "batched_speedup_vs_naive": cpu_naive / cpu_batched,
        "batched_speedup_vs_serial": cpu_serial / cpu_batched,
        "parallel_speedup_vs_serial": t_serial / t_pool,
    }


def _merge_out(out: pathlib.Path, campaign: dict, smoke: bool) -> None:
    """Merge into the trajectory file without clobbering other benches."""
    payload: dict = {}
    if out.exists():
        try:
            payload = json.loads(out.read_text())
        except json.JSONDecodeError:
            payload = {}
    entry = {
        "smoke": smoke,
        **provenance_block(),
        **campaign,
    }
    payload["campaign"] = entry
    payload.setdefault("campaign_trajectory", []).append({
        "serial_units_per_s": campaign["serial_units_per_s"],
        "batched_units_per_s": campaign["batched_units_per_s"],
        "parallel_units_per_s": campaign["parallel_units_per_s"],
        "batched_speedup_vs_naive": campaign["batched_speedup_vs_naive"],
        "cpu_count": campaign["cpu_count"],
        "single_cpu": campaign["single_cpu"],
        "smoke": smoke,
    })
    out.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny campaign for CI; no speedup floors")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help=f"output JSON (default: {DEFAULT_OUT} in full mode, "
                             "bench_campaign_smoke.json in smoke mode)")
    args = parser.parse_args(argv)

    results = run_bench(args.smoke)

    out = args.out or (pathlib.Path("bench_campaign_smoke.json") if args.smoke
                       else DEFAULT_OUT)
    _merge_out(out, results, args.smoke)
    print(f"[bench_campaign] wrote {out}")

    if args.smoke:
        return 0
    failed = False
    if results["engine_speedup_vs_naive"] < 3.0:
        print("FAIL: engine throughput below the 3x floor over the naive loop "
              f"({results['engine_speedup_vs_naive']:.2f}x)")
        failed = True
    if results["batched_speedup_vs_naive"] < 10.0:
        print("FAIL: batched executor below the 10x floor over the naive loop "
              f"({results['batched_speedup_vs_naive']:.2f}x)")
        failed = True
    if results["single_cpu"]:
        print("note: single-CPU host — parallel_speedup_vs_serial is "
              "physically meaningless here (flagged in the JSON) and no "
              "pool floor is enforced")
    else:
        if results["parallel_speedup_vs_serial"] < 1.0:
            print("FAIL: pool executor slower than serial on a "
                  f"{results['cpu_count']}-CPU host "
                  f"({results['parallel_speedup_vs_serial']:.2f}x)")
            failed = True
        if results["cpu_count"] >= 4 and results["parallel_speedup_vs_serial"] < 3.0:
            print("FAIL: pool executor below the 3x floor over serial on a "
                  f"{results['cpu_count']}-CPU host "
                  f"({results['parallel_speedup_vs_serial']:.2f}x)")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
