#!/usr/bin/env python
"""Throughput benchmark for the campaign engine (units/s).

Runs a Table-1-style qualification campaign of the microphone amplifier
— 5 corners x 3 temperatures x 4 mismatch seeds = 60 work units, five
metrics each (offset, IQ, gain, PSRR, CMRR) — three ways and records
units/second for each:

* ``naive``     — the pre-campaign idiom this PR retires: a hand-rolled
  loop that rebuilds the circuit and re-solves the DC operating point
  *per measurement family* (offset/IQ, gain, PSRR, CMRR each pay their
  own build + Newton solve + linearisation), exactly like the old
  ``examples/process_variation_study.py`` / ``characterize`` loops.
* ``serial``    — :class:`repro.campaign.executors.SerialExecutor`: one
  operating point and one shared ``SmallSignalContext`` factorization
  per unit, circuits cached across the temperature axis.
* ``parallel``  — :class:`ProcessPoolCampaignExecutor` with chunked
  dispatch.  Its speedup over ``serial`` is bounded by the host CPU
  count (recorded in the JSON): on a multi-core host the pool must
  clear 3x; on a single-CPU container there is physically nothing to
  parallelise over, so the floor that applies instead is the engine's
  own >= 3x over the naive reference — the same work-sharing that makes
  each pool worker fast.

The same-run cross-check asserts the engine reproduces the naive loop's
numbers to ``rtol=1e-12`` before any timing is trusted.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py [--smoke] [--out PATH]

Full mode merges a ``campaign`` entry (and appends to
``campaign_trajectory``) into ``BENCH_perf.json`` without disturbing the
other benchmarks' keys, and enforces the speedup floors via exit code;
``--smoke`` shrinks the campaign for CI and asserts nothing.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import time

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"

MEASUREMENTS = ("offset_v", "iq_ma", "gain_1khz_db", "psrr_1khz_db", "cmrr_1khz_db")


def _make_spec(smoke: bool):
    from repro.campaign import CampaignSpec

    if smoke:
        return CampaignSpec(
            builder="micamp", corners=("tt", "ss"), temps_c=(25.0,),
            seeds=(0, 1), gain_codes=(5,),
            measurements=("offset_v", "iq_ma", "gain_1khz_db"),
        )
    return CampaignSpec(
        builder="micamp", corners=("tt", "ff", "ss", "fs", "sf"),
        temps_c=(-20.0, 25.0, 85.0), seeds=(0, 1, 2, 3), gain_codes=(5,),
        measurements=MEASUREMENTS,
    )


def _naive_records(spec) -> list[dict]:
    """The retired idiom: one rebuild + DC solve per measurement family."""
    from repro.analysis.psrr import measure_cmrr, measure_psrr
    from repro.circuits.micamp import build_mic_amp
    from repro.process import MismatchSampler, apply_corner
    from repro.spice.dc import dc_operating_point

    def build(tech, unit):
        sampler = (MismatchSampler.nominal(tech) if unit.seed is None
                   else MismatchSampler(tech, np.random.default_rng(unit.seed)))
        code = 5 if unit.gain_code is None else unit.gain_code
        return build_mic_amp(tech, gain_code=code, mismatch=sampler)

    records = []
    for unit in spec.expand():
        tech = apply_corner(spec.tech, unit.corner)
        rec: dict[str, float] = {}
        # offset + IQ study
        d = build(tech, unit)
        op = dc_operating_point(d.circuit, temp_c=unit.temp_c)
        rec["offset_v"] = op.vdiff(d.outp, d.outn)
        rec["iq_ma"] = abs(op.i("vdd_src")) * 1e3
        # gain study
        d = build(tech, unit)
        op = dc_operating_point(d.circuit, temp_c=unit.temp_c)
        h = abs(op.small_signal().transfer(np.array([1e3]), d.outp, d.outn)[0])
        rec["gain_1khz_db"] = 20.0 * np.log10(h)
        code = 5 if unit.gain_code is None else unit.gain_code
        rec["gain_error_db"] = rec["gain_1khz_db"] - d.gain.gain_db(code)
        if "psrr_1khz_db" in spec.measurements:
            d = build(tech, unit)
            rec["psrr_1khz_db"] = measure_psrr(
                d.circuit, "vdd_src", ("vin_p", "vin_n"), d.outp, d.outn,
                temp_c=unit.temp_c,
            ).ratio_db
        if "cmrr_1khz_db" in spec.measurements:
            d = build(tech, unit)
            rec["cmrr_1khz_db"] = measure_cmrr(
                d.circuit, ("vin_p", "vin_n"), d.outp, d.outn, temp_c=unit.temp_c,
            ).ratio_db
        records.append(rec)
    return records


def _best_of(fn, repeats: int):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_bench(smoke: bool) -> dict:
    from repro.campaign import (
        ProcessPoolCampaignExecutor,
        SerialExecutor,
        run_campaign,
    )

    spec = _make_spec(smoke)
    n = spec.n_units
    repeats = 1 if smoke else 2
    cpus = os.cpu_count() or 1

    print(f"[bench_campaign] {n} units "
          f"({len(spec.corners)} corners x {len(spec.temps_c)} temps x "
          f"{len(spec.seeds)} seeds), {len(spec.measurements)} measurements, "
          f"{cpus} CPU(s)")

    t_naive, naive = _best_of(lambda: _naive_records(spec), repeats)
    print(f"  naive per-measurement loop: {t_naive:.2f}s ({n / t_naive:.1f} units/s)")

    t_serial, serial_result = _best_of(lambda: run_campaign(spec), repeats)
    print(f"  serial executor:            {t_serial:.2f}s ({n / t_serial:.1f} units/s)")

    workers = min(4, cpus)
    pool = ProcessPoolCampaignExecutor(max_workers=workers)
    t_pool, pool_result = _best_of(lambda: run_campaign(spec, executor=pool), repeats)
    print(f"  pool executor ({workers} workers): {t_pool:.2f}s "
          f"({n / t_pool:.1f} units/s)")

    # Same-run equivalence: the engine must reproduce the naive loop's
    # numbers (and the pool the serial's, exactly) before timings count.
    for metric in serial_result.metrics:
        ref = np.array([r[metric] for r in naive])
        np.testing.assert_allclose(serial_result.metric(metric), ref, rtol=1e-12)
        np.testing.assert_allclose(pool_result.metric(metric),
                                   serial_result.metric(metric), rtol=0, atol=0)

    return {
        "n_units": n,
        "n_measurements": len(spec.measurements),
        "cpu_count": cpus,
        "pool_workers": workers,
        "naive_s": t_naive,
        "serial_s": t_serial,
        "parallel_s": t_pool,
        "naive_units_per_s": n / t_naive,
        "serial_units_per_s": n / t_serial,
        "parallel_units_per_s": n / t_pool,
        "engine_speedup_vs_naive": t_naive / t_serial,
        "parallel_speedup_vs_serial": t_serial / t_pool,
    }


def _merge_out(out: pathlib.Path, campaign: dict, smoke: bool) -> None:
    """Merge into the trajectory file without clobbering other benches."""
    payload: dict = {}
    if out.exists():
        try:
            payload = json.loads(out.read_text())
        except json.JSONDecodeError:
            payload = {}
    entry = {
        "smoke": smoke,
        "platform": platform.platform(),
        **campaign,
    }
    payload["campaign"] = entry
    payload.setdefault("campaign_trajectory", []).append({
        "serial_units_per_s": campaign["serial_units_per_s"],
        "parallel_units_per_s": campaign["parallel_units_per_s"],
        "cpu_count": campaign["cpu_count"],
        "smoke": smoke,
    })
    out.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny campaign for CI; no speedup floors")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help=f"output JSON (default: {DEFAULT_OUT} in full mode, "
                             "bench_campaign_smoke.json in smoke mode)")
    args = parser.parse_args(argv)

    results = run_bench(args.smoke)

    out = args.out or (pathlib.Path("bench_campaign_smoke.json") if args.smoke
                       else DEFAULT_OUT)
    _merge_out(out, results, args.smoke)
    print(f"[bench_campaign] wrote {out}")

    if args.smoke:
        return 0
    failed = False
    if results["engine_speedup_vs_naive"] < 3.0:
        print("FAIL: engine throughput below the 3x floor over the naive loop "
              f"({results['engine_speedup_vs_naive']:.2f}x)")
        failed = True
    if results["cpu_count"] >= 4 and results["parallel_speedup_vs_serial"] < 3.0:
        print("FAIL: pool executor below the 3x floor over serial on a "
              f"{results['cpu_count']}-CPU host "
              f"({results['parallel_speedup_vs_serial']:.2f}x)")
        failed = True
    elif results["cpu_count"] < 4:
        print(f"note: {results['cpu_count']} CPU(s) — the 3x parallel-over-serial "
              "floor needs >= 4 cores and is not enforced on this host")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
