"""Table 1 — characteristics of the microphone amplifier.

Regenerates every row of the paper's Table 1 from the transistor-level
design and checks it against the published limits.  The timed kernel is
the adjoint noise analysis (the measurement the whole table leans on).
"""

import numpy as np
import pytest

from repro.pga.characterize import CharacterizationOptions, characterize_mic_amp
from repro.pga.specs import MIC_AMP_SPEC
from repro.spice.analysis import log_freqs
from repro.spice.noise import noise_analysis

PAPER_TABLE1 = {
    "supply_min_v": ("V_sup", ">= 2.6 V operation"),
    "snr_40db_db": ("S/N (at 40 dB)", ">= 87 dB"),
    "vnin_300hz_nv": ("V_Nin(300 Hz)", "<= 7 nV/rtHz"),
    "vnin_1khz_nv": ("V_Nin(1 kHz)", "<= 6 nV/rtHz"),
    "vnin_avg_nv": ("V_Nin(0.3-3.4 kHz)", "<= 5.1 nV/rtHz"),
    "hd_0v2_db": ("HD(0.2 Vp)", "<= -52 dB"),
    "gain_error_db": ("dA_cl", "<= 0.05 dB"),
    "psrr_1khz_db": ("PSRR(1 kHz)", ">= 75 dB"),
    "iq_ma": ("I_Q", "<= 2.6 mA"),
    "area_mm2": ("Area", "1.1 mm^2"),
}


@pytest.fixture(scope="module")
def measured(tech):
    return characterize_mic_amp(
        tech, CharacterizationOptions(quick=False, psrr_trials=3)
    )


def test_table1_reproduction(measured, save_report, benchmark):
    report = benchmark.pedantic(
        lambda: MIC_AMP_SPEC.check(measured), rounds=1, iterations=1)
    lines = ["Table 1: microphone amplifier — paper vs measured", ""]
    for metric, (label, paper) in PAPER_TABLE1.items():
        lines.append(f"{label:<22s} paper: {paper:<18s} measured: "
                     f"{measured[metric]:.4g}")
    lines.append("")
    lines.append(report.format())
    save_report("table1_micamp", "\n".join(lines))
    assert report.passed, report.format()


def test_table1_noise_benchmark(tech, benchmark, mic_design_and_op):
    design, op = mic_design_and_op
    freqs = log_freqs(10.0, 100e3, 12)

    def run():
        return noise_analysis(op, freqs, design.outp, design.outn)

    result = benchmark(run)
    assert result.average_input_density(300, 3400) * 1e9 < 7.0


@pytest.fixture(scope="module")
def mic_design_and_op(tech):
    from repro.circuits.micamp import build_mic_amp
    from repro.spice.dc import dc_operating_point

    design = build_mic_amp(tech, gain_code=5)
    return design, dc_operating_point(design.circuit)


def test_operating_point_benchmark(tech, benchmark):
    """DC solve time of the full amplifier (the workhorse operation)."""
    from repro.circuits.micamp import build_mic_amp
    from repro.spice.dc import dc_operating_point

    design = build_mic_amp(tech, gain_code=5)

    op = benchmark(lambda: dc_operating_point(design.circuit))
    assert abs(op.i("vdd_src")) < 3e-3
