"""Ablations — the Sec. 2/3 design-choice claims, measured.

* fully differential PSRR is matching-limited (Monte Carlo distribution);
* the DDA's second input pair costs exactly +3 dB input noise;
* switch sizing (Eq. 5): input noise vs Ron;
* the feed-forward lead capacitor: low-gain-code peaking with/without.
"""

import numpy as np
import pytest

from repro.analysis.psrr import measure_psrr
from repro.circuits.micamp import MicAmpSizes, build_mic_amp
from repro.process.mismatch import MismatchSampler
from repro.spice.ac import ac_analysis
from repro.spice.analysis import log_freqs
from repro.spice.dc import dc_operating_point
from repro.spice.noise import noise_analysis


def test_psrr_is_matching_limited(tech, save_report, benchmark):
    """Nominal (perfectly matched) FD PSRR is near-infinite; the paper's
    75 dB is what mismatch leaves over."""
    nominal = build_mic_amp(tech, gain_code=5)
    res_nom = measure_psrr(nominal.circuit, "vdd_src", ("vin_p", "vin_n"),
                           "outp", "outn")

    def run_mc():
        out = []
        for seed in range(8):
            sampler = MismatchSampler(tech, np.random.default_rng(seed))
            mc = build_mic_amp(tech, gain_code=5, mismatch=sampler)
            out.append(measure_psrr(mc.circuit, "vdd_src",
                                    ("vin_p", "vin_n"), "outp", "outn").ratio_db)
        return out

    values = benchmark.pedantic(run_mc, rounds=1, iterations=1)
    lines = ["FD PSRR ablation (1 kHz, 40 dB gain)", "",
             f"perfectly matched:  {res_nom.ratio_db:6.1f} dB",
             f"Monte Carlo (8):    min {min(values):6.1f} dB   "
             f"median {np.median(values):6.1f} dB   max {max(values):6.1f} dB",
             "", "paper Table 1: >= 75 dB — a mismatch-limited figure."]
    save_report("ablation_psrr_matching", "\n".join(lines))
    assert res_nom.ratio_db > 110.0
    assert min(values) > 70.0
    assert np.median(values) < res_nom.ratio_db


def test_dda_second_pair_costs_3db(tech, save_report, benchmark):
    """Sec. 3.1: the DDA's feedback pair doubles the input-device noise
    power.  Measured from the adjoint contribution decomposition."""
    design = build_mic_amp(tech, gain_code=5)
    op = dc_operating_point(design.circuit)
    freqs = np.array([20e3])
    nr = benchmark.pedantic(
        lambda: noise_analysis(op, freqs, "outp", "outn"),
        rounds=1, iterations=1)
    pair_a = sum(float(nr.contributions[(t, "thermal")][0]) for t in ("t1", "t2"))
    pair_b = sum(float(nr.contributions[(t, "thermal")][0]) for t in ("t3", "t4"))
    penalty_db = 10 * np.log10((pair_a + pair_b) / pair_a)
    save_report(
        "ablation_dda_pairs",
        "DDA topology cost (Sec. 3.1):\n"
        f"  signal pair (T1,T2):    {np.sqrt(pair_a) * 1e9:.2f} nV/rtHz at output/100\n"
        f"  feedback pair (T3,T4):  {np.sqrt(pair_b) * 1e9:.2f}\n"
        f"  total vs single pair:   +{penalty_db:.2f} dB (paper: +3 dB)",
    )
    assert penalty_db == pytest.approx(3.0, abs=0.15)


def test_switch_ron_noise_tradeoff(tech, save_report, benchmark):
    """Eq. 5: halving switch Ron buys noise but costs switch area."""
    def sweep_ron():
        out = []
        for ron in (35.0, 70.0, 140.0, 280.0):
            sizes = MicAmpSizes(r_switch_on=ron)
            design = build_mic_amp(tech, gain_code=5, sizes=sizes)
            op = dc_operating_point(design.circuit)
            nr = noise_analysis(op, np.array([20e3]), "outp", "outn")
            sw = design.circuit.element("swa_0")
            out.append((ron, nr.input_nv()[0], sw.w * 1e6))
        return out

    rows = benchmark.pedantic(sweep_ron, rounds=1, iterations=1)
    lines = ["Eq. 5 ablation: tap-switch Ron vs input noise (20 kHz floor)",
             "", "Ron [ohm]   noise [nV/rtHz]   switch W [um]"]
    for ron, nv, w in rows:
        lines.append(f"  {ron:5.0f}       {nv:7.3f}         {w:8.0f}")
    save_report("ablation_switch_ron", "\n".join(lines))
    noise = [r[1] for r in rows]
    widths = [r[2] for r in rows]
    assert noise == sorted(noise)              # monotone in Ron
    assert widths == sorted(widths, reverse=True)


def test_feedforward_cap_ablation(tech, save_report, benchmark):
    """Without the lead capacitor the low-gain codes peak violently
    (the feedback pole of the noise-sized pair-B gate)."""
    def sweep_cff():
        out = []
        for cff in (0.5e-12, 24e-12):
            sizes = MicAmpSizes(c_feedforward=cff)
            design = build_mic_amp(tech, gain_code=0, sizes=sizes)
            op = dc_operating_point(design.circuit)
            freqs = log_freqs(1e3, 50e6, 10)
            h = np.abs(ac_analysis(op, freqs).vdiff("outp", "outn"))
            out.append((cff, 20 * np.log10(h.max() / h[0])))
        return out

    rows = benchmark.pedantic(sweep_cff, rounds=1, iterations=1)
    lines = ["Feed-forward lead capacitor ablation (gain code 0):", ""]
    for cff, peak in rows:
        lines.append(f"  Cff = {cff * 1e12:5.1f} pF   peaking = {peak:6.2f} dB")
    save_report("ablation_feedforward_cap", "\n".join(lines))
    assert rows[0][1] > rows[1][1] + 6.0


def test_psrr_benchmark(tech, benchmark):
    sampler = MismatchSampler(tech, np.random.default_rng(0))
    design = build_mic_amp(tech, gain_code=5, mismatch=sampler)

    res = benchmark(lambda: measure_psrr(design.circuit, "vdd_src",
                                         ("vin_p", "vin_n"), "outp", "outn"))
    assert res.ratio_db > 60.0
