#!/usr/bin/env python
"""Warm-rerun benchmark for the persistent result store (repro.store).

Runs the Table-1-style qualification campaign of ``bench_campaign.py``
— 5 corners x 3 temperatures x 4 mismatch seeds = 60 work units, five
metrics each — twice against one store root:

* ``cold``  — a fresh store: every unit is executed through the serial
  campaign engine and written back (this is a plain campaign run plus
  keying/write-back overhead, which is also what the entry records);
* ``warm``  — a second process-equivalent run (fresh ``ResultStore``
  handle, cold sqlite connection): the partition finds every unit
  cached, the executor runs **zero** units, and the merged
  ``CampaignResult`` must be byte-identical to the cold one.

The byte-identity check is a hard gate: the structured arrays are
compared with ``tobytes()`` and the JSON exports as text before any
timing is reported.  Full mode additionally requires the campaign to
have >= 60 units and the warm rerun to clear the **>= 10x** floor over
cold, and merges a ``store`` entry (and appends to
``store_trajectory``) into ``BENCH_perf.json`` without disturbing the
other benchmarks' keys; ``--smoke`` shrinks the campaign for CI and
asserts only correctness, not speed.

Usage::

    PYTHONPATH=src python benchmarks/bench_store.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import tempfile
import time

from provenance import provenance_block

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"

MEASUREMENTS = ("offset_v", "iq_ma", "gain_1khz_db", "psrr_1khz_db",
                "cmrr_1khz_db")


def _make_spec(smoke: bool):
    from repro.campaign import CampaignSpec

    if smoke:
        return CampaignSpec(
            builder="micamp", corners=("tt", "ss"), temps_c=(25.0,),
            seeds=(0, 1), gain_codes=(5,),
            measurements=("offset_v", "iq_ma", "gain_1khz_db"),
        )
    return CampaignSpec(
        builder="micamp", corners=("tt", "ff", "ss", "fs", "sf"),
        temps_c=(-20.0, 25.0, 85.0), seeds=(0, 1, 2, 3), gain_codes=(5,),
        measurements=MEASUREMENTS,
    )


def run_bench(smoke: bool) -> dict:
    from repro.campaign import run_campaign
    from repro.store import ResultStore

    spec = _make_spec(smoke)
    n = spec.n_units
    print(f"[bench_store] {n} units "
          f"({len(spec.corners)} corners x {len(spec.temps_c)} temps x "
          f"{len(spec.seeds)} seeds), {len(spec.measurements)} measurements")

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench_store_"))
    try:
        root = workdir / "store"

        t0 = time.perf_counter()
        cold = run_campaign(spec, store=ResultStore(root))
        t_cold = time.perf_counter() - t0
        assert cold.store_stats["executed_units"] == n
        print(f"  cold run (execute + write-back): {t_cold:.3f}s "
              f"({n / t_cold:.1f} units/s)")

        # Warm reruns always open a fresh handle: cold sqlite connection,
        # no Python-side caches — the same position a new process is in.
        t_warm, warm = float("inf"), None
        for _ in range(1 if smoke else 3):
            t0 = time.perf_counter()
            result = run_campaign(spec, store=ResultStore(root))
            t_warm = min(t_warm, time.perf_counter() - t0)
            warm = result
        assert warm.store_stats["executed_units"] == 0, \
            "warm rerun executed units — store keys are unstable"
        assert warm.store_stats["reused_units"] == n
        print(f"  warm rerun (all units cached):   {t_warm:.3f}s "
              f"({n / t_warm:.1f} units/s, {t_cold / t_warm:.1f}x)")

        # Byte-identity gate: merged warm result == cold result, exactly.
        assert warm.metrics == cold.metrics, "metric columns diverged"
        assert warm.data.tobytes() == cold.data.tobytes(), \
            "warm CampaignResult is not byte-identical to cold"
        assert warm.to_json() == cold.to_json(), "JSON exports diverged"
        print("  byte-identity: warm merged result == cold result")

        store_bytes = ResultStore(root).stat()["bytes"]
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    return {
        "n_units": n,
        "n_measurements": len(spec.measurements),
        "cold_s": t_cold,
        "warm_s": t_warm,
        "cold_units_per_s": n / t_cold,
        "warm_units_per_s": n / t_warm,
        "warm_speedup_vs_cold": t_cold / t_warm,
        "store_bytes": store_bytes,
        "byte_identical": True,
    }


def _merge_out(out: pathlib.Path, results: dict, smoke: bool) -> None:
    """Merge into the trajectory file without clobbering other benches."""
    payload: dict = {}
    if out.exists():
        try:
            payload = json.loads(out.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload["store"] = {
        "smoke": smoke,
        **provenance_block(),
        **results,
    }
    payload.setdefault("store_trajectory", []).append({
        "cold_units_per_s": results["cold_units_per_s"],
        "warm_units_per_s": results["warm_units_per_s"],
        "warm_speedup_vs_cold": results["warm_speedup_vs_cold"],
        "smoke": smoke,
    })
    out.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny campaign for CI; correctness only, "
                             "no speedup floor")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help=f"output JSON (default: {DEFAULT_OUT} in full "
                             "mode, bench_store_smoke.json in smoke mode)")
    args = parser.parse_args(argv)

    results = run_bench(args.smoke)

    out = args.out or (pathlib.Path("bench_store_smoke.json") if args.smoke
                       else DEFAULT_OUT)
    _merge_out(out, results, args.smoke)
    print(f"[bench_store] wrote {out}")

    if args.smoke:
        return 0
    failed = False
    if results["n_units"] < 60:
        print(f"FAIL: full-mode campaign must have >= 60 units, "
              f"got {results['n_units']}")
        failed = True
    if results["warm_speedup_vs_cold"] < 10.0:
        print("FAIL: warm rerun below the 10x floor over cold "
              f"({results['warm_speedup_vs_cold']:.2f}x)")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
