#!/usr/bin/env python
"""Throughput benchmark for the sizing optimizer (evaluations/s).

Replays the exact candidate stream of a deterministic
``repro.optimize`` run two ways and records evaluations/second:

* ``naive``  — the pre-optimizer idiom for scoring one candidate: build
  the circuit and re-solve the DC operating point *per measurement
  family* (current, gain, noise each pay their own build + Newton
  solve), with the noise and gain sweeps on the kept per-frequency
  looped reference paths (``_noise_analysis_looped`` /
  ``_ac_analysis_looped``) and no memoisation across repeated
  candidates — exactly what a hand-rolled "try a sizing, characterise
  it" loop cost before PR 1/PR 2;
* ``engine`` — the :class:`repro.optimize.evaluate.CandidateEvaluator`:
  one campaign unit per candidate (one build, one DC solve, one shared
  ``SmallSignalContext`` factorization for gain + noise), memoised on
  the quantized design vector so the stream's revisited grid cells cost
  a dict lookup.

The same-run cross-check asserts the engine reproduces the naive loop's
metrics (batched vs looped solves agree to ~1e-9) before any timing is
trusted.  Full mode enforces the >= 3x floor and merges an ``optimize``
entry (evaluations/s, cache hit rate) into ``BENCH_perf.json``;
``--smoke`` shrinks the stream for CI and asserts nothing.

Usage::

    PYTHONPATH=src python benchmarks/bench_optimize.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import time

import numpy as np

from provenance import provenance_block

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"


def record_candidate_stream(smoke: bool) -> list[np.ndarray]:
    """The quantized candidate vectors of a deterministic optimizer run,
    in evaluation-request order (repeats included — they are the cache's
    workload)."""
    from repro.optimize import (
        CandidateEvaluator,
        mic_amp_design_space,
        mic_amp_objective,
        optimize,
    )
    from repro.process import CMOS12

    space = mic_amp_design_space()
    stream: list[np.ndarray] = []

    class RecordingEvaluator(CandidateEvaluator):
        def evaluate(self, x):
            stream.append(self.space.quantize(np.asarray(x, dtype=float)))
            return super().evaluate(x)

    evaluator = RecordingEvaluator(space, mic_amp_objective(), CMOS12)
    optimize(space, evaluator, budget=24 if smoke else 150, seed=2026,
             seed_points=(space.default(),))
    return stream


def naive_evaluate(x: np.ndarray, space) -> dict[str, float]:
    """One candidate, the retired way: rebuild + re-solve per metric
    family, looped reference sweeps, no caching."""
    from repro.analysis.psrr import measure_psrr
    from repro.circuits.micamp import build_mic_amp
    from repro.layout.area import estimate_area_mm2
    from repro.pga.design import mic_amp_parts_from_params
    from repro.process import CMOS12
    from repro.spice.ac import _ac_analysis_looped
    from repro.spice.analysis import log_freqs
    from repro.spice.dc import dc_operating_point
    from repro.spice.noise import _noise_analysis_looped

    params = space.as_dict(x)
    try:
        sizes, gain = mic_amp_parts_from_params(CMOS12, params)
        # current study
        d = build_mic_amp(CMOS12, gain_code=5, sizes=sizes, gain=gain)
        op = dc_operating_point(d.circuit)
        rec = {"iq_ma": abs(op.i("vdd_src")) * 1e3,
               "area_mm2": estimate_area_mm2(d.circuit, CMOS12).total_mm2}
        # gain study
        d = build_mic_amp(CMOS12, gain_code=5, sizes=sizes, gain=gain)
        op = dc_operating_point(d.circuit)
        ac = _ac_analysis_looped(op, np.array([1e3]))
        h = abs(ac.vdiff(d.outp, d.outn)[0])
        rec["gain_1khz_db"] = 20.0 * math.log10(max(h, 1e-30))
        rec["gain_error_db"] = rec["gain_1khz_db"] - d.gain.gain_db(5)
        # PSRR study
        d = build_mic_amp(CMOS12, gain_code=5, sizes=sizes, gain=gain)
        rec["psrr_1khz_db"] = measure_psrr(
            d.circuit, "vdd_src", ("vin_p", "vin_n"), d.outp, d.outn,
        ).ratio_db
        # noise study
        d = build_mic_amp(CMOS12, gain_code=5, sizes=sizes, gain=gain)
        op = dc_operating_point(d.circuit)
        nr = _noise_analysis_looped(op, log_freqs(10.0, 100e3, 12),
                                    d.outp, d.outn)
        rec["vnin_300hz_nv"] = nr.input_nv_at(300.0)
        rec["vnin_1khz_nv"] = nr.input_nv_at(1e3)
        rec["vnin_avg_nv"] = nr.average_input_density(300.0, 3400.0) * 1e9
        return rec
    except Exception:
        return {}


def run_bench(smoke: bool) -> dict:
    from repro.optimize import (
        CandidateEvaluator,
        mic_amp_design_space,
        mic_amp_objective,
    )
    from repro.process import CMOS12

    stream = record_candidate_stream(smoke)
    space = mic_amp_design_space()
    n = len(stream)
    print(f"[bench_optimize] candidate stream: {n} evaluations "
          f"({len({space.key(x) for x in stream})} distinct designs)")

    t0 = time.perf_counter()
    evaluator = CandidateEvaluator(space, mic_amp_objective(), CMOS12)
    engine_metrics = [evaluator.evaluate(x).metrics for x in stream]
    t_engine = time.perf_counter() - t0
    hit_rate = evaluator.cache_hit_rate
    print(f"  engine (cached, shared-context): {t_engine:.2f}s "
          f"({n / t_engine:.1f} evals/s, cache hit rate {hit_rate:.0%})")
    stats = evaluator.stats()
    print(f"  cache levels: memo {stats['hits']}/{stats['evaluations']} hits, "
          f"store {stats['store_hits']} hits / {stats['store_misses']} misses, "
          f"{stats['simulated']} candidates simulated")

    t0 = time.perf_counter()
    naive_metrics = [naive_evaluate(x, space) for x in stream]
    t_naive = time.perf_counter() - t0
    print(f"  naive per-candidate rebuild loop: {t_naive:.2f}s "
          f"({n / t_naive:.1f} evals/s)")

    # Same-run equivalence before any timing is trusted.
    n_checked = 0
    for eng, nai in zip(engine_metrics, naive_metrics):
        if not eng or not nai:
            assert not eng and not nai, "feasibility disagreement"
            continue
        for key, ref in nai.items():
            np.testing.assert_allclose(eng[key], ref, rtol=1e-6,
                                       err_msg=f"metric {key} diverged")
            n_checked += 1
    print(f"  cross-check: {n_checked} metric values match the naive loop")

    return {
        "n_evaluations": n,
        "n_distinct": len({space.key(x) for x in stream}),
        "cache_hit_rate": hit_rate,
        "evaluator_stats": evaluator.stats(),
        "naive_s": t_naive,
        "engine_s": t_engine,
        "naive_evals_per_s": n / t_naive,
        "engine_evals_per_s": n / t_engine,
        "engine_speedup_vs_naive": t_naive / t_engine,
    }


def _merge_out(out: pathlib.Path, results: dict, smoke: bool) -> None:
    """Merge into the trajectory file without clobbering other benches."""
    payload: dict = {}
    if out.exists():
        try:
            payload = json.loads(out.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload["optimize"] = {
        "smoke": smoke,
        **provenance_block(),
        **results,
    }
    payload.setdefault("optimize_trajectory", []).append({
        "engine_evals_per_s": results["engine_evals_per_s"],
        "cache_hit_rate": results["cache_hit_rate"],
        "smoke": smoke,
    })
    out.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny stream for CI; no speedup floor")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help=f"output JSON (default: {DEFAULT_OUT} in full "
                             "mode, bench_optimize_smoke.json in smoke mode)")
    args = parser.parse_args(argv)

    results = run_bench(args.smoke)

    out = args.out or (pathlib.Path("bench_optimize_smoke.json") if args.smoke
                       else DEFAULT_OUT)
    _merge_out(out, results, args.smoke)
    print(f"[bench_optimize] wrote {out}")

    if args.smoke:
        return 0
    if results["engine_speedup_vs_naive"] < 3.0:
        print("FAIL: cached+vectorized evaluator below the 3x floor over the "
              f"naive rebuild loop ({results['engine_speedup_vs_naive']:.2f}x)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
