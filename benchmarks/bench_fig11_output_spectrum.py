"""Fig. 11 — output spectrum of the power buffer.

The paper's conditions: V_sup = 3 V, balance at mid-supply, differential
load 50 ohm (or 100 nF), 4 Vpp output.  Full transient + windowed FFT,
harmonic table in dBc, THD against the < 0.5 % claim, and the even-
harmonic suppression the fully differential structure buys.
"""

import numpy as np
import pytest

from repro.circuits.powerbuffer import build_power_buffer
from repro.spice import Sine, transient_analysis
from repro.spice.waveform import Waveform, make_time_grid


@pytest.fixture(scope="module")
def spectrum_run(tech):
    design = build_power_buffer(tech, feedback="inverting", load="resistive",
                                vdd=1.5, vss=-1.5)
    design.circuit.element("vsrc_p").wave = Sine(amplitude=1.0, freq=1e3)
    design.circuit.element("vsrc_n").wave = Sine(amplitude=-1.0, freq=1e3)
    t_stop, dt = make_time_grid(1e3, 4, 500)
    tr = transient_analysis(design.circuit, t_stop, dt)
    wave = Waveform(tr.t, tr.vdiff("outp", "outn"))
    return design, wave


def test_fig11_harmonic_table(spectrum_run, save_report, benchmark):
    _, wave = spectrum_run
    seg = wave.last_cycles(1e3, 3)
    harmonics = benchmark.pedantic(
        lambda: seg.harmonics(1e3, 9), rounds=1, iterations=1)
    thd = seg.thd(1e3, 9)
    lines = ["Fig. 11: buffer output spectrum at 4 Vpp diff / 50 ohm / 3 V",
             "", f"fundamental: {harmonics[0]:.3f} Vp (target 2.0)",
             "", "harmonic   amplitude [dBc]"]
    for k, h in enumerate(harmonics[1:], start=2):
        dbc = 20 * np.log10(max(h, 1e-12) / harmonics[0])
        lines.append(f"   H{k}        {dbc:7.1f}")
    lines += ["", f"THD = {thd * 100:.3f} %  (paper: < 0.5 %)"]
    save_report("fig11_output_spectrum", "\n".join(lines))

    assert harmonics[0] == pytest.approx(2.0, rel=0.02)
    assert thd < 0.005
    # FD symmetry: even harmonics far below odd ones
    h2, h3 = harmonics[1], harmonics[2]
    assert h2 < 0.1 * h3


def test_fig11_capacitive_load(tech, save_report, benchmark):
    """The 100 nF variant of the Fig. 11 load."""
    design = build_power_buffer(tech, feedback="inverting", load="capacitive",
                                vdd=1.5, vss=-1.5)
    design.circuit.element("vsrc_p").wave = Sine(amplitude=0.5, freq=1e3)
    design.circuit.element("vsrc_n").wave = Sine(amplitude=-0.5, freq=1e3)
    t_stop, dt = make_time_grid(1e3, 3, 400)
    tr = benchmark.pedantic(
        lambda: transient_analysis(design.circuit, t_stop, dt),
        rounds=1, iterations=1)
    wave = Waveform(tr.t, tr.vdiff("outp", "outn"))
    seg = wave.last_cycles(1e3, 2)
    amp = abs(seg.fourier_component(1e3))
    thd = seg.thd(1e3, 7)
    save_report(
        "fig11_capacitive_load",
        f"100 nF load: fundamental {amp:.3f} Vp, THD {thd * 100:.3f} % "
        f"(stable, no oscillation)",
    )
    # 100 nF at 1 kHz is ~1.6 kohm; the buffer drives it with low loss
    assert amp == pytest.approx(1.0, rel=0.1)
    assert thd < 0.01


def test_transient_benchmark(tech, benchmark):
    design = build_power_buffer(tech, feedback="inverting", load="resistive",
                                vdd=1.5, vss=-1.5)
    design.circuit.element("vsrc_p").wave = Sine(amplitude=1.0, freq=1e3)
    design.circuit.element("vsrc_n").wave = Sine(amplitude=-1.0, freq=1e3)
    t_stop, dt = make_time_grid(1e3, 1, 300)

    tr = benchmark(lambda: transient_analysis(design.circuit, t_stop, dt))
    assert len(tr.t) == 301
