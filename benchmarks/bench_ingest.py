#!/usr/bin/env python
"""Ingest front-door benchmark: parse throughput + sparse crossover.

Two measurements:

* ``parse``  — compile (lex, parse, flatten, model-map) the vendored
  exemplar decks and a synthetic ~3k-card RC ladder deck through
  :func:`repro.ingest.compile_deck`, reporting cards/s.  The exemplars
  keep the number honest on realistic hierarchical decks; the ladder
  gives a stable large-N figure.
* ``sparse`` — ingest a ~1k-node nonlinear RC ladder (diodes every few
  rungs) and run the same DC operating point + 40-point AC sweep twice:
  once with :class:`~repro.spice.mna.MnaSystem.sparse_threshold` pushed
  out of reach (dense LAPACK, the historical path) and once with the
  default threshold (CSC assembly + SuperLU).  Node voltages must agree
  to 1e-9 and the AC transfer wherever it is above the dense noise
  floor; full mode requires the sparse path to clear a **>= 3x**
  wall-clock floor at >= 1000 nodes.

Full mode merges an ``ingest`` entry (and appends to
``ingest_trajectory``) into ``BENCH_perf.json`` without disturbing the
other benchmarks' keys; ``--smoke`` shrinks the ladder for CI and
asserts only correctness, not speed.

Usage::

    PYTHONPATH=src python benchmarks/bench_ingest.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from provenance import provenance_block

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"
DECK_DIR = REPO_ROOT / "tests" / "ingest" / "decks"

EXEMPLARS = ("ota_5t.sp", "diff_amp.sp", "clocked_comparator.sp")


def ladder_deck(n_nodes: int) -> str:
    """A SPICE deck for an RC ladder with a diode every 50 rungs."""
    lines = [f"* rc ladder, {n_nodes} nodes",
             ".model dcore d (is=1e-14 n=1.5)",
             "vin n0 0 dc 1.0 ac 1.0"]
    for i in range(n_nodes):
        a, b = f"n{i}", f"n{i + 1}"
        lines.append(f"r{i} {a} {b} 1k")
        lines.append(f"c{i} {b} 0 1p")
        if i % 50 == 0:
            lines.append(f"d{i} {b} 0 dcore")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def bench_parse(smoke: bool) -> dict:
    from repro.ingest import compile_deck

    decks = [(name, (DECK_DIR / name).read_text()) for name in EXEMPLARS]
    synth = ladder_deck(300 if smoke else 1500)
    decks.append(("ladder.sp", synth))
    cards = sum(len([ln for ln in text.splitlines()
                     if ln.strip() and not ln.lstrip().startswith("*")])
                for _, text in decks)

    reps = 3 if smoke else 10
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        for name, text in decks:
            compile_deck(text, name=name)
        best = min(best, time.perf_counter() - t0)
    rate = cards * 1.0 / best
    print(f"[bench_ingest] parse: {len(decks)} decks, {cards} cards, "
          f"best of {reps}: {best * 1e3:.1f} ms ({rate:.0f} cards/s)")
    return {"decks": len(decks), "cards": cards, "best_s": best,
            "cards_per_s": rate}


def _solve(circuit, freqs):
    import numpy as np

    from repro.spice.dc import dc_operating_point

    t0 = time.perf_counter()
    op = dc_operating_point(circuit)
    tf = op.small_signal().transfer(freqs, f"n{_solve.n_nodes}")
    wall = time.perf_counter() - t0
    x = np.array([op.v(f"n{k}") for k in range(_solve.n_nodes + 1)])
    return wall, x, tf


def bench_sparse(smoke: bool) -> dict:
    import numpy as np

    from repro.ingest import compile_deck
    from repro.spice.mna import MnaSystem

    n_nodes = 200 if smoke else 1000
    _solve.n_nodes = n_nodes
    text = ladder_deck(n_nodes)
    freqs = np.logspace(1, 7, 40)

    saved = MnaSystem.sparse_threshold
    try:
        MnaSystem.sparse_threshold = 10 ** 9
        t_dense, x_dense, tf_dense = _solve(
            compile_deck(text, name="ladder").circuit, freqs)
        MnaSystem.sparse_threshold = min(saved, n_nodes)
        t_sparse, x_sparse, tf_sparse = _solve(
            compile_deck(text, name="ladder").circuit, freqs)
    finally:
        MnaSystem.sparse_threshold = saved

    dv = float(np.max(np.abs(x_dense - x_sparse)))
    assert dv < 1e-9, f"sparse DC diverged from dense: max dv {dv:.3g} V"
    # The transfer is compared stimulus-referred: past the ladder's deep
    # attenuation both paths are below double precision's dynamic range
    # and only roundoff noise remains, so the gate is the absolute error
    # against the sweep's peak response, not a pointwise relative one.
    scale = float(np.max(np.abs(tf_dense)))
    rel = float(np.max(np.abs(tf_dense - tf_sparse))) / scale
    assert rel < 1e-9, f"sparse AC diverged from dense: scaled {rel:.3g}"
    speedup = t_dense / t_sparse
    print(f"[bench_ingest] sparse: {n_nodes} nodes, dense {t_dense:.3f}s, "
          f"sparse {t_sparse:.3f}s ({speedup:.1f}x), max dv {dv:.2g} V")
    return {"n_nodes": n_nodes, "dense_s": t_dense, "sparse_s": t_sparse,
            "sparse_speedup": speedup, "max_dv": dv}


def _merge_out(out: pathlib.Path, results: dict, smoke: bool) -> None:
    """Merge into the trajectory file without clobbering other benches."""
    payload: dict = {}
    if out.exists():
        try:
            payload = json.loads(out.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload["ingest"] = {
        "smoke": smoke,
        **provenance_block(),
        **results,
    }
    payload.setdefault("ingest_trajectory", []).append({
        "cards_per_s": results["parse"]["cards_per_s"],
        "sparse_speedup": results["sparse"]["sparse_speedup"],
        "smoke": smoke,
    })
    out.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small ladder for CI; correctness only, "
                             "no speedup floor")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help=f"output JSON (default: {DEFAULT_OUT} in full "
                             "mode, bench_ingest_smoke.json in smoke mode)")
    args = parser.parse_args(argv)

    results = {"parse": bench_parse(args.smoke),
               "sparse": bench_sparse(args.smoke)}

    out = args.out or (pathlib.Path("bench_ingest_smoke.json") if args.smoke
                       else DEFAULT_OUT)
    _merge_out(out, results, args.smoke)
    print(f"[bench_ingest] wrote {out}")

    if args.smoke:
        return 0
    failed = False
    if results["sparse"]["n_nodes"] < 1000:
        print(f"FAIL: full-mode ladder must have >= 1000 nodes, "
              f"got {results['sparse']['n_nodes']}")
        failed = True
    if results["sparse"]["sparse_speedup"] < 3.0:
        print("FAIL: sparse path below the 3x floor over dense "
              f"({results['sparse']['sparse_speedup']:.2f}x)")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
