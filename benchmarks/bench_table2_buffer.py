"""Table 2 — characteristics of the power buffer amplifier.

Every row of Table 2, plus the Sec. 4 quiescent-current-control claim
("total supply current variations with temperature, process and supply
... is 15 % over a wide supply voltage range (2.8 V to 5 V)").
"""

import pytest

from repro.pga.characterize import (
    CharacterizationOptions,
    characterize_power_buffer,
    iq_spread_over_conditions,
)
from repro.pga.specs import POWER_BUFFER_SPEC

PAPER_TABLE2 = {
    "input_range_frac": ("V_in max", "rail to rail"),
    "vomax_margin_hd06_mv": ("V_omax(0.6% HD)", "100 mV from rails"),
    "vomax_margin_hd03_mv": ("V_omax(0.3% HD)", "300 mV from rails"),
    "iq_ma": ("I_Q", "3.25 +/- 0.5 mA"),
    "psrr_1khz_db": ("PSRR(1 kHz)", ">= 78 dB"),
    "slew_v_per_us": ("SR (V_in = 1 V)", "2.5 V/us"),
    "hd_4vpp_50ohm_pct": ("HD at 4 Vpp/50 ohm/3 V", "< 0.5 %"),
}


@pytest.fixture(scope="module")
def measured(tech):
    return characterize_power_buffer(
        tech, CharacterizationOptions(quick=False, psrr_trials=3)
    )


def test_table2_reproduction(measured, save_report, benchmark):
    report = benchmark.pedantic(
        lambda: POWER_BUFFER_SPEC.check(measured), rounds=1, iterations=1)
    lines = ["Table 2: power buffer amplifier — paper vs measured", ""]
    for metric, (label, paper) in PAPER_TABLE2.items():
        lines.append(f"{label:<24s} paper: {paper:<22s} measured: "
                     f"{measured[metric]:.4g}")
    lines.append("")
    lines.append(report.format())
    save_report("table2_buffer", "\n".join(lines))
    assert report.passed, report.format()


def test_iq_control_claim(tech, save_report, benchmark):
    """The quiescent-control loop's spread over supply/temp/corners."""
    spread = benchmark.pedantic(
        lambda: iq_spread_over_conditions(
            tech,
            supplies=(2.8, 4.0, 5.0),
            temps=(-20.0, 25.0, 85.0),
            corners=("tt", "ff", "ss"),
        ),
        rounds=1, iterations=1,
    )
    lines = [
        "Sec. 4 quiescent-current control (paper: +/-15 % over 2.8..5 V):",
        f"  IQ nominal  {spread['iq_nominal_ma']:.3f} mA",
        f"  IQ min/max  {spread['iq_min_ma']:.3f} / {spread['iq_max_ma']:.3f} mA",
        f"  spread      +/-{spread['spread_frac'] * 100:.1f} %",
    ]
    save_report("table2_iq_control", "\n".join(lines))
    # translinear control: same order as the paper's 15 %
    assert spread["spread_frac"] < 0.40


def test_buffer_op_benchmark(tech, benchmark):
    from repro.circuits.powerbuffer import build_power_buffer
    from repro.spice.dc import dc_operating_point

    design = build_power_buffer(tech, feedback="inverting", load="resistive")
    op = benchmark(lambda: dc_operating_point(design.circuit))
    assert abs(op.i("vdd_src")) * 1e3 == pytest.approx(3.25, abs=1.0)
