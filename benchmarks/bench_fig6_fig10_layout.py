"""Figs. 6 and 10 — layout area and matching.

Regenerates the area breakdown of the microphone amplifier (paper:
1.1 mm^2, dominated by the noise-sized input devices) and the power
buffer, plus the common-centroid matching numbers behind the offset and
gain-accuracy budget.
"""

import numpy as np
import pytest

from repro.circuits.micamp import build_mic_amp
from repro.circuits.powerbuffer import build_power_buffer
from repro.layout.area import estimate_area_mm2
from repro.layout.common_centroid import (
    Placement,
    common_centroid_pattern,
    worst_gradient_imbalance,
)
from repro.layout.matching import (
    dynamic_range_loss_db,
    placement_sigma_vt,
    worst_case_offset,
)


def test_fig6_mic_amp_area(tech, save_report, benchmark):
    design = build_mic_amp(tech, gain_code=5)
    bd = benchmark.pedantic(
        lambda: estimate_area_mm2(design.circuit, tech), rounds=1, iterations=1)
    inputs = sum(bd.per_device[t] for t in ("t1", "t2", "t3", "t4"))
    loads = sum(bd.per_device[t] for t in ("tl_a", "tl_b"))
    caps = bd.capacitors
    lines = ["Fig. 6: microphone amplifier layout area model", "",
             bd.format(), "",
             f"  input quad T1..T4: {inputs / 1e3:7.0f}k um^2",
             f"  load devices:      {loads / 1e3:7.0f}k um^2",
             f"  capacitors:        {caps / 1e3:7.0f}k um^2",
             f"  resistor strings:  {bd.resistors / 1e3:7.0f}k um^2", "",
             f"total: {bd.total_mm2:.2f} mm^2 (paper: 1.1 mm^2)"]
    save_report("fig6_micamp_layout", "\n".join(lines))
    assert 0.5 < bd.total_mm2 < 2.0
    # the paper's story: noise sizing dominates the floorplan
    assert inputs > 0.3 * bd.raw_um2


def test_fig10_buffer_area(tech, save_report, benchmark):
    design = build_power_buffer(tech, feedback="open", load="none")
    bd = benchmark.pedantic(
        lambda: estimate_area_mm2(design.circuit, tech), rounds=1, iterations=1)
    outputs = sum(bd.per_device[f"m{p}o_{s}"] for p in "pn" for s in "ab")
    lines = ["Fig. 10: power buffer layout area model", "", bd.format(), "",
             f"  output devices: {outputs / 1e3:7.0f}k um^2 "
             f"({outputs / bd.raw_um2 * 100:.0f} % of raw device area)"]
    save_report("fig10_buffer_layout", "\n".join(lines))
    assert 0.05 < bd.total_mm2 < 1.0
    assert outputs > 0.2 * bd.mosfets


def test_fig6_matching_budget(tech, save_report, benchmark):
    """Common-centroid input quad vs a naive layout: offset and the
    dynamic-range cost at 40 dB (the introduction's argument)."""
    quad = benchmark.pedantic(
        lambda: common_centroid_pattern(2, 4), rounds=1, iterations=1)
    naive = Placement(np.array([[0, 0, 1, 1]]), 2)
    rows = []
    for name, placement in (("common-centroid", quad), ("naive A A B B", naive)):
        res = placement_sigma_vt(tech, placement, 7200e-6, 8e-6)
        offset_out = worst_case_offset(res["combined_v"], 40.0)
        rows.append((name, res, offset_out,
                     dynamic_range_loss_db(offset_out)))
    lines = ["Fig. 6 companion: input-quad matching vs placement", "",
             "placement         sigma_rand    gradient     3-sigma offset"
             "@40dB   DR loss"]
    for name, res, off, loss in rows:
        lines.append(
            f"{name:<16s}  {res['sigma_random_v'] * 1e6:7.1f} uV  "
            f"{res['gradient_worst_v'] * 1e6:9.1f} uV   {off * 1e3:9.2f} mV"
            f"      {loss:6.3f} dB"
        )
    lines.append("")
    lines.append(f"quad gradient imbalance: "
                 f"{worst_gradient_imbalance(quad):.2e} pitches (exact zero)")
    save_report("fig6_matching", "\n".join(lines))
    assert rows[0][3] < 0.5          # common centroid: negligible DR loss
    assert rows[1][3] > rows[0][3]   # naive placement pays


def test_area_model_benchmark(tech, benchmark):
    design = build_mic_amp(tech, gain_code=5)
    bd = benchmark(lambda: estimate_area_mm2(design.circuit, tech))
    assert bd.total_mm2 > 0.1
