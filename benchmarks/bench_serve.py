#!/usr/bin/env python
"""Closed-loop client benchmark for the characterization service.

Starts a live ``repro.serve`` HTTP server (fresh store, in-process
worker pool) and drives it with a **multi-threaded closed-loop client**:
each client thread submits a request, polls the job to completion,
fetches the result document and immediately issues its next request.
Three phases measure the three serving regimes:

* ``cold``      — N distinct campaign requests against an empty store:
  every unit executes through the engine (plus HTTP + queue + write-back
  overhead — the price of the service wrapper is *in* this number);
* ``warm``      — the same N requests again: every campaign is fully
  cached, answered straight from the store at submit time without
  touching the engine or the worker pool;
* ``coalesced`` — K threads simultaneously submit one *new* identical
  request: the units execute exactly once (asserted via the service's
  execution counters) and every thread receives the shared result.

Before any timing is reported, the cold-phase result documents are
checked **byte-identical** to direct ``run_campaign`` runs of the same
specs.  Full mode requires warm requests-per-second >= **10x** cold and
merges a ``serve`` entry (plus ``serve_trajectory``) into
``BENCH_perf.json`` without disturbing other benchmarks' keys;
``--smoke`` shrinks everything for CI and asserts correctness only.

``--chaos`` appends a fourth phase against a **fresh** service with a
seeded :class:`repro.faults.FaultPlan` armed: 5 % of sqlite index
transactions raise ``OperationalError`` and 5 % of payload reads raise
``OSError``.  The store retries, quarantines or degrades around the
injected faults; the phase asserts the fault schedule actually fired,
that every served document is still byte-identical to a fault-free
direct run, and reports the throughput cost as ``chaos_rps`` /
``chaos_slowdown_vs_cold`` inside the ``serve.chaos`` entry.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke] [--chaos]
                                                    [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import tempfile
import threading
import time

from provenance import provenance_block

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"


def _payloads(smoke: bool) -> list[dict]:
    """N distinct campaign requests (distinct seed axes -> distinct
    fingerprints and distinct units)."""
    if smoke:
        return [{"builder": "bias", "corners": ["tt"],
                 "temps_c": [25.0, 85.0],
                 "measurements": ["bias_current_ua"],
                 "seeds": [seed]} for seed in range(3)]
    return [{"builder": "micamp", "corners": ["tt", "ss"],
             "temps_c": [-20.0, 25.0, 85.0],
             "seeds": [4 * i, 4 * i + 1, 4 * i + 2, 4 * i + 3],
             "measurements": ["offset_v", "iq_ma", "gain_1khz_db"]}
            for i in range(8)]


def _closed_loop(client_cls, base_url: str, payloads: list[dict],
                 n_threads: int) -> float:
    """Run every payload through submit+wait+fetch across ``n_threads``
    closed-loop clients; returns the wall time."""
    index = {"next": 0}
    lock = threading.Lock()
    errors: list[BaseException] = []

    def loop():
        client = client_cls(base_url)
        while True:
            with lock:
                i = index["next"]
                if i >= len(payloads):
                    return
                index["next"] = i + 1
            try:
                view = client.run("campaign", payloads[i], timeout=600)
                assert view["state"] == "done", view
                client.result_bytes(view["id"])
            except BaseException as exc:  # noqa: BLE001 — surface below
                errors.append(exc)
                return

    threads = [threading.Thread(target=loop) for _ in range(n_threads)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    if errors:
        raise errors[0]
    return wall


def run_bench(smoke: bool) -> dict:
    from repro.campaign import run_campaign
    from repro.serve import CharacterizationService, ServeClient, serve_background
    from repro.serve.validate import campaign_spec_from_dict
    from repro.store import ResultStore

    payloads = _payloads(smoke)
    specs = [campaign_spec_from_dict(p) for p in payloads]
    units_per_request = specs[0].n_units
    n_threads = 2 if smoke else 4
    print(f"[bench_serve] {len(payloads)} requests x {units_per_request} "
          f"units, {n_threads} client threads")

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench_serve_"))
    service = None
    server = None
    try:
        store = ResultStore(workdir / "store")
        service = CharacterizationService(store=store, workers=2).start()
        server, _thread = serve_background(service)
        host, port = server.server_address[:2]
        base_url = f"http://{host}:{port}"
        ServeClient(base_url).wait_until_up()

        # --- cold: every unit executes through the engine ---
        t_cold = _closed_loop(ServeClient, base_url, payloads, n_threads)
        cold_rps = len(payloads) / t_cold
        assert service.metrics.get("units_executed") == \
            units_per_request * len(payloads)
        print(f"  cold  {len(payloads)} requests in {t_cold:.3f}s "
              f"({cold_rps:.1f} req/s)")

        # Byte-identity gate before any speed claims: the served
        # documents must be the exact direct-run bytes.
        client = ServeClient(base_url)
        by_fp = {job["fingerprint"]: job for job in client.jobs()}
        checked = 0
        for payload, spec in zip(payloads[:3], specs[:3]):
            from repro.store.keys import campaign_key

            job = by_fp[campaign_key(spec)]
            served = client.result_bytes(job["id"]).decode("utf-8")
            direct = run_campaign(spec).to_json() + "\n"
            assert served == direct, "served result != direct run_campaign"
            checked += 1
        print(f"  byte-identity: {checked} served documents == direct runs")

        # --- warm: same requests, store answers, engine untouched ---
        executed_before = service.metrics.get("units_executed")
        t_warm = float("inf")
        for _ in range(1 if smoke else 3):
            t_warm = min(t_warm, _closed_loop(ServeClient, base_url,
                                              payloads, n_threads))
        warm_rps = len(payloads) / t_warm
        assert service.metrics.get("units_executed") == executed_before, \
            "warm phase executed units — store keys are unstable"
        assert service.metrics.get("warm_hits") >= len(payloads)
        print(f"  warm  {len(payloads)} requests in {t_warm:.3f}s "
              f"({warm_rps:.1f} req/s, {warm_rps / cold_rps:.1f}x cold)")

        # --- coalesced: K simultaneous submissions of one new spec ---
        fresh = {"builder": payloads[0]["builder"],
                 "corners": ["tt"], "temps_c": [25.0],
                 "seeds": [1001, 1002],
                 "measurements": payloads[0]["measurements"]}
        fresh_units = campaign_spec_from_dict(fresh).n_units
        k = 4 if smoke else 8
        barrier = threading.Barrier(k)
        views = [None] * k

        def coalesced_submit(i):
            c = ServeClient(base_url)
            barrier.wait()
            view = c.submit("campaign", fresh)
            if view["state"] not in ("done", "failed"):
                view = c.wait(view["id"], timeout=600)
            c.result_bytes(view["id"])
            views[i] = view

        executed_before = service.metrics.get("units_executed")
        threads = [threading.Thread(target=coalesced_submit, args=(i,))
                   for i in range(k)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        t_coal = time.perf_counter() - t0
        coal_rps = k / t_coal
        executed = service.metrics.get("units_executed") - executed_before
        assert executed == fresh_units, \
            f"coalesced phase executed {executed} units, want {fresh_units}"
        assert all(v is not None and v["state"] == "done" for v in views)
        print(f"  coalesced  {k} simultaneous requests in {t_coal:.3f}s "
              f"({coal_rps:.1f} req/s, shared units executed exactly once)")

        counters = service.metrics.snapshot()
    finally:
        if server is not None:
            server.shutdown()
        if service is not None:
            service.stop()
        shutil.rmtree(workdir, ignore_errors=True)

    return {
        "n_requests": len(payloads),
        "units_per_request": units_per_request,
        "client_threads": n_threads,
        "cold_s": t_cold,
        "warm_s": t_warm,
        "coalesced_s": t_coal,
        "cold_rps": cold_rps,
        "warm_rps": warm_rps,
        "coalesced_rps": coal_rps,
        "warm_speedup_vs_cold": warm_rps / cold_rps,
        "byte_identical": True,
        "exactly_once": True,
        "counters": counters,
    }


#: Injected fault rate for the chaos phase (per fault-point firing).
CHAOS_FAULT_P = 0.05
#: Seed for the chaos schedule: same seed, same fault sequence.  Chosen
#: so the draw sequence is dense enough that faults land in both the
#: cold (index write-back) and rerun (warm payload read) windows even
#: on the tiny smoke workload.
CHAOS_SEED = 8


def run_chaos(smoke: bool, cold_rps: float) -> dict:
    """Drive the same closed-loop workload against a fresh service with
    a seeded 5 % fault schedule armed on the store's hot paths."""
    import sqlite3

    from repro.campaign import run_campaign
    from repro.faults import FaultPlan, FaultRule
    from repro.serve import CharacterizationService, ServeClient, serve_background
    from repro.serve.validate import campaign_spec_from_dict
    from repro.store import ResultStore
    from repro.store.keys import campaign_key

    payloads = _payloads(smoke)
    specs = [campaign_spec_from_dict(p) for p in payloads]
    n_threads = 2 if smoke else 4
    # The smoke workload only hits the store ~20 times; at 5 % odds are
    # ~1 in 3 that no fault fires at all, so smoke runs a hotter rate to
    # keep "the schedule actually fired" assertable.
    fault_p = 0.3 if smoke else CHAOS_FAULT_P
    plan = FaultPlan([
        FaultRule("store.index", raises=sqlite3.OperationalError,
                  message="injected: database is locked",
                  probability=fault_p),
        FaultRule("store.payload_read", raises=OSError,
                  message="injected: disk I/O error",
                  probability=fault_p),
    ], seed=CHAOS_SEED)
    print(f"[bench_serve] chaos: {fault_p:.0%} faults on store.index "
          f"+ store.payload_read, seed {CHAOS_SEED}")

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench_serve_chaos_"))
    service = None
    server = None
    try:
        store = ResultStore(workdir / "store")
        service = CharacterizationService(store=store, workers=2).start()
        server, _thread = serve_background(service)
        host, port = server.server_address[:2]
        base_url = f"http://{host}:{port}"
        ServeClient(base_url).wait_until_up()

        with plan.activate():
            # cold under faults: index writes flake on the write-back path
            t_chaos = _closed_loop(ServeClient, base_url, payloads, n_threads)
            # rerun under faults: warm reads flake, units re-execute or
            # the service degrades to engine-only — either way it answers
            t_rerun = _closed_loop(ServeClient, base_url, payloads, n_threads)
        chaos_rps = len(payloads) / t_chaos
        faults = {"store.index": plan.triggered("store.index"),
                  "store.payload_read": plan.triggered("store.payload_read")}
        assert plan.triggered() > 0, \
            "chaos phase injected zero faults — schedule never fired"
        print(f"  chaos cold  {len(payloads)} requests in {t_chaos:.3f}s "
              f"({chaos_rps:.1f} req/s), rerun in {t_rerun:.3f}s, "
              f"{plan.triggered()} faults fired {faults}")

        # Byte-identity gate: served-under-chaos documents must equal
        # fault-free direct runs (the plan is disarmed again here).
        client = ServeClient(base_url)
        by_fp = {job["fingerprint"]: job for job in client.jobs()}
        checked = 0
        for spec in specs[:3]:
            job = by_fp[campaign_key(spec)]
            served = client.result_bytes(job["id"]).decode("utf-8")
            direct = run_campaign(spec).to_json() + "\n"
            assert served == direct, \
                "chaos-served result != fault-free direct run"
            checked += 1
        print(f"  chaos byte-identity: {checked} served documents == "
              f"fault-free direct runs")
        counters = service.metrics.snapshot()
    finally:
        if server is not None:
            server.shutdown()
        if service is not None:
            service.stop()
        shutil.rmtree(workdir, ignore_errors=True)

    return {
        "fault_probability": fault_p,
        "seed": CHAOS_SEED,
        "n_requests": len(payloads),
        "client_threads": n_threads,
        "chaos_s": t_chaos,
        "chaos_rerun_s": t_rerun,
        "chaos_rps": chaos_rps,
        "chaos_slowdown_vs_cold": cold_rps / chaos_rps,
        "faults_injected": faults,
        "byte_identical": True,
        "counters": counters,
    }


def _merge_out(out: pathlib.Path, results: dict, smoke: bool) -> None:
    """Merge into the trajectory file without clobbering other benches."""
    payload: dict = {}
    if out.exists():
        try:
            payload = json.loads(out.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload["serve"] = {
        "smoke": smoke,
        **provenance_block(),
        **results,
    }
    point = {
        "cold_rps": results["cold_rps"],
        "warm_rps": results["warm_rps"],
        "coalesced_rps": results["coalesced_rps"],
        "warm_speedup_vs_cold": results["warm_speedup_vs_cold"],
        "smoke": smoke,
    }
    if "chaos" in results:
        point["chaos_rps"] = results["chaos"]["chaos_rps"]
    payload.setdefault("serve_trajectory", []).append(point)
    out.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI; correctness only, "
                             "no speedup floor")
    parser.add_argument("--chaos", action="store_true",
                        help="append a phase with a seeded 5%% fault "
                             "schedule armed on the store hot paths; "
                             "asserts byte-identity under injected faults")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help=f"output JSON (default: {DEFAULT_OUT} in full "
                             "mode, bench_serve_smoke.json in smoke mode)")
    args = parser.parse_args(argv)

    results = run_bench(args.smoke)
    if args.chaos:
        results["chaos"] = run_chaos(args.smoke, results["cold_rps"])

    out = args.out or (pathlib.Path("bench_serve_smoke.json") if args.smoke
                       else DEFAULT_OUT)
    _merge_out(out, results, args.smoke)
    print(f"[bench_serve] wrote {out}")

    if args.smoke:
        return 0
    if results["warm_speedup_vs_cold"] < 10.0:
        print("FAIL: warm serving below the 10x floor over cold "
              f"({results['warm_speedup_vs_cold']:.2f}x)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
