#!/usr/bin/env python
"""Perf benchmark harness for the batched small-signal engine.

Times the hot characterization workloads and writes ``BENCH_perf.json``
so future PRs have a wall-clock trajectory to beat:

* ``ac_sweep``: 200-point log AC sweep of the mic amp — batched
  frequency-stacked engine vs the kept per-frequency looped reference
  (:func:`repro.spice.ac._ac_analysis_looped`), measured in the same run.
* ``noise_sweep``: the same grid through the adjoint noise analysis
  (batched vs :func:`repro.spice.noise._noise_analysis_looped`).
* ``pga_characterize``: the full Table-1 mic-amp characterization driver
  (quick options) — timing emission only.
* ``dc_temp_sweep``: warm-started DC operating points of the power
  buffer across the consumer temperature range (exercises the cached
  stamp-index / RHS paths of the Newton loop).

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_engine.py [--smoke] [--out PATH]

``--smoke`` shrinks the sweeps for CI: it still emits every timing (and
the JSON) but asserts nothing about speedups.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from provenance import provenance_block

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"


def _best_of(fn, repeats: int) -> float:
    """Best-of-N wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _fresh_op(op):
    """Clone an operating point without its small-signal cache, so each
    timed repetition pays the honest one-linearize cost of the new path."""
    from repro.spice.dc import OperatingPoint

    return OperatingPoint(op.system, op.x, op.iterations, op.strategy)


def bench_ac_noise(n_points: int, repeats: int) -> dict:
    from repro.circuits.micamp import build_mic_amp
    from repro.process import CMOS12
    from repro.spice.ac import _ac_analysis_looped, ac_analysis
    from repro.spice.dc import dc_operating_point
    from repro.spice.noise import _noise_analysis_looped, noise_analysis

    design = build_mic_amp(CMOS12, gain_code=5)
    op = dc_operating_point(design.circuit)
    freqs = np.logspace(1.0, 6.0, n_points)
    out_p, out_n = design.outp, design.outn

    t_ac_looped = _best_of(lambda: _ac_analysis_looped(op, freqs), repeats)
    t_ac_batched = _best_of(lambda: ac_analysis(_fresh_op(op), freqs), repeats)
    t_noise_looped = _best_of(
        lambda: _noise_analysis_looped(op, freqs, out_p, out_n), repeats
    )
    t_noise_batched = _best_of(
        lambda: noise_analysis(_fresh_op(op), freqs, out_p, out_n), repeats
    )

    # The characterization workload proper: AC gain and noise of the same
    # operating point.  The looped path pays two linearize calls and two
    # per-frequency loops; the new engine shares one context and one
    # factorization between the forward and adjoint solves.
    def _combined_looped():
        _ac_analysis_looped(op, freqs)
        _noise_analysis_looped(op, freqs, out_p, out_n)

    def _combined_batched():
        shared_op = _fresh_op(op)
        ac_analysis(shared_op, freqs)
        noise_analysis(shared_op, freqs, out_p, out_n)

    t_looped = _best_of(_combined_looped, repeats)
    t_batched = _best_of(_combined_batched, repeats)

    # Cross-check in the same run: the two paths must agree (atol floors
    # the comparison at 1e-12 of the solution scale for negligible entries).
    ref = _ac_analysis_looped(op, freqs)
    new = ac_analysis(_fresh_op(op), freqs)
    np.testing.assert_allclose(
        new._x, ref._x, rtol=1e-9, atol=1e-12 * float(np.abs(ref._x).max())
    )

    return {
        "n_points": n_points,
        "system_size": op.system.size,
        "ac_looped_s": t_ac_looped,
        "ac_batched_s": t_ac_batched,
        "ac_speedup": t_ac_looped / t_ac_batched,
        "noise_looped_s": t_noise_looped,
        "noise_batched_s": t_noise_batched,
        "noise_speedup": t_noise_looped / t_noise_batched,
        "combined_looped_s": t_looped,
        "combined_batched_s": t_batched,
        "combined_speedup": t_looped / t_batched,
    }


def bench_characterize(quick: bool) -> dict:
    from repro.pga.characterize import CharacterizationOptions, characterize_mic_amp
    from repro.process import CMOS12

    opts = CharacterizationOptions(quick=quick)
    t0 = time.perf_counter()
    measured = characterize_mic_amp(CMOS12, opts)
    elapsed = time.perf_counter() - t0
    return {"quick": quick, "wall_s": elapsed, "n_metrics": len(measured)}


def bench_dc_temp_sweep(n_temps: int) -> dict:
    from repro.circuits.powerbuffer import build_power_buffer
    from repro.process import CMOS12
    from repro.spice.sweeps import temperature_sweep

    design = build_power_buffer(CMOS12, feedback="inverting", load="resistive")
    temps = np.linspace(-20.0, 85.0, n_temps)
    t0 = time.perf_counter()
    ops = temperature_sweep(design.circuit, temps)
    elapsed = time.perf_counter() - t0
    total_iters = sum(op.iterations for op in ops)
    return {"n_temps": n_temps, "wall_s": elapsed, "newton_iterations": total_iters}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sweep sizes for CI; no speedup floor")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    n_points = 40 if args.smoke else 200
    repeats = 1 if args.smoke else 3
    n_temps = 4 if args.smoke else 8

    results: dict = {}
    print(f"[bench_perf_engine] AC + noise sweep ({n_points} points)...")
    results["ac_noise"] = bench_ac_noise(n_points, repeats)
    print(
        "  ac: {ac_looped_s:.3f}s -> {ac_batched_s:.3f}s ({ac_speedup:.1f}x)   "
        "noise: {noise_looped_s:.3f}s -> {noise_batched_s:.3f}s "
        "({noise_speedup:.1f}x)   combined {combined_speedup:.1f}x".format(
            **results["ac_noise"]
        )
    )

    print("[bench_perf_engine] DC temperature sweep...")
    results["dc_temp_sweep"] = bench_dc_temp_sweep(n_temps)
    print("  {wall_s:.2f}s for {n_temps} temperatures "
          "({newton_iterations} Newton iterations)".format(**results["dc_temp_sweep"]))

    print("[bench_perf_engine] full PGA characterization (quick options)...")
    results["pga_characterize"] = bench_characterize(quick=True)
    print("  {wall_s:.2f}s for {n_metrics} metrics".format(**results["pga_characterize"]))

    payload = {
        "benchmark": "bench_perf_engine",
        "smoke": args.smoke,
        **provenance_block(),
        "results": results,
    }
    # Merge-preserve: other benches (bench_campaign.py) keep their own
    # top-level keys in the same trajectory file.
    merged: dict = {}
    if args.out.exists():
        try:
            merged = json.loads(args.out.read_text())
        except json.JSONDecodeError:
            merged = {}
    merged.update(payload)
    args.out.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"[bench_perf_engine] wrote {args.out}")

    if not args.smoke and results["ac_noise"]["combined_speedup"] < 5.0:
        print("FAIL: combined AC+noise speedup below the 5x acceptance floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
