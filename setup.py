"""Legacy setup shim.

This offline environment lacks the ``wheel`` package, so ``pip install -e .``
cannot build a PEP 660 editable wheel; with this file (and no
``[build-system]`` table in pyproject.toml) pip falls back to
``setup.py develop``, which works with plain setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Low supply voltage, low noise fully differential "
        "programmable gain amplifiers' (Pletersek, Strle, Trontelj, 1995)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9"],
)
