"""Candidate evaluation: caching, campaign equivalence, robust mode."""

import numpy as np
import pytest

from repro.optimize import (
    CandidateEvaluator,
    RobustSettings,
    mic_amp_design_space,
    mic_amp_objective,
)
from repro.process import CMOS12


@pytest.fixture(scope="module")
def space():
    return mic_amp_design_space()


@pytest.fixture()
def evaluator(space):
    return CandidateEvaluator(space, mic_amp_objective(), CMOS12)


class TestCaching:
    def test_repeat_evaluation_hits_cache(self, evaluator, space):
        x = space.default()
        ev1 = evaluator.evaluate(x)
        ev2 = evaluator.evaluate(x + x * 1e-14)  # same grid cell
        assert ev2 is ev1
        assert evaluator.cache_hits == 1
        assert evaluator.cache_misses == 1
        assert evaluator.cache_hit_rate == pytest.approx(0.5)

    def test_distinct_cells_miss(self, evaluator, space):
        x = space.default()
        evaluator.evaluate(x)
        y = x.copy()
        y[space.names.index("l_load")] *= 0.8
        evaluator.evaluate(y)
        assert evaluator.cache_misses == 2 and evaluator.cache_hits == 0


class TestTypicalMode:
    def test_default_point_metrics_match_direct_characterization(
            self, evaluator, space, mic_amp_noise, mic_amp_op):
        """The campaign-routed evaluation of the *shipped* sizing must
        reproduce the direct bench numbers (same engine underneath)."""
        from repro.layout.area import estimate_mic_amp_area_mm2

        ev = evaluator.evaluate(space.default())
        assert ev.error is None
        # The quantized default is not byte-identical to the shipped
        # MicAmpSizes (grid snap + derived widths), so compare loosely:
        assert ev.metrics["iq_ma"] == pytest.approx(
            abs(mic_amp_op.i("vdd_src")) * 1e3, rel=0.05)
        assert ev.metrics["vnin_avg_nv"] == pytest.approx(
            mic_amp_noise.average_input_density(300, 3400) * 1e9, rel=0.10)

    def test_infeasible_split_is_caught_not_raised(self, evaluator, space):
        x = space.default()
        x[space.names.index("split_input_thermal")] = 0.70  # sum > 1
        ev = evaluator.evaluate(x)
        assert ev.error is not None and "split" in ev.error
        assert not ev.feasible
        assert ev.metrics == {}
        assert np.isinf(ev.score) or ev.score > 1e9

    def test_score_matches_objective(self, evaluator, space):
        ev = evaluator.evaluate(space.default())
        assert ev.score == pytest.approx(
            evaluator.objective.score(ev.metrics))


class TestRobustMode:
    def test_aggregates_worst_case_over_corners(self, space):
        rb = RobustSettings(corners=("tt", "ss", "ff"), temps_c=(25.0,))
        robust = CandidateEvaluator(space, mic_amp_objective(), CMOS12,
                                    robust=rb)
        typical = CandidateEvaluator(space, mic_amp_objective(), CMOS12)
        x = space.default()
        ev_r = robust.evaluate(x)
        ev_t = typical.evaluate(x)
        # worst case over a grid that includes the typical point can only
        # be equal or worse for ceiling metrics ...
        assert ev_r.metrics["vnin_avg_nv"] >= ev_t.metrics["vnin_avg_nv"] - 1e-12
        assert ev_r.metrics["iq_ma"] >= ev_t.metrics["iq_ma"] - 1e-12
        # ... and the corners genuinely move the numbers
        assert ev_r.metrics["iq_ma"] != pytest.approx(
            ev_t.metrics["iq_ma"], rel=1e-6)

    def test_serial_and_pool_executors_identical(self, space):
        from repro.campaign import ProcessPoolCampaignExecutor

        rb = RobustSettings(corners=("tt", "ss"), temps_c=(25.0,))
        x = space.default()
        serial = CandidateEvaluator(space, mic_amp_objective(), CMOS12,
                                    robust=rb)
        pool = CandidateEvaluator(
            space, mic_amp_objective(), CMOS12, robust=rb,
            executor=ProcessPoolCampaignExecutor(max_workers=2))
        ev_s = serial.evaluate(x)
        ev_p = pool.evaluate(x)
        assert ev_s.metrics == ev_p.metrics  # byte-identical floats
        assert ev_s.score == ev_p.score

    def test_units_per_candidate(self, space):
        rb = RobustSettings(corners=("tt", "ss"), temps_c=(-20.0, 85.0),
                            seeds=(None, 1))
        robust = CandidateEvaluator(space, mic_amp_objective(), CMOS12,
                                    robust=rb)
        assert robust.units_per_candidate() == 8
        typical = CandidateEvaluator(space, mic_amp_objective(), CMOS12)
        assert typical.units_per_candidate() == 1
