"""Design-space coordinate maps: bounds, log scale, quantization."""

import numpy as np
import pytest

from repro.optimize.space import DesignSpace, Parameter, mic_amp_design_space


def small_space():
    return DesignSpace([
        Parameter("lin", 0.0, 10.0, default=2.0, step=0.5),
        Parameter("logp", 1e-4, 1e-2, default=1e-3, log=True, step=0.1),
        Parameter("free", -1.0, 1.0),
    ])


class TestParameter:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError, match="lower < upper"):
            Parameter("p", 2.0, 1.0)

    def test_rejects_nonpositive_log_bounds(self):
        with pytest.raises(ValueError, match="positive"):
            Parameter("p", -1.0, 1.0, log=True)

    def test_rejects_default_outside_bounds(self):
        with pytest.raises(ValueError, match="outside"):
            Parameter("p", 0.0, 1.0, default=2.0)

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError, match="step"):
            Parameter("p", 0.0, 1.0, step=0.0)


class TestDesignSpace:
    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            DesignSpace([Parameter("a", 0, 1), Parameter("a", 0, 1)])

    def test_unit_round_trip_on_grid(self):
        space = small_space()
        x = np.array([3.5, 1e-3, 0.25])
        back = space.from_unit(space.to_unit(x))
        np.testing.assert_allclose(back[:2], x[:2], rtol=1e-12)
        assert abs(back[2] - 0.25) < 2.0 / 64.0  # free axis: no grid

    def test_quantize_snaps_linear_axis(self):
        space = small_space()
        q = space.quantize(np.array([3.74, 1e-3, 0.0]))
        assert q[0] == pytest.approx(3.5)

    def test_quantize_snaps_log_axis_in_decades(self):
        space = small_space()
        # 0.1-decade grid from 1e-4: ..., 1e-3, 10^-2.9, ...
        q = space.quantize(np.array([0.0, 1.17e-3, 0.0]))
        assert np.log10(q[1]) == pytest.approx(-2.9)

    def test_quantize_clips_to_bounds(self):
        space = small_space()
        q = space.quantize(np.array([99.0, 1.0, -5.0]))
        assert q[0] == 10.0 and q[1] == pytest.approx(1e-2) and q[2] == -1.0

    def test_from_unit_is_quantized_population(self):
        space = small_space()
        u = np.linspace(0.0, 1.0, 15).reshape(5, 3)
        x = space.from_unit(u)
        assert x.shape == (5, 3)
        np.testing.assert_array_equal(x, space.quantize(x))

    def test_key_is_hashable_and_stable(self):
        space = small_space()
        k1 = space.key(np.array([3.5, 1e-3, 0.1]))
        k2 = space.key(np.array([3.5 + 1e-14, 1e-3 * (1 + 1e-14), 0.1]))
        assert k1 == k2
        assert hash(k1) == hash(k2)

    def test_default_uses_parameter_defaults(self):
        space = small_space()
        d = space.default()
        assert d[0] == pytest.approx(2.0)
        assert d[1] == pytest.approx(1e-3)
        assert d[2] == pytest.approx(0.0, abs=2.0 / 64.0)  # centre

    def test_from_dict_partial_fills_defaults(self):
        space = small_space()
        x = space.from_dict({"lin": 5.0})
        assert x[0] == pytest.approx(5.0)
        assert x[1] == pytest.approx(1e-3)

    def test_from_dict_rejects_unknown(self):
        with pytest.raises(KeyError, match="unknown"):
            small_space().from_dict({"nope": 1.0})


class TestMicAmpSpace:
    def test_default_is_the_paper_point_on_grid(self):
        space = mic_amp_design_space()
        params = space.as_dict(space.default())
        assert params["split_input_thermal"] == pytest.approx(0.40)
        assert params["i_pair"] == pytest.approx(0.8e-3, rel=0.05)
        assert params["l_input"] == pytest.approx(8e-6, rel=0.05)
        assert params["r_total"] == pytest.approx(25e3, rel=0.05)

    def test_default_builds_a_working_amplifier(self):
        from repro.pga.design import mic_amp_parts_from_params
        from repro.process import CMOS12

        space = mic_amp_design_space()
        sizes, gain = mic_amp_parts_from_params(
            CMOS12, space.as_dict(space.default()))
        assert sizes.w_input > 1e-3  # noise-sized inputs are millimetres wide
        assert gain.r_total == pytest.approx(25e3, rel=0.05)
